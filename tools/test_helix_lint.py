#!/usr/bin/env python3
"""Golden tests for tools/helix_lint.py.

Each check id has a violating and a clean fixture under
tests/data/lint/. Violating fixtures carry marker comments naming the
exact finding the linter must emit:

    bad_line();  // LINT-EXPECT: <check-id>       (finding on this line)
    // LINT-EXPECT-NEXT: <check-id>               (finding on the next)

The driver runs the linter per check (``--checks <id>``) and asserts:

  * the violating fixture exits 1 with exactly the marked
    (line, check-id) findings — no more, no fewer;
  * the clean fixture exits 0 with no findings;
  * a justified allow() suppresses its finding (suppression_clean);
  * a justification-free or unknown-check allow() is itself a finding
    (suppression_violation);
  * usage errors (unknown check id, missing file) exit 2.

Registered in CTest as ``helix_lint_fixtures``; the companion
``helix_lint_tree`` test runs the linter over the real tree.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "helix_lint.py"
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "lint"

# (check id, violating fixture, clean fixture)
CASES = [
    ("raw-random", "raw_random_violation.cpp", "raw_random_clean.cpp"),
    ("unordered-iter", "unordered_iter_violation.cpp",
     "unordered_iter_clean.cpp"),
    ("hot-path-std-function", "hot_path_std_function_violation.h",
     "hot_path_std_function_clean.h"),
    ("parse-error-threading", "parse_error_threading_violation.h",
     "parse_error_threading_clean.h"),
    ("float-eq", "float_eq_violation.cpp", "float_eq_clean.cpp"),
    ("param-registry", "param_registry_violation.cpp",
     "param_registry_clean.cpp"),
    ("self-include-first", "self_include_first_violation.cpp",
     "self_include_first_clean.cpp"),
    ("unused-include", "unused_include_violation.cpp",
     "unused_include_clean.cpp"),
    ("suppression", "suppression_violation.cpp", "suppression_clean.cpp"),
]

EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([\w-]+)")
EXPECT_NEXT_RE = re.compile(r"LINT-EXPECT-NEXT:\s*([\w-]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([\w-]+)\] (.*)$")

failures = []


def fail(message):
    failures.append(message)
    print(f"FAIL: {message}")


def ok(message):
    print(f"ok: {message}")


def expected_findings(path: Path):
    expected = set()
    for lineno, line in enumerate(path.read_text().split("\n"), start=1):
        m = EXPECT_RE.search(line)
        if m:
            expected.add((lineno, m.group(1)))
        m = EXPECT_NEXT_RE.search(line)
        if m:
            expected.add((lineno + 1, m.group(1)))
    return expected


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, str(LINTER)] + args,
        capture_output=True, text=True, cwd=REPO_ROOT)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((int(m.group(2)), m.group(3)))
    return proc.returncode, findings


def main():
    for check_id, violating, clean in CASES:
        vio_path = FIXTURE_DIR / violating
        expected = expected_findings(vio_path)
        if not expected:
            fail(f"{violating}: no LINT-EXPECT markers")
            continue
        code, findings = run_linter(
            ["--checks", check_id, str(vio_path)])
        if code != 1:
            fail(f"{violating}: expected exit 1, got {code}")
        if findings != expected:
            fail(f"{violating}: findings {sorted(findings)} != "
                 f"expected {sorted(expected)}")
        else:
            ok(f"{violating}: exact findings, exit 1")

        clean_path = FIXTURE_DIR / clean
        code, findings = run_linter(
            ["--checks", check_id, str(clean_path)])
        if code != 0 or findings:
            fail(f"{clean}: expected clean exit 0, got exit {code} "
                 f"with {sorted(findings)}")
        else:
            ok(f"{clean}: clean, exit 0")

    # A justified allow() must suppress the float-eq finding it covers
    # (the clean fixture contains an exact double comparison).
    code, findings = run_linter(
        ["--checks", "float-eq", str(FIXTURE_DIR / "suppression_clean.cpp")])
    if code != 0 or findings:
        fail("suppression_clean.cpp: justified allow() did not "
             f"suppress (exit {code}, findings {sorted(findings)})")
    else:
        ok("suppression_clean.cpp: justified allow() suppresses")

    # A justification-free allow() must NOT suppress: the malformed
    # directive is reported and any finding it sat above survives.
    code, findings = run_linter(
        ["--checks", "suppression",
         str(FIXTURE_DIR / "suppression_violation.cpp")])
    if code != 1:
        fail("suppression_violation.cpp: expected exit 1, got "
             f"{code}")

    # Usage errors exit 2.
    code, _ = run_linter(["--checks", "no-such-check",
                          str(FIXTURE_DIR / "float_eq_clean.cpp")])
    if code != 2:
        fail(f"unknown check id: expected exit 2, got {code}")
    else:
        ok("unknown check id exits 2")
    code, _ = run_linter([str(FIXTURE_DIR / "does_not_exist.cpp")])
    if code != 2:
        fail(f"missing file: expected exit 2, got {code}")
    else:
        ok("missing file exits 2")

    # --list-checks names every check the cases cover.
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--list-checks"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    listed = {line.split(":", 1)[0] for line in proc.stdout.splitlines()}
    missing = {c for c, _, _ in CASES} - listed
    if proc.returncode != 0 or missing:
        fail(f"--list-checks: exit {proc.returncode}, missing {missing}")
    else:
        ok("--list-checks covers every fixture check")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall helix-lint fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
