#!/usr/bin/env python3
"""Golden tests for tools/helix_analyze.py.

Each check id has a violating and a clean fixture under
tests/data/analyze/. Violating fixtures carry marker comments naming
the exact finding the analyzer must emit:

    bad_line();  // LINT-EXPECT: <check-id>      (finding on this line)
    // LINT-EXPECT-NEXT: <check-id>              (finding on the next)

Cross-artifact checks (metrics-schema, param-docs, bench-docs) span
several fixture files driven through the artifact-override flags; the
expected set is the union of the markers in every file of the case.

The driver asserts:

  * each violating fixture exits 1 with exactly the marked
    (path, line, check-id) findings — no more, no fewer;
  * each clean fixture exits 0 with no findings;
  * a justified allow() suppresses its finding (suppression_clean);
  * a malformed allow() is itself a finding (suppression_violation);
  * the real tree's ParallelExecutor and FairShareController public
    surfaces are fully annotated (annotation-coverage over
    src/sim/executor.h and src/scheduler/fair_share.h);
  * usage errors (unknown check id, missing file) exit 2.

Registered in CTest as ``helix_analyze_fixtures``; the companion
``helix_analyze_tree`` test runs the analyzer over the real tree.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ANALYZER = REPO_ROOT / "tools" / "helix_analyze.py"
FIXTURE_DIR = REPO_ROOT / "tests" / "data" / "analyze"

EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([\w-]+)")
EXPECT_NEXT_RE = re.compile(r"LINT-EXPECT-NEXT:\s*([\w-]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([\w-]+)\] (.*)$")

failures = []


def fail(message):
    failures.append(message)
    print(f"FAIL: {message}")


def ok(message):
    print(f"ok: {message}")


def rel(path: Path) -> str:
    return path.resolve().relative_to(REPO_ROOT).as_posix()


def expected_findings(paths):
    expected = set()
    for path in paths:
        r = rel(path)
        lines = path.read_text().split("\n")
        for lineno, line in enumerate(lines, start=1):
            m = EXPECT_RE.search(line)
            if m:
                expected.add((r, lineno, m.group(1)))
            m = EXPECT_NEXT_RE.search(line)
            if m:
                expected.add((r, lineno + 1, m.group(1)))
    return expected


def run_analyzer(args):
    proc = subprocess.run(
        [sys.executable, str(ANALYZER)] + args,
        capture_output=True, text=True, cwd=REPO_ROOT)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((m.group(1), int(m.group(2)), m.group(3)))
    return proc.returncode, findings


def check_violating(name, args, marker_files):
    expected = expected_findings(marker_files)
    if not expected:
        fail(f"{name}: no LINT-EXPECT markers")
        return
    code, findings = run_analyzer(args)
    if code != 1:
        fail(f"{name}: expected exit 1, got {code}")
    if findings != expected:
        fail(f"{name}: findings {sorted(findings)} != "
             f"expected {sorted(expected)}")
    else:
        ok(f"{name}: exact findings, exit 1")


def check_clean(name, args):
    code, findings = run_analyzer(args)
    if code != 0 or findings:
        fail(f"{name}: expected clean exit 0, got exit {code} "
             f"with {sorted(findings)}")
    else:
        ok(f"{name}: clean, exit 0")


def main():
    d = FIXTURE_DIR

    # thread-context: direct, propagated, and field-reference
    # violations; dispatch boundaries and rank-lowering calls clean.
    check_violating(
        "thread_context_violation.cpp",
        ["--checks", "thread-context",
         str(d / "thread_context_violation.cpp")],
        [d / "thread_context_violation.cpp"])
    check_clean(
        "thread_context_clean.cpp",
        ["--checks", "thread-context",
         str(d / "thread_context_clean.cpp")])

    # annotation-coverage over the fixture coverage classes.
    check_violating(
        "annotation_coverage_violation.h",
        ["--checks", "annotation-coverage",
         str(d / "annotation_coverage_violation.h")],
        [d / "annotation_coverage_violation.h"])
    check_clean(
        "annotation_coverage_clean.h",
        ["--checks", "annotation-coverage",
         str(d / "annotation_coverage_clean.h")])

    # metrics-schema across the four artifacts.
    drift = d / "schema_drift"
    check_violating(
        "schema_drift",
        ["--checks", "metrics-schema",
         "--metrics-header", str(drift / "metrics.h"),
         "--schema", str(drift / "schema.cpp"),
         "--emitters", str(drift / "emitters.cpp"),
         "--fingerprint", str(drift / "fingerprint.cpp")],
        [drift / "metrics.h", drift / "schema.cpp"])
    clean = d / "schema_clean"
    check_clean(
        "schema_clean",
        ["--checks", "metrics-schema",
         "--metrics-header", str(clean / "metrics.h"),
         "--schema", str(clean / "schema.cpp"),
         "--emitters", str(clean / "emitters.cpp"),
         "--fingerprint", str(clean / "fingerprint.cpp")])

    # param-docs in both directions.
    pdv = d / "param_docs_violation"
    check_violating(
        "param_docs_violation",
        ["--checks", "param-docs",
         "--params", str(pdv / "params.cpp"),
         "--docs", str(pdv / "docs.md")],
        [pdv / "params.cpp", pdv / "docs.md"])
    pdc = d / "param_docs_clean"
    check_clean(
        "param_docs_clean",
        ["--checks", "param-docs",
         "--params", str(pdc / "params.cpp"),
         "--docs", str(pdc / "docs.md")])

    # bench-docs against a fixture bench dir + README.
    bdv = d / "bench_docs_violation"
    check_violating(
        "bench_docs_violation",
        ["--checks", "bench-docs",
         "--bench-dir", str(bdv / "bench"),
         "--readme", str(bdv / "readme.md")],
        [bdv / "bench" / "orphan.cpp"])
    bdc = d / "bench_docs_clean"
    check_clean(
        "bench_docs_clean",
        ["--checks", "bench-docs",
         "--bench-dir", str(bdc / "bench"),
         "--readme", str(bdc / "readme.md")])

    # suppression: malformed directives are findings; a justified
    # allow() suppresses the thread-context finding it covers.
    check_violating(
        "suppression_violation.cpp",
        ["--checks", "suppression",
         str(d / "suppression_violation.cpp")],
        [d / "suppression_violation.cpp"])
    check_clean(
        "suppression_clean.cpp (justified allow suppresses)",
        ["--checks", "thread-context",
         str(d / "suppression_clean.cpp")])

    # Tree-wide contract: every public ParallelExecutor /
    # FairShareController entry point in the real headers is
    # annotated. This is the test that makes forgetting an annotation
    # on a new public method a CI failure.
    check_clean(
        "tree annotation-coverage (executor.h, fair_share.h)",
        ["--checks", "annotation-coverage",
         str(REPO_ROOT / "src" / "sim" / "executor.h"),
         str(REPO_ROOT / "src" / "scheduler" / "fair_share.h")])

    # Usage errors exit 2.
    code, _ = run_analyzer(["--checks", "no-such-check",
                            str(d / "thread_context_clean.cpp")])
    if code != 2:
        fail(f"unknown check id: expected exit 2, got {code}")
    else:
        ok("unknown check id exits 2")
    code, _ = run_analyzer([str(d / "does_not_exist.cpp")])
    if code != 2:
        fail(f"missing file: expected exit 2, got {code}")
    else:
        ok("missing file exits 2")

    # --list-checks names every check the fixtures cover.
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--list-checks"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    listed = {line.split(":", 1)[0]
              for line in proc.stdout.splitlines()}
    wanted = {"thread-context", "annotation-coverage",
              "metrics-schema", "param-docs", "bench-docs",
              "suppression"}
    missing = wanted - listed
    if proc.returncode != 0 or missing:
        fail(f"--list-checks: exit {proc.returncode}, "
             f"missing {missing}")
    else:
        ok("--list-checks covers every fixture check")

    if failures:
        print(f"\n{len(failures)} failure(s)")
        return 1
    print("\nall helix-analyze fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
