#!/usr/bin/env python3
"""helix-analyze: call-graph thread-context checks + cross-artifact
schema coherence.

helix-lint (tools/helix_lint.py) enforces line-local coding rules.
This tool covers the two failure classes a line-local linter cannot
see:

1. **Thread-context propagation** (``thread-context``,
   ``annotation-coverage``): the parallel executor (PR 9) splits the
   simulator into lane context (shard workers), coordinator context
   (the serialized coordinator phase), and churn-barrier context (the
   full-stop topology barrier). APIs and fields declare their context
   with the macros in src/core/annotations.h; this tool parses every
   function definition out of the stripped-source model, builds an
   approximate per-TU + cross-TU call graph, propagates the declared
   context rank along call edges, and flags any reachable path where
   lane-context code calls a coordinator-only/churn-barrier-only API
   or touches a coordinator-only field.

2. **Cross-artifact schema coherence** (``metrics-schema``,
   ``param-docs``, ``bench-docs``): facts that live in several
   artifacts at once — the SimMetrics struct vs. the schema tables in
   src/exp/schema.cpp vs. the two emitters vs. the differential
   fingerprint; the core::specParams() registry vs. the docs; the
   bench/ binaries vs. the README bench table — must never drift.

Checks (``--list-checks`` for the one-liners):

  thread-context         lane/coordinator/churn-barrier rank violation
                         on a reachable call-graph path
  annotation-coverage    public ParallelExecutor/FairShareController
                         entry point without a context annotation
  metrics-schema         SimMetrics / schema table / emitters /
                         differential fingerprint drift
  param-docs             spec registry key undocumented, or doc
                         example using an undeclared key
  bench-docs             bench binary without a README bench-table row
  suppression            malformed allow() directive

Findings print as ``path:line: [check-id] message`` (same contract as
helix-lint). A finding is suppressed only by a comment on the same
line or the line above::

    // helix-analyze: allow(<check-id>) <justification>

Markdown artifacts may use ``<!-- helix-analyze: allow(...) ... -->``.
The justification is mandatory. A fixture file may carry
``// helix-analyze: treat-as(<path>)`` in its first lines to opt into
the path-scoped rules of ``<path>`` (used by tests/data/analyze/).

Exit codes: 0 clean, 1 findings, 2 usage/IO error.

Usage:
  tools/helix_analyze.py --all
  tools/helix_analyze.py --compile-commands build/compile_commands.json
  tools/helix_analyze.py [--checks id,id] file.cpp ...
"""

import argparse
import re
import sys
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import helix_lint
from helix_lint import Finding, REPO_ROOT

# ---------------------------------------------------------------------------
# Check registry
# ---------------------------------------------------------------------------

CHECKS = {
    "thread-context": (
        "lane-context code reaching a coordinator-only or "
        "churn-barrier-only API or field through the call graph"
    ),
    "annotation-coverage": (
        "public ParallelExecutor/FairShareController entry point "
        "without a thread-context annotation"
    ),
    "metrics-schema": (
        "drift between SimMetrics, the schema tables "
        "(src/exp/schema.cpp), the CSV/JSON emitters, and the "
        "differential fingerprint"
    ),
    "param-docs": (
        "core::specParams() key missing from the docs, or a doc "
        "example using an undeclared key"
    ),
    "bench-docs": (
        "bench binary without a row in the README bench table"
    ),
    "suppression": (
        "malformed allow() directive (unknown check-id or missing "
        "justification)"
    ),
}

MODEL_CHECKS = ("thread-context", "annotation-coverage")

# Context ranks: a function of rank r may call/touch anything of rank
# <= r. Lane context is the most restrictive caller context.
ANNOTATION_RANKS = {
    "HELIX_LANE_SAFE": 0,
    "HELIX_COORDINATOR_ONLY": 1,
    "HELIX_CHURN_BARRIER_ONLY": 2,
}
DISPATCH_MACRO = "HELIX_CONTEXT_DISPATCH"
RANK_LABELS = {0: "lane-safe", 1: "coordinator-only",
               2: "churn-barrier-only"}
ANNOT_RE = re.compile(
    r"\b(HELIX_LANE_SAFE|HELIX_COORDINATOR_ONLY|"
    r"HELIX_CHURN_BARRIER_ONLY|HELIX_CONTEXT_DISPATCH)\b")

# Classes whose whole public surface must be annotated.
COVERAGE_CLASSES = ("ParallelExecutor", "FairShareController")

# The propagation model only covers the library tree.
THREAD_CONTEXT_PREFIXES = ("src/",)

DIRECTIVE_RE = re.compile(
    r"(?://|<!--)\s*helix-analyze:\s*(allow|treat-as)\(([^)]*)\)"
    r"\s*(.*?)\s*(?:-->\s*)?$"
)

# ---------------------------------------------------------------------------
# Source model (extends the helix-lint stripped-source model with the
# helix-analyze directive grammar)
# ---------------------------------------------------------------------------


class SourceFile(helix_lint.SourceFile):
    def _directives(self):
        for lineno, line in enumerate(self.raw_lines, start=1):
            m = DIRECTIVE_RE.search(line)
            if not m:
                continue
            kind, arg, tail = m.group(1), m.group(2).strip(), m.group(3)
            if kind == "treat-as":
                if lineno <= 5 and arg:
                    self.scope = arg
                continue
            justification = tail.strip()
            if arg not in CHECKS:
                self.directive_findings.append(Finding(
                    self.rel, lineno, "suppression",
                    f"allow() names unknown check '{arg}'"))
                continue
            if not justification:
                self.directive_findings.append(Finding(
                    self.rel, lineno, "suppression",
                    f"allow({arg}) requires a justification string"))
                continue
            self.allows[lineno] = self.allows.get(lineno, set())
            self.allows[lineno].add(arg)


_SOURCE_CACHE = {}


def load_source(path: Path):
    key = str(path.resolve())
    if key not in _SOURCE_CACHE:
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = path.as_posix()
        _SOURCE_CACHE[key] = SourceFile(path, rel)
    return _SOURCE_CACHE[key]


# ---------------------------------------------------------------------------
# Approximate C++ structure parser
#
# A statement-buffer + brace-depth scanner over the stripped lines.
# It recovers namespaces, classes (with access sections), member/free
# function declarations and definitions, data members, and the
# annotation macro attached to each — enough to build the call graph.
# ---------------------------------------------------------------------------

ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:\s*")
NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:~?[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)$")
OPERATOR_RE = re.compile(r"\boperator\b[^()]*$")
CLASS_HEAD_RE = re.compile(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)")
NAMESPACE_HEAD_RE = re.compile(
    r"^(?:inline\s+)?namespace\b(?:\s+([A-Za-z_]\w*))?")
CALL_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?\b(~?[A-Za-z_]\w*)\s*\(")

STMT_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "noexcept", "static_assert", "assert",
    "new", "delete", "throw", "case", "defined", "do", "else",
})
TYPE_KEYWORDS = frozenset({
    "int", "long", "double", "float", "bool", "char", "short",
    "unsigned", "signed", "void", "auto", "size_t", "uint8_t",
    "int8_t", "uint16_t", "int16_t", "uint32_t", "int32_t",
    "uint64_t", "int64_t", "const", "static", "inline", "virtual",
    "explicit", "constexpr",
})
SKIP_CALLEES = STMT_KEYWORDS | TYPE_KEYWORDS

# Common std container/sync method names: never resolved through an
# *untyped* receiver (a `vec.reserve(n)` must not match
# KvEstimator::reserve). Typed receivers are still checked.
STD_METHODS = frozenset({
    "push", "push_back", "push_front", "pop", "pop_back", "pop_front",
    "emplace", "emplace_back", "emplace_front", "emplace_hint",
    "reserve", "release", "resize", "clear", "erase", "insert",
    "find", "count", "size", "empty", "begin", "end", "rbegin",
    "rend", "front", "back", "top", "at", "get", "reset", "swap",
    "str", "c_str", "data", "substr", "append", "compare", "length",
    "wait", "wait_for", "notify_all", "notify_one", "lock", "unlock",
    "try_lock", "join", "detach", "load", "store", "exchange",
    "fetch_add", "value", "has_value", "value_or", "lower_bound",
    "upper_bound", "contains", "assign", "fill",
})


class FunctionDef:
    __slots__ = ("cls", "name", "annotation", "rel", "sig_line",
                 "body_open", "end", "sig", "src")

    def __init__(self, cls, name, annotation, src, sig_line, body_open,
                 sig):
        self.cls = cls
        self.name = name
        self.annotation = annotation
        self.src = src
        self.rel = src.rel
        self.sig_line = sig_line
        self.body_open = body_open
        self.end = body_open
        self.sig = sig

    def qual(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class MemberDecl:
    __slots__ = ("kind", "name", "annotation", "access", "line",
                 "text")

    def __init__(self, kind, name, annotation, access, line, text):
        self.kind = kind  # "fn" | "field"
        self.name = name
        self.annotation = annotation
        self.access = access
        self.line = line
        self.text = text


class ClassInfo:
    __slots__ = ("name", "rel", "line", "members")

    def __init__(self, name, rel, line):
        self.name = name
        self.rel = rel
        self.line = line
        self.members = []


class FileModel:
    __slots__ = ("src", "functions", "classes")

    def __init__(self, src):
        self.src = src
        self.functions = []
        self.classes = []  # ClassInfo, one per class *block*


def _func_name(text):
    """Name of the function a declarator introduces, or None."""
    depth = 0
    idx = -1
    for i, ch in enumerate(text):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            idx = i
            break
    if idx < 0:
        return None
    before = text[:idx].rstrip()
    if OPERATOR_RE.search(before):
        return "operator"
    m = NAME_BEFORE_PAREN_RE.search(before)
    if not m:
        return None
    name = re.sub(r"\s+", "", m.group(1))
    last = name.split("::")[-1].lstrip("~")
    if not last or last in SKIP_CALLEES:
        return None
    return name


def parse_file(src):
    """Build the structural model of one stripped translation unit."""
    model = FileModel(src)
    stack = []  # {"kind": ..., ...}; kinds: namespace/class/function/opaque
    buf = []
    buf_line = None

    def current_class():
        for blk in reversed(stack):
            if blk["kind"] == "class":
                return blk
            if blk["kind"] == "namespace":
                continue
            return None
        return None

    def inside_opaque():
        return any(b["kind"] in ("function", "opaque") for b in stack)

    def consume_labels(text):
        ctx = current_class()
        while True:
            m = ACCESS_RE.match(text)
            if not m:
                return text
            if ctx is not None:
                ctx["access"] = m.group(1)
            text = text[m.end():]

    def handle_decl(text, lineno, start_line):
        if inside_opaque():
            return
        ctx = current_class()
        t = consume_labels(text).strip()
        if not t:
            return
        first = re.match(r"[A-Za-z_]\w*", t)
        fw = first.group(0) if first else ""
        if fw in ("using", "friend", "typedef", "static_assert",
                  "template", "namespace", "enum", "extern"):
            return
        annot = ANNOT_RE.search(t)
        annotation = annot.group(1) if annot else None
        name = _func_name(t)
        if name and name != "operator":
            simple = name.split("::")[-1]
            if "::" in name:
                cls = name.split("::")[-2]
            elif ctx is not None:
                cls = ctx["info"].name
            else:
                cls = None
            decl = MemberDecl("fn", simple, annotation,
                              ctx["access"] if ctx else "public",
                              start_line, t)
            if ctx is not None:
                ctx["info"].members.append(decl)
            model_decls.append((cls, simple, annotation, start_line, t))
        elif "(" not in t and ctx is not None and fw not in ("class",
                                                            "struct"):
            head = t.split("=", 1)[0]
            ids = re.findall(r"[A-Za-z_]\w*", head)
            if not ids:
                return
            fname = ids[-1]
            ctx["info"].members.append(MemberDecl(
                "field", fname, annotation, ctx["access"], start_line,
                t))

    def classify_open(text, lineno, start_line):
        """Handle '{' in a transparent context."""
        t = consume_labels(text).strip()
        first = re.match(r"[A-Za-z_]\w*", t)
        fw = first.group(0) if first else ""
        if fw == "namespace" or t.startswith("inline namespace") or \
                fw == "extern":
            m = NAMESPACE_HEAD_RE.match(t)
            stack.append({"kind": "namespace",
                          "name": m.group(1) if m else None})
            return
        if fw in ("class", "struct", "union"):
            m = CLASS_HEAD_RE.search(t)
            if m:
                info = ClassInfo(m.group(1), src.rel, start_line)
                model.classes.append(info)
                stack.append({"kind": "class", "info": info,
                              "access": "private" if fw == "class"
                              else "public"})
            else:
                stack.append({"kind": "opaque"})
            return
        if fw == "enum":
            stack.append({"kind": "opaque"})
            return
        name = _func_name(t)
        if name and name != "operator":
            simple = name.split("::")[-1]
            ctx = current_class()
            if "::" in name:
                cls = name.split("::")[-2]
            elif ctx is not None:
                cls = ctx["info"].name
            else:
                cls = None
            annot = ANNOT_RE.search(t)
            annotation = annot.group(1) if annot else None
            fn = FunctionDef(cls, simple, annotation, src, start_line,
                             lineno, t)
            if ctx is not None:
                ctx["info"].members.append(MemberDecl(
                    "fn", simple, annotation, ctx["access"],
                    start_line, t))
            stack.append({"kind": "function", "fn": fn})
            return
        stack.append({"kind": "opaque"})

    model_decls = []  # (cls, name, annotation, line, text)

    for lineno, line in enumerate(src.stripped_lines, start=1):
        if line.lstrip().startswith("#"):
            continue
        for ch in line:
            if ch == "{":
                if inside_opaque():
                    stack.append({"kind": "opaque"})
                else:
                    classify_open("".join(buf),
                                  lineno, buf_line or lineno)
                buf = []
                buf_line = None
            elif ch == "}":
                if stack:
                    blk = stack.pop()
                    if blk["kind"] == "function":
                        blk["fn"].end = lineno
                        model.functions.append(blk["fn"])
                buf = []
                buf_line = None
            elif ch == ";":
                handle_decl("".join(buf), lineno, buf_line or lineno)
                buf = []
                buf_line = None
            else:
                if buf_line is None and not ch.isspace():
                    buf_line = lineno
                buf.append(ch)
        if buf or buf_line is not None:
            buf.append(" ")
    # close any dangling function at EOF
    while stack:
        blk = stack.pop()
        if blk["kind"] == "function":
            blk["fn"].end = len(src.stripped_lines)
            model.functions.append(blk["fn"])
    return model, model_decls


# FileModel carries decls via the parse_file return; keep __slots__
# minimal.


# ---------------------------------------------------------------------------
# Thread-context propagation
# ---------------------------------------------------------------------------


class ContextModel:
    """Cross-TU call-graph with min-rank context propagation."""

    def __init__(self, models):
        self.models = [m for (m, _) in models]
        # (cls, name) -> (macro, rel, line)
        self.annotated_fns = {}
        # (cls, name) -> (macro, rel, line)
        self.annotated_fields = {}
        # (cls, name) -> [FunctionDef]
        self.defs = {}
        # class -> {var -> class}
        self.member_types = {}
        self.findings = []
        for model, decls in models:
            for fn in model.functions:
                self.defs.setdefault((fn.cls, fn.name),
                                     []).append(fn)
                if fn.annotation:
                    self._annotate_fn((fn.cls, fn.name), fn.annotation,
                                      fn.rel, fn.sig_line)
            for cls, name, annotation, line, _text in decls:
                if annotation:
                    self._annotate_fn((cls, name), annotation,
                                      model.src.rel, line)
            for info in model.classes:
                for mem in info.members:
                    if mem.kind == "field" and mem.annotation:
                        key = (info.name, mem.name)
                        if mem.annotation == DISPATCH_MACRO:
                            self.findings.append(Finding(
                                info.rel, mem.line, "thread-context",
                                f"field '{info.name}::{mem.name}' "
                                f"cannot be {DISPATCH_MACRO} (fields "
                                "have no dispatch semantics)"))
                            continue
                        self.annotated_fields[key] = (
                            mem.annotation, info.rel, mem.line)
        self.known_classes = sorted(
            {k[0] for k in self.annotated_fns if k[0]} |
            {k[0] for k in self.annotated_fields if k[0]})
        self._build_var_patterns()
        self._build_member_types()
        self._name_candidates = {}
        for key in self.annotated_fns:
            self._name_candidates.setdefault(key[1], []).append(key)
        self._calls_cache = {}
        self._vartypes_cache = {}

    def _annotate_fn(self, key, macro, rel, line):
        prev = self.annotated_fns.get(key)
        if prev is not None and prev[0] != macro:
            qual = f"{key[0]}::{key[1]}" if key[0] else key[1]
            self.findings.append(Finding(
                rel, line, "thread-context",
                f"'{qual}' re-annotated {macro} but declared "
                f"{prev[0]} at {prev[1]}:{prev[2]}"))
            return
        self.annotated_fns[key] = (macro, rel, line)

    def _build_var_patterns(self):
        if not self.known_classes:
            self.decl_re = None
            self.ptr_re = None
            return
        alt = "|".join(re.escape(c) for c in self.known_classes)
        self.decl_re = re.compile(
            rf"\b(?:\w+::)*({alt})\s*(?:const\s*)?[&*]?\s*"
            rf"([A-Za-z_]\w*)")
        self.ptr_re = re.compile(
            rf"\b(?:unique_ptr|shared_ptr)\s*<\s*(?:\w+::)*({alt})"
            rf"\s*\*?\s*>\s*&?\s*([A-Za-z_]\w*)")

    def _extract_vars(self, text, out):
        if self.decl_re is None:
            return
        for m in self.ptr_re.finditer(text):
            out.setdefault(m.group(2), m.group(1))
        for m in self.decl_re.finditer(text):
            var = m.group(2)
            if var not in SKIP_CALLEES and var not in out:
                out[var] = m.group(1)

    def _build_member_types(self):
        for model in self.models:
            for info in model.classes:
                table = self.member_types.setdefault(info.name, {})
                for mem in info.members:
                    if mem.kind == "field":
                        self._extract_vars(mem.text, table)

    def vartypes(self, fn):
        key = id(fn)
        cached = self._vartypes_cache.get(key)
        if cached is not None:
            return cached
        table = {}
        if fn.cls:
            table["this"] = fn.cls
        text = fn.sig + "\n" + "\n".join(
            fn.src.stripped_lines[fn.body_open - 1:fn.end])
        self._extract_vars(text, table)
        if fn.cls:
            for var, cls in self.member_types.get(fn.cls, {}).items():
                table.setdefault(var, cls)
        self._vartypes_cache[key] = table
        return table

    def calls(self, fn):
        key = id(fn)
        cached = self._calls_cache.get(key)
        if cached is not None:
            return cached
        out = []
        for lineno in range(fn.body_open, fn.end + 1):
            line = fn.src.stripped_lines[lineno - 1]
            for m in CALL_RE.finditer(line):
                recv, callee = m.group(1), m.group(2)
                if callee in SKIP_CALLEES or callee.startswith("~"):
                    continue
                out.append((lineno, recv, callee))
        self._calls_cache[key] = out
        return out

    def resolve(self, fn, recv, callee):
        """-> ("annotated"|"def", key) or None."""
        vt = self.vartypes(fn)
        if recv:
            rcls = vt.get(recv)
            if rcls:
                key = (rcls, callee)
                if key in self.annotated_fns:
                    return ("annotated", key)
                if key in self.defs:
                    return ("def", key)
                return None
            if callee in STD_METHODS:
                return None
            cands = self._name_candidates.get(callee, [])
            if len(cands) == 1:
                return ("annotated", cands[0])
            return None
        if fn.cls:
            key = (fn.cls, callee)
            if key in self.annotated_fns:
                return ("annotated", key)
            if key in self.defs:
                return ("def", key)
        key = (None, callee)
        if key in self.defs:
            return ("def", key)
        if key in self.annotated_fns:
            return ("annotated", key)
        if callee in STD_METHODS:
            return None
        cands = self._name_candidates.get(callee, [])
        if len(cands) == 1:
            return ("annotated", cands[0])
        return None

    def propagate(self):
        """Min-rank fixpoint over the call graph. Returns
        {key: (rank, root_key)} for every visited function."""
        best = {}
        origin = {}
        queue = deque()
        for key, (macro, _rel, _line) in self.annotated_fns.items():
            if macro == DISPATCH_MACRO:
                continue
            if key in self.defs:
                best[key] = ANNOTATION_RANKS[macro]
                origin[key] = key
                queue.append(key)
        while queue:
            key = queue.popleft()
            rank = best[key]
            for fn in self.defs.get(key, []):
                for _lineno, recv, callee in self.calls(fn):
                    res = self.resolve(fn, recv, callee)
                    if res is None or res[0] != "def":
                        continue
                    tk = res[1]
                    if tk in self.annotated_fns:
                        continue  # pinned at its own declared rank
                    if tk not in best or rank < best[tk]:
                        best[tk] = rank
                        origin[tk] = origin[key]
                        queue.append(tk)
        return {k: (r, origin[k]) for k, r in best.items()}

    def check_thread_context(self):
        findings = list(self.findings)
        visited = self.propagate()

        def qual(key):
            return f"{key[0]}::{key[1]}" if key[0] else key[1]

        for key, (rank, root) in visited.items():
            via = ""
            if root != key:
                via = (f" (reached from {RANK_LABELS[best_rank(self, root)]}"
                       f" '{qual(root)}')")
            for fn in self.defs.get(key, []):
                if not fn.src.in_scope(THREAD_CONTEXT_PREFIXES):
                    continue
                macro = self.annotated_fns.get(key, (None,))[0]
                if macro == DISPATCH_MACRO:
                    continue
                for lineno, recv, callee in self.calls(fn):
                    res = self.resolve(fn, recv, callee)
                    if res is None or res[0] != "annotated":
                        continue
                    tkey = res[1]
                    tmacro = self.annotated_fns[tkey][0]
                    if tmacro == DISPATCH_MACRO:
                        continue
                    trank = ANNOTATION_RANKS[tmacro]
                    if trank > rank:
                        findings.append(Finding(
                            fn.rel, lineno, "thread-context",
                            f"{RANK_LABELS[rank]} '{qual(key)}'{via} "
                            f"calls {RANK_LABELS[trank]} "
                            f"'{qual(tkey)}'"))
                findings.extend(self._field_refs(fn, key, rank, via,
                                                 qual))
        return findings

    def _field_refs(self, fn, key, rank, via, qual):
        out = []
        vt = self.vartypes(fn)
        for (fcls, fname), (fmacro, _rel, _line) in \
                self.annotated_fields.items():
            frank = ANNOTATION_RANKS[fmacro]
            if frank <= rank:
                continue
            pat = re.compile(
                rf"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?\b"
                rf"{re.escape(fname)}\b")
            for lineno in range(fn.body_open, fn.end + 1):
                line = fn.src.stripped_lines[lineno - 1]
                for m in pat.finditer(line):
                    recv = m.group(1)
                    if recv:
                        if vt.get(recv) != fcls:
                            continue
                    elif fn.cls != fcls:
                        continue
                    out.append(Finding(
                        fn.rel, lineno, "thread-context",
                        f"{RANK_LABELS[rank]} '{qual(key)}'{via} "
                        f"references {RANK_LABELS[frank]} field "
                        f"'{fcls}::{fname}'"))
                    break  # one finding per line per field
        return out

    def check_annotation_coverage(self):
        findings = []
        seen = set()
        for model in self.models:
            if not model.src.in_scope(THREAD_CONTEXT_PREFIXES):
                continue
            for info in model.classes:
                if info.name not in COVERAGE_CLASSES:
                    continue
                for mem in info.members:
                    if mem.kind != "fn" or mem.access != "public":
                        continue
                    if mem.name == info.name or \
                            mem.name.startswith("~") or \
                            mem.name == "operator":
                        continue
                    if "= delete" in mem.text or \
                            "= default" in mem.text:
                        continue
                    dedup = (model.src.rel, mem.line, mem.name)
                    if dedup in seen:
                        continue
                    seen.add(dedup)
                    if mem.annotation is None:
                        findings.append(Finding(
                            model.src.rel, mem.line,
                            "annotation-coverage",
                            f"public {info.name} entry point "
                            f"'{mem.name}' lacks a thread-context "
                            "annotation (see src/core/annotations.h)"))
        return findings


def best_rank(ctx, key):
    macro = ctx.annotated_fns.get(key, (None,))[0]
    if macro in ANNOTATION_RANKS:
        return ANNOTATION_RANKS[macro]
    return 0


# ---------------------------------------------------------------------------
# metrics-schema: SimMetrics <-> schema tables <-> emitters <->
# differential fingerprint
# ---------------------------------------------------------------------------

SCHEMA_TABLE_RE = re.compile(
    r"\b(MetricColumnSpec|StringColumnSpec|CompositeColumnSpec|"
    r"InternalMetricSpec)\b[^=;]*\[\]\s*=\s*\{")
SCHEMA_ROW_RE = re.compile(r"\{\s*((?:\"(?:[^\"\\]|\\.)*\"\s*,?\s*)+)")
SCHEMA_STR_RE = re.compile(r"\"((?:[^\"\\]|\\.)*)\"")

# strings per row, by spec type
SCHEMA_ARITY = {
    "MetricColumnSpec": 3,     # column, field, fingerprint (+ lambda)
    "StringColumnSpec": 2,     # column, field (+ lambda)
    "CompositeColumnSpec": 4,  # csvColumn, jsonKey, field, fingerprint
    "InternalMetricSpec": 2,   # field, fingerprint
}


class SchemaRow:
    __slots__ = ("kind", "strings", "line")

    def __init__(self, kind, strings, line):
        self.kind = kind
        self.strings = strings
        self.line = line


def parse_schema_tables(src):
    """Extract the literal rows of every schema table, with lines."""
    rows = []
    findings = []
    text = "\n".join(src.raw_lines)
    for tm in SCHEMA_TABLE_RE.finditer(text):
        kind = tm.group(1)
        start = tm.end()
        # table region: up to the next top-level "};" line
        end = text.find("\n};", start)
        region = text[start:end if end >= 0 else len(text)]
        base_line = text.count("\n", 0, start) + 1
        for rm in SCHEMA_ROW_RE.finditer(region):
            line = base_line + region.count("\n", 0, rm.start())
            strings = SCHEMA_STR_RE.findall(rm.group(1))
            if len(strings) != SCHEMA_ARITY[kind]:
                findings.append(Finding(
                    src.rel, line, "metrics-schema",
                    f"malformed {kind} row: expected "
                    f"{SCHEMA_ARITY[kind]} leading string literals, "
                    f"found {len(strings)}"))
                continue
            rows.append(SchemaRow(kind, strings, line))
    return rows, findings


def check_metrics_schema(paths, selected_struct):
    findings = []
    metrics_src = load_source(paths["metrics_header"])
    schema_src = load_source(paths["schema"])
    emitter_srcs = [load_source(p) for p in paths["emitters"]]
    fp_src = load_source(paths["fingerprint"])

    # 1. struct fields
    fields = {}
    model, _decls = parse_file(metrics_src)
    for info in model.classes:
        if info.name == selected_struct:
            for mem in info.members:
                if mem.kind == "field":
                    fields.setdefault(mem.name, mem.line)
    if not fields:
        findings.append(Finding(
            metrics_src.rel, 1, "metrics-schema",
            f"struct {selected_struct} not found"))
        return findings

    # 2. schema rows
    rows, row_findings = parse_schema_tables(schema_src)
    findings.extend(row_findings)

    def row_field(row):
        if row.kind == "CompositeColumnSpec":
            return row.strings[2]
        if row.kind == "InternalMetricSpec":
            return row.strings[0]
        return row.strings[1]

    def row_fingerprint(row):
        if row.kind == "StringColumnSpec":
            return None
        if row.kind == "CompositeColumnSpec":
            return row.strings[3]
        if row.kind == "InternalMetricSpec":
            return row.strings[1]
        return row.strings[2]

    # 3. emitter bodies
    bodies = {}
    for esrc in emitter_srcs:
        emodel, _ = parse_file(esrc)
        for fn in emodel.functions:
            if fn.name in ("resultsToJson", "resultsToCsv"):
                raw = "\n".join(
                    esrc.raw_lines[fn.sig_line - 1:fn.end])
                bodies.setdefault(fn.name, (esrc, fn.sig_line, raw))
    for emitter in ("resultsToJson", "resultsToCsv"):
        if emitter not in bodies:
            findings.append(Finding(
                emitter_srcs[0].rel, 1, "metrics-schema",
                f"emitter '{emitter}' not found in "
                f"{', '.join(e.rel for e in emitter_srcs)}"))
    if len(bodies) < 2:
        return findings
    fp_text = "\n".join(fp_src.raw_lines)

    def emitted(body_raw, word, table_symbol):
        if re.search(rf"\b{re.escape(word)}\b", body_raw):
            return True
        return re.search(rf"\b{table_symbol}\b", body_raw) is not None

    prefix = "metrics."
    covered = set()
    for row in rows:
        f = row_field(row)
        if f.startswith(prefix):
            covered.add(f[len(prefix):].split(".")[0])

    # struct -> schema
    for fname, line in sorted(fields.items(),
                              key=lambda kv: kv[1]):
        if fname not in covered:
            findings.append(Finding(
                metrics_src.rel, line, "metrics-schema",
                f"{selected_struct} field '{fname}' has no row in any "
                f"schema table ({schema_src.rel}); add a column, "
                "composite, or internal-metric row"))

    json_raw = bodies["resultsToJson"][2]
    csv_raw = bodies["resultsToCsv"][2]
    for row in rows:
        f = row_field(row)
        # schema -> struct
        if f.startswith(prefix):
            member = f[len(prefix):].split(".")[0]
            if member not in fields:
                findings.append(Finding(
                    schema_src.rel, row.line, "metrics-schema",
                    f"schema row names '{f}' but {selected_struct} "
                    f"has no field '{member}'"))
        # schema -> fingerprint
        fp = row_fingerprint(row)
        if fp is not None:
            if not fp:
                if f.startswith(prefix):
                    findings.append(Finding(
                        schema_src.rel, row.line, "metrics-schema",
                        f"schema row for '{f}' has an empty "
                        "fingerprint token; every SimMetrics-backed "
                        "row must be covered by the differential "
                        "fingerprint"))
            elif fp not in fp_text:
                findings.append(Finding(
                    schema_src.rel, row.line, "metrics-schema",
                    f"fingerprint token '{fp}' for '{f}' does not "
                    f"appear in {fp_src.rel}"))
        # schema -> emitters
        if row.kind in ("MetricColumnSpec", "StringColumnSpec"):
            symbol = ("metricColumns" if row.kind == "MetricColumnSpec"
                      else "stringColumns")
            column = row.strings[0]
            for name, raw in (("resultsToJson", json_raw),
                              ("resultsToCsv", csv_raw)):
                if not emitted(raw, column, symbol):
                    findings.append(Finding(
                        schema_src.rel, row.line, "metrics-schema",
                        f"column '{column}' is not emitted by "
                        f"{name}"))
        elif row.kind == "CompositeColumnSpec":
            csv_col, json_key = row.strings[0], row.strings[1]
            if not re.search(rf"\b{re.escape(csv_col)}\b", csv_raw):
                findings.append(Finding(
                    schema_src.rel, row.line, "metrics-schema",
                    f"composite CSV column '{csv_col}' is not emitted "
                    "by resultsToCsv"))
            if not re.search(rf"\b{re.escape(json_key)}\b", json_raw):
                findings.append(Finding(
                    schema_src.rel, row.line, "metrics-schema",
                    f"composite JSON key '{json_key}' is not emitted "
                    "by resultsToJson"))
    return findings


# ---------------------------------------------------------------------------
# param-docs: core::specParams() registry <-> docs
# ---------------------------------------------------------------------------

PARAM_DECL_RE = re.compile(r"\bparameter\(\s*\"([^\"]+)\"")
PARAM_ALIAS_RE = re.compile(r"\.alias\(\s*\"([^\"]+)\"\s*\)")
FENCE_RE = re.compile(r"^\s*```")
KV_RE = re.compile(r"(?<![\w.:=<-])([A-Za-z][A-Za-z0-9-]*)=")

# Keys whose arguments are free-form name=value pairs (tenant names),
# exempt from the undeclared-key scan on that line.
FREEFORM_KV_KEYS = {"mix"}


def check_param_docs(paths):
    findings = []
    params_src = load_source(paths["params"])
    doc_srcs = [load_source(p) for p in paths["docs"]]

    declared = {}
    for lineno, line in enumerate(params_src.raw_lines, start=1):
        for pat in (PARAM_DECL_RE, PARAM_ALIAS_RE):
            for m in pat.finditer(line):
                declared.setdefault(m.group(1), lineno)
    if not declared:
        findings.append(Finding(
            params_src.rel, 1, "param-docs",
            "no parameter(...) declarations found"))
        return findings

    doc_texts = [(d, "\n".join(d.raw_lines)) for d in doc_srcs]
    for key, lineno in sorted(declared.items(),
                              key=lambda kv: (kv[1], kv[0])):
        pat = re.compile(rf"(?<![\w-]){re.escape(key)}(?![\w-])")
        if not any(pat.search(text) for _d, text in doc_texts):
            names = ", ".join(d.rel for d in doc_srcs)
            findings.append(Finding(
                params_src.rel, lineno, "param-docs",
                f"spec key '{key}' is not documented in {names}"))

    for dsrc in doc_srcs:
        # mode: None = outside fences, "head" = fence opened and the
        # first content line decides, "spec" = validating an
        # `experiment v1` example, "ignore" = some other fenced block
        mode = None
        for lineno, line in enumerate(dsrc.raw_lines, start=1):
            if FENCE_RE.match(line):
                mode = None if mode is not None else "head"
                continue
            if mode is None or mode == "ignore":
                continue
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if mode == "head":
                mode = ("spec" if stripped.startswith("experiment v1")
                        else "ignore")
                continue
            tokens = stripped.split()
            head = tokens[0]
            if head not in declared:
                findings.append(Finding(
                    dsrc.rel, lineno, "param-docs",
                    f"doc example uses undeclared spec key '{head}'"))
                continue
            if head in FREEFORM_KV_KEYS:
                continue
            for m in KV_RE.finditer(stripped):
                k = m.group(1)
                if k not in declared:
                    findings.append(Finding(
                        dsrc.rel, lineno, "param-docs",
                        f"doc example uses undeclared spec key "
                        f"'{k}'"))
    return findings


# ---------------------------------------------------------------------------
# bench-docs: bench binaries <-> README bench table
# ---------------------------------------------------------------------------


def check_bench_docs(paths):
    findings = []
    bench_dir = paths["bench_dir"]
    readme_src = load_source(paths["readme"])
    readme_text = "\n".join(readme_src.raw_lines)
    if not bench_dir.is_dir():
        return findings
    for cpp in sorted(bench_dir.glob("*.cpp")):
        if cpp.stem.startswith("bench_common"):
            continue
        binary = f"bench_{cpp.stem}"
        if not re.search(rf"\b{re.escape(binary)}\b", readme_text):
            rel = cpp.resolve()
            try:
                rel = rel.relative_to(REPO_ROOT).as_posix()
            except ValueError:
                rel = cpp.as_posix()
            findings.append(Finding(
                rel, 1, "bench-docs",
                f"bench binary '{binary}' has no row in "
                f"{readme_src.rel} (bench table)"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def analyze(files, selected, paths, metrics_struct):
    findings = []
    sources = {}

    def add(finding):
        src = sources.get(finding.path)
        if src is not None and src.allowed(finding.line,
                                           finding.check):
            return
        findings.append(finding)

    models = []
    for path in files:
        src = load_source(path)
        sources[src.rel] = src
        if path.suffix in helix_lint.SOURCE_SUFFIXES:
            models.append(parse_file(src))

    artifact_srcs = []
    if "metrics-schema" in selected:
        artifact_srcs += [paths["metrics_header"], paths["schema"],
                          paths["fingerprint"]] + paths["emitters"]
    if "param-docs" in selected:
        artifact_srcs += [paths["params"]] + paths["docs"]
    if "bench-docs" in selected:
        artifact_srcs.append(paths["readme"])
        if paths["bench_dir"].is_dir():
            # load the bench sources so allow() directives in them
            # can suppress bench-docs findings
            artifact_srcs.extend(sorted(
                paths["bench_dir"].glob("*.cpp")))
    for path in artifact_srcs:
        if not path.exists():
            print(f"error: {path}: file not found", file=sys.stderr)
            return None
        src = load_source(path)
        sources.setdefault(src.rel, src)

    if "suppression" in selected:
        for src in sources.values():
            findings.extend(src.directive_findings)

    if any(c in selected for c in MODEL_CHECKS):
        scoped = [(m, d) for (m, d) in models
                  if m.src.in_scope(THREAD_CONTEXT_PREFIXES)]
        ctx = ContextModel(scoped)
        if "thread-context" in selected:
            for f in ctx.check_thread_context():
                add(f)
        if "annotation-coverage" in selected:
            for f in ctx.check_annotation_coverage():
                add(f)
    if "metrics-schema" in selected:
        for f in check_metrics_schema(paths, metrics_struct):
            add(f)
    if "param-docs" in selected:
        for f in check_param_docs(paths):
            add(f)
    if "bench-docs" in selected:
        for f in check_bench_docs(paths):
            add(f)

    # drop exact duplicates (e.g. one line with two identical refs)
    seen = set()
    unique = []
    for f in findings:
        key = (f.path, f.line, f.check, f.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    return unique, len(sources)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="helix_analyze.py",
        description="Call-graph thread-context and cross-artifact "
                    "schema checks for the helix tree.")
    parser.add_argument("files", nargs="*", help="files to analyze")
    parser.add_argument("--all", action="store_true",
                        help="analyze src/, tests/, bench/")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="derive the file list from a "
                             "compile_commands.json")
    parser.add_argument("--checks", metavar="ID[,ID...]",
                        help="run only the named checks")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check registry and exit")
    parser.add_argument("--metrics-header",
                        default="src/sim/simulator.h",
                        help="header declaring the metrics struct")
    parser.add_argument("--metrics-struct", default="SimMetrics",
                        help="name of the metrics struct")
    parser.add_argument("--schema", default="src/exp/schema.cpp",
                        help="schema table translation unit")
    parser.add_argument("--emitters", default="src/exp/experiment.cpp",
                        help="comma-separated emitter files")
    parser.add_argument("--fingerprint",
                        default="tests/test_sim_differential.cpp",
                        help="differential fingerprint source")
    parser.add_argument("--params", default="src/core/params.cpp",
                        help="spec parameter registry source")
    parser.add_argument("--docs",
                        default="docs/FILE_FORMATS.md,"
                                "docs/SCENARIOS.md",
                        help="comma-separated spec documentation files")
    parser.add_argument("--readme", default="README.md",
                        help="README carrying the bench table")
    parser.add_argument("--bench-dir", default="bench",
                        help="directory of bench sources")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check_id in sorted(CHECKS):
            print(f"{check_id}: {CHECKS[check_id]}")
        return 0

    selected = set(CHECKS)
    if args.checks:
        selected = set(args.checks.split(","))
        unknown = selected - set(CHECKS)
        if unknown:
            print(f"error: unknown check(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        selected.add("suppression")

    files = [Path(f) for f in args.files]
    if args.all:
        files.extend(helix_lint.discover_all())
    if args.compile_commands:
        files.extend(helix_lint.discover_compile_commands(
            Path(args.compile_commands)))
    if not files and any(c in selected for c in MODEL_CHECKS) \
            and not args.checks:
        print("error: no input files (use --all, --compile-commands, "
              "or list files)", file=sys.stderr)
        return 2

    def repo_path(p):
        path = Path(p)
        return path if path.is_absolute() else REPO_ROOT / path

    paths = {
        "metrics_header": repo_path(args.metrics_header),
        "schema": repo_path(args.schema),
        "emitters": [repo_path(p)
                     for p in args.emitters.split(",") if p],
        "fingerprint": repo_path(args.fingerprint),
        "params": repo_path(args.params),
        "docs": [repo_path(p) for p in args.docs.split(",") if p],
        "readme": repo_path(args.readme),
        "bench_dir": repo_path(args.bench_dir),
    }

    seen = set()
    unique_files = []
    for path in files:
        if str(path) in seen:
            continue
        seen.add(str(path))
        if not path.exists():
            print(f"error: {path}: file not found", file=sys.stderr)
            return 2
        unique_files.append(path)

    result = analyze(unique_files, selected, paths,
                     args.metrics_struct)
    if result is None:
        return 2
    findings, nfiles = result
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s) in {nfiles} file(s)",
              file=sys.stderr)
        return 1
    print(f"helix-analyze: {nfiles} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
