#!/usr/bin/env python3
"""helix-lint: project-specific determinism and API-hardening checks.

The repo's load-bearing guarantee is byte-identical metrics and
emitter output across thread counts, repair-vs-cold flow solves, and
spec-vs-direct engine paths. The golden tests enforce that guarantee
dynamically; this linter enforces the coding rules that keep it true
statically, at CI time (see docs/ARCHITECTURE.md "Determinism
invariants" and docs/DEVELOPMENT.md for the workflow).

Checks (``--list-checks`` for the one-liners):

  raw-random             no rand()/std::random_device/mt19937/time()/
                         wall-clock outside src/util/random.* and the
                         whitelisted budget-timing files
  unordered-iter         no iteration over std::unordered_{map,set}
                         in src/ or bench/ (materialize sorted first)
  hot-path-std-function  no std::function in src/sim/ (the tagged-
                         union Event regression class from PR 2)
  parse-error-threading  every *FromString parser must have an
                         overload threading io::ParseError
  float-eq               no floating-point ==/!= outside tolerance
                         helpers
  param-registry         spec-parser key/tag comparisons must name
                         keys declared in core::specParams()
  self-include-first     a .cpp file's first include is its own header
  unused-include         no quoted project includes whose declarations
                         are never referenced
  suppression            allow() directives must name a known check
                         and carry a justification

Findings print as ``path:line: [check-id] message``. A finding is
suppressed only by a comment on the same line or the line above::

    // helix-lint: allow(<check-id>) <justification>

The justification string is mandatory; an empty one is itself a
finding. A fixture file may carry ``// helix-lint: treat-as(<path>)``
in its first lines to opt into the path-scoped rules of ``<path>``
(used by tests/data/lint/).

Exit codes: 0 clean, 1 findings, 2 usage/IO error.

Usage:
  tools/helix_lint.py --all
  tools/helix_lint.py --compile-commands build/compile_commands.json
  tools/helix_lint.py [--checks id,id] file.cpp ...
"""

import argparse
import json
import multiprocessing
import os
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# Check registry
# ---------------------------------------------------------------------------

CHECKS = {
    "raw-random": (
        "unseeded randomness or wall-clock reads outside the seeded "
        "RNG and whitelisted timing utilities"
    ),
    "unordered-iter": (
        "iteration over std::unordered_map/unordered_set in "
        "determinism-critical code (materialize sorted first)"
    ),
    "hot-path-std-function": (
        "std::function in the simulator hot path (use trivially-"
        "copyable tagged unions and reused batch storage)"
    ),
    "parse-error-threading": (
        "*FromString parser without an io::ParseError-threading "
        "overload"
    ),
    "float-eq": (
        "floating-point ==/!= outside tolerance helpers"
    ),
    "param-registry": (
        "spec-parser comparison against a key not declared in the "
        "core::specParams() registry (src/core/params.cpp)"
    ),
    "self-include-first": (
        "a .cpp file must include its own header first"
    ),
    "unused-include": (
        "quoted project include whose declarations are never "
        "referenced"
    ),
    "suppression": (
        "malformed allow() directive (unknown check-id or missing "
        "justification)"
    ),
}

# Files implementing the seeded RNG: the only place raw generator
# primitives may live.
RNG_WHITELIST = {"src/util/random.h", "src/util/random.cpp"}

# Budget/wall-timing utilities: the only src/ files that may read
# std::chrono::steady_clock (planner search budgets, runner wall time).
# steady_clock feeds *reported* timings and budget cutoffs, never
# metric values, so these sites cannot break byte-identity; everything
# else in src/ must stay clock-free.
TIMING_WHITELIST = {
    "src/exp/experiment.cpp",
    "src/milp/branch_and_bound.cpp",
    "src/placement/helix_planner.cpp",
    "src/placement/partitioned_planner.cpp",
    "src/placement/portfolio.cpp",
}

# Path prefixes where the determinism-critical checks apply.
DETERMINISM_PREFIXES = ("src/", "bench/")
SIM_HOT_PATH_PREFIXES = ("src/sim/",)
PARSER_PREFIXES = ("src/",)

DIRECTIVE_RE = re.compile(
    r"//\s*helix-lint:\s*(allow|treat-as)\(([^)]*)\)\s*(.*)$"
)

FLOAT_LITERAL_RE = re.compile(
    r"^[-+]?(\d+\.\d*([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?"
    r"|\d+[eE][-+]?\d+)[fFlL]?$"
)


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# ---------------------------------------------------------------------------
# Source model: comment/string stripping + directives
# ---------------------------------------------------------------------------

class SourceFile:
    """One translation unit: raw lines, stripped lines, directives."""

    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel  # repo-relative display/display+scoping path
        self.scope = rel  # path used for path-scoped rules
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.split("\n")
        self.stripped_lines = self._strip(self.raw_lines)
        self.code = "\n".join(self.stripped_lines)
        # lineno -> (check-id, justification)
        self.allows = {}
        self.directive_findings = []
        self._directives()

    @staticmethod
    def _strip(lines):
        """Blank out comments and string/char literal contents."""
        out = []
        in_block = False
        for line in lines:
            res = []
            i = 0
            n = len(line)
            while i < n:
                if in_block:
                    end = line.find("*/", i)
                    if end < 0:
                        i = n
                    else:
                        in_block = False
                        i = end + 2
                    continue
                ch = line[i]
                nxt = line[i + 1] if i + 1 < n else ""
                if ch == "/" and nxt == "/":
                    break
                if ch == "/" and nxt == "*":
                    in_block = True
                    i += 2
                    continue
                if ch == '"' or ch == "'":
                    quote = ch
                    res.append(quote)
                    i += 1
                    while i < n:
                        if line[i] == "\\":
                            i += 2
                            continue
                        if line[i] == quote:
                            break
                        i += 1
                    res.append(quote)
                    i += 1
                    continue
                res.append(ch)
                i += 1
            out.append("".join(res))
        return out

    def _directives(self):
        for lineno, line in enumerate(self.raw_lines, start=1):
            m = DIRECTIVE_RE.search(line)
            if not m:
                continue
            kind, arg, tail = m.group(1), m.group(2).strip(), m.group(3)
            if kind == "treat-as":
                if lineno <= 5 and arg:
                    self.scope = arg
                continue
            justification = tail.strip()
            if arg not in CHECKS:
                self.directive_findings.append(Finding(
                    self.rel, lineno, "suppression",
                    f"allow() names unknown check '{arg}'"))
                continue
            if not justification:
                self.directive_findings.append(Finding(
                    self.rel, lineno, "suppression",
                    f"allow({arg}) requires a justification string"))
                continue
            self.allows[lineno] = self.allows.get(lineno, set())
            self.allows[lineno].add(arg)

    def allowed(self, lineno, check):
        """Suppressed by an allow() on this line or the line above."""
        for ln in (lineno, lineno - 1):
            if check in self.allows.get(ln, set()):
                return True
        return False

    def in_scope(self, prefixes):
        return self.scope.startswith(prefixes)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

RAW_RANDOM_PATTERNS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"),
     "std::default_random_engine"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(0|NULL|nullptr)?\s*\)"),
     "time()"),
    (re.compile(r"\bstd::time\s*\("), "std::time()"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
    (re.compile(r"\b(localtime|gmtime)\s*\("), "calendar time"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
]
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")


def check_raw_random(src: SourceFile):
    if src.scope in RNG_WHITELIST:
        return
    in_src = src.scope.startswith("src/")
    for lineno, line in enumerate(src.stripped_lines, start=1):
        for pattern, what in RAW_RANDOM_PATTERNS:
            if pattern.search(line):
                yield Finding(
                    src.rel, lineno, "raw-random",
                    f"{what} breaks run-to-run determinism; draw from "
                    "the seeded helix::Rng (src/util/random.h)")
        if in_src and src.scope not in TIMING_WHITELIST \
                and STEADY_CLOCK_RE.search(line):
            yield Finding(
                src.rel, lineno, "raw-random",
                "steady_clock outside the whitelisted timing "
                "utilities; metric values must not depend on wall "
                "time")


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_VAR_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(\w+)\s*[;({=\[]")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;]*\bunordered_")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*(?:\w+\.)*(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?(?:begin|end|rbegin)\s*\(")


def check_unordered_iter(src: SourceFile):
    if not src.in_scope(DETERMINISM_PREFIXES):
        return
    names = set()
    aliases = set()
    for line in src.stripped_lines:
        for m in UNORDERED_VAR_RE.finditer(line):
            names.add(m.group(1))
        for m in UNORDERED_ALIAS_RE.finditer(line):
            aliases.add(m.group(1))
    if aliases:
        alias_var = re.compile(
            r"\b(?:" + "|".join(sorted(aliases)) +
            r")\s*(?:<[^;]*>)?\s+(\w+)\s*[;({=\[]")
        for line in src.stripped_lines:
            for m in alias_var.finditer(line):
                names.add(m.group(1))
    if not names:
        return
    for lineno, line in enumerate(src.stripped_lines, start=1):
        hits = set()
        for m in RANGE_FOR_RE.finditer(line):
            if m.group(1) in names:
                hits.add(m.group(1))
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in names:
                hits.add(m.group(1))
        for name in sorted(hits):
            yield Finding(
                src.rel, lineno, "unordered-iter",
                f"iteration over unordered container '{name}' has "
                "implementation-defined order; materialize into a "
                "sorted vector first")


STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")


def check_hot_path_std_function(src: SourceFile):
    if not src.in_scope(SIM_HOT_PATH_PREFIXES):
        return
    for lineno, line in enumerate(src.stripped_lines, start=1):
        if STD_FUNCTION_RE.search(line):
            yield Finding(
                src.rel, lineno, "hot-path-std-function",
                "std::function in the simulator hot path allocates "
                "per event; use the trivially-copyable tagged-union "
                "Event / reused batch storage (PR 2 regression class)")


FROMSTRING_RE = re.compile(r"\b(\w+FromString)\s*\(")


def _fromstring_declarations(src: SourceFile):
    """Yield (name, signature_text, lineno) for declaration sites."""
    lines = src.stripped_lines
    for idx, line in enumerate(lines):
        for m in FROMSTRING_RE.finditer(line):
            prefix = line[:m.start()]
            if prefix.rstrip().endswith("::"):
                continue  # qualified call like io::fooFromString(...)
            if re.search(r"(=|\breturn\b|[(!,])", prefix):
                continue  # expression context: call, not declaration
            # Accumulate the parameter list across lines.
            depth = 0
            sig = []
            pos = m.end() - 1
            row = idx
            text = line
            while row < len(lines):
                while pos < len(text):
                    ch = text[pos]
                    sig.append(ch)
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    pos += 1
                if depth == 0 and sig and sig[-1] == ")":
                    break
                row += 1
                pos = 0
                text = lines[row] if row < len(lines) else ""
                if row >= len(lines):
                    break
            yield m.group(1), "".join(sig), idx + 1


def check_parse_error_threading(src: SourceFile):
    if not src.in_scope(PARSER_PREFIXES):
        return
    decls = list(_fromstring_declarations(src))
    if not decls:
        return
    threading = {name for name, sig, _ in decls if "ParseError" in sig}
    for name, sig, lineno in decls:
        if name in threading:
            continue
        yield Finding(
            src.rel, lineno, "parse-error-threading",
            f"{name} has no io::ParseError-threading overload; "
            "parsers must report line-accurate errors")


FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)")
COMPARE_RE = re.compile(
    r"([\w.\->\[\]]+(?:\(\))?)\s*(==|!=)\s*([-+]?[\w.\->\[\]]+(?:\(\))?)")


def _terminal_identifier(operand):
    operand = operand.rstrip("()")
    for sep in ("->", "."):
        if sep in operand:
            operand = operand.rsplit(sep, 1)[1]
    operand = operand.lstrip("+-")
    return operand


def check_float_eq(src: SourceFile):
    if not src.in_scope(DETERMINISM_PREFIXES):
        return
    float_names = set()
    for line in src.stripped_lines:
        for m in FLOAT_DECL_RE.finditer(line):
            float_names.add(m.group(1))
    for lineno, line in enumerate(src.stripped_lines, start=1):
        if re.match(r"\s*#", line):
            continue  # preprocessor
        for m in COMPARE_RE.finditer(line):
            lhs, op, rhs = m.group(1), m.group(2), m.group(3)
            floaty = False
            for operand in (lhs, rhs):
                stripped = operand.lstrip("+-")
                if FLOAT_LITERAL_RE.match(stripped):
                    floaty = True
                if _terminal_identifier(operand) in float_names:
                    floaty = True
            if floaty:
                yield Finding(
                    src.rel, lineno, "float-eq",
                    f"floating-point '{op}' compares exact bit "
                    "patterns; use a tolerance helper or justify "
                    "with an allow()")


# The experiment-spec parser surface: every knob these files compare a
# directive/option token against must come from core::specParams(), so
# new knobs cannot bypass the registry's range checks, usage strings,
# and the pinned "(known: ...)" error lists.
PARAM_REGISTRY_PREFIXES = ("src/io/spec", "src/exp/spec")
PARAM_KEY_VAR_NAMES = {"key", "tag"}
# `key == "warmup"` / `"warmup" == key` (and !=), on raw lines: the
# stripped view blanks string-literal contents.
PARAM_KEY_CMP_RE = re.compile(
    r'([A-Za-z_][\w.>()-]*)\s*(?:==|!=)\s*"([a-z][a-z0-9-]*)"'
    r'|"([a-z][a-z0-9-]*)"\s*(?:==|!=)\s*([A-Za-z_][\w.>()-]*)')
PARAM_DECL_RE = re.compile(r'\bparameter\(\s*"([^"]+)"')
PARAM_ALIAS_RE = re.compile(r'\.alias\(\s*"([^"]+)"\s*\)')

_DECLARED_KEYS_CACHE = None


def _declared_spec_keys():
    """Keys and aliases declared in core::specParams()."""
    global _DECLARED_KEYS_CACHE
    if _DECLARED_KEYS_CACHE is None:
        try:
            text = (REPO_ROOT / "src" / "core" / "params.cpp").read_text(
                encoding="utf-8", errors="replace")
        except OSError:
            text = ""
        _DECLARED_KEYS_CACHE = set(PARAM_DECL_RE.findall(text)) | \
            set(PARAM_ALIAS_RE.findall(text))
    return _DECLARED_KEYS_CACHE


def check_param_registry(src: SourceFile):
    if not src.in_scope(PARAM_REGISTRY_PREFIXES):
        return
    declared = _declared_spec_keys()
    if not declared:
        return  # registry source missing; nothing to compare against
    for lineno, line in enumerate(src.raw_lines, start=1):
        code = line.split("//", 1)[0]
        for m in PARAM_KEY_CMP_RE.finditer(code):
            var = m.group(1) or m.group(4)
            literal = m.group(2) or m.group(3)
            if _terminal_identifier(var) not in PARAM_KEY_VAR_NAMES:
                continue
            if literal in declared:
                continue
            yield Finding(
                src.rel, lineno, "param-registry",
                f"spec key '{literal}' is parsed ad-hoc; declare it "
                "in core::specParams() (src/core/params.cpp) so its "
                "range, usage, and the pinned known-key lists stay "
                "accurate")


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]')

# Directories whose headers are included relative to themselves.
INCLUDE_ROOTS = ("src", "bench")


def _resolve_include(target):
    for root in INCLUDE_ROOTS:
        candidate = REPO_ROOT / root / target
        if candidate.exists():
            return candidate, f"{root}/{target}"
    candidate = REPO_ROOT / target
    if candidate.exists():
        return candidate, target
    return None, None


def _expected_self_include(scope):
    """Project-relative self-header include text for a .cpp, if any."""
    path = Path(scope)
    if path.suffix != ".cpp":
        return None
    header = path.with_suffix(".h")
    if not (REPO_ROOT / header).exists():
        return None
    parts = header.parts
    if parts and parts[0] in INCLUDE_ROOTS:
        return str(Path(*parts[1:]))
    return str(header)


def check_self_include_first(src: SourceFile):
    expected = _expected_self_include(src.scope)
    if expected is None:
        return
    # Include targets live inside string quotes, so match the raw
    # lines (the stripped view blanks literal contents).
    for lineno, line in enumerate(src.raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if m.group(1) == '"' and m.group(2) == expected:
            return
        yield Finding(
            src.rel, lineno, "self-include-first",
            f'first include must be the file\'s own header '
            f'"{expected}" so the header is proven self-contained')
        return


_HEADER_SYMBOLS_CACHE = {}

SYMBOL_PATTERNS = [
    re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)"),
    re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)"),
    re.compile(r"\busing\s+([A-Za-z_]\w*)\s*="),
    re.compile(r"\btypedef\s+[^;]*?\b(\w+)\s*;"),
    re.compile(r"#\s*define\s+([A-Za-z_]\w*)"),
    re.compile(r"\b(k[A-Z]\w*)\b"),
    re.compile(r"^[\w:<>,&*\s]+?\b([A-Za-z_]\w*)\s*\(", re.MULTILINE),
]


def _header_symbols(path: Path):
    key = str(path)
    if key in _HEADER_SYMBOLS_CACHE:
        return _HEADER_SYMBOLS_CACHE[key]
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        _HEADER_SYMBOLS_CACHE[key] = set()
        return set()
    stripped = "\n".join(SourceFile._strip(text.split("\n")))
    # [[nodiscard]] etc. would hide declarations from the line-anchored
    # free-function pattern.
    stripped = re.sub(r"\[\[[^\]]*\]\]\s*", "", stripped)
    symbols = set()
    for pattern in SYMBOL_PATTERNS:
        symbols.update(pattern.findall(stripped))
    symbols.discard("")
    _HEADER_SYMBOLS_CACHE[key] = symbols
    return symbols


def check_unused_include(src: SourceFile):
    expected_self = _expected_self_include(src.scope)
    include_lines = []
    for lineno, line in enumerate(src.raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m and m.group(1) == '"':
            include_lines.append((lineno, m.group(2)))
    if not include_lines:
        return
    body_words = set(re.findall(r"[A-Za-z_]\w*", src.code))
    for lineno, target in include_lines:
        if target == expected_self:
            continue
        resolved, _ = _resolve_include(target)
        if resolved is None:
            continue  # not a project header we can inspect
        symbols = _header_symbols(resolved)
        if symbols and not (symbols & body_words):
            yield Finding(
                src.rel, lineno, "unused-include",
                f'"{target}" is included but none of its declarations '
                "are referenced; drop it or include what you use")


CHECK_FUNCTIONS = {
    "raw-random": check_raw_random,
    "unordered-iter": check_unordered_iter,
    "hot-path-std-function": check_hot_path_std_function,
    "parse-error-threading": check_parse_error_threading,
    "float-eq": check_float_eq,
    "param-registry": check_param_registry,
    "self-include-first": check_self_include_first,
    "unused-include": check_unused_include,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}
LINT_DIRS = ("src", "tests", "bench")
EXCLUDE_PREFIXES = ("tests/data/",)


def discover_all():
    files = []
    for top in LINT_DIRS:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(REPO_ROOT).as_posix()
            if rel.startswith(EXCLUDE_PREFIXES):
                continue
            files.append(path)
    return files


def discover_compile_commands(db_path: Path):
    try:
        entries = json.loads(db_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {db_path}: {exc}")
    files = set()
    for entry in entries:
        path = Path(entry.get("file", ""))
        if not path.is_absolute():
            path = Path(entry.get("directory", ".")) / path
        try:
            rel = path.resolve().relative_to(REPO_ROOT).as_posix()
        except ValueError:
            continue  # outside the repo (e.g. _deps)
        if rel.startswith("build") or rel.startswith(EXCLUDE_PREFIXES):
            continue
        if path.suffix in SOURCE_SUFFIXES and path.exists():
            files.add(path.resolve())
    # The database only lists translation units; fold in the headers.
    for top in ("src", "bench"):
        root = REPO_ROOT / top
        if root.is_dir():
            for path in root.rglob("*.h"):
                files.add(path)
    return sorted(files)


# Memoized source models: scanning a file twice (the fixture driver,
# or helix_analyze.py importing this module) must not re-strip it.
_SOURCE_CACHE = {}


def get_source(path: Path, rel: str) -> SourceFile:
    key = str(path)
    src = _SOURCE_CACHE.get(key)
    if src is None:
        src = SourceFile(path, rel)
        _SOURCE_CACHE[key] = src
    return src


def lint_file(path: Path, selected):
    try:
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        rel = path.as_posix()
    src = get_source(path, rel)
    findings = []
    if "suppression" in selected:
        findings.extend(src.directive_findings)
    for check_id, fn in CHECK_FUNCTIONS.items():
        if check_id not in selected:
            continue
        for finding in fn(src):
            if not src.allowed(finding.line, finding.check):
                findings.append(finding)
    return findings


def _lint_worker(args):
    """Pool worker: lint one file (Finding objects are picklable)."""
    path_str, selected = args
    return lint_file(Path(path_str), selected)


def default_jobs():
    return max(1, min(os.cpu_count() or 1, 8))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="helix_lint.py",
        description="Determinism/API lint for the helix tree.")
    parser.add_argument("files", nargs="*", help="files to lint")
    parser.add_argument("--jobs", type=int, metavar="N",
                        default=default_jobs(),
                        help="lint N files in parallel (default: "
                             "min(cpu count, 8); 1 = serial)")
    parser.add_argument("--all", action="store_true",
                        help="lint src/, tests/, bench/")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="derive the file list from a "
                             "compile_commands.json")
    parser.add_argument("--checks", metavar="ID[,ID...]",
                        help="run only the named checks")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check registry and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check_id in sorted(CHECKS):
            print(f"{check_id}: {CHECKS[check_id]}")
        return 0

    selected = set(CHECKS)
    if args.checks:
        selected = set(args.checks.split(","))
        unknown = selected - set(CHECKS)
        if unknown:
            print(f"error: unknown check(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        selected.add("suppression")

    files = [Path(f) for f in args.files]
    if args.all:
        files.extend(discover_all())
    if args.compile_commands:
        files.extend(discover_compile_commands(Path(args.compile_commands)))
    if not files:
        print("error: no input files (use --all, --compile-commands, "
              "or list files)", file=sys.stderr)
        return 2

    seen = set()
    unique = []
    for path in files:
        if str(path) in seen:
            continue
        seen.add(str(path))
        if not path.exists():
            print(f"error: {path}: file not found", file=sys.stderr)
            return 2
        unique.append(path)

    findings = []
    jobs = max(1, args.jobs)
    if jobs > 1 and len(unique) > 1:
        work = [(str(p), selected) for p in unique]
        chunk = max(1, len(work) // (jobs * 4))
        with multiprocessing.Pool(jobs) as pool:
            for result in pool.map(_lint_worker, work,
                                   chunksize=chunk):
                findings.extend(result)
    else:
        for path in unique:
            findings.extend(lint_file(path, selected))

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s) in {len(seen)} file(s)",
              file=sys.stderr)
        return 1
    print(f"helix-lint: {len(seen)} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
