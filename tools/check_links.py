#!/usr/bin/env python3
"""Link checker for the repo's Markdown docs.

Scans the given Markdown files for inline links/images
(``[text](target)``) and reference definitions (``[ref]: target``)
and verifies that every *relative* target resolves to an existing
file or directory (anchors are checked for existence of the file
only; external http(s)/mailto links are skipped). Exits non-zero
listing every broken link as ``file:line: target``.

Usage: tools/check_links.py README.md docs/*.md
"""

import re
import sys
from pathlib import Path

# Inline [text](target) — target ends at the first unmatched ')' or
# whitespace (titles like [t](x "title") are handled by the split).
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
SKIP = ("http://", "https://", "mailto:")


def targets(line: str):
    for match in INLINE.finditer(line):
        yield match.group(1)
    match = REFDEF.match(line)
    if match:
        yield match.group(1)


def check(path: Path) -> list:
    broken = []
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in targets(line):
            if target.startswith(SKIP):
                continue
            base = target.split("#", 1)[0]
            if not base:  # pure in-page anchor
                continue
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                broken.append(f"{path}:{lineno}: {target}")
    return broken


def main(argv: list) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            broken.append(f"{path}: file not found")
            continue
        broken.extend(check(path))
    for entry in broken:
        print(entry, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
