/**
 * @file
 * Streaming statistics accumulators and histograms used by the
 * simulator's metric collection and by the benchmark harnesses.
 */

#ifndef HELIX_UTIL_STATS_H
#define HELIX_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace helix {

/**
 * Accumulates samples and answers mean / stddev / min / max /
 * percentile queries. Samples are retained so exact percentiles can be
 * computed; metric volumes in Helix experiments are modest (at most a
 * few million samples).
 */
class StatAccumulator
{
  public:
    /** Add one sample. */
    void add(double value);

    /**
     * Fold @p other's samples into this accumulator. Associative and
     * order-insensitive at the byte level: the running sum is
     * recomputed over the merged samples in a canonical (sorted)
     * order, so any merge tree over the same sample multiset reports
     * bit-identical mean/sum — floating-point addition is not
     * associative, and accumulating in arrival order would make the
     * emitted digits depend on which shard merged first.
     */
    void merge(const StatAccumulator &other);

    /** Number of samples recorded so far. */
    size_t count() const { return samples.size(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Sample standard deviation; 0 when fewer than two samples. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return total; }

    /**
     * Exact percentile via linear interpolation between order
     * statistics.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Median (50th percentile). */
    double median() const { return percentile(50.0); }

    /** Discard all samples. */
    void clear();

  private:
    /** Sort the retained samples if new ones arrived since last sort. */
    void ensureSorted() const;

    mutable std::vector<double> samples;
    mutable bool sorted = true;
    double total = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with overflow/underflow buckets,
 * used for reproducing the trace-statistics figure.
 */
class Histogram
{
  public:
    /**
     * @param lo lower bound of the first bucket
     * @param hi upper bound of the last bucket
     * @param num_buckets number of equal-width buckets
     */
    Histogram(double lo, double hi, size_t num_buckets);

    /** Record one sample. */
    void add(double value);

    /**
     * Fold @p other's counts into this histogram. Both histograms
     * must share identical binning (lo, hi, bucket count). Counts are
     * integers, so the merge is exactly associative and commutative:
     * per-shard histograms combined in any order emit the same bytes.
     */
    void merge(const Histogram &other);

    /** Count in bucket @p index. */
    size_t bucketCount(size_t index) const;

    /** Inclusive lower edge of bucket @p index. */
    double bucketLow(size_t index) const;

    /** Exclusive upper edge of bucket @p index. */
    double bucketHigh(size_t index) const;

    size_t numBuckets() const { return counts.size(); }
    size_t underflow() const { return below; }
    size_t overflow() const { return above; }
    size_t totalCount() const { return total; }

    /** Render a compact ASCII bar chart (one line per bucket). */
    std::string render(size_t max_width = 50) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<size_t> counts;
    size_t below = 0;
    size_t above = 0;
    size_t total = 0;
};

} // namespace helix

#endif // HELIX_UTIL_STATS_H
