#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace helix {

void
StatAccumulator::add(double value)
{
    samples.push_back(value);
    sorted = false;
    total += value;
}

void
StatAccumulator::merge(const StatAccumulator &other)
{
    if (other.samples.empty())
        return;
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    sorted = false;
    // Canonical re-summation: summing the merged multiset in sorted
    // order makes the total a function of the samples alone, not of
    // the merge order.
    ensureSorted();
    total = 0.0;
    for (double v : samples)
        total += v;
}

double
StatAccumulator::mean() const
{
    if (samples.empty())
        return 0.0;
    return total / static_cast<double>(samples.size());
}

double
StatAccumulator::stddev() const
{
    if (samples.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double v : samples)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

double
StatAccumulator::min() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.front();
}

double
StatAccumulator::max() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.back();
}

double
StatAccumulator::percentile(double p) const
{
    HELIX_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples.empty())
        return 0.0;
    ensureSorted();
    if (samples.size() == 1)
        return samples[0];
    double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
    size_t lo_idx = static_cast<size_t>(std::floor(rank));
    size_t hi_idx = std::min(lo_idx + 1, samples.size() - 1);
    double frac = rank - static_cast<double>(lo_idx);
    return samples[lo_idx] * (1.0 - frac) + samples[hi_idx] * frac;
}

void
StatAccumulator::clear()
{
    samples.clear();
    sorted = true;
    total = 0.0;
}

void
StatAccumulator::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

Histogram::Histogram(double lo_bound, double hi_bound, size_t num_buckets)
    : lo(lo_bound), hi(hi_bound),
      width((hi_bound - lo_bound) / static_cast<double>(num_buckets)),
      counts(num_buckets, 0)
{
    HELIX_ASSERT(hi_bound > lo_bound);
    HELIX_ASSERT(num_buckets > 0);
}

void
Histogram::add(double value)
{
    ++total;
    if (value < lo) {
        ++below;
        return;
    }
    if (value >= hi) {
        ++above;
        return;
    }
    // A value in [lo, hi) can still index past the last bucket when
    // (hi - lo) / num_buckets rounds the width down (or denormalizes):
    // such samples belong to overflow, not to a silently-stretched
    // last bucket.
    double offset = (value - lo) / width;
    if (!(offset < static_cast<double>(counts.size()))) {
        ++above;
        return;
    }
    ++counts[static_cast<size_t>(offset)];
}

void
Histogram::merge(const Histogram &other)
{
    // helix-lint: allow(float-eq) merge requires bit-identical bin bounds; approximately-equal bins would misattribute counts
    HELIX_ASSERT(lo == other.lo && hi == other.hi &&
                 counts.size() == other.counts.size());
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    below += other.below;
    above += other.above;
    total += other.total;
}

size_t
Histogram::bucketCount(size_t index) const
{
    HELIX_ASSERT(index < counts.size());
    return counts[index];
}

double
Histogram::bucketLow(size_t index) const
{
    return lo + width * static_cast<double>(index);
}

double
Histogram::bucketHigh(size_t index) const
{
    return lo + width * static_cast<double>(index + 1);
}

std::string
Histogram::render(size_t max_width) const
{
    size_t peak = 1;
    for (size_t c : counts)
        peak = std::max(peak, c);
    std::ostringstream out;
    for (size_t i = 0; i < counts.size(); ++i) {
        size_t bar = counts[i] * max_width / peak;
        out << "[" << bucketLow(i) << ", " << bucketHigh(i) << ") "
            << std::string(bar, '#') << " " << counts[i] << "\n";
    }
    return out.str();
}

} // namespace helix
