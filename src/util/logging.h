/**
 * @file
 * Logging and error-reporting primitives for the Helix library.
 *
 * Follows the gem5 convention: inform() and warn() report simulation
 * status without stopping execution; fatal() aborts because of a user
 * error (bad configuration, invalid arguments); panic() aborts because
 * of an internal library bug that should never happen regardless of
 * user input.
 */

#ifndef HELIX_UTIL_LOGGING_H
#define HELIX_UTIL_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace helix {

/** Severity levels understood by the logging backend. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log-level threshold. Messages below this level are dropped.
 * Defaults to Info so debug tracing stays quiet in benches.
 */
LogLevel logThreshold();

/** Set the global log-level threshold. */
void setLogThreshold(LogLevel level);

/** Emit a formatted message at the given level (printf-style). */
void logMessage(LogLevel level, const char *fmt, ...);

/**
 * Report normal operating status the user should see.
 * Never stops execution.
 */
#define HELIX_INFORM(...) ::helix::logMessage(::helix::LogLevel::Info, \
                                              __VA_ARGS__)

/** Report a condition that might indicate a problem but is survivable. */
#define HELIX_WARN(...) ::helix::logMessage(::helix::LogLevel::Warn, \
                                            __VA_ARGS__)

/** Verbose tracing, compiled in but filtered at runtime. */
#define HELIX_DEBUG(...) ::helix::logMessage(::helix::LogLevel::Debug, \
                                             __VA_ARGS__)

/**
 * Terminate because the user asked for something invalid (bad config,
 * impossible cluster, etc.). Exits with status 1; not a library bug.
 */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...);

/**
 * Terminate because the library reached a state that should be
 * impossible (an internal invariant was violated). Calls abort() so a
 * core dump / debugger can inspect the failure.
 */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...);

#define HELIX_FATAL(...) ::helix::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define HELIX_PANIC(...) ::helix::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; panics with the condition text. */
#define HELIX_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::helix::panicImpl(__FILE__, __LINE__,                       \
                               "assertion failed: %s", #cond);           \
        }                                                                \
    } while (0)

} // namespace helix

#endif // HELIX_UTIL_LOGGING_H
