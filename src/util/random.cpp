#include "util/random.h"

#include <limits>

#include "util/logging.h"

namespace helix {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seed0(seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

Rng
Rng::fork(uint64_t stream) const
{
    // Domain-separated child seed: offset a SplitMix64 walk over the
    // construction seed by the stream id. The xor constant keeps the
    // fork domain away from the parent's own state expansion (which
    // consumes the first outputs of SplitMix64(seed0) directly), and
    // the golden-ratio stride is SplitMix64's own increment, so
    // stream k reads slot k of an independent seed sequence.
    uint64_t base = seed0 ^ 0x6a09e667f3bcc909ULL;
    SplitMix64 sm(base + stream * 0x9e3779b97f4a7c15ULL);
    return Rng(sm.next());
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::nextDouble()
{
    // 53 random bits scaled into [0, 1).
    return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    HELIX_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextInt(int64_t lo, int64_t hi)
{
    HELIX_ASSERT(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextUniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextExponential(double rate)
{
    HELIX_ASSERT(rate > 0.0);
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = std::numeric_limits<double>::min();
    return -std::log(u) / rate;
}

double
Rng::nextNormal(double mean, double stddev)
{
    // Box-Muller; one value per call keeps the stream simple and
    // deterministic.
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 <= 0.0)
        u1 = std::numeric_limits<double>::min();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(nextNormal(mu, sigma));
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        HELIX_ASSERT(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        return std::numeric_limits<size_t>::max();
    double pick = nextDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (pick < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace helix
