#include "util/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace helix {

namespace {

LogLevel g_threshold = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::fprintf(stderr, "[helix %s] ", levelName(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "[helix fatal] %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "[helix panic] %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace helix
