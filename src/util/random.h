/**
 * @file
 * Deterministic random-number generation for Helix.
 *
 * All stochastic components (trace generation, random scheduling
 * baselines, randomized tests) draw from these generators so that every
 * experiment is reproducible from a single seed. We implement
 * SplitMix64 (seeding) and Xoshiro256** (bulk generation) rather than
 * depending on std::mt19937 so the bit streams are identical across
 * standard libraries.
 */

#ifndef HELIX_UTIL_RANDOM_H
#define HELIX_UTIL_RANDOM_H

#include <cmath>
#include <cstdint>
#include <vector>

namespace helix {

/**
 * SplitMix64: tiny, high-quality 64-bit generator used to expand a
 * single seed into the state of larger generators.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Return the next 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * Xoshiro256** general-purpose generator with convenience samplers for
 * the distributions Helix needs (uniform, exponential, log-normal,
 * discrete weighted choice).
 */
class Rng
{
  public:
    /** Construct from a seed; the state is expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /**
     * Split off an independent child stream. The child's seed is
     * derived from this generator's CONSTRUCTION seed and @p stream
     * through a domain-separated SplitMix64 step, never from the
     * current state: fork(i) returns the same generator no matter how
     * many values the parent has drawn, in which order the forks
     * happen, or which thread calls it. Distinct stream ids yield
     * decorrelated sequences (per-shard streams in the parallel
     * simulator executor).
     */
    [[nodiscard]] Rng fork(uint64_t stream) const;

    /** Next raw 64-bit value. */
    [[nodiscard]] uint64_t nextU64();

    /** Uniform double in [0, 1). */
    [[nodiscard]] double nextDouble();

    /** Uniform integer in [0, bound) with rejection to avoid bias. */
    [[nodiscard]] uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    [[nodiscard]] int64_t nextInt(int64_t lo, int64_t hi);

    /** Uniform double in [lo, hi). */
    [[nodiscard]] double nextUniform(double lo, double hi);

    /** Exponential with the given rate (mean 1/rate). */
    [[nodiscard]] double nextExponential(double rate);

    /** Normal via Box-Muller. */
    [[nodiscard]] double nextNormal(double mean, double stddev);

    /** Log-normal parameterized by the underlying normal's mu/sigma. */
    [[nodiscard]] double nextLogNormal(double mu, double sigma);

    /**
     * Sample an index proportionally to the given non-negative weights.
     * @return index in [0, weights.size()), or SIZE_MAX if all weights
     *         are zero.
     */
    [[nodiscard]] size_t nextWeighted(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = nextBounded(i);
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    uint64_t s[4];
    /** Construction seed, retained so fork() is state-independent. */
    uint64_t seed0;
};

} // namespace helix

#endif // HELIX_UTIL_RANDOM_H
