/**
 * @file
 * GPU device catalog with the datasheet properties from Table 3 of the
 * paper (plus V100, used in the high-heterogeneity cluster).
 */

#ifndef HELIX_CLUSTER_GPU_H
#define HELIX_CLUSTER_GPU_H

#include <cstdint>
#include <string>
#include <vector>

namespace helix {
namespace cluster {

/** Datasheet properties of one GPU model (paper Table 3). */
struct GpuSpec
{
    std::string name;
    /** FP16 tensor throughput in TFLOPs (datasheet, as in Table 3). */
    double tflopsFp16 = 0.0;
    /** VRAM capacity in GiB. */
    double memoryGiB = 0.0;
    /** Memory bandwidth in GB/s. */
    double memBandwidthGBs = 0.0;
    /** Board power in watts (for the Table 3 dump only). */
    double powerW = 0.0;

    /** VRAM capacity in bytes. */
    int64_t
    memoryBytes() const
    {
        return static_cast<int64_t>(memoryGiB * 1024.0 * 1024.0 *
                                    1024.0);
    }
};

/** Named constructors for the GPUs referenced by the paper. */
namespace gpus {

GpuSpec h100();
GpuSpec a100_80();
GpuSpec a100_40();
GpuSpec v100();
GpuSpec l4();
GpuSpec t4();

/** All catalog entries (for the Table 3 property dump). */
std::vector<GpuSpec> all();

} // namespace gpus

} // namespace cluster
} // namespace helix

#endif // HELIX_CLUSTER_GPU_H
