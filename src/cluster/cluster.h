/**
 * @file
 * Cluster topology: compute nodes, network links, and generators for
 * the three cluster setups evaluated in the paper (Sec. 6.2).
 *
 * A cluster contains one coordinator node and N compute nodes. Network
 * connectivity is a full (N+1)x(N+1) matrix of directed links, each
 * with a bandwidth and a propagation latency; generators fill the
 * matrix from region assignments (intra-region fast, inter-region
 * slow).
 */

#ifndef HELIX_CLUSTER_CLUSTER_H
#define HELIX_CLUSTER_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/gpu.h"

namespace helix {
namespace cluster {

/** Index of a compute node within a cluster (0-based). */
using NodeIndex = int;

/** Sentinel index representing the coordinator. */
constexpr NodeIndex kCoordinator = -1;

/**
 * One compute node: one or more GPUs of a single type, aggregated into
 * a single logical device (paper Sec. 4.1: multi-GPU nodes use tensor
 * parallelism internally and are abstracted as one node).
 */
struct NodeSpec
{
    std::string name;
    GpuSpec gpu;
    int numGpus = 1;
    /** Region id used by the link generator. */
    int region = 0;

    /** Aggregate FP16 TFLOPs across the node's GPUs. */
    double totalTflops() const { return gpu.tflopsFp16 * numGpus; }

    /** Aggregate VRAM bytes across the node's GPUs. */
    int64_t totalMemoryBytes() const
    {
        return gpu.memoryBytes() * numGpus;
    }

    /** Aggregate memory bandwidth in GB/s. */
    double totalMemBandwidthGBs() const
    {
        return gpu.memBandwidthGBs * numGpus;
    }
};

/** A directed network link between two endpoints. */
struct LinkSpec
{
    /** Bandwidth in bits per second. */
    double bandwidthBps = 0.0;
    /** One-way propagation latency in seconds. */
    double latencyS = 0.0;

    double bytesPerSecond() const { return bandwidthBps / 8.0; }
};

/**
 * A heterogeneous serving cluster: coordinator + compute nodes +
 * directed link matrix.
 */
class ClusterSpec
{
  public:
    /** Add a compute node; returns its index. */
    NodeIndex addNode(NodeSpec node);

    int numNodes() const { return static_cast<int>(nodes.size()); }

    const NodeSpec &node(NodeIndex index) const;

    /**
     * Set the directed link between @p from and @p to (either may be
     * kCoordinator). Must be called after all nodes are added, or use
     * setUniformLinks()/connectRegions() helpers.
     */
    void setLink(NodeIndex from, NodeIndex to, LinkSpec link);

    /** The directed link between two endpoints. */
    const LinkSpec &link(NodeIndex from, NodeIndex to) const;

    /**
     * Fill the whole link matrix with a single bandwidth/latency
     * (homogeneous network).
     */
    void setUniformLinks(double bandwidth_bps, double latency_s);

    /**
     * Fill the link matrix from region assignments: intra-region pairs
     * get the intra link, inter-region pairs get the inter link. The
     * coordinator is placed in @p coordinator_region.
     */
    void connectRegions(LinkSpec intra, LinkSpec inter,
                        int coordinator_region = 0);

    /** Region the coordinator lives in (set by connectRegions). */
    int coordinatorRegion() const { return coordRegion; }

    /** Sum of node compute capacities in TFLOPs. */
    double totalTflops() const;

    /** One-line summary, e.g. "4xA100 + 8xL4 + 12xT4 (24 nodes)". */
    std::string summary() const;

  private:
    /** Map an endpoint (kCoordinator or node index) to a matrix row. */
    int matrixIndex(NodeIndex index) const;

    std::vector<NodeSpec> nodes;
    /** (numNodes+1)^2 links; row/col 0 is the coordinator. */
    std::vector<LinkSpec> links;
    int coordRegion = 0;
};

/** Generators for the paper's evaluated cluster configurations. */
namespace setups {

/** Gb/s to bits per second. */
constexpr double kGbps = 1e9;
/** Mb/s to bits per second. */
constexpr double kMbps = 1e6;

/**
 * Single-cluster setup (Sec. 6.3): 4 A100 + 8 L4 + 12 T4 nodes, all
 * links 10 Gb/s with ~1 ms latency.
 */
ClusterSpec singleCluster24();

/**
 * Geo-distributed setup (Sec. 6.4): three sub-clusters — (i) 4 A100,
 * (ii) 2 L4 + 8 T4, (iii) 6 L4 + 4 T4. Intra-cluster 10 Gb/s / 1 ms,
 * inter-cluster 100 Mb/s / 50 ms.
 */
ClusterSpec geoDistributed24();

/**
 * High GPU-heterogeneity setup (Sec. 6.5): 42 nodes with 7 types —
 * 4 A100, 6 V100, 8 L4, 10 T4, 4 2xL4, 6 2xT4, 4 4xT4; 10 Gb/s.
 */
ClusterSpec highHeterogeneity42();

/**
 * Small planner cluster used in Sec. 6.9 / Fig. 12: 4 L4 + 6 T4,
 * 10 Gb/s.
 */
ClusterSpec plannerCluster10();

} // namespace setups

} // namespace cluster
} // namespace helix

#endif // HELIX_CLUSTER_CLUSTER_H
