#include "cluster/cluster.h"

#include <map>
#include <sstream>

#include "util/logging.h"

namespace helix {
namespace cluster {

NodeIndex
ClusterSpec::addNode(NodeSpec node)
{
    HELIX_ASSERT(links.empty());
    nodes.push_back(std::move(node));
    return static_cast<NodeIndex>(nodes.size() - 1);
}

const NodeSpec &
ClusterSpec::node(NodeIndex index) const
{
    HELIX_ASSERT(index >= 0 && index < numNodes());
    return nodes[index];
}

int
ClusterSpec::matrixIndex(NodeIndex index) const
{
    HELIX_ASSERT(index >= kCoordinator && index < numNodes());
    return index + 1;
}

void
ClusterSpec::setLink(NodeIndex from, NodeIndex to, LinkSpec link_spec)
{
    int side = numNodes() + 1;
    if (links.empty())
        links.assign(side * side, LinkSpec{});
    links[matrixIndex(from) * side + matrixIndex(to)] = link_spec;
}

const LinkSpec &
ClusterSpec::link(NodeIndex from, NodeIndex to) const
{
    HELIX_ASSERT(!links.empty());
    int side = numNodes() + 1;
    return links[matrixIndex(from) * side + matrixIndex(to)];
}

void
ClusterSpec::setUniformLinks(double bandwidth_bps, double latency_s)
{
    int side = numNodes() + 1;
    links.assign(side * side, LinkSpec{bandwidth_bps, latency_s});
}

void
ClusterSpec::connectRegions(LinkSpec intra, LinkSpec inter,
                            int coordinator_region)
{
    coordRegion = coordinator_region;
    int side = numNodes() + 1;
    links.assign(side * side, LinkSpec{});
    auto regionOf = [&](NodeIndex idx) {
        return idx == kCoordinator ? coordRegion : nodes[idx].region;
    };
    for (NodeIndex from = kCoordinator; from < numNodes(); ++from) {
        for (NodeIndex to = kCoordinator; to < numNodes(); ++to) {
            if (from == to)
                continue;
            LinkSpec spec =
                (regionOf(from) == regionOf(to)) ? intra : inter;
            links[matrixIndex(from) * side + matrixIndex(to)] = spec;
        }
    }
}

double
ClusterSpec::totalTflops() const
{
    double total = 0.0;
    for (const auto &n : nodes)
        total += n.totalTflops();
    return total;
}

std::string
ClusterSpec::summary() const
{
    // Count nodes per (gpu type, count) signature, preserving insert
    // order for readability.
    std::vector<std::pair<std::string, int>> groups;
    for (const auto &n : nodes) {
        std::string key = (n.numGpus > 1)
                              ? std::to_string(n.numGpus) + "x" + n.gpu.name
                              : n.gpu.name;
        bool found = false;
        for (auto &[name, count] : groups) {
            if (name == key) {
                ++count;
                found = true;
            }
        }
        if (!found)
            groups.push_back({key, 1});
    }
    std::ostringstream out;
    for (size_t i = 0; i < groups.size(); ++i) {
        if (i > 0)
            out << " + ";
        out << groups[i].second << "x" << groups[i].first;
    }
    out << " (" << numNodes() << " nodes)";
    return out.str();
}

namespace setups {

namespace {

void
addNodes(ClusterSpec &cluster, const GpuSpec &gpu, int count,
         int num_gpus, int region)
{
    for (int i = 0; i < count; ++i) {
        NodeSpec node;
        std::ostringstream name;
        if (num_gpus > 1)
            name << num_gpus << "x";
        name << gpu.name << "-r" << region << "-" << i;
        node.name = name.str();
        node.gpu = gpu;
        node.numGpus = num_gpus;
        node.region = region;
        cluster.addNode(std::move(node));
    }
}

} // namespace

ClusterSpec
singleCluster24()
{
    ClusterSpec cluster;
    addNodes(cluster, gpus::a100_40(), 4, 1, 0);
    addNodes(cluster, gpus::l4(), 8, 1, 0);
    addNodes(cluster, gpus::t4(), 12, 1, 0);
    cluster.setUniformLinks(10 * kGbps, 1e-3);
    return cluster;
}

ClusterSpec
geoDistributed24()
{
    ClusterSpec cluster;
    addNodes(cluster, gpus::a100_40(), 4, 1, 0);
    addNodes(cluster, gpus::l4(), 2, 1, 1);
    addNodes(cluster, gpus::t4(), 8, 1, 1);
    addNodes(cluster, gpus::l4(), 6, 1, 2);
    addNodes(cluster, gpus::t4(), 4, 1, 2);
    cluster.connectRegions({10 * kGbps, 1e-3}, {100 * kMbps, 50e-3}, 0);
    return cluster;
}

ClusterSpec
highHeterogeneity42()
{
    ClusterSpec cluster;
    addNodes(cluster, gpus::a100_40(), 4, 1, 0);
    addNodes(cluster, gpus::v100(), 6, 1, 0);
    addNodes(cluster, gpus::l4(), 8, 1, 0);
    addNodes(cluster, gpus::t4(), 10, 1, 0);
    addNodes(cluster, gpus::l4(), 4, 2, 0);
    addNodes(cluster, gpus::t4(), 6, 2, 0);
    addNodes(cluster, gpus::t4(), 4, 4, 0);
    cluster.setUniformLinks(10 * kGbps, 1e-3);
    return cluster;
}

ClusterSpec
plannerCluster10()
{
    ClusterSpec cluster;
    addNodes(cluster, gpus::l4(), 4, 1, 0);
    addNodes(cluster, gpus::t4(), 6, 1, 0);
    cluster.setUniformLinks(10 * kGbps, 1e-3);
    return cluster;
}

} // namespace setups

} // namespace cluster
} // namespace helix
