#include "cluster/gpu.h"

namespace helix {
namespace cluster {
namespace gpus {

GpuSpec
h100()
{
    return {"H100", 1979.0, 80.0, 3350.0, 700.0};
}

GpuSpec
a100_80()
{
    return {"A100-80GB", 312.0, 80.0, 2039.0, 400.0};
}

GpuSpec
a100_40()
{
    return {"A100", 312.0, 40.0, 1555.0, 400.0};
}

GpuSpec
v100()
{
    return {"V100", 125.0, 16.0, 900.0, 300.0};
}

GpuSpec
l4()
{
    return {"L4", 242.0, 24.0, 300.0, 72.0};
}

GpuSpec
t4()
{
    return {"T4", 65.0, 16.0, 300.0, 70.0};
}

std::vector<GpuSpec>
all()
{
    return {h100(), a100_80(), a100_40(), v100(), l4(), t4()};
}

} // namespace gpus
} // namespace cluster
} // namespace helix
