#include "cluster/profiler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace helix {
namespace cluster {

Profiler::Profiler(const model::TransformerSpec &model_spec,
                   CostModelParams params)
    : spec(model_spec), cost(params)
{
    HELIX_ASSERT(spec.numLayers > 0);
}

int
Profiler::maxLayers(const NodeSpec &node) const
{
    // Weights may take at most half of usable VRAM so the other half
    // remains for KV-cache.
    double usable = cost.usableVramFraction *
                    static_cast<double>(node.totalMemoryBytes());
    double weight_budget = usable * 0.5;
    int layers = static_cast<int>(
        weight_budget / static_cast<double>(spec.layerBytes()));
    return std::min(layers, spec.numLayers);
}

int
Profiler::hardMaxLayers(const NodeSpec &node) const
{
    double usable = cost.usableVramFraction *
                    static_cast<double>(node.totalMemoryBytes());
    double kv_per_request = cost.planningContextLen *
                            spec.kvBytesPerTokenPerLayer();
    int layers = static_cast<int>(
        usable / (static_cast<double>(spec.layerBytes()) +
                  kv_per_request));
    return std::min(layers, spec.numLayers);
}

int64_t
Profiler::kvCapacityBytes(const NodeSpec &node, int layers) const
{
    double usable = cost.usableVramFraction *
                    static_cast<double>(node.totalMemoryBytes());
    double weights = static_cast<double>(spec.layerBytes()) * layers;
    double kv = usable - weights;
    return kv > 0 ? static_cast<int64_t>(kv) : 0;
}

int
Profiler::maxDecodeBatch(const NodeSpec &node, int layers) const
{
    if (layers <= 0)
        return 0;
    double kv_per_request = cost.planningContextLen *
                            spec.kvBytesPerTokenPerLayer() * layers;
    double kv = static_cast<double>(kvCapacityBytes(node, layers));
    int batch = static_cast<int>(kv / kv_per_request);
    return std::clamp(batch, 0, cost.maxBatchRequests);
}

double
Profiler::decodeIterationSeconds(const NodeSpec &node, int layers,
                                 int batch, double context_len) const
{
    HELIX_ASSERT(layers > 0 && batch > 0);
    double flops_per_token =
        spec.flopsPerTokenPerLayer() +
        spec.attentionFlopsPerToken(static_cast<int>(context_len));
    double compute = batch * layers * flops_per_token /
                     (node.totalTflops() * 1e12 * cost.mfu);
    double bw = node.totalMemBandwidthGBs() * 1e9 *
                cost.memBwEfficiency;
    double weight_read =
        static_cast<double>(spec.layerBytes()) * layers / bw;
    double kv_read = static_cast<double>(batch) * context_len *
                     spec.kvBytesPerTokenPerLayer() * layers / bw;
    return std::max(compute, weight_read + kv_read) +
           cost.iterationOverheadS;
}

double
Profiler::promptSeconds(const NodeSpec &node, int layers,
                        int num_tokens, double context_len) const
{
    HELIX_ASSERT(layers > 0 && num_tokens > 0);
    // Prompt attention runs against the average of the growing
    // context, roughly half the final context length.
    double flops_per_token =
        spec.flopsPerTokenPerLayer() +
        spec.attentionFlopsPerToken(static_cast<int>(context_len / 2));
    double compute = static_cast<double>(num_tokens) * layers *
                     flops_per_token /
                     (node.totalTflops() * 1e12 * cost.mfu);
    double bw = node.totalMemBandwidthGBs() * 1e9 *
                cost.memBwEfficiency;
    double weight_read =
        static_cast<double>(spec.layerBytes()) * layers / bw;
    return std::max(compute, weight_read) + cost.iterationOverheadS;
}

double
Profiler::decodeThroughput(const NodeSpec &node, int layers) const
{
    if (layers <= 0 || layers > hardMaxLayers(node))
        return 0.0;
    // Sustained decode batch: the reference microbatch, further
    // limited by KV headroom (a node whose weights crowd out KV can
    // only keep a few requests resident, halving again because
    // resident requests are spread across pipeline stages).
    int batch = std::min(cost.referenceDecodeBatch,
                         std::max(maxDecodeBatch(node, layers) / 2, 1));
    if (batch <= 0)
        return 0.0;
    double t = decodeIterationSeconds(node, layers, batch,
                                      cost.planningContextLen);
    return static_cast<double>(batch) / t;
}

double
Profiler::linkTokensPerSecond(const LinkSpec &link,
                              double bytes_per_token) const
{
    HELIX_ASSERT(bytes_per_token > 0.0);
    return link.bytesPerSecond() / bytes_per_token;
}

double
Profiler::activationBytes() const
{
    return static_cast<double>(spec.activationBytesPerToken());
}

double
Profiler::throughputUpperBound(const ClusterSpec &cluster) const
{
    // Per the paper, placements respect the half-VRAM rule, so the
    // bound maximizes per-node layer-throughput over j <= maxLayers.
    double layer_tokens = 0.0;
    for (int i = 0; i < cluster.numNodes(); ++i) {
        const NodeSpec &node = cluster.node(i);
        double best = 0.0;
        int k = maxLayers(node);
        for (int j = 1; j <= k; ++j)
            best = std::max(best, decodeThroughput(node, j) * j);
        layer_tokens += best;
    }
    return layer_tokens / static_cast<double>(spec.numLayers);
}

} // namespace cluster
} // namespace helix
