/**
 * @file
 * Analytic profiler: derives the quantities Helix obtains from
 * one-time hardware profiling (Sec. 4.3) — per-node inference
 * throughput T_j as a function of the number of layers held, KV-cache
 * capacity, and link token capacities — from datasheet numbers and a
 * roofline execution model.
 *
 * Execution model. One decode iteration over a batch of B requests on
 * a node holding j layers costs
 *
 *     t = max(compute, memory) + overhead
 *     compute = B * j * (2 * P_layer + attn(ctx)) / (TFLOPs * mfu)
 *     memory  = (j * layerBytes + B * ctx * kvBytes * j) / (BW * eff)
 *
 * i.e. weights and the KV-cache must be streamed from HBM once per
 * iteration while the arithmetic runs at a fraction (mfu) of peak.
 * Prompt processing is compute-bound over the full prompt length. The
 * same model drives both the planner's capacity estimates and the
 * discrete-event simulator, which is what makes planner predictions
 * and simulated throughput commensurable (mirroring the paper, where
 * both come from the same profiling pass).
 */

#ifndef HELIX_CLUSTER_PROFILER_H
#define HELIX_CLUSTER_PROFILER_H

#include <cstdint>

#include "cluster/cluster.h"
#include "model/transformer.h"

namespace helix {
namespace cluster {

/** Tunable efficiency parameters of the analytic cost model. */
struct CostModelParams
{
    /** Model FLOPs utilization for dense matmuls. */
    double mfu = 0.45;
    /** Achievable fraction of peak memory bandwidth. */
    double memBwEfficiency = 0.75;
    /** Max concurrent requests in one decode batch (vLLM-style cap). */
    int maxBatchRequests = 256;
    /**
     * Decode batch size assumed when profiling T_j for planning. In
     * pipelined operation a node receives tokens from upstream in
     * microbatches rather than as one standing batch, so sustained
     * per-iteration batches are far below the KV-capacity maximum.
     */
    int referenceDecodeBatch = 32;
    /** Per-iteration framework overhead in seconds. */
    double iterationOverheadS = 3e-3;
    /** Fraction of VRAM usable (rest is framework reserve). */
    double usableVramFraction = 0.9;
    /** Average context length assumed when sizing KV for planning. */
    double planningContextLen = 879.0; // avg prompt + avg output / 2
};

/**
 * Computes node throughput and link capacity figures for one model on
 * one cluster's hardware.
 */
class Profiler
{
  public:
    explicit Profiler(const model::TransformerSpec &model_spec,
                      CostModelParams params = {});

    const model::TransformerSpec &modelSpec() const { return spec; }
    const CostModelParams &params() const { return cost; }

    /**
     * Max layers node can hold while keeping at least half of the
     * layer weight footprint free for KV-cache (the paper reserves
     * half of GPU memory for KV in Table 1 and sizes placements so
     * "enough VRAM for KV-cache" remains).
     */
    int maxLayers(const NodeSpec &node) const;

    /**
     * Absolute max layers that fit in VRAM with at least enough KV
     * left for one request. Placements beyond maxLayers() but within
     * this limit run with a shrunken KV-cache and correspondingly low
     * throughput (how the separate-pipelines baseline squeezes a model
     * onto few nodes).
     */
    int hardMaxLayers(const NodeSpec &node) const;

    /** Bytes of VRAM left for KV-cache when holding @p layers. */
    int64_t kvCapacityBytes(const NodeSpec &node, int layers) const;

    /**
     * Largest decode batch sustainable by KV capacity at the planning
     * context length (clamped by maxBatchRequests).
     */
    int maxDecodeBatch(const NodeSpec &node, int layers) const;

    /**
     * Wall-clock seconds for one decode iteration of @p batch requests
     * with average context @p context_len on @p layers layers.
     */
    double decodeIterationSeconds(const NodeSpec &node, int layers,
                                  int batch, double context_len) const;

    /**
     * Wall-clock seconds to process @p num_tokens prompt tokens
     * (compute-bound phase) on @p layers layers.
     */
    double promptSeconds(const NodeSpec &node, int layers,
                         int num_tokens, double context_len) const;

    /**
     * T_j from the paper: steady-state decode tokens/second when the
     * node holds @p layers layers, at the KV-limited batch size.
     */
    double decodeThroughput(const NodeSpec &node, int layers) const;

    /**
     * Tokens/second a link can carry given a per-token payload of
     * @p bytes_per_token.
     */
    double linkTokensPerSecond(const LinkSpec &link,
                               double bytes_per_token) const;

    /** Payload bytes for an inter-stage activation transfer (1 token). */
    double activationBytes() const;

    /** Payload bytes for a coordinator token transfer. */
    double tokenBytes() const { return 4.0; }

    /**
     * The paper's planner upper bound: total cluster compute
     * throughput (layer-tokens/s at each node's best configuration)
     * divided by the layer count.
     */
    double throughputUpperBound(const ClusterSpec &cluster) const;

  private:
    model::TransformerSpec spec;
    CostModelParams cost;
};

} // namespace cluster
} // namespace helix

#endif // HELIX_CLUSTER_PROFILER_H
