/**
 * @file
 * Synthetic cluster generators for planner-scalability studies.
 *
 * The paper evaluates Helix on hand-built 10-42-node clusters
 * (cluster::setups); measuring how placement planners behave at
 * hundreds or thousands of nodes needs clusters no one wants to write
 * by hand. Each generator preset captures one heterogeneity regime
 * the planners must cope with:
 *
 *   homogeneous              one GPU type, one region — the regime
 *                            where uniform partitioning is optimal
 *                            and everything else must match it;
 *   two-tier                 a small strong tier (A100) plus a large
 *                            weak tier (T4), one region — the classic
 *                            "new fleet + legacy fleet" shape;
 *   long-tail-heterogeneous  GPU type and per-node GPU count drawn
 *                            from a skewed distribution (many weak
 *                            single-GPU nodes, few strong or
 *                            multi-GPU ones) — the Sec. 6.5 high
 *                            heterogeneity regime at scale;
 *   geo-distributed          nodes spread round-robin over several
 *                            regions with slow inter-region links —
 *                            the Sec. 6.4 regime at scale.
 *
 * Generation is deterministic: the same (preset, nodes, seed) triple
 * always produces the same cluster (byte-identical through
 * io::clusterToString), so generated clusters are reproducible
 * experiment inputs. The seed only matters for the presets that draw
 * from a distribution (long-tail-heterogeneous, geo-distributed).
 *
 * Entry points: `generate` builds a ClusterSpec in memory;
 * `helixctl gen-cluster <preset> --nodes N --seed S` writes the same
 * cluster as a `cluster v1` artifact; and experiment specs can name
 * generated clusters directly with the registry syntax
 * `gen:<preset>:<nodes>[:<seed>]` (see exp::clusterByName).
 * docs/FILE_FORMATS.md is the normative description of the presets.
 */

#ifndef HELIX_CLUSTER_GENERATOR_H
#define HELIX_CLUSTER_GENERATOR_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace helix {
namespace cluster {
namespace gen {

/** Parameters of one synthetic cluster. */
struct GeneratorConfig
{
    /** One of presetNames(). */
    std::string preset = "homogeneous";
    /** Number of compute nodes (>= 1). */
    int numNodes = 100;
    /** RNG seed for the randomized presets. */
    uint64_t seed = 42;
};

/**
 * The preset catalog: "homogeneous", "two-tier",
 * "long-tail-heterogeneous", "geo-distributed". Every entry generates
 * successfully for any numNodes >= 1.
 */
const std::vector<std::string> &presetNames();

/**
 * Generate the cluster described by @p config. Returns nullopt for an
 * unknown preset or numNodes < 1.
 */
std::optional<ClusterSpec> generate(const GeneratorConfig &config);

/**
 * Parse a generated-cluster registry name of the form
 * "gen:<preset>:<nodes>[:<seed>]" (e.g. "gen:two-tier:300:7"; the
 * seed defaults to 42). Returns nullopt if the name does not start
 * with "gen:" or any component is malformed; the preset is NOT
 * validated here — generate() rejects unknown presets.
 */
std::optional<GeneratorConfig> parseGeneratorName(
    const std::string &name);

/**
 * Number of regions the geo-distributed preset spreads @p num_nodes
 * over: one region per 16 nodes, clamped to [2, 8]. Exposed so tests
 * and docs stay in lockstep with the implementation.
 */
int geoRegionCount(int num_nodes);

} // namespace gen
} // namespace cluster
} // namespace helix

#endif // HELIX_CLUSTER_GENERATOR_H
