#include "cluster/generator.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

#include "util/random.h"

namespace helix {
namespace cluster {
namespace gen {

namespace {

/** Intra-region link: 10 Gb/s, 1 ms (the paper's single-cluster LAN). */
const LinkSpec kIntraLink{10 * setups::kGbps, 1e-3};
/** Inter-region link: 100 Mb/s, 50 ms (the paper's WAN, Sec. 6.4). */
const LinkSpec kInterLink{100 * setups::kMbps, 50e-3};

void
addNode(ClusterSpec &cluster, const GpuSpec &gpu, int num_gpus,
        int region, int index)
{
    NodeSpec node;
    std::ostringstream name;
    if (num_gpus > 1)
        name << num_gpus << "x";
    name << gpu.name << "-r" << region << "-" << index;
    node.name = name.str();
    node.gpu = gpu;
    node.numGpus = num_gpus;
    node.region = region;
    cluster.addNode(std::move(node));
}

ClusterSpec
homogeneous(const GeneratorConfig &config)
{
    ClusterSpec cluster;
    for (int i = 0; i < config.numNodes; ++i)
        addNode(cluster, gpus::l4(), 1, 0, i);
    cluster.setUniformLinks(kIntraLink.bandwidthBps,
                            kIntraLink.latencyS);
    return cluster;
}

ClusterSpec
twoTier(const GeneratorConfig &config)
{
    // Strong tier first: one A100 node per four nodes (at least one),
    // then the weak T4 tail.
    ClusterSpec cluster;
    int strong = std::max(1, config.numNodes / 4);
    for (int i = 0; i < config.numNodes; ++i) {
        if (i < strong)
            addNode(cluster, gpus::a100_40(), 1, 0, i);
        else
            addNode(cluster, gpus::t4(), 1, 0, i);
    }
    cluster.setUniformLinks(kIntraLink.bandwidthBps,
                            kIntraLink.latencyS);
    return cluster;
}

ClusterSpec
longTailHeterogeneous(const GeneratorConfig &config)
{
    // Skewed type mix: the weak end of the catalog dominates
    // (A100 : V100 : L4 : T4 = 1 : 2 : 4 : 8), and only the commodity
    // types come in multi-GPU boxes (1 : 2 : 4 GPUs = 6 : 3 : 1).
    ClusterSpec cluster;
    Rng rng(config.seed);
    const GpuSpec catalog[] = {gpus::a100_40(), gpus::v100(),
                               gpus::l4(), gpus::t4()};
    const std::vector<double> type_weights = {1.0, 2.0, 4.0, 8.0};
    const std::vector<double> count_weights = {6.0, 3.0, 1.0};
    const int counts[] = {1, 2, 4};
    for (int i = 0; i < config.numNodes; ++i) {
        size_t type = rng.nextWeighted(type_weights);
        int num_gpus = 1;
        if (catalog[type].name == "L4" || catalog[type].name == "T4")
            num_gpus = counts[rng.nextWeighted(count_weights)];
        addNode(cluster, catalog[type], num_gpus, 0, i);
    }
    cluster.setUniformLinks(kIntraLink.bandwidthBps,
                            kIntraLink.latencyS);
    return cluster;
}

ClusterSpec
geoDistributed(const GeneratorConfig &config)
{
    // Regions are assigned round-robin so every region ends up within
    // one node of the others; each node's GPU type is drawn from a
    // mildly heterogeneous mix (A100 : L4 : T4 = 1 : 4 : 6).
    ClusterSpec cluster;
    Rng rng(config.seed);
    int regions = geoRegionCount(config.numNodes);
    const GpuSpec catalog[] = {gpus::a100_40(), gpus::l4(),
                               gpus::t4()};
    const std::vector<double> type_weights = {1.0, 4.0, 6.0};
    for (int i = 0; i < config.numNodes; ++i) {
        size_t type = rng.nextWeighted(type_weights);
        addNode(cluster, catalog[type], 1, i % regions, i);
    }
    cluster.connectRegions(kIntraLink, kInterLink, 0);
    return cluster;
}

} // namespace

namespace {

/**
 * The single preset table: presetNames() and generate() both derive
 * from it, so a preset cannot exist in one and not the other.
 */
struct Preset
{
    const char *name;
    ClusterSpec (*build)(const GeneratorConfig &);
};

const Preset kPresets[] = {
    {"homogeneous", homogeneous},
    {"two-tier", twoTier},
    {"long-tail-heterogeneous", longTailHeterogeneous},
    {"geo-distributed", geoDistributed},
};

} // namespace

int
geoRegionCount(int num_nodes)
{
    return std::clamp(num_nodes / 16, 2, 8);
}

const std::vector<std::string> &
presetNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> collected;
        for (const Preset &preset : kPresets)
            collected.push_back(preset.name);
        return collected;
    }();
    return names;
}

std::optional<ClusterSpec>
generate(const GeneratorConfig &config)
{
    if (config.numNodes < 1)
        return std::nullopt;
    for (const Preset &preset : kPresets) {
        if (config.preset == preset.name)
            return preset.build(config);
    }
    return std::nullopt;
}

namespace {

/**
 * Strict decimal parse of a whole token (no sign, no trailing junk).
 * Deliberately local rather than io::parseU64: src/io sits above
 * src/cluster (its headers include cluster/cluster.h), so reusing it
 * here would invert the layering.
 */
bool
parseUnsigned(const std::string &token, unsigned long long &out)
{
    if (token.empty() || token[0] == '-' || token[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size())
        return false;
    out = value;
    return true;
}

} // namespace

std::optional<GeneratorConfig>
parseGeneratorName(const std::string &name)
{
    std::vector<std::string> parts;
    size_t at = 0;
    while (true) {
        size_t colon = name.find(':', at);
        if (colon == std::string::npos) {
            parts.push_back(name.substr(at));
            break;
        }
        parts.push_back(name.substr(at, colon - at));
        at = colon + 1;
    }
    if (parts.size() < 3 || parts.size() > 4 || parts[0] != "gen")
        return std::nullopt;

    GeneratorConfig config;
    config.preset = parts[1];
    unsigned long long nodes = 0;
    if (config.preset.empty() || !parseUnsigned(parts[2], nodes) ||
        nodes < 1 || nodes > static_cast<unsigned long long>(INT_MAX))
        return std::nullopt;
    config.numNodes = static_cast<int>(nodes);
    if (parts.size() == 4) {
        unsigned long long seed = 0;
        if (!parseUnsigned(parts[3], seed))
            return std::nullopt;
        config.seed = static_cast<uint64_t>(seed);
    }
    return config;
}

} // namespace gen
} // namespace cluster
} // namespace helix
