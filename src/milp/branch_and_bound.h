/**
 * @file
 * Mixed-integer linear programming via branch-and-bound.
 *
 * This module replaces the Gurobi dependency of the original Helix
 * implementation. It supports the features Helix's placement planner
 * relies on (Sec. 4.5 of the paper): warm-start hints from heuristic
 * solutions, a user-supplied objective upper bound for early stopping,
 * time budgets, and incumbent/bound reporting over time (used to
 * reproduce Fig. 12).
 */

#ifndef HELIX_MILP_BRANCH_AND_BOUND_H
#define HELIX_MILP_BRANCH_AND_BOUND_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.h"

namespace helix {
namespace milp {

/** Outcome of a MILP solve. */
enum class MilpStatus {
    /** Incumbent proved optimal (within gap tolerance). */
    Optimal,
    /** Search stopped early (time/node limit) with a feasible incumbent. */
    Feasible,
    /** Problem proved infeasible. */
    Infeasible,
    /** Search stopped with no feasible solution found. */
    Unknown,
};

/** Human-readable name of a MilpStatus. */
const char *toString(MilpStatus status);

/**
 * A mixed-integer linear program in maximization form. Wraps an
 * LpProblem and marks a subset of the variables as integral.
 */
class MilpProblem
{
  public:
    /** Add a continuous variable. @return variable index. */
    int addContinuous(double lower, double upper, double objective,
                      std::string name = "");

    /** Add a general integer variable. @return variable index. */
    int addInteger(double lower, double upper, double objective,
                   std::string name = "");

    /** Add a 0/1 variable. @return variable index. */
    int addBinary(double objective, std::string name = "");

    /** Add a linear constraint (see lp::LpProblem::addConstraint). */
    void addConstraint(std::vector<std::pair<int, double>> terms,
                       lp::Relation relation, double rhs);

    int numVariables() const { return relaxation.numVariables(); }
    int numConstraints() const { return relaxation.numConstraints(); }
    bool isIntegral(int var) const { return integral[var]; }

    /** The LP relaxation (integrality dropped). */
    const lp::LpProblem &lp() const { return relaxation; }

    /**
     * Check whether an assignment satisfies every constraint, bound,
     * and integrality requirement within @p tol.
     */
    bool isFeasible(const std::vector<double> &values,
                    double tol = 1e-6) const;

    /** Objective value of an assignment. */
    double objectiveValue(const std::vector<double> &values) const;

  private:
    lp::LpProblem relaxation;
    std::vector<bool> integral;
};

/** One (time, value) sample of solver progress, for Fig. 12. */
struct ProgressSample
{
    double seconds = 0.0;
    double incumbent = 0.0;
    double bound = 0.0;
};

/** Tunables for the branch-and-bound search. */
struct BnbConfig
{
    /** Wall-clock budget in seconds. */
    double timeLimitSeconds = 60.0;
    /** Maximum number of explored nodes. */
    long nodeLimit = 1000000;
    /** Relative optimality gap at which the search stops. */
    double relativeGap = 1e-6;
    /**
     * Known upper bound on the objective (Helix uses total cluster
     * compute divided by layer count). The solver stops as soon as the
     * incumbent is within earlyStopFraction of this bound.
     */
    std::optional<double> objectiveUpperBound;
    /** Early-stop closeness threshold against objectiveUpperBound. */
    double earlyStopFraction = 0.995;
    /**
     * Warm-start assignments (from heuristic placements). Each is
     * checked for feasibility and, if feasible, becomes the initial
     * incumbent.
     */
    std::vector<std::vector<double>> warmStarts;
    /** Record incumbent/bound progress samples when true. */
    bool recordProgress = false;
};

/** Result of a branch-and-bound solve. */
struct MilpResult
{
    MilpStatus status = MilpStatus::Unknown;
    double objective = 0.0;
    std::vector<double> values;
    /** Best proven upper bound on the optimum. */
    double bound = 0.0;
    long nodesExplored = 0;
    long lpIterations = 0;
    double wallSeconds = 0.0;
    std::vector<ProgressSample> progress;
};

/**
 * Best-first branch-and-bound over the LP relaxation, branching on the
 * most fractional integer variable.
 */
class BranchAndBound
{
  public:
    /** Solve @p problem under @p config. */
    MilpResult solve(const MilpProblem &problem,
                     const BnbConfig &config = {}) const;
};

} // namespace milp
} // namespace helix

#endif // HELIX_MILP_BRANCH_AND_BOUND_H
