#include "milp/branch_and_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace helix {
namespace milp {

const char *
toString(MilpStatus status)
{
    switch (status) {
      case MilpStatus::Optimal:    return "optimal";
      case MilpStatus::Feasible:   return "feasible";
      case MilpStatus::Infeasible: return "infeasible";
      case MilpStatus::Unknown:    return "unknown";
    }
    return "?";
}

int
MilpProblem::addContinuous(double lower, double upper, double objective,
                           std::string name)
{
    integral.push_back(false);
    return relaxation.addVariable(lower, upper, objective,
                                  std::move(name));
}

int
MilpProblem::addInteger(double lower, double upper, double objective,
                        std::string name)
{
    integral.push_back(true);
    return relaxation.addVariable(lower, upper, objective,
                                  std::move(name));
}

int
MilpProblem::addBinary(double objective, std::string name)
{
    return addInteger(0.0, 1.0, objective, std::move(name));
}

void
MilpProblem::addConstraint(std::vector<std::pair<int, double>> terms,
                           lp::Relation relation, double rhs)
{
    relaxation.addConstraint(std::move(terms), relation, rhs);
}

bool
MilpProblem::isFeasible(const std::vector<double> &values,
                        double tol) const
{
    if (static_cast<int>(values.size()) != numVariables())
        return false;
    for (int v = 0; v < numVariables(); ++v) {
        double x = values[v];
        if (x < relaxation.lowerBound(v) - tol ||
            x > relaxation.upperBound(v) + tol) {
            return false;
        }
        if (integral[v] && std::fabs(x - std::round(x)) > tol)
            return false;
    }
    for (int r = 0; r < numConstraints(); ++r) {
        const lp::Constraint &con = relaxation.constraint(r);
        double lhs = 0.0;
        for (const auto &[var, coef] : con.terms)
            lhs += coef * values[var];
        switch (con.relation) {
          case lp::Relation::LessEq:
            if (lhs > con.rhs + tol)
                return false;
            break;
          case lp::Relation::GreaterEq:
            if (lhs < con.rhs - tol)
                return false;
            break;
          case lp::Relation::Equal:
            if (std::fabs(lhs - con.rhs) > tol)
                return false;
            break;
        }
    }
    return true;
}

double
MilpProblem::objectiveValue(const std::vector<double> &values) const
{
    double obj = 0.0;
    for (int v = 0; v < numVariables(); ++v)
        obj += relaxation.objectiveCoef(v) * values[v];
    return obj;
}

namespace {

/** Bound overrides accumulated along one branch of the search tree. */
struct BoundSet
{
    std::vector<std::pair<int, std::pair<double, double>>> entries;
};

/** One open node of the branch-and-bound tree. */
struct SearchNode
{
    double bound = 0.0; // parent LP objective (upper bound)
    BoundSet bounds;
    int depth = 0;
};

struct NodeCompare
{
    bool
    operator()(const SearchNode &a, const SearchNode &b) const
    {
        // Best-first: larger bound first; deeper first on ties to
        // reach incumbents quickly.
        // helix-lint: allow(float-eq) exact comparator tie-break keeps the search order deterministic
        if (a.bound != b.bound)
            return a.bound < b.bound;
        return a.depth < b.depth;
    }
};

} // namespace

MilpResult
BranchAndBound::solve(const MilpProblem &problem,
                      const BnbConfig &config) const
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    MilpResult result;
    lp::SimplexSolver simplex;

    double incumbent_obj = -lp::LpProblem::kInfinity;
    std::vector<double> incumbent;

    auto record = [&](double bound) {
        if (config.recordProgress) {
            result.progress.push_back(
                {elapsed(), incumbent_obj, bound});
        }
    };

    // Early-exit predicates against the incumbent. `prunable` says a
    // node (or subtree) with the given LP bound cannot beat the
    // incumbent by more than the gap tolerance; `goodEnough` says the
    // incumbent already reached the caller-supplied objective target,
    // so the search can stop before proving optimality.
    auto prunable = [&](double bound) {
        return incumbent_obj > -lp::LpProblem::kInfinity &&
               bound <=
                   incumbent_obj * (1.0 + config.relativeGap) + 1e-12;
    };
    auto goodEnough = [&] {
        return config.objectiveUpperBound &&
               incumbent_obj > -lp::LpProblem::kInfinity &&
               incumbent_obj >= *config.objectiveUpperBound *
                                    config.earlyStopFraction;
    };

    // Try rounded copies of an LP-relaxation solution as incumbents:
    // first nearest-rounding, then floor-rounding (which stays
    // feasible whenever the binding constraints have nonnegative
    // coefficients, the common shape of Helix's placement MILP). Cheap
    // (a feasibility scan each) and often turns the first few node
    // solves into a strong pruning bound. @return true on improvement.
    auto tryRounded = [&](const std::vector<double> &relaxed,
                          double node_bound) {
        bool improved = false;
        std::vector<double> values(relaxed.size());
        for (int attempt = 0; attempt < 2; ++attempt) {
            bool differs_from_round = false;
            for (int v = 0; v < problem.numVariables(); ++v) {
                double x = relaxed[v];
                if (!problem.isIntegral(v)) {
                    values[v] = x;
                    continue;
                }
                values[v] = attempt == 0 ? std::round(x)
                                         : std::floor(x + 1e-9);
                differs_from_round |= values[v] != std::round(x);
            }
            // Floor-rounding that matches nearest-rounding would just
            // repeat attempt 0's feasibility scan.
            if (attempt == 1 && !differs_from_round)
                break;
            if (!problem.isFeasible(values, 1e-5))
                continue;
            double obj = problem.objectiveValue(values);
            if (obj <= incumbent_obj)
                continue;
            incumbent_obj = obj;
            incumbent = values;
            record(node_bound);
            improved = true;
        }
        return improved;
    };

    // Seed the incumbent with the best feasible warm start.
    for (const auto &hint : config.warmStarts) {
        if (problem.isFeasible(hint)) {
            double obj = problem.objectiveValue(hint);
            if (obj > incumbent_obj) {
                incumbent_obj = obj;
                incumbent = hint;
            }
        }
    }
    if (incumbent_obj > -lp::LpProblem::kInfinity)
        record(lp::LpProblem::kInfinity);

    // Mutable copy of the LP used for node solves; bounds are applied
    // and restored around each solve.
    lp::LpProblem lp_work = problem.lp();

    auto solveNode = [&](const BoundSet &bounds) {
        std::vector<std::pair<int, std::pair<double, double>>> saved;
        saved.reserve(bounds.entries.size());
        for (const auto &[var, lohi] : bounds.entries) {
            saved.push_back(
                {var, {lp_work.lowerBound(var), lp_work.upperBound(var)}});
            lp_work.setBounds(var, lohi.first, lohi.second);
        }
        lp::LpResult res = simplex.solve(lp_work);
        for (auto it = saved.rbegin(); it != saved.rend(); ++it)
            lp_work.setBounds(it->first, it->second.first,
                              it->second.second);
        return res;
    };

    std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
        open;
    open.push({lp::LpProblem::kInfinity, {}, 0});

    double best_open_bound = lp::LpProblem::kInfinity;
    bool exhausted = false;
    bool hit_limit = false;

    while (!open.empty()) {
        // Best-first order makes the top-of-queue bound the global
        // upper bound over all open subtrees.
        best_open_bound = open.top().bound;
        if (goodEnough())
            break;
        if (elapsed() > config.timeLimitSeconds ||
            result.nodesExplored >= config.nodeLimit) {
            hit_limit = true;
            break;
        }
        SearchNode node = open.top();
        open.pop();

        // The queue is bound-ordered, so an unpromising top node
        // proves every open subtree is within the gap tolerance.
        if (prunable(node.bound)) {
            exhausted = true;
            break;
        }

        lp::LpResult lp_res = solveNode(node.bounds);
        ++result.nodesExplored;
        result.lpIterations += lp_res.iterations;
        if (lp_res.status == lp::LpStatus::Infeasible)
            continue;
        if (lp_res.status != lp::LpStatus::Optimal) {
            // Unbounded relaxation or iteration limit: treat the node
            // bound as unknown but do not claim optimality later.
            hit_limit = true;
            continue;
        }
        double node_bound = lp_res.objective;
        if (prunable(node_bound))
            continue;

        // Find the most fractional integer variable.
        int branch_var = -1;
        double best_frac_dist = 1e-6;
        for (int v = 0; v < problem.numVariables(); ++v) {
            if (!problem.isIntegral(v))
                continue;
            double x = lp_res.values[v];
            double frac = x - std::floor(x);
            double dist = std::min(frac, 1.0 - frac);
            if (dist > best_frac_dist) {
                best_frac_dist = dist;
                branch_var = v;
            }
        }

        if (branch_var < 0) {
            // Integral solution: round and accept as incumbent.
            tryRounded(lp_res.values, node_bound);
            continue;
        }

        // Fractional node: try the rounded relaxation as a heuristic
        // incumbent before branching. When it succeeds, the improved
        // bound may prune this very subtree (node_bound is its upper
        // bound) or finish the search outright.
        if (tryRounded(lp_res.values, node_bound) &&
            (goodEnough() || prunable(node_bound))) {
            if (goodEnough())
                break;
            continue;
        }

        // Branch: floor side and ceil side.
        double x = lp_res.values[branch_var];
        double lo = lp_work.lowerBound(branch_var);
        double hi = lp_work.upperBound(branch_var);
        for (const auto &[var, lohi] : node.bounds.entries) {
            if (var == branch_var) {
                lo = lohi.first;
                hi = lohi.second;
            }
        }
        double floor_x = std::floor(x);
        if (floor_x >= lo - 1e-9) {
            SearchNode child;
            child.bound = node_bound;
            child.bounds = node.bounds;
            child.bounds.entries.push_back(
                {branch_var, {lo, floor_x}});
            child.depth = node.depth + 1;
            open.push(std::move(child));
        }
        double ceil_x = std::ceil(x);
        if (ceil_x <= hi + 1e-9) {
            SearchNode child;
            child.bound = node_bound;
            child.bounds = node.bounds;
            child.bounds.entries.push_back({branch_var, {ceil_x, hi}});
            child.depth = node.depth + 1;
            open.push(std::move(child));
        }
    }

    if (open.empty())
        exhausted = true;

    result.wallSeconds = elapsed();
    result.bound = exhausted ? incumbent_obj
                             : std::min(best_open_bound,
                                        lp::LpProblem::kInfinity);
    if (incumbent_obj > -lp::LpProblem::kInfinity) {
        result.objective = incumbent_obj;
        result.values = incumbent;
        result.status = (exhausted && !hit_limit)
                            ? MilpStatus::Optimal
                            : MilpStatus::Feasible;
        if (exhausted && !hit_limit)
            result.bound = incumbent_obj;
    } else {
        result.status = (exhausted && !hit_limit) ? MilpStatus::Infeasible
                                                  : MilpStatus::Unknown;
    }
    record(result.bound);
    return result;
}

} // namespace milp
} // namespace helix
