/**
 * @file
 * Directed weighted graph with residual-edge bookkeeping, shared by the
 * max-flow solvers and the placement graph builder.
 *
 * Capacities are doubles because Helix edge capacities are tokens per
 * second derived from profiling (Sec. 4.3 of the paper) and are not
 * naturally integral.
 */

#ifndef HELIX_FLOW_GRAPH_H
#define HELIX_FLOW_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.h"

namespace helix {
namespace flow {

/** Index of a vertex in a FlowGraph. */
using NodeId = int32_t;

/** Index of a directed edge in a FlowGraph. */
using EdgeId = int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr EdgeId kInvalidEdge = -1;

/** Tolerance used when comparing flow values. */
constexpr double kFlowEps = 1e-9;

/**
 * A directed edge paired with its residual reverse edge. Forward edges
 * have even ids; their residual twins have odd ids (id ^ 1).
 */
struct Edge
{
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    /** Remaining residual capacity. */
    double capacity = 0.0;
    /** Original capacity at creation time (0 for residual twins). */
    double originalCapacity = 0.0;
};

/**
 * Residual flow network. Vertices are dense integer ids assigned by
 * addNode(); each addEdge() creates a forward edge and a zero-capacity
 * residual twin.
 */
class FlowGraph
{
  public:
    FlowGraph() = default;

    /** Create an isolated vertex and return its id. */
    NodeId addNode(std::string label = "");

    /** Number of vertices. */
    [[nodiscard]] size_t numNodes() const { return adjacency.size(); }

    /** Number of user-added (forward) edges. */
    [[nodiscard]] size_t numEdges() const { return edges.size() / 2; }

    /**
     * Add a directed edge with the given capacity. A residual twin with
     * zero capacity is added automatically.
     * @return the id of the forward edge (always even).
     */
    EdgeId addEdge(NodeId from, NodeId to, double capacity);

    /** Access an edge (forward or residual) by id. */
    [[nodiscard]] const Edge &edge(EdgeId id) const { return edges[id]; }
    Edge &edge(EdgeId id) { return edges[id]; }

    /** Ids of all edges (forward and residual) leaving @p node. */
    [[nodiscard]] const std::vector<EdgeId> &outEdges(NodeId node) const;

    /** Human-readable label attached to @p node. */
    [[nodiscard]] const std::string &nodeLabel(NodeId node) const;

    /**
     * Flow currently on a forward edge, i.e. how much of its original
     * capacity has been consumed: original - residual.
     */
    [[nodiscard]] double flowOn(EdgeId forward_edge) const;

    /** Restore every edge's residual capacity to its original value. */
    void resetFlow();

    /**
     * Change a forward edge's capacity while preserving the flow
     * currently recorded on it. The residual capacity becomes
     * new_capacity - current_flow and may go negative when the edge is
     * now over-committed; PreflowPush::repair() restores feasibility
     * (and maximality) incrementally from that state.
     *
     * Live-serving call sites edit TopologyManager's persistent
     * warm-start network, which is coordinator-confined state.
     */
    HELIX_COORDINATOR_ONLY
    void setEdgeCapacity(EdgeId forward_edge, double capacity);

    /** Total capacity leaving @p node over forward edges. */
    [[nodiscard]] double outCapacity(NodeId node) const;

    /**
     * Net flow leaving @p node: flow on forward out-edges minus flow
     * on forward in-edges. At the source this is the flow value; both
     * solve() and repair() report it through this one accumulation so
     * the two paths agree bit-for-bit.
     */
    [[nodiscard]] double netOutflow(NodeId node) const;

    /**
     * Largest forward-edge capacity ever configured (via addEdge or
     * setEdgeCapacity) — the solvers' tolerance scale. A high-water
     * mark, not the current maximum, so it is O(1) to maintain; a
     * marginally loose tolerance after a capacity shrink only affects
     * which sub-noise flows get snapped to zero.
     */
    [[nodiscard]] double capacityScale() const { return capScale; }

    /**
     * Forward edges edited by setEdgeCapacity since the last solver
     * pass — PreflowPush::repair's phase-1 worklist, letting it visit
     * only the edited arcs instead of scanning every edge. Consumed
     * (cleared) by solve()/repair(); may hold duplicates.
     */
    std::vector<EdgeId> &dirtyEdges() { return dirty; }

  private:
    std::vector<Edge> edges;
    std::vector<std::vector<EdgeId>> adjacency;
    std::vector<std::string> labels;
    std::vector<EdgeId> dirty;
    double capScale = 0.0;
};

} // namespace flow
} // namespace helix

#endif // HELIX_FLOW_GRAPH_H
