#include "flow/max_flow.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace helix {
namespace flow {

namespace {

/**
 * Scale-aware comparison tolerance for a graph: edge capacities may
 * span many orders of magnitude (coordinator token links vs. compute
 * edges), so absolute kFlowEps alone cannot absorb the floating-point
 * cancellation left behind on saturated high-capacity arcs.
 */
double
scaleTolerance(const FlowGraph &graph)
{
    return std::max(kFlowEps, 1e-9 * graph.capacityScale());
}

} // namespace

PreflowPush::PreflowPush(FlowGraph &g) : graph(g)
{
}

void
PreflowPush::activate(NodeId node)
{
    int lbl = label[node];
    buckets[lbl].push_back(node);
    highestActive = std::max(highestActive, lbl);
}

void
PreflowPush::labelInsert(NodeId node, int lbl)
{
    labelPrev[node] = kInvalidNode;
    labelNext[node] = labelFirst[lbl];
    if (labelFirst[lbl] != kInvalidNode)
        labelPrev[labelFirst[lbl]] = node;
    labelFirst[lbl] = node;
}

void
PreflowPush::labelErase(NodeId node, int lbl)
{
    if (labelPrev[node] != kInvalidNode)
        labelNext[labelPrev[node]] = labelNext[node];
    else
        labelFirst[lbl] = labelNext[node];
    if (labelNext[node] != kInvalidNode)
        labelPrev[labelNext[node]] = labelPrev[node];
}

void
PreflowPush::push(EdgeId edge_id)
{
    Edge &e = graph.edge(edge_id);
    Edge &rev = graph.edge(edge_id ^ 1);
    double amount = std::min(excess[e.from], e.capacity);
    e.capacity -= amount;
    rev.capacity += amount;
    excess[e.from] -= amount;
    excess[e.to] += amount;
}

void
PreflowPush::relabel(NodeId node)
{
    const int n = static_cast<int>(graph.numNodes());
    int min_label = std::numeric_limits<int>::max();
    for (EdgeId id : graph.outEdges(node)) {
        const Edge &e = graph.edge(id);
        if (e.capacity > kFlowEps)
            min_label = std::min(min_label, label[e.to]);
    }
    const int old = label[node];
    labelErase(node, old);
    label[node] = (min_label == std::numeric_limits<int>::max())
                      ? n + 1
                      : min_label + 1;
    if (label[node] < n)
        labelInsert(node, label[node]);
    // Gap heuristic: if no node remains at the old label, every node
    // with a larger label (below n) can never reach the sink again;
    // lift them above n, which parks them until phase 2. The
    // membership lists make this touch only the lifted nodes.
    if (labelFirst[old] == kInvalidNode) {
        for (int g = old + 1; g < n; ++g) {
            for (NodeId v = labelFirst[g]; v != kInvalidNode;) {
                NodeId next = labelNext[v];
                label[v] = n + 1;
                v = next;
            }
            labelFirst[g] = kInvalidNode;
        }
    }
    currentArc[node] = 0;
    workSinceRelabel += 12;
}

void
PreflowPush::globalRelabel(NodeId source, NodeId sink)
{
    const int n = static_cast<int>(graph.numNodes());
    // Exact distance labels via reverse BFS from the sink. Nodes that
    // cannot reach the sink are parked at n + 1; phase 2 returns their
    // excess to the source.
    std::fill(label.begin(), label.end(), n + 1);
    label[sink] = 0;
    bfsQueue.clear();
    bfsQueue.push_back(sink);
    for (size_t head = 0; head < bfsQueue.size(); ++head) {
        NodeId u = bfsQueue[head];
        const int next_label = label[u] + 1;
        for (EdgeId id : graph.outEdges(u)) {
            // Traverse edges backwards: v can reach u if the residual
            // edge v->u has capacity, i.e. the twin of u->v does.
            const Edge &twin = graph.edge(id ^ 1);
            NodeId v = twin.from;
            if (twin.capacity > kFlowEps && label[v] == n + 1 &&
                v != source) {
                label[v] = next_label;
                bfsQueue.push_back(v);
            }
        }
    }
    label[source] = n;
    std::fill(labelFirst.begin(), labelFirst.end(), kInvalidNode);
    std::fill(currentArc.begin(), currentArc.end(), 0);
    for (auto &bucket : buckets)
        bucket.clear();
    highestActive = -1;
    for (NodeId v = 0; v < n; ++v) {
        if (v == source || label[v] >= n)
            continue;
        labelInsert(v, label[v]);
        if (v != sink && excess[v] > kFlowEps)
            activate(v);
    }
    workSinceRelabel = 0;
}

void
PreflowPush::discharge(NodeId node, NodeId source, NodeId sink)
{
    const int n = static_cast<int>(graph.numNodes());
    const auto &out = graph.outEdges(node);
    const size_t degree = out.size();
    while (excess[node] > kFlowEps) {
        size_t arc = currentArc[node];
        if (arc >= degree) {
            relabel(node);
            if (label[node] >= n)
                return; // Cannot reach the sink; phase 2 handles it.
            continue;
        }
        EdgeId id = out[arc];
        const Edge &e = graph.edge(id);
        if (e.capacity > kFlowEps && label[node] == label[e.to] + 1) {
            bool to_was_inactive = excess[e.to] <= kFlowEps;
            push(id);
            workSinceRelabel += 1;
            if (to_was_inactive && e.to != source && e.to != sink &&
                excess[e.to] > kFlowEps) {
                activate(e.to);
            }
        } else {
            currentArc[node] = arc + 1;
        }
    }
}

double
PreflowPush::solve(NodeId source, NodeId sink)
{
    HELIX_ASSERT(source != sink);
    size_t n = graph.numNodes();
    excess.assign(n, 0.0);
    label.assign(n, 0);
    currentArc.assign(n, 0);
    labelFirst.assign(n, kInvalidNode);
    labelNext.assign(n, kInvalidNode);
    labelPrev.assign(n, kInvalidNode);
    buckets.resize(n);
    for (auto &bucket : buckets)
        bucket.clear();
    highestActive = -1;

    // Saturate all edges out of the source (self-loops carry no flow).
    for (EdgeId id : graph.outEdges(source)) {
        if ((id & 1) == 0) {
            Edge &e = graph.edge(id);
            if (e.capacity > kFlowEps && e.to != source) {
                excess[source] += e.capacity;
                push(id);
            }
        }
    }
    // Exact initial labels and the initial active set.
    globalRelabel(source, sink);

    const long relabel_interval = 6 * static_cast<long>(n) +
                                  static_cast<long>(graph.numEdges());

    while (highestActive >= 0) {
        if (workSinceRelabel > relabel_interval) {
            globalRelabel(source, sink);
            continue; // Active buckets were rebuilt.
        }
        auto &bucket = buckets[highestActive];
        if (bucket.empty()) {
            --highestActive;
            continue;
        }
        NodeId node = bucket.back();
        bucket.pop_back();
        if (excess[node] <= kFlowEps || label[node] != highestActive)
            continue; // Stale bucket entry.
        discharge(node, source, sink);
    }

    double value = excess[sink];
    convertToFlow(source, sink);
    // A cold solve incorporates every capacity edit; repair() must
    // not reprocess them.
    graph.dirtyEdges().clear();
    return value;
}

void
PreflowPush::convertToFlow(NodeId source, NodeId sink)
{
    // Phase 2: nodes parked at label >= n may still hold excess that
    // never reached the sink. Return it to the source by cancelling
    // flow along residual walks, so the recorded edge flows satisfy
    // conservation (required by flow decomposition and IWRR weights).
    size_t n = graph.numNodes();
    const double tol = scaleTolerance(graph);
    std::vector<int> visited(n, 0);
    int stamp = 0;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
        if (v == source || v == sink)
            continue;
        while (excess[v] > tol) {
            // Walk backwards along flow-carrying edges towards source.
            ++stamp;
            std::vector<EdgeId> walk_twins; // residual twins taken
            std::vector<NodeId> walk_nodes{v};
            visited[v] = stamp;
            NodeId at = v;
            NodeId cycle_at = kInvalidNode;
            while (at != source) {
                // Follow the thickest incoming flow edge; picking an
                // arbitrary positive edge risks chasing numerical
                // noise on saturated high-capacity links.
                EdgeId chosen = kInvalidEdge;
                double best_flow = kFlowEps;
                for (EdgeId id : graph.outEdges(at)) {
                    if ((id & 1) == 1) {
                        double f = graph.flowOn(id ^ 1);
                        if (f > best_flow) {
                            best_flow = f;
                            chosen = id;
                        }
                    }
                }
                if (chosen == kInvalidEdge) {
                    if (excess[v] <= 2.0 * tol) {
                        // Residual rounding noise; drop it.
                        excess[v] = 0.0;
                        break;
                    }
                    HELIX_PANIC("stranded excess with no incoming flow "
                                "at node %d", at);
                }
                walk_twins.push_back(chosen);
                at = graph.edge(chosen).to;
                walk_nodes.push_back(at);
                if (at != source && visited[at] == stamp) {
                    cycle_at = at;
                    break;
                }
                visited[at] = stamp;
            }
            if (cycle_at != kInvalidNode) {
                // Cancel the flow cycle and retry the walk.
                size_t start = 0;
                while (walk_nodes[start] != cycle_at)
                    ++start;
                double delta = std::numeric_limits<double>::max();
                for (size_t i = start; i < walk_twins.size(); ++i)
                    delta = std::min(delta,
                                     graph.flowOn(walk_twins[i] ^ 1));
                for (size_t i = start; i < walk_twins.size(); ++i) {
                    graph.edge(walk_twins[i] ^ 1).capacity += delta;
                    graph.edge(walk_twins[i]).capacity -= delta;
                }
                continue;
            }
            // Cancel min(excess, path bottleneck) along the walk.
            double delta = excess[v];
            for (EdgeId twin : walk_twins)
                delta = std::min(delta, graph.flowOn(twin ^ 1));
            for (EdgeId twin : walk_twins) {
                graph.edge(twin ^ 1).capacity += delta;
                graph.edge(twin).capacity -= delta;
            }
            excess[v] -= delta;
            excess[source] += delta;
        }
    }
}

void
PreflowPush::cancelFlow(NodeId start, NodeId terminal, bool toward_source,
                        double amount, double tol)
{
    const size_t n = graph.numNodes();
    std::vector<int> visited(n, 0);
    int stamp = 0;
    // Traversed arc -> forward edge whose flow the step cancels. Walks
    // toward the source take residual twins (odd ids) of incoming flow
    // edges; walks toward the sink take flow-carrying forward edges.
    auto forwardOf = [&](EdgeId traversed) {
        return toward_source ? (traversed ^ 1) : traversed;
    };
    while (amount > tol) {
        ++stamp;
        std::vector<EdgeId> walk;
        std::vector<NodeId> walk_nodes{start};
        visited[start] = stamp;
        NodeId at = start;
        NodeId cycle_at = kInvalidNode;
        while (at != terminal) {
            EdgeId chosen = kInvalidEdge;
            double best_flow = kFlowEps;
            for (EdgeId id : graph.outEdges(at)) {
                if (((id & 1) == 1) != toward_source)
                    continue;
                double f = graph.flowOn(forwardOf(id));
                if (f > best_flow) {
                    best_flow = f;
                    chosen = id;
                }
            }
            if (chosen == kInvalidEdge) {
                if (amount <= 2.0 * tol)
                    return; // Residual rounding noise; drop it.
                HELIX_PANIC("flow repair: stranded %g surplus at node "
                            "%d", amount, at);
            }
            walk.push_back(chosen);
            at = graph.edge(chosen).to;
            walk_nodes.push_back(at);
            if (at != terminal && visited[at] == stamp) {
                cycle_at = at;
                break;
            }
            visited[at] = stamp;
        }
        if (cycle_at != kInvalidNode) {
            // Cancel the flow cycle and retry the walk.
            size_t cstart = 0;
            while (walk_nodes[cstart] != cycle_at)
                ++cstart;
            double delta = std::numeric_limits<double>::max();
            for (size_t i = cstart; i < walk.size(); ++i)
                delta = std::min(delta, graph.flowOn(forwardOf(walk[i])));
            for (size_t i = cstart; i < walk.size(); ++i) {
                graph.edge(forwardOf(walk[i])).capacity += delta;
                graph.edge(forwardOf(walk[i]) ^ 1).capacity -= delta;
                touched.push_back(forwardOf(walk[i]));
            }
            continue;
        }
        double delta = amount;
        for (EdgeId id : walk)
            delta = std::min(delta, graph.flowOn(forwardOf(id)));
        for (EdgeId id : walk) {
            graph.edge(forwardOf(id)).capacity += delta;
            graph.edge(forwardOf(id) ^ 1).capacity -= delta;
            touched.push_back(forwardOf(id));
        }
        amount -= delta;
    }
}

bool
PreflowPush::augmentLevels(NodeId source, NodeId sink)
{
    label.assign(graph.numNodes(), -1);
    label[source] = 0;
    bfsQueue.clear();
    bfsQueue.push_back(source);
    for (size_t head = 0; head < bfsQueue.size(); ++head) {
        NodeId u = bfsQueue[head];
        for (EdgeId id : graph.outEdges(u)) {
            const Edge &e = graph.edge(id);
            if (e.capacity > kFlowEps && label[e.to] < 0) {
                label[e.to] = label[u] + 1;
                bfsQueue.push_back(e.to);
            }
        }
    }
    return label[sink] >= 0;
}

double
PreflowPush::augmentBlocking(NodeId node, NodeId sink, double limit)
{
    if (node == sink)
        return limit;
    const auto &out = graph.outEdges(node);
    for (; currentArc[node] < out.size(); ++currentArc[node]) {
        EdgeId id = out[currentArc[node]];
        Edge &e = graph.edge(id);
        if (e.capacity > kFlowEps && label[e.to] == label[node] + 1) {
            double pushed = augmentBlocking(e.to, sink,
                                            std::min(limit, e.capacity));
            if (pushed > kFlowEps) {
                e.capacity -= pushed;
                graph.edge(id ^ 1).capacity += pushed;
                touched.push_back(id & ~1);
                return pushed;
            }
        }
    }
    return 0.0;
}

double
PreflowPush::repair(NodeId source, NodeId sink)
{
    HELIX_ASSERT(source != sink);
    const size_t n = graph.numNodes();
    const double tol = scaleTolerance(graph);

    // Phase 1: restore feasibility. setEdgeCapacity() leaves an
    // over-committed arc with negative residual capacity; clamp its
    // flow to the new capacity and drain the surplus along the walks
    // that carried it — backwards to the source and forwards to the
    // sink — so conservation holds everywhere again. Only edges
    // edited since the last solver pass (the graph's dirty list) can
    // be over-committed, so this visits the edit batch, not every
    // edge.
    touched.clear();
    for (EdgeId id : graph.dirtyEdges()) {
        Edge &e = graph.edge(id);
        touched.push_back(id);
        if (e.capacity >= 0.0)
            continue;
        double surplus = -e.capacity;
        e.capacity = 0.0;
        graph.edge(id ^ 1).capacity = e.originalCapacity;
        if (e.from != source)
            cancelFlow(e.from, source, /*toward_source=*/true, surplus,
                       tol);
        if (e.to != sink)
            cancelFlow(e.to, sink, /*toward_source=*/false, surplus,
                       tol);
    }
    graph.dirtyEdges().clear();

    // Phase 2: the feasible flow may no longer be maximum — capacity
    // increases open new paths and phase 1 may have cancelled
    // reroutable flow. Augment shortest residual paths until none
    // remain; by max-flow/min-cut the result equals a cold solve's
    // value, while the work is proportional to the delta.
    while (augmentLevels(source, sink)) {
        currentArc.assign(n, 0);
        while (augmentBlocking(source, sink,
                               std::numeric_limits<double>::max()) >
               kFlowEps) {
        }
    }

    // Snap sub-tolerance flows to exactly zero so a drained graph
    // (e.g. after a node failure severed every path) reports clean
    // zero flows instead of accumulated rounding noise. Only edges
    // this repair touched can have picked up fresh noise.
    for (EdgeId id : touched) {
        Edge &e = graph.edge(id);
        double f = graph.flowOn(id);
        // helix-lint: allow(float-eq) exact-zero sentinel: only non-zero sub-tolerance noise gets snapped
        if (f != 0.0 && f < tol) {
            e.capacity = e.originalCapacity;
            graph.edge(id ^ 1).capacity = 0.0;
        }
    }

    // The repaired value is the net flow leaving the source.
    return graph.netOutflow(source);
}

Dinic::Dinic(FlowGraph &g) : graph(g)
{
}

bool
Dinic::buildLevels(NodeId source, NodeId sink)
{
    level.assign(graph.numNodes(), -1);
    level[source] = 0;
    std::vector<NodeId> queue{source};
    for (size_t head = 0; head < queue.size(); ++head) {
        NodeId u = queue[head];
        for (EdgeId id : graph.outEdges(u)) {
            const Edge &e = graph.edge(id);
            if (e.capacity > kFlowEps && level[e.to] < 0) {
                level[e.to] = level[u] + 1;
                queue.push_back(e.to);
            }
        }
    }
    return level[sink] >= 0;
}

double
Dinic::augment(NodeId node, NodeId sink, double limit)
{
    if (node == sink)
        return limit;
    const auto &out = graph.outEdges(node);
    for (; nextArc[node] < out.size(); ++nextArc[node]) {
        EdgeId id = out[nextArc[node]];
        Edge &e = graph.edge(id);
        if (e.capacity > kFlowEps && level[e.to] == level[node] + 1) {
            double pushed = augment(e.to, sink,
                                    std::min(limit, e.capacity));
            if (pushed > kFlowEps) {
                e.capacity -= pushed;
                graph.edge(id ^ 1).capacity += pushed;
                return pushed;
            }
        }
    }
    return 0.0;
}

double
Dinic::solve(NodeId source, NodeId sink)
{
    HELIX_ASSERT(source != sink);
    double total = 0.0;
    while (buildLevels(source, sink)) {
        nextArc.assign(graph.numNodes(), 0);
        for (;;) {
            double pushed = augment(
                source, sink, std::numeric_limits<double>::max());
            if (pushed <= kFlowEps)
                break;
            total += pushed;
        }
    }
    return total;
}

std::vector<bool>
minCutSourceSide(const FlowGraph &graph, NodeId source)
{
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[source] = true;
    std::vector<NodeId> queue{source};
    for (size_t head = 0; head < queue.size(); ++head) {
        NodeId u = queue[head];
        for (EdgeId id : graph.outEdges(u)) {
            const Edge &e = graph.edge(id);
            if (e.capacity > kFlowEps && !reachable[e.to]) {
                reachable[e.to] = true;
                queue.push_back(e.to);
            }
        }
    }
    return reachable;
}

std::vector<FlowPath>
decomposeFlow(const FlowGraph &graph, NodeId source, NodeId sink)
{
    // Work on a copy of the per-edge flow amounts.
    size_t total_edges = graph.numEdges() * 2;
    std::vector<double> remaining(total_edges, 0.0);
    for (size_t id = 0; id < total_edges; id += 2)
        remaining[id] = graph.flowOn(static_cast<EdgeId>(id));

    // Flows below the scale-aware threshold are numerical noise left
    // behind by solves on graphs mixing huge coordinator-link
    // capacities with small compute capacities.
    const double tol = scaleTolerance(graph);

    std::vector<FlowPath> paths;
    for (;;) {
        // Follow the thickest positive-flow forward edge from the
        // source. Every iteration either extracts a path, cancels a
        // cycle, or zeroes a dead-end edge, so progress is guaranteed.
        std::vector<NodeId> path_nodes{source};
        std::vector<EdgeId> path_edges;
        NodeId at = source;
        std::vector<bool> visited(graph.numNodes(), false);
        visited[source] = true;
        bool reached_sink = false;
        bool hit_cycle = false;
        while (true) {
            EdgeId chosen = kInvalidEdge;
            double best_flow = tol;
            for (EdgeId id : graph.outEdges(at)) {
                if ((id & 1) == 0 && remaining[id] > best_flow) {
                    best_flow = remaining[id];
                    chosen = id;
                }
            }
            if (chosen == kInvalidEdge)
                break;
            const Edge &e = graph.edge(chosen);
            path_edges.push_back(chosen);
            path_nodes.push_back(e.to);
            at = e.to;
            if (at == sink) {
                reached_sink = true;
                break;
            }
            if (visited[at]) {
                hit_cycle = true;
                break;
            }
            visited[at] = true;
        }
        if (path_edges.empty())
            break;
        double bottleneck = std::numeric_limits<double>::max();
        if (reached_sink) {
            for (EdgeId id : path_edges)
                bottleneck = std::min(bottleneck, remaining[id]);
            for (EdgeId id : path_edges)
                remaining[id] -= bottleneck;
            paths.push_back({std::move(path_nodes), bottleneck});
        } else if (hit_cycle) {
            // Cancel the cycle portion: find where the cycle starts.
            size_t start = 0;
            while (path_nodes[start] != at)
                ++start;
            for (size_t i = start; i < path_edges.size(); ++i)
                bottleneck = std::min(bottleneck, remaining[path_edges[i]]);
            for (size_t i = start; i < path_edges.size(); ++i)
                remaining[path_edges[i]] -= bottleneck;
        } else {
            // Dead end: the trailing edge carries flow that never
            // reaches the sink (numerical remnant); drop it so the
            // walk cannot repeat.
            remaining[path_edges.back()] = 0.0;
        }
    }
    return paths;
}

} // namespace flow
} // namespace helix
