/**
 * @file
 * Max-flow solvers.
 *
 * The primary solver is preflow-push (a.k.a. push-relabel) with the
 * highest-label selection rule, the gap heuristic, and periodic global
 * relabeling — the algorithm the Helix paper cites for evaluating the
 * serving throughput of a model placement (Sec. 4.3). A Dinic's
 * algorithm implementation is provided as an independent verification
 * oracle for tests.
 */

#ifndef HELIX_FLOW_MAX_FLOW_H
#define HELIX_FLOW_MAX_FLOW_H

#include <vector>

#include "core/annotations.h"
#include "flow/graph.h"

namespace helix {
namespace flow {

/**
 * Preflow-push max-flow. Mutates the graph's residual capacities; call
 * FlowGraph::resetFlow() to solve again from scratch.
 */
class PreflowPush
{
  public:
    /**
     * @param graph residual network to operate on (held by reference;
     *              must outlive the solver)
     */
    explicit PreflowPush(FlowGraph &graph);

    /**
     * Compute the maximum flow from @p source to @p sink.
     * @return the max-flow value in capacity units (tokens/second for
     *         Helix placement graphs).
     */
    [[nodiscard]] double solve(NodeId source, NodeId sink);

    /**
     * Warm-start incremental repair after capacity updates
     * (FlowGraph::setEdgeCapacity). Starting from the flow currently
     * recorded on the graph — typically the previous solve()/repair()
     * result with a handful of edited arcs — restores feasibility by
     * cancelling surplus flow on over-committed arcs along the walks
     * that carry it (back to the source and forward to the sink), then
     * re-augments on the residual graph until the flow is maximum
     * again. Only flow through the affected arcs is touched, so a
     * single-node capacity event costs a few residual walks plus the
     * augmenting delta instead of a cold solve from zero labels.
     *
     * The resulting flow value always equals a cold solve()'s (both
     * are maximum flows); the per-arc flow assignment may differ
     * whenever the maximum flow is not unique.
     *
     * @return the max-flow value for the current capacities.
     *
     * Live-serving call sites run against TopologyManager's persistent
     * warm-start network, which is coordinator-confined state.
     */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double repair(NodeId source, NodeId sink);

  private:
    /** Push as much excess as possible across @p edge_id. */
    void push(EdgeId edge_id);

    /** Raise a node's label to one more than its lowest neighbor. */
    void relabel(NodeId node);

    /** Recompute exact distance labels with reverse BFS from sink. */
    void globalRelabel(NodeId source, NodeId sink);

    /** Discharge all excess at @p node. */
    void discharge(NodeId node, NodeId source, NodeId sink);

    /**
     * Phase 2 of preflow-push: return stranded excess to the source so
     * the recorded edge flows form a valid (conserved) max flow.
     */
    void convertToFlow(NodeId source, NodeId sink);

    /** Move a node into its label's active bucket. */
    void activate(NodeId node);

    /** Insert @p node into the membership list of label @p lbl. */
    void labelInsert(NodeId node, int lbl);

    /** Unlink @p node from the membership list of label @p lbl. */
    void labelErase(NodeId node, int lbl);

    /**
     * Cancel @p amount units of recorded flow on walks between
     * @p start and @p terminal, following the thickest flow-carrying
     * arc at every step and cancelling any flow cycles encountered.
     * With @p toward_source the walk runs backwards along incoming
     * flow to the source; otherwise forwards along outgoing flow to
     * the sink.
     */
    void cancelFlow(NodeId start, NodeId terminal, bool toward_source,
                    double amount, double tol);

    /** Build residual BFS levels from @p source (repair phase 2).
     *  @return whether the sink is still reachable. */
    bool augmentLevels(NodeId source, NodeId sink);

    /** Push one blocking-flow augmentation along level-increasing
     *  residual arcs (repair phase 2). */
    double augmentBlocking(NodeId node, NodeId sink, double limit);

    FlowGraph &graph;
    std::vector<double> excess;
    std::vector<int> label;
    std::vector<size_t> currentArc;
    /**
     * Active-node buckets indexed by label (highest-label rule). Only
     * labels below n are ever active: a node relabeled to n or above
     * can no longer reach the sink, so its excess is parked until the
     * phase-2 conversion returns it to the source.
     */
    std::vector<std::vector<NodeId>> buckets;
    /**
     * Intrusive doubly-linked membership lists over every non-source
     * node with label < n, indexed by label. They give the gap
     * heuristic exact emptiness checks and let it lift only the nodes
     * above a gap instead of rescanning all n nodes per gap event.
     */
    std::vector<NodeId> labelFirst;
    std::vector<NodeId> labelNext;
    std::vector<NodeId> labelPrev;
    /** Reusable queue for the global-relabel reverse BFS. */
    std::vector<NodeId> bfsQueue;
    /**
     * Forward edges whose flow repair() changed (clamps, cancel
     * walks, re-augmentation) — the only edges its zero-snap pass
     * needs to visit.
     */
    std::vector<EdgeId> touched;
    int highestActive = -1;
    long workSinceRelabel = 0;
};

/**
 * Dinic's max-flow, used to cross-check PreflowPush in tests. Mutates
 * the graph's residual capacities.
 */
class Dinic
{
  public:
    explicit Dinic(FlowGraph &graph);

    /** Compute the maximum flow from @p source to @p sink. */
    [[nodiscard]] double solve(NodeId source, NodeId sink);

  private:
    bool buildLevels(NodeId source, NodeId sink);
    double augment(NodeId node, NodeId sink, double limit);

    FlowGraph &graph;
    std::vector<int> level;
    std::vector<size_t> nextArc;
};

/**
 * Identify the source side of a minimum cut after a max-flow has been
 * computed on @p graph (vertices reachable from @p source in the
 * residual network).
 */
[[nodiscard]] std::vector<bool> minCutSourceSide(const FlowGraph &graph, NodeId source);

/** A single source→sink path carrying @p amount units of flow. */
struct FlowPath
{
    std::vector<NodeId> nodes;
    double amount = 0.0;
};

/**
 * Decompose the flow recorded on @p graph (after solving) into at most
 * |E| simple source→sink paths. The graph is not modified.
 */
[[nodiscard]] std::vector<FlowPath> decomposeFlow(const FlowGraph &graph, NodeId source,
                                    NodeId sink);

} // namespace flow
} // namespace helix

#endif // HELIX_FLOW_MAX_FLOW_H
