#include "flow/graph.h"

#include "util/logging.h"

namespace helix {
namespace flow {

NodeId
FlowGraph::addNode(std::string label)
{
    adjacency.emplace_back();
    labels.push_back(std::move(label));
    return static_cast<NodeId>(adjacency.size() - 1);
}

EdgeId
FlowGraph::addEdge(NodeId from, NodeId to, double capacity)
{
    HELIX_ASSERT(from >= 0 && static_cast<size_t>(from) < numNodes());
    HELIX_ASSERT(to >= 0 && static_cast<size_t>(to) < numNodes());
    HELIX_ASSERT(capacity >= 0.0);
    EdgeId forward = static_cast<EdgeId>(edges.size());
    edges.push_back({from, to, capacity, capacity});
    edges.push_back({to, from, 0.0, 0.0});
    adjacency[from].push_back(forward);
    adjacency[to].push_back(forward + 1);
    if (capacity > capScale)
        capScale = capacity;
    return forward;
}

const std::vector<EdgeId> &
FlowGraph::outEdges(NodeId node) const
{
    HELIX_ASSERT(node >= 0 && static_cast<size_t>(node) < numNodes());
    return adjacency[node];
}

const std::string &
FlowGraph::nodeLabel(NodeId node) const
{
    HELIX_ASSERT(node >= 0 && static_cast<size_t>(node) < numNodes());
    return labels[node];
}

double
FlowGraph::flowOn(EdgeId forward_edge) const
{
    HELIX_ASSERT(forward_edge >= 0 &&
                 static_cast<size_t>(forward_edge) < edges.size());
    HELIX_ASSERT((forward_edge & 1) == 0);
    const Edge &e = edges[forward_edge];
    return e.originalCapacity - e.capacity;
}

void
FlowGraph::setEdgeCapacity(EdgeId forward_edge, double capacity)
{
    HELIX_ASSERT(forward_edge >= 0 &&
                 static_cast<size_t>(forward_edge) < edges.size());
    HELIX_ASSERT((forward_edge & 1) == 0);
    HELIX_ASSERT(capacity >= 0.0);
    Edge &e = edges[forward_edge];
    const double flow = e.originalCapacity - e.capacity;
    e.originalCapacity = capacity;
    e.capacity = capacity - flow;
    if (capacity > capScale)
        capScale = capacity;
    dirty.push_back(forward_edge);
}

void
FlowGraph::resetFlow()
{
    for (auto &e : edges)
        e.capacity = e.originalCapacity;
    dirty.clear();
}

double
FlowGraph::outCapacity(NodeId node) const
{
    double total = 0.0;
    for (EdgeId id : outEdges(node)) {
        if ((id & 1) == 0)
            total += edges[id].originalCapacity;
    }
    return total;
}

double
FlowGraph::netOutflow(NodeId node) const
{
    double value = 0.0;
    for (EdgeId id : outEdges(node)) {
        if ((id & 1) == 0)
            value += flowOn(id);
        else
            value -= flowOn(id ^ 1);
    }
    return value;
}

} // namespace flow
} // namespace helix
