#include "core/params.h"

#include <stdexcept>

namespace helix {
namespace core {

Param &
Param::inRange(double range_lo, double range_hi)
{
    lo = range_lo;
    hi = range_hi;
    loExclusive = false;
    hiExclusive = false;
    hasRangeFlag = true;
    return *this;
}

Param &
Param::inRangeHalfOpen(double range_lo, double range_hi)
{
    lo = range_lo;
    hi = range_hi;
    loExclusive = false;
    hiExclusive = true;
    hasRangeFlag = true;
    return *this;
}

Param &
Param::atLeast(double range_lo)
{
    lo = range_lo;
    hi = std::numeric_limits<double>::infinity();
    loExclusive = false;
    hiExclusive = false;
    hasRangeFlag = true;
    return *this;
}

Param &
Param::greaterThan(double range_lo)
{
    lo = range_lo;
    hi = std::numeric_limits<double>::infinity();
    loExclusive = true;
    hiExclusive = false;
    hasRangeFlag = true;
    return *this;
}

Param &
Param::defaultValue(double value)
{
    defNumber = value;
    hasDefaultFlag = true;
    return *this;
}

Param &
Param::defaultText(std::string value)
{
    defText = std::move(value);
    hasDefaultFlag = true;
    return *this;
}

Param &
Param::alias(std::string name)
{
    aliasNames.push_back(std::move(name));
    return *this;
}

Param &
Param::scope(std::string name)
{
    scopeNames.push_back(std::move(name));
    return *this;
}

Param &
Param::usage(std::string text)
{
    use = std::move(text);
    return *this;
}

Param &
Param::oneOf(std::vector<std::string> values)
{
    allowed = std::move(values);
    return *this;
}

Param &
Param::errorTemplate(std::string text)
{
    errTemplate = std::move(text);
    return *this;
}

bool
Param::inScope(const std::string &scope_name) const
{
    if (scopeNames.empty())
        return scope_name == "top";
    for (const std::string &name : scopeNames) {
        if (name == scope_name)
            return true;
    }
    return false;
}

bool
Param::check(double value) const
{
    if (!hasRangeFlag)
        return true;
    if (loExclusive ? !(value > lo) : !(value >= lo))
        return false;
    if (hiExclusive ? !(value < hi) : !(value <= hi))
        return false;
    return true;
}

bool
Param::checkText(const std::string &text) const
{
    if (allowed.empty())
        return true;
    for (const std::string &choice : allowed) {
        if (choice == text)
            return true;
    }
    return false;
}

std::string
Param::formatError(const std::string &value) const
{
    std::string out;
    out.reserve(errTemplate.size() + keyName.size() + value.size());
    for (size_t i = 0; i < errTemplate.size();) {
        if (errTemplate.compare(i, 5, "{key}") == 0) {
            out += keyName;
            i += 5;
        } else if (errTemplate.compare(i, 7, "{value}") == 0) {
            out += value;
            i += 7;
        } else {
            out += errTemplate[i];
            ++i;
        }
    }
    return out;
}

Param &
ParamRegistry::parameter(const std::string &key, ParamKind kind)
{
    if (taken(key)) {
        throw std::logic_error("duplicate parameter declaration '" +
                               key + "'");
    }
    params.emplace_back(key, kind, static_cast<int>(params.size()));
    return params.back();
}

bool
ParamRegistry::taken(const std::string &name) const
{
    for (const Param &param : params) {
        if (param.key() == name)
            return true;
        for (const std::string &alias : param.aliases()) {
            if (alias == name)
                return true;
        }
    }
    return false;
}

const Param *
ParamRegistry::find(const std::string &key_or_alias) const
{
    for (const Param &param : params) {
        if (param.key() == key_or_alias)
            return &param;
        for (const std::string &alias : param.aliases()) {
            if (alias == key_or_alias)
                return &param;
        }
    }
    return nullptr;
}

std::vector<std::string>
ParamRegistry::keysInScope(const std::string &scope_name) const
{
    std::vector<std::string> keys;
    for (const Param &param : params) {
        if (param.inScope(scope_name))
            keys.push_back(param.key());
    }
    return keys;
}

std::vector<std::string>
ParamRegistry::allKeys() const
{
    std::vector<std::string> keys;
    keys.reserve(params.size());
    for (const Param &param : params)
        keys.push_back(param.key());
    return keys;
}

namespace {

/**
 * Declare every `experiment v1` spec knob. Error templates are
 * pinned byte-for-byte by tests/test_spec.cpp; scenario-option
 * declaration order determines io::scenarioOptionKeys() and with it
 * the pinned "(known: ...)" messages — append new options at the end
 * of their scope, never in the middle.
 */
ParamRegistry
buildSpecParams()
{
    ParamRegistry registry;

    // --- Top-level scalar directives -------------------------------
    registry.parameter("name", ParamKind::String)
        .usage("name <identifier>");
    registry.parameter("output", ParamKind::String)
        .defaultText("csv")
        .oneOf({"csv", "json"})
        .usage("output <csv|json>")
        .errorTemplate("output must be 'csv' or 'json', got '{value}'");
    registry.parameter("threads", ParamKind::Int)
        .atLeast(0)
        .defaultValue(0)
        .usage("threads <count>")
        .errorTemplate(
            "threads must be a non-negative integer, got '{value}'");
    registry.parameter("sim-threads", ParamKind::Int)
        .atLeast(1)
        .defaultValue(1)
        .alias("simulation-threads")
        .usage("sim-threads <count>")
        .errorTemplate(
            "sim-threads must be a positive integer, got '{value}'");
    registry.parameter("seed", ParamKind::UInt64)
        .defaultValue(42)
        .scope("top")
        .scope("scenario:offline")
        .scope("scenario:online")
        .scope("scenario:bursty")
        .scope("scenario:churn")
        .scope("scenario:online-peak")
        .usage("seed <uint64>")
        .errorTemplate(
            "seed must be an unsigned integer, got '{value}'");
    registry.parameter("warmup", ParamKind::Double)
        .atLeast(0.0)
        .defaultValue(30.0)
        .scope("top")
        .scope("scenario:offline")
        .scope("scenario:online")
        .scope("scenario:bursty")
        .scope("scenario:churn")
        .scope("scenario:online-peak")
        .usage("<seconds>")
        .errorTemplate("'{key}' must be a non-negative number of "
                       "seconds, got '{value}'");
    registry.parameter("measure", ParamKind::Double)
        .atLeast(0.0)
        .defaultValue(120.0)
        .scope("top")
        .scope("scenario:offline")
        .scope("scenario:online")
        .scope("scenario:bursty")
        .scope("scenario:churn")
        .scope("scenario:online-peak")
        .usage("<seconds>")
        .errorTemplate("'{key}' must be a non-negative number of "
                       "seconds, got '{value}'");
    registry.parameter("planner-budget", ParamKind::Double)
        .atLeast(0.0)
        .defaultValue(2.0)
        .usage("<seconds>")
        .errorTemplate("'{key}' must be a non-negative number of "
                       "seconds, got '{value}'");
    registry.parameter("starvation-tolerance", ParamKind::Double)
        .inRange(0.0, 1.0)
        .defaultValue(0.8)
        .usage("starvation-tolerance <fraction>")
        .errorTemplate("starvation-tolerance must be a fraction in "
                       "[0, 1], got '{value}'");
    registry.parameter("preemption-timeout", ParamKind::Double)
        .atLeast(0.0)
        .defaultValue(5.0)
        .usage("preemption-timeout <seconds>")
        .errorTemplate("'{key}' must be a non-negative number of "
                       "seconds, got '{value}'");

    // --- Structural directives -------------------------------------
    registry.parameter("cluster", ParamKind::Structural)
        .usage("cluster <registry-name>");
    registry.parameter("model", ParamKind::Structural)
        .usage("model <registry-name>");
    registry.parameter("planner", ParamKind::Structural)
        .usage("planner <registry-name>");
    registry.parameter("scheduler", ParamKind::Structural)
        .usage("scheduler <registry-name>");
    registry.parameter("system", ParamKind::Structural)
        .usage("system <label> <planner> <scheduler>");
    registry.parameter("scenario", ParamKind::Structural)
        .usage("scenario <kind> [key=value ...]");
    registry.parameter("tenant", ParamKind::Structural)
        .usage("tenant <name> [key=value ...]");

    // --- Scenario options (scoped by kind; order is pinned) --------
    registry.parameter("utilization", ParamKind::Double)
        .greaterThan(0.0)
        .scope("scenario:offline")
        .scope("scenario:online")
        .scope("scenario:bursty")
        .scope("scenario:churn");
    registry.parameter("multiplier", ParamKind::Double)
        .atLeast(1.0)
        .defaultValue(5.0)
        .scope("scenario:bursty");
    registry.parameter("burst", ParamKind::Double)
        .greaterThan(0.0)
        .defaultValue(30.0)
        .scope("scenario:bursty");
    registry.parameter("gap", ParamKind::Double)
        .greaterThan(0.0)
        .defaultValue(270.0)
        .scope("scenario:bursty");
    registry.parameter("node", ParamKind::Int)
        .atLeast(0.0)
        .scope("scenario:churn");
    registry.parameter("at", ParamKind::Double)
        .inRange(0.0, 1.0)
        .scope("scenario:churn");
    registry.parameter("online", ParamKind::Flag)
        .inRange(0.0, 1.0)
        .defaultValue(0.0)
        .scope("scenario:churn");
    registry.parameter("fail", ParamKind::Composite)
        .scope("scenario:churn");
    registry.parameter("recover", ParamKind::Composite)
        .scope("scenario:churn");
    registry.parameter("repair", ParamKind::Flag)
        .inRange(0.0, 1.0)
        .defaultValue(0.0)
        .scope("scenario:churn");
    registry.parameter("drift", ParamKind::Double)
        .inRangeHalfOpen(0.0, 1.0)
        .defaultValue(0.0)
        .scope("scenario:churn");
    registry.parameter("fraction", ParamKind::Double)
        .greaterThan(0.0)
        .defaultValue(0.75)
        .scope("scenario:online-peak");

    // --- Tenant options (fair-share serving) -----------------------
    registry.parameter("weight", ParamKind::Double)
        .greaterThan(0.0)
        .defaultValue(1.0)
        .scope("tenant")
        .errorTemplate(
            "tenant option 'weight' must be positive, got '{value}'");
    registry.parameter("mix", ParamKind::Double)
        .inRange(0.0, 1.0)
        .scope("tenant")
        .errorTemplate("tenant option 'mix' must be a fraction in "
                       "[0, 1], got '{value}'");
    registry.parameter("slo-ttft", ParamKind::Double)
        .greaterThan(0.0)
        .scope("tenant")
        .errorTemplate("tenant option '{key}' must be a positive "
                       "number of seconds, got '{value}'");
    registry.parameter("slo-tpot", ParamKind::Double)
        .greaterThan(0.0)
        .scope("tenant")
        .errorTemplate("tenant option '{key}' must be a positive "
                       "number of seconds, got '{value}'");

    return registry;
}

} // namespace

const ParamRegistry &
specParams()
{
    static const ParamRegistry registry = buildSpecParams();
    return registry;
}

} // namespace core
} // namespace helix
