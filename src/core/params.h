/**
 * @file
 * Validated configuration-parameter registry.
 *
 * Every knob the `experiment v1` spec grammar accepts — top-level
 * scalar directives, structural directives, scenario options, tenant
 * options — is declared exactly once here with its kind, range,
 * default, aliases, and pinned error-message template. Parse sites
 * (src/io/spec.cpp, src/exp/spec.cpp) resolve keys through the
 * registry instead of scattering string literals and ad-hoc range
 * checks; the helix-lint `param-registry` check enforces that no
 * spec-key literal is parsed outside it.
 *
 * The declaration idiom follows ytsaurus's
 * `RegisterParameter(...).InRange(...).Default(...).Alias(...)`
 * builder chain:
 *
 *   registry.parameter("sim-threads", ParamKind::Int)
 *       .atLeast(1)
 *       .defaultValue(1)
 *       .alias("simulation-threads")
 *       .usage("sim-threads <count>")
 *       .errorTemplate("sim-threads must be a positive integer, "
 *                      "got '{value}'");
 *
 * Error templates are pinned byte-for-byte by tests/test_spec.cpp:
 * migrating a knob onto the registry must not change the message an
 * invalid spec produces.
 */

#ifndef HELIX_CORE_PARAMS_H
#define HELIX_CORE_PARAMS_H

#include <deque>
#include <limits>
#include <string>
#include <vector>

namespace helix {
namespace core {

/** How a parameter's value token is parsed and checked. */
enum class ParamKind
{
    /** Free-form or enumerated text (see Param::oneOf). */
    String,
    /** Signed integer (range via atLeast/inRange). */
    Int,
    /** Unsigned 64-bit integer. */
    UInt64,
    /** Floating-point number (range via atLeast/inRange). */
    Double,
    /** 0/1 flag routed through the double-valued option table. */
    Flag,
    /** Composite value with its own grammar (e.g. <node>@<fraction>);
     *  the parse site owns the value check, the registry the key. */
    Composite,
    /** Structural directive introducing a record, not a scalar knob
     *  (cluster / model / system / scenario / tenant ...). */
    Structural,
};

/**
 * One declared parameter. Built via ParamRegistry::parameter()'s
 * chaining setters; immutable through the const accessors afterwards.
 */
class Param
{
  public:
    Param(std::string key, ParamKind kind, int order)
        : keyName(std::move(key)), paramKind(kind), declOrder(order)
    {
    }

    /** Inclusive range [lo, hi]. */
    Param &inRange(double lo, double hi);
    /** Half-open range [lo, hi). */
    Param &inRangeHalfOpen(double lo, double hi);
    /** Lower bound only, inclusive. */
    Param &atLeast(double lo);
    /** Lower bound only, exclusive. */
    Param &greaterThan(double lo);
    /** Default value (numeric kinds). */
    Param &defaultValue(double value);
    /** Default value (String kind). */
    Param &defaultText(std::string value);
    /** Accepted alternative spelling (repeatable). Aliases resolve to
     *  this parameter on lookup but never appear in key listings, so
     *  pinned "(known: ...)" messages are unchanged by new aliases. */
    Param &alias(std::string name);
    /** Scope this parameter is valid in (repeatable): "top" for
     *  top-level directives (the default when none is declared),
     *  "scenario:<kind>", or "tenant". */
    Param &scope(std::string name);
    /** Usage string for arity errors ("'key' needs N argument(s): "). */
    Param &usage(std::string text);
    /** Allowed values (String kind enumerations, e.g. csv|json). */
    Param &oneOf(std::vector<std::string> values);
    /**
     * Pinned error-message template for range/parse violations.
     * `{key}` and `{value}` are substituted by formatError().
     */
    Param &errorTemplate(std::string text);

    [[nodiscard]] const std::string &key() const { return keyName; }
    [[nodiscard]] ParamKind kind() const { return paramKind; }
    [[nodiscard]] int declarationOrder() const { return declOrder; }
    [[nodiscard]] const std::string &usageText() const { return use; }
    [[nodiscard]] bool hasDefault() const { return hasDefaultFlag; }
    [[nodiscard]] double defaultNumber() const { return defNumber; }
    [[nodiscard]] const std::string &defaultString() const
    {
        return defText;
    }
    [[nodiscard]] const std::vector<std::string> &aliases() const
    {
        return aliasNames;
    }
    [[nodiscard]] const std::vector<std::string> &scopes() const
    {
        return scopeNames;
    }
    [[nodiscard]] const std::vector<std::string> &allowedValues() const
    {
        return allowed;
    }
    [[nodiscard]] bool hasRange() const { return hasRangeFlag; }
    [[nodiscard]] double rangeLo() const { return lo; }
    [[nodiscard]] double rangeHi() const { return hi; }

    /** Whether this parameter is valid in @p scope_name. */
    [[nodiscard]] bool inScope(const std::string &scope_name) const;

    /** Whether @p value satisfies the declared range (always true
     *  when no range was declared). */
    [[nodiscard]] bool check(double value) const;

    /** Whether @p text is among the declared allowed values (always
     *  true when none were declared). */
    [[nodiscard]] bool checkText(const std::string &text) const;

    /** The pinned error message with {key}/{value} substituted. */
    [[nodiscard]] std::string formatError(const std::string &value) const;

  private:
    std::string keyName;
    ParamKind paramKind;
    int declOrder;
    std::string use;
    std::string errTemplate;
    std::string defText;
    std::vector<std::string> aliasNames;
    std::vector<std::string> scopeNames;
    std::vector<std::string> allowed;
    double defNumber = 0.0;
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool loExclusive = false;
    bool hiExclusive = false;
    bool hasRangeFlag = false;
    bool hasDefaultFlag = false;
};

/**
 * The registry: an ordered set of Param declarations with alias
 * resolution and scope queries. Declaration order is preserved so key
 * listings (and the pinned "(known: ...)" messages built from them)
 * are deterministic.
 */
class ParamRegistry
{
  public:
    /**
     * Declare a parameter. Throws std::logic_error when @p key (or a
     * previously declared alias) is already taken — duplicate
     * declarations are programming errors, caught by tests.
     */
    Param &parameter(const std::string &key, ParamKind kind);

    /** Look up by key or alias; nullptr when undeclared. */
    [[nodiscard]] const Param *find(const std::string &key_or_alias) const;

    /** Keys (never aliases) valid in @p scope_name, declaration
     *  order. */
    [[nodiscard]] std::vector<std::string> keysInScope(
        const std::string &scope_name) const;

    /** Every declared key, declaration order (tests, lint). */
    [[nodiscard]] std::vector<std::string> allKeys() const;

  private:
    [[nodiscard]] bool taken(const std::string &name) const;

    /** Deque: parameter() hands out references that must survive
     *  later declarations. */
    std::deque<Param> params;
};

/**
 * The singleton registry for the `experiment v1` spec grammar. All
 * spec knobs — including the tenant fair-share keys — are declared
 * here (src/core/params.cpp).
 */
[[nodiscard]] const ParamRegistry &specParams();

} // namespace core
} // namespace helix

#endif // HELIX_CORE_PARAMS_H
