/**
 * @file
 * Thread-context annotations for the concurrency surface.
 *
 * The sharded simulation executor (sim/executor.h) splits one run
 * across three execution contexts with strictly widening rights:
 *
 *  - **lane** — a shard worker executing one node lane's events in
 *    parallel with the other lanes. It may touch only the owning
 *    lane's node state and the message plumbing.
 *  - **coordinator** — the round-driver thread running the serial
 *    coordinator phase (admission, scheduling, token accounting,
 *    drift re-solves) while node lanes are parked between phases.
 *  - **churn barrier** — the round-driver thread inside a full
 *    barrier step (churn, preemption): every lane stopped, all state
 *    fully synchronized, exactly like the serial loop.
 *
 * The macros below expand to nothing; they exist so
 * ``tools/helix_analyze.py`` can propagate the declared context of
 * every entry point through an approximate call graph and reject any
 * reachable path where lane-context code calls or mutates
 * coordinator-confined state — the exact bug class the executor's
 * serial coordinator phase exists to prevent (check id
 * ``thread-context``; see docs/DEVELOPMENT.md).
 *
 * Placement: the macro goes on the declaration line (or the line
 * directly above it) of a member function or data member. Annotate
 * the base-class declaration of a virtual; overrides inherit it.
 */

#ifndef HELIX_CORE_ANNOTATIONS_H
#define HELIX_CORE_ANNOTATIONS_H

/**
 * Callable from (or mutable by) the coordinator phase and barrier
 * steps only — never from a node-lane shard worker. This is the
 * default home of scheduler feedback, admission, fair-share, and
 * live-topology state.
 */
#define HELIX_COORDINATOR_ONLY

/**
 * Safe in every context, including concurrently on shard workers:
 * the function touches only lane-owned node state, immutable
 * configuration, or the cross-lane message plumbing.
 */
#define HELIX_LANE_SAFE

/**
 * Callable only inside a full serial barrier (churn events,
 * preemption): the function tears down or rebuilds state spanning
 * multiple shards and requires every lane to be stopped and
 * synchronized.
 */
#define HELIX_CHURN_BARRIER_ONLY

/**
 * A context demultiplexer: the function routes each call or event to
 * its owning context (an event-kind switch, a tlsLane guard deferring
 * work to the coordinator phase, the round driver entering barrier /
 * coordinator phases). Static propagation STOPS here — the routing
 * itself is verified dynamically by the serial-vs-parallel
 * differential harness (tests/test_sim_differential.cpp), which is
 * byte-exact at every thread count.
 */
#define HELIX_CONTEXT_DISPATCH

#endif // HELIX_CORE_ANNOTATIONS_H
