#include "core/helix.h"

#include "util/logging.h"

namespace helix {

Deployment::Deployment(cluster::ClusterSpec cluster_spec,
                       model::TransformerSpec model_spec,
                       placement::Planner &planner,
                       cluster::CostModelParams cost_params)
    : cluster(std::move(cluster_spec)), model(std::move(model_spec)),
      prof(model, cost_params)
{
    replan(planner);
}

void
Deployment::replan(placement::Planner &planner)
{
    plan = planner.plan(cluster, prof);
    planner_name = planner.name();
    rebuildTopology();
}

void
Deployment::usePlacement(const placement::ModelPlacement &placement)
{
    plan = placement;
    planner_name = "external";
    rebuildTopology();
}

void
Deployment::rebuildTopology()
{
    placement::PlacementGraph graph(cluster, prof, plan);
    (void)graph.maxThroughput(); // prime flows before Topology copies
    topo = std::make_unique<scheduler::Topology>(cluster, prof, plan,
                                                 graph);
}

double
Deployment::plannedThroughput() const
{
    return topo->maxFlow();
}

const char *
toString(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Auto:    return "auto";
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Diurnal: return "diurnal";
      case ArrivalKind::Bursty:  return "bursty";
    }
    return "?";
}

const char *
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Helix:           return "helix";
      case SchedulerKind::Swarm:           return "swarm";
      case SchedulerKind::Random:          return "random";
      case SchedulerKind::ShortestQueue:   return "shortest-queue";
      case SchedulerKind::FixedRoundRobin: return "fixed-rr";
    }
    return "?";
}

std::unique_ptr<scheduler::RequestScheduler>
makeScheduler(const Deployment &deployment, SchedulerKind kind,
              scheduler::SchedulerConfig config)
{
    const scheduler::Topology &topo = deployment.topology();
    switch (kind) {
      case SchedulerKind::Helix:
        return std::make_unique<scheduler::HelixScheduler>(topo,
                                                           config);
      case SchedulerKind::Swarm:
        return std::make_unique<scheduler::WalkScheduler>(
            topo, scheduler::WalkPolicy::ThroughputProportional,
            config);
      case SchedulerKind::Random:
        return std::make_unique<scheduler::WalkScheduler>(
            topo, scheduler::WalkPolicy::Random, config);
      case SchedulerKind::ShortestQueue:
        return std::make_unique<scheduler::WalkScheduler>(
            topo, scheduler::WalkPolicy::ShortestQueue, config);
      case SchedulerKind::FixedRoundRobin: {
        auto pipelines = scheduler::derivePipelines(
            deployment.placement(),
            deployment.modelSpec().numLayers);
        return std::make_unique<scheduler::FixedPipelineScheduler>(
            topo, std::move(pipelines), config);
      }
    }
    HELIX_PANIC("unknown scheduler kind");
}

std::vector<trace::Request>
makeTrace(const Deployment &deployment, const RunConfig &config)
{
    double peak = deployment.plannedThroughput();
    double mean_request_tokens = config.lengths.targetMeanPrompt +
                                 config.lengths.targetMeanOutput;
    double utilization = config.utilization > 0.0
                             ? config.utilization
                             : (config.online ? 0.75 : 3.0);
    double rate = config.requestRate > 0.0
                      ? config.requestRate
                      : utilization * peak / mean_request_tokens;
    if (rate <= 0.0) {
        HELIX_WARN("deployment has zero planned throughput; "
                   "generating an empty trace");
        return {};
    }
    double duration =
        (config.warmupSeconds + config.measureSeconds) * 1.02;
    trace::TraceGenerator generator(config.seed, config.lengths);
    ArrivalKind kind = config.arrivals;
    if (kind == ArrivalKind::Auto)
        kind = config.online ? ArrivalKind::Diurnal
                             : ArrivalKind::Poisson;
    std::vector<trace::Request> requests;
    switch (kind) {
      case ArrivalKind::Diurnal: {
        trace::DiurnalArrivals arrivals(rate, 0.25, 1800.0);
        requests = generator.generate(duration, arrivals);
        break;
      }
      case ArrivalKind::Bursty: {
        // Solve for the base rate so the MMPP's long-run mean equals
        // the configured rate.
        double burst_frac =
            config.burstMeanS / (config.burstMeanS + config.burstGapS);
        double base = rate / (1.0 + burst_frac *
                                        (config.burstMultiplier - 1.0));
        trace::BurstyArrivals arrivals(base, config.burstMultiplier,
                                       config.burstMeanS,
                                       config.burstGapS);
        requests = generator.generate(duration, arrivals);
        break;
      }
      case ArrivalKind::Auto:
      case ArrivalKind::Poisson: {
        trace::PoissonArrivals arrivals(rate);
        requests = generator.generate(duration, arrivals);
        break;
      }
    }
    // Tenant labels, drawn from a DEDICATED forked stream (never the
    // generator's) and only when tenancy is active: arrival times and
    // lengths consume exactly the same draws as before, so traces of
    // runs without tenants (or with one) stay byte-identical.
    if (config.tenants.size() >= 2 && !requests.empty()) {
        // Mixes are all-or-none (the spec parser enforces it and that
        // they sum to 1); unset mixes fall back weight-proportional.
        std::vector<double> cumulative(config.tenants.size(), 0.0);
        bool explicit_mix = config.tenants.front().mix >= 0.0;
        double total = 0.0;
        for (const scheduler::Tenant &tenant : config.tenants)
            total += explicit_mix ? tenant.mix : tenant.weight;
        double acc = 0.0;
        for (size_t t = 0; t < config.tenants.size(); ++t) {
            acc += (explicit_mix ? config.tenants[t].mix
                                 : config.tenants[t].weight) /
                   total;
            cumulative[t] = acc;
        }
        Rng tenant_rng = Rng(config.seed).fork(0x74656e616e74ULL);
        for (trace::Request &req : requests) {
            double u = tenant_rng.nextDouble();
            int t = 0;
            while (t + 1 < static_cast<int>(cumulative.size()) &&
                   u >= cumulative[static_cast<size_t>(t)]) {
                ++t;
            }
            req.tenant = t;
        }
    }
    return requests;
}

sim::SimMetrics
runExperiment(const Deployment &deployment,
              scheduler::RequestScheduler &scheduler,
              const RunConfig &config)
{
    sim::SimConfig sim_config;
    sim_config.warmupSeconds = config.warmupSeconds;
    sim_config.measureSeconds = config.measureSeconds;
    sim_config.collectLinkStats = config.collectLinkStats;
    sim_config.failNodeIndex = config.failNodeIndex;
    sim_config.failAtSeconds = config.failAtSeconds;
    sim_config.churnEvents = config.churnEvents;
    sim_config.repairTopology = config.repairTopology;
    sim_config.driftThreshold = config.driftThreshold;
    sim_config.nodeSlowdown = config.nodeSlowdown;
    sim_config.simThreads = config.simThreads;
    sim_config.tenants = config.tenants;
    sim_config.starvationTolerance = config.starvationTolerance;
    sim_config.preemptionTimeoutS = config.preemptionTimeoutS;
    sim::ClusterSimulator simulator(
        deployment.clusterSpec(), deployment.profiler(),
        deployment.placement(), scheduler, sim_config);
    auto requests = makeTrace(deployment, config);
    return simulator.run(requests);
}

} // namespace helix
