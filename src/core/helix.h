/**
 * @file
 * Public facade of the Helix library.
 *
 * Typical usage (see examples/quickstart.cpp):
 *
 *   auto cluster = helix::cluster::setups::singleCluster24();
 *   auto model = helix::model::catalog::llama70b();
 *   helix::placement::HelixPlanner planner;
 *   auto deployment = helix::deploy(cluster, model, planner);
 *   auto scheduler = helix::makeScheduler(
 *       deployment, helix::SchedulerKind::Helix);
 *   auto metrics = helix::runExperiment(deployment, *scheduler, {});
 */

#ifndef HELIX_CORE_HELIX_H
#define HELIX_CORE_HELIX_H

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "placement/helix_planner.h"
#include "placement/planners.h"
#include "scheduler/fair_share.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helix {

/**
 * A planned deployment: the cluster, the model, the chosen placement,
 * and the solved topology (valid connections + max-flow values) that
 * schedulers consume. Self-contained value type.
 */
class Deployment
{
  public:
    /**
     * Plan a deployment of @p model on @p cluster using @p planner.
     */
    Deployment(cluster::ClusterSpec cluster_spec,
               model::TransformerSpec model_spec,
               placement::Planner &planner,
               cluster::CostModelParams cost_params = {});

    /** Re-plan with a different planner, keeping cluster and model. */
    void replan(placement::Planner &planner);

    /** Install an externally computed placement. */
    void usePlacement(const placement::ModelPlacement &placement);

    const cluster::ClusterSpec &clusterSpec() const { return cluster; }
    const model::TransformerSpec &modelSpec() const { return model; }
    const cluster::Profiler &profiler() const { return prof; }
    const placement::ModelPlacement &placement() const { return plan; }
    const scheduler::Topology &topology() const { return *topo; }

    /** Planner name used for the current placement. */
    const std::string &plannerName() const { return planner_name; }

    /** Planned peak serving throughput (max flow), tokens/s. */
    double plannedThroughput() const;

  private:
    void rebuildTopology();

    cluster::ClusterSpec cluster;
    model::TransformerSpec model;
    cluster::Profiler prof;
    placement::ModelPlacement plan;
    std::unique_ptr<scheduler::Topology> topo;
    std::string planner_name;
};

/** Which request scheduler to instantiate. */
enum class SchedulerKind
{
    Helix,
    Swarm,
    Random,
    ShortestQueue,
    FixedRoundRobin,
};

/** Human-readable name of a SchedulerKind. */
const char *toString(SchedulerKind kind);

/** Instantiate a scheduler bound to @p deployment's topology. */
std::unique_ptr<scheduler::RequestScheduler> makeScheduler(
    const Deployment &deployment, SchedulerKind kind,
    scheduler::SchedulerConfig config = {});

/** Arrival process shaping the generated trace. */
enum class ArrivalKind
{
    /** Derived from `online`: Diurnal when online, else Poisson. */
    Auto,
    Poisson,
    Diurnal,
    /** Markov-modulated Poisson bursts (trace::BurstyArrivals). */
    Bursty,
};

/** Human-readable name of an ArrivalKind. */
const char *toString(ArrivalKind kind);

/** End-to-end experiment configuration. */
struct RunConfig
{
    /** Online (diurnal arrivals at 75% peak) or offline (saturating). */
    bool online = false;
    /**
     * Arrival rate as a fraction of planned peak throughput. The
     * offline default (3.0) intentionally oversubscribes so a backlog
     * forms and admission is gated by the KV-cache mask, mirroring the
     * paper's "requests arrive at the rate needed to fully utilize the
     * cluster".
     */
    double utilization = 0.0; // 0 = default for the mode
    /**
     * Explicit arrival rate in requests/second; overrides utilization
     * when positive. Used by the online experiments, whose rate is
     * 75% of the measured offline peak (Sec. 6.2).
     */
    double requestRate = 0.0;
    double warmupSeconds = 60.0;
    double measureSeconds = 240.0;
    uint64_t seed = 42;
    bool collectLinkStats = false;
    trace::LengthModel lengths;
    /** Arrival process; Auto preserves the historical online/offline
     *  mapping (diurnal when online, Poisson otherwise). */
    ArrivalKind arrivals = ArrivalKind::Auto;
    /** Bursty-arrival parameters (ArrivalKind::Bursty): rate
     *  multiplier during a burst, mean burst and gap durations. The
     *  base rate is derived so the long-run mean matches the
     *  configured rate. */
    double burstMultiplier = 5.0;
    double burstMeanS = 30.0;
    double burstGapS = 270.0;
    /** Legacy single-failure churn forwarded to sim::SimConfig: node
     *  failNodeIndex fails at failAtSeconds. Negative = disabled. */
    int failNodeIndex = -1;
    double failAtSeconds = -1.0;
    /** Churn event schedule (fail/recover, absolute seconds),
     *  forwarded to sim::SimConfig::churnEvents. Each event re-solves
     *  max-flow on the surviving subgraph and swaps the fresh
     *  topology into the scheduler. */
    std::vector<sim::ChurnEvent> churnEvents;
    /** Re-solve churn events by warm-start incremental repair instead
     *  of cold re-solves (sim::SimConfig::repairTopology). */
    bool repairTopology = false;
    /** Drift-triggered re-solve threshold in (0, 1); 0 disables
     *  (sim::SimConfig::driftThreshold). */
    double driftThreshold = 0.0;
    /** Per-node batch slowdown multipliers modeling unprofiled
     *  degradation (sim::SimConfig::nodeSlowdown). */
    std::vector<double> nodeSlowdown;
    /** Worker threads for the sharded deterministic event loop
     *  (sim::SimConfig::simThreads). 1 = reference serial loop; any
     *  value yields byte-identical results. */
    int simThreads = 1;
    /** Tenant classes for fair-share serving. Two or more activate
     *  admission arbitration and tenant-labeled trace generation
     *  (sim::SimConfig::tenants); fewer keep the pre-tenancy path
     *  byte-identical. */
    std::vector<scheduler::Tenant> tenants;
    /** Fair-share starvation tolerance in [0, 1]
     *  (sim::SimConfig::starvationTolerance). */
    double starvationTolerance = 0.8;
    /** Continuous starvation seconds before a preemption
     *  (sim::SimConfig::preemptionTimeoutS). */
    double preemptionTimeoutS = 5.0;
};

/**
 * Generate a trace for @p deployment under @p config (arrival rate
 * derived from the planned throughput and the mean request length).
 */
std::vector<trace::Request> makeTrace(const Deployment &deployment,
                                      const RunConfig &config);

/** Simulate serving @p deployment with @p scheduler. */
sim::SimMetrics runExperiment(const Deployment &deployment,
                              scheduler::RequestScheduler &scheduler,
                              const RunConfig &config);

} // namespace helix

#endif // HELIX_CORE_HELIX_H
