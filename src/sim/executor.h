/**
 * @file
 * Sharded parallel executor for ClusterSimulator: conservative
 * (lookahead-based) parallel discrete-event simulation whose merged
 * outcome is byte-identical to the serial event loop at any thread
 * count.
 *
 * Design (see docs/ARCHITECTURE.md "Parallel simulation"):
 *
 *  - The compute nodes are partitioned into a FIXED number of shards
 *    (independent of the thread count), each with its own event queue
 *    and clock; the coordinator is a dedicated lane of its own.
 *  - Every cross-node effect in the simulator is a message with at
 *    least the minimum link propagation latency lambda of delay (the
 *    KvRelease event exists precisely to keep this true for KV
 *    reclamation at request completion). Events below the global safe
 *    horizon H = min(next event time) + lambda therefore cannot be
 *    affected by any event another shard still has to execute, and
 *    each round executes them in parallel (node lanes first, then the
 *    coordinator lane).
 *  - The coordinator phase replays per-shard NodeDelta logs, merged
 *    in the serial event order, into a mirror of the node states, so
 *    scheduler feedback (queue depth, EWMA throughput, KV occupancy)
 *    observes exactly the node events that precede the current
 *    coordinator event — the same values the serial loop would see.
 *  - Rounds never span a churn time: fail/recover events execute in a
 *    serial barrier step against fully-synchronized state, exactly
 *    like the serial loop.
 *  - Determinism does not depend on which worker runs which lane:
 *    event order is fixed by ClusterSimulator::eventBefore (time,
 *    then a content key), and shard count is a function of the
 *    cluster alone, so sim_threads 2, 4 and 8 execute structurally
 *    identical schedules.
 */

#ifndef HELIX_SIM_EXECUTOR_H
#define HELIX_SIM_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/annotations.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace helix {
namespace sim {

/**
 * Coordinator-visible snapshot of one node's state taken right after
 * one node-lane event executed, keyed by that event's position in the
 * serial order. The coordinator phase applies deltas with key < its
 * current event's key, which reconstructs the exact interleaving of
 * the serial loop.
 */
struct NodeDelta
{
    double time = 0.0;
    uint8_t kindRank = 0; // Event::Kind ordinal of the causing event
    int node = 0;
    int request = -1;
    int stage = 0;
    uint32_t epoch = 0;
    // Mirrored fields (everything SchedulerContext/tryAdmit reads).
    int inFlight = 0;
    bool busy = false;
    double kvUsed = 0.0;
    double ewmaThroughput = 0.0;
    double ewmaUpdatedAt = 0.0;
};

/**
 * Drift re-solve deferred from a shard worker to the coordinator
 * phase: the node-local precheck passed when a batch finished at
 * (time, node); the planned-vs-observed comparison and the topology
 * re-solve run on the round-driver thread, interleaved with the
 * coordinator's own events in serial event order (the causing
 * BatchDone's key).
 */
struct DriftProbe
{
    double time = 0.0;
    int node = 0;
    /** Speed EWMA sampled when the triggering batch completed. */
    double ewmaSpeed = 1.0;
};

/**
 * One shard of the partitioned event loop: a private event queue,
 * clock and sequence counter, plus the per-round logs exchanged at
 * barriers. Lane 0 is the coordinator (Arrival/TokenDelivery events,
 * scheduling, admission); lanes 1..S own disjoint subsets of the
 * compute nodes.
 */
class ParallelLane
{
  public:
    using Event = ClusterSimulator::Event;

    int id = 0;
    bool coordinator = false;
    double now = 0.0;
    uint64_t seq = 0;
    std::priority_queue<Event, std::vector<Event>,
                        ClusterSimulator::EventOrder>
        queue;
    /** Cross-lane events produced this round (delivery >= horizon);
     *  flushed into the target lanes at the round barrier. */
    std::vector<Event> outbox;
    /** Node-state snapshots after each event (node lanes only). */
    std::vector<NodeDelta> deltas;
    /** Drift re-solves deferred to the coordinator phase. */
    std::vector<DriftProbe> probes;
    /** Per-lane scratch for prompts deferred during batch assembly
     *  (the serial loop's deferredScratch, made shard-private). */
    std::vector<ClusterSimulator::WorkItem> scratch;
    /**
     * Per-lane random stream, split off the run seed via Rng::fork
     * with the lane id as the stream index. The deterministic event
     * order guarantees draws happen in the same sequence on every
     * run regardless of thread count. (The current node models are
     * fully deterministic and do not draw from it; stochastic node
     * models must use this stream, never a shared generator.)
     */
    Rng rng{0};

    /** Stamp the lane-local sequence number and enqueue. Lanes are
     *  shard-private, so only the owning context may push. */
    HELIX_LANE_SAFE
    void
    push(Event event)
    {
        event.seq = seq++;
        queue.push(event);
    }
};

/**
 * The round-based parallel executor. Constructed by
 * ClusterSimulator::run when SimConfig::simThreads > 1 and the
 * cluster has a positive minimum link latency; owns the worker pool
 * for the duration of one run.
 */
class ParallelExecutor
{
  public:
    /** Fixed shard-count cap: at most this many node lanes, however
     *  many threads are requested — thread count must not change the
     *  schedule's structure, only who executes it. */
    static constexpr int kMaxShards = 16;

    ParallelExecutor(ClusterSimulator &simulator, int num_threads,
                     double min_latency,
                     std::vector<ChurnEvent> churn_schedule,
                     double end_time);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Execute the full run (arrivals are already seeded). Drives
     *  every context: node phases, coordinator phases, barriers. */
    HELIX_CONTEXT_DISPATCH
    void run();

    /** Route a freshly scheduled event: own-lane events are pushed
     *  directly, cross-lane events go to the source lane's outbox
     *  (or straight to the target when no lane is executing, i.e.
     *  during a barrier step). */
    HELIX_LANE_SAFE
    void route(ClusterSimulator::Event event, ParallelLane *from);

    /** Coordinator-phase views of node state (mirror when active,
     *  live state during barrier steps and outside rounds). */
    HELIX_COORDINATOR_ONLY int viewInFlight(int node) const;
    HELIX_COORDINATOR_ONLY bool viewBusy(int node) const;
    HELIX_COORDINATOR_ONLY double viewKvUsed(int node) const;
    HELIX_COORDINATOR_ONLY double viewEwmaThroughput(int node) const;
    HELIX_COORDINATOR_ONLY double viewEwmaUpdatedAt(int node) const;

  private:
    using Event = ClusterSimulator::Event;

    /** Lane that executes @p event (0 = coordinator). */
    HELIX_LANE_SAFE
    int laneOf(const Event &event) const;

    /** Execute one lane's events below the round horizon. */
    HELIX_LANE_SAFE
    void runLane(ParallelLane &lane);

    /** Node-lane phase of one round (parallel across workers). */
    HELIX_LANE_SAFE
    void runNodePhase();

    /** Helper-thread loop: wait for a round, run assigned lanes. */
    HELIX_LANE_SAFE
    void workerLoop(int worker_index);

    /** Coordinator phase: replay deltas + probes in event order. */
    HELIX_COORDINATOR_ONLY
    void runCoordinatorPhase();

    /** Serial barrier step at churn time @p when: execute every
     *  event at exactly that time, plus the churn entries, in serial
     *  event order against fully-synchronized state. */
    HELIX_CHURN_BARRIER_ONLY
    void runBarrier(double when);

    /** Flush every lane's outbox into the target lanes. */
    void flushOutboxes();

    /** Re-seed the coordinator mirror from the live node states. */
    void refreshMirror();

    /** Apply merged deltas with key < (time, kind, node, request,
     *  stage, epoch) to the mirror. */
    void advanceMirror(double time, uint8_t kind_rank, int node,
                       int request, int stage, uint32_t epoch);

    ClusterSimulator &sim;
    double lambda;
    double endTime;
    std::vector<ChurnEvent> churn;
    size_t churnIdx = 0;
    /**
     * Fair-share Preempt events held by the executor instead of any
     * lane: a preemption tears down state across shards (KV at every
     * pipeline stage, queued work at live nodes), so it runs as a
     * serial barrier step exactly like churn — but its time is only
     * known when the coordinator schedules it (decision + lambda),
     * hence a dynamic list rather than a pre-sorted schedule.
     */
    std::vector<Event> pendingPreempts;

    std::vector<ParallelLane> lanes; // [0] = coordinator
    int numShards = 0;
    int numWorkers = 1;
    /** node -> lane id (1-based; lane 0 is the coordinator). */
    std::vector<int> laneOfNode;

    /** Exclusive time bound of the current round. */
    double horizon = 0.0;

    /** Coordinator mirror (see NodeDelta). */
    bool mirrorActive = false;
    std::vector<int> mirInFlight;
    std::vector<uint8_t> mirBusy;
    std::vector<double> mirKvUsed;
    std::vector<double> mirEwmaTp;
    std::vector<double> mirEwmaAt;
    std::vector<NodeDelta> mergedDeltas;
    std::vector<DriftProbe> mergedProbes;
    size_t deltaCursor = 0;

    // Worker pool: helpers park on cvStart between rounds; the main
    // (round-driver) thread acts as worker 0 and waits on cvDone.
    // The mutex hand-offs establish the happens-before edges between
    // the phases, so shard state written in phase A is visible to the
    // coordinator phase and vice versa.
    std::vector<std::thread> helpers;
    std::mutex poolMutex;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t roundGen = 0;
    int unfinished = 0;
    bool stopFlag = false;
};

} // namespace sim
} // namespace helix

#endif // HELIX_SIM_EXECUTOR_H
