#include "sim/simulator.h"

#include <algorithm>

#include "util/logging.h"

namespace helix {
namespace sim {

ClusterSimulator::ClusterSimulator(
    const cluster::ClusterSpec &cluster_spec,
    const cluster::Profiler &profiler_ref,
    const placement::ModelPlacement &placement_spec,
    scheduler::RequestScheduler &scheduler_ref, SimConfig config)
    : clusterRef(cluster_spec), profiler(profiler_ref),
      placementRef(placement_spec), sched(scheduler_ref), cfg(config)
{
    const int n = cluster_spec.numNodes();
    nodes.resize(n);
    for (int i = 0; i < n; ++i) {
        nodes[i].layersHeld = placement_spec[i].count;
        nodes[i].kvCapacity =
            placement_spec[i].count > 0
                ? static_cast<double>(profiler.kvCapacityBytes(
                      cluster_spec.node(i), placement_spec[i].count))
                : 0.0;
    }
    if (cfg.maxActiveRequests == 0) {
        // Derive the engine-level concurrency bound from aggregate KV
        // capacity: one request occupies (context x layers) KV token
        // slots spread over its pipeline.
        double token_layers = 0.0;
        for (const NodeState &state : nodes) {
            token_layers +=
                state.kvCapacity /
                profiler.modelSpec().kvBytesPerTokenPerLayer();
        }
        double per_request = profiler.params().planningContextLen *
                             profiler.modelSpec().numLayers;
        cfg.maxActiveRequests = std::max(
            1, static_cast<int>(token_layers / per_request));
    }

    side = n + 1;
    links.resize(static_cast<size_t>(side) * side);
    for (int from = cluster::kCoordinator; from < n; ++from) {
        for (int to = cluster::kCoordinator; to < n; ++to) {
            if (from == to)
                continue;
            LinkState &ls = linkState(from, to);
            ls.stat.from = from;
            ls.stat.to = to;
        }
    }
}

ClusterSimulator::LinkState &
ClusterSimulator::linkState(int from, int to)
{
    return links[static_cast<size_t>(from + 1) * side + (to + 1)];
}

void
ClusterSimulator::schedule(double when, Callback fn)
{
    HELIX_ASSERT(when >= now);
    events.push({when, eventSeq++, std::move(fn)});
}

bool
ClusterSimulator::inWindow(double t) const
{
    return t >= cfg.warmupSeconds &&
           t < cfg.warmupSeconds + cfg.measureSeconds;
}

double
ClusterSimulator::contextLen(const RequestState &rs) const
{
    return static_cast<double>(rs.request.promptLen + rs.generated);
}

int
ClusterSimulator::queueLength(int node) const
{
    return nodes[node].inFlight;
}

double
ClusterSimulator::recentThroughput(int node) const
{
    return nodes[node].ewmaThroughput;
}

double
ClusterSimulator::kvUsedBytes(int node) const
{
    return nodes[node].kvUsed;
}

void
ClusterSimulator::tryAdmit()
{
    while (!pending.empty()) {
        long active = metrics.requestsAdmitted -
                      metrics.requestsCompleted;
        if (cfg.maxActiveRequests > 0 &&
            active >= cfg.maxActiveRequests) {
            break; // Engine-level KV backpressure.
        }
        int idx = pending.front();
        RequestState &rs = requests[idx];
        auto pipeline = sched.schedule(rs.request, *this);
        if (!pipeline) {
            // Nothing admissible right now. If the cluster is
            // completely idle this request can never be served (it
            // exceeds every node's standalone capacity): reject it to
            // avoid blocking the queue forever.
            bool idle = true;
            for (const NodeState &node : nodes) {
                if (node.busy || node.inFlight > 0) {
                    idle = false;
                    break;
                }
            }
            long active = metrics.requestsAdmitted -
                          metrics.requestsCompleted;
            if (idle && active <= 0) {
                ++metrics.requestsRejected;
                pending.pop_front();
                continue;
            }
            break;
        }
        HELIX_ASSERT(scheduler::pipelineValid(
            *pipeline, profiler.modelSpec().numLayers));
        pending.pop_front();
        rs.pipeline = std::move(*pipeline);
        rs.admitted = true;
        ++metrics.requestsAdmitted;
        sched.onRequestAdmitted(rs.request, rs.pipeline);
        // Dispatch the prompt: the coordinator ships the token ids of
        // the prompt to the first stage.
        int first_node = rs.pipeline.front().node;
        double bytes = static_cast<double>(rs.request.promptLen) *
                       profiler.tokenBytes();
        WorkItem item{idx, 0, true, rs.request.promptLen};
        sendMessage(cluster::kCoordinator, first_node, bytes,
                    [this, first_node, item] {
                        enqueueWork(first_node, item);
                    });
    }
}

void
ClusterSimulator::sendMessage(int from, int to, double bytes,
                              Callback on_arrival)
{
    const cluster::LinkSpec &spec = clusterRef.link(from, to);
    LinkState &ls = linkState(from, to);
    // Interactive messages (single-token activations, output tokens)
    // ride a priority channel so they do not serialize behind bulk
    // prompt transfers, mirroring how real transports interleave
    // small messages with large streams.
    bool bulk = bytes > 16.0 * profiler.activationBytes();
    double &busy_until =
        bulk ? ls.bulkBusyUntil : ls.interactiveBusyUntil;
    double start = std::max(now, busy_until);
    double tx = bytes / spec.bytesPerSecond();
    busy_until = start + tx;
    double queue_delay = start - now;
    if (cfg.collectLinkStats) {
        ++ls.stat.transfers;
        ls.stat.totalBytes += bytes;
        ls.stat.busySeconds += tx;
        ls.stat.maxQueueDelayS =
            std::max(ls.stat.maxQueueDelayS, queue_delay);
        ls.stat.totalQueueDelayS += queue_delay;
    }
    schedule(start + tx + spec.latencyS, std::move(on_arrival));
}

void
ClusterSimulator::enqueueWork(int node, WorkItem item)
{
    NodeState &state = nodes[node];
    state.queue.push_back(item);
    ++state.inFlight;
    if (!state.busy)
        startBatch(node);
}

void
ClusterSimulator::startBatch(int node)
{
    NodeState &state = nodes[node];
    HELIX_ASSERT(!state.busy);
    HELIX_ASSERT(!state.queue.empty());

    // Best-effort dynamic batching with vLLM-style KV backpressure:
    // decode items always run; a prompt item joins the batch only if
    // the node's KV can hold the request's context (otherwise it waits
    // in the queue until completions free pages). A prompt is always
    // accepted on an otherwise-empty node so oversized requests make
    // progress (with the swap penalty) instead of deadlocking.
    const model::TransformerSpec &spec = profiler.modelSpec();
    std::vector<WorkItem> batch;
    std::deque<WorkItem> deferred;
    double reserved = 0.0;
    int token_budget = cfg.maxBatchTokens;
    while (!state.queue.empty() && token_budget > 0 &&
           static_cast<int>(batch.size()) < cfg.maxBatchRequests) {
        WorkItem item = state.queue.front();
        state.queue.pop_front();
        if (item.isPrompt) {
            const RequestState &rs = requests[item.request];
            // KV admission applies to the first chunk of a prompt
            // (when the request becomes resident on this node).
            bool first_chunk =
                item.numTokens == rs.request.promptLen;
            if (first_chunk) {
                double need =
                    (static_cast<double>(rs.request.promptLen) + 1.0) *
                    spec.kvBytesPerTokenPerLayer() *
                    rs.pipeline[item.stage].numLayers();
                bool node_empty =
                    state.kvUsed <= 0.0 && reserved <= 0.0;
                if (!node_empty &&
                    state.kvUsed + reserved + need >
                        state.kvCapacity) {
                    deferred.push_back(item);
                    continue;
                }
                reserved += need;
            }
            if (item.numTokens > token_budget) {
                // Chunked prefill: run what fits, leave the rest at
                // the head of the queue for the next iteration.
                WorkItem chunk = item;
                chunk.numTokens = token_budget;
                chunk.finalChunk = false;
                item.numTokens -= token_budget;
                state.queue.push_front(item);
                batch.push_back(chunk);
                token_budget = 0;
                break;
            }
            token_budget -= item.numTokens;
        } else {
            token_budget -= 1;
        }
        batch.push_back(item);
    }
    // Put deferred prompts back at the front, preserving arrival
    // order (ahead of any split remainder they preceded).
    while (!deferred.empty()) {
        state.queue.push_front(deferred.back());
        deferred.pop_back();
    }
    if (batch.empty())
        return; // All queued prompts are waiting for KV pages.
    state.busy = true;

    // Roofline batch time: all FLOPs at mfu, one pass over resident
    // weights, plus KV reads for decode items.
    const cluster::NodeSpec &hw = clusterRef.node(node);
    const cluster::CostModelParams &cost = profiler.params();
    double eff_flops = hw.totalTflops() * 1e12 * cost.mfu;
    double eff_bw = hw.totalMemBandwidthGBs() * 1e9 *
                    cost.memBwEfficiency;
    double compute_s = 0.0;
    double kv_bytes = 0.0;
    for (const WorkItem &item : batch) {
        const RequestState &rs = requests[item.request];
        const scheduler::PipelineStage &stage =
            rs.pipeline[item.stage];
        double ctx = contextLen(rs);
        double flops_per_token =
            spec.flopsPerTokenPerLayer() +
            spec.attentionFlopsPerToken(static_cast<int>(
                item.isPrompt ? ctx / 2 : ctx));
        compute_s += static_cast<double>(item.numTokens) *
                     stage.numLayers() * flops_per_token / eff_flops;
        if (!item.isPrompt) {
            kv_bytes += ctx * spec.kvBytesPerTokenPerLayer() *
                        stage.numLayers();
        }
    }
    double weight_bytes =
        static_cast<double>(spec.layerBytes()) * state.layersHeld;
    double memory_s = (weight_bytes + kv_bytes) / eff_bw;
    double batch_s = std::max(compute_s, memory_s) +
                     cost.iterationOverheadS;

    // KV oversubscription: model paging to host memory as a slowdown.
    if (state.kvCapacity > 0.0 && state.kvUsed > state.kvCapacity) {
        double over = state.kvUsed / state.kvCapacity - 1.0;
        batch_s *= 1.0 + cfg.kvSwapPenalty * over;
    }

    // Sample KV utilization for metrics.
    if (state.kvCapacity > 0.0 && inWindow(now)) {
        state.utilSum += state.kvUsed / state.kvCapacity;
        ++state.utilSamples;
    }

    schedule(now + batch_s,
             [this, node, items = std::move(batch), batch_s]() mutable {
                 finishBatch(node, std::move(items), batch_s);
             });
}

void
ClusterSimulator::finishBatch(int node, std::vector<WorkItem> items,
                              double batch_seconds)
{
    NodeState &state = nodes[node];
    state.busy = false;

    const model::TransformerSpec &spec = profiler.modelSpec();
    long tokens_processed = 0;
    for (const WorkItem &item : items) {
        RequestState &rs = requests[item.request];
        const scheduler::PipelineStage &stage =
            rs.pipeline[item.stage];
        tokens_processed += item.numTokens;

        // KV written by this stage: the processed prompt chunk during
        // the prompt phase, one token per decode iteration.
        state.kvUsed += static_cast<double>(item.numTokens) *
                        spec.kvBytesPerTokenPerLayer() *
                        stage.numLayers();

        if (!item.finalChunk) {
            // Intermediate prefill chunk: the request stays at this
            // node; its remainder is already queued.
            continue;
        }
        --state.inFlight;

        bool last_stage =
            item.stage + 1 == static_cast<int>(rs.pipeline.size());
        if (last_stage) {
            int req = item.request;
            sendMessage(node, cluster::kCoordinator,
                        profiler.tokenBytes(),
                        [this, req] { onTokenAtCoordinator(req); });
        } else {
            const scheduler::PipelineStage &next =
                rs.pipeline[item.stage + 1];
            // A prompt forwards in full once its last chunk finishes
            // here (earlier chunks produced activations that are
            // shipped together with the final one).
            int tokens = item.isPrompt ? rs.request.promptLen
                                       : item.numTokens;
            WorkItem forwarded{item.request, item.stage + 1,
                               item.isPrompt, tokens};
            double bytes = static_cast<double>(tokens) *
                           profiler.activationBytes();
            int to = next.node;
            sendMessage(node, to, bytes, [this, to, forwarded] {
                enqueueWork(to, forwarded);
            });
        }
        if (item.isPrompt && last_stage && inWindow(now))
            metrics.promptTokensInWindow += rs.request.promptLen;
    }
    ++state.batches;
    state.itemsProcessed += static_cast<long>(items.size());
    state.tokensProcessed += tokens_processed;
    state.busySeconds += batch_seconds;

    // Exponentially weighted throughput estimate, consumed by the
    // Swarm-style scheduler baseline.
    double rate =
        static_cast<double>(tokens_processed) / batch_seconds;
    state.ewmaThroughput = 0.8 * state.ewmaThroughput + 0.2 * rate;

    if (!state.queue.empty())
        startBatch(node);
}

void
ClusterSimulator::onTokenAtCoordinator(int request)
{
    RequestState &rs = requests[request];
    ++rs.generated;
    if (rs.firstTokenTime < 0.0) {
        rs.firstTokenTime = now;
        if (inWindow(now)) {
            metrics.promptLatency.add(now - rs.request.arrivalS);
        }
    } else if (inWindow(now)) {
        ++metrics.decodeTokensInWindow;
    }

    if (rs.generated >= rs.request.outputLen) {
        // Request complete: release KV on every stage.
        rs.finishTime = now;
        ++metrics.requestsCompleted;
        const model::TransformerSpec &spec = profiler.modelSpec();
        for (const scheduler::PipelineStage &stage : rs.pipeline) {
            double bytes = contextLen(rs) *
                           spec.kvBytesPerTokenPerLayer() *
                           stage.numLayers();
            nodes[stage.node].kvUsed =
                std::max(0.0, nodes[stage.node].kvUsed - bytes);
        }
        sched.onRequestFinished(rs.request, rs.pipeline);
        if (rs.request.outputLen > 1 && inWindow(rs.finishTime)) {
            metrics.decodeLatency.add(
                (rs.finishTime - rs.firstTokenTime) /
                (rs.request.outputLen - 1));
        }
        // Freed KV pages may unblock prompts waiting at these nodes.
        for (const scheduler::PipelineStage &stage : rs.pipeline) {
            NodeState &state = nodes[stage.node];
            if (!state.busy && !state.queue.empty())
                startBatch(stage.node);
        }
        tryAdmit();
        return;
    }

    // Schedule the next decode iteration over the same pipeline: the
    // coordinator sends the newly sampled token to the first stage.
    int first_node = rs.pipeline.front().node;
    WorkItem item{request, 0, false, 1};
    sendMessage(cluster::kCoordinator, first_node,
                profiler.tokenBytes(), [this, first_node, item] {
                    enqueueWork(first_node, item);
                });
}

SimMetrics
ClusterSimulator::run(const std::vector<trace::Request> &request_list)
{
    metrics = SimMetrics{};
    requests.clear();
    requests.reserve(request_list.size());
    for (const trace::Request &req : request_list) {
        RequestState rs;
        rs.request = req;
        requests.push_back(std::move(rs));
    }

    for (size_t i = 0; i < requests.size(); ++i) {
        double at = requests[i].request.arrivalS;
        int idx = static_cast<int>(i);
        schedule(std::max(at, 0.0), [this, idx] {
            ++metrics.requestsArrived;
            pending.push_back(idx);
            tryAdmit();
        });
    }

    const double end_time = cfg.warmupSeconds + cfg.measureSeconds;
    while (!events.empty()) {
        const Event &top = events.top();
        if (top.time > end_time)
            break;
        now = top.time;
        Callback fn = std::move(const_cast<Event &>(top).fn);
        events.pop();
        fn();
    }
    // Drain the queue so a reused simulator starts clean.
    while (!events.empty())
        events.pop();

    metrics.simulatedSeconds = cfg.measureSeconds;
    metrics.decodeThroughput =
        static_cast<double>(metrics.decodeTokensInWindow) /
        cfg.measureSeconds;
    metrics.promptThroughput =
        static_cast<double>(metrics.promptTokensInWindow) /
        cfg.measureSeconds;
    double util = 0.0;
    int counted = 0;
    for (const NodeState &state : nodes) {
        if (state.utilSamples > 0) {
            util += state.utilSum /
                    static_cast<double>(state.utilSamples);
            ++counted;
        }
    }
    metrics.avgKvUtilization = counted > 0 ? util / counted : 0.0;
    metrics.nodeStats.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const NodeState &state = nodes[i];
        SimMetrics::NodeStat &stat = metrics.nodeStats[i];
        stat.batches = state.batches;
        stat.itemsProcessed = state.itemsProcessed;
        stat.tokensProcessed = state.tokensProcessed;
        stat.busySeconds = state.busySeconds;
        stat.kvUtilization =
            state.utilSamples > 0
                ? state.utilSum / static_cast<double>(state.utilSamples)
                : 0.0;
    }
    if (cfg.collectLinkStats) {
        for (const LinkState &ls : links) {
            if (ls.stat.transfers > 0)
                metrics.linkStats.push_back(ls.stat);
        }
    }
    return metrics;
}

} // namespace sim
} // namespace helix
