#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scheduler/topology_manager.h"
#include "sim/executor.h"
#include "util/logging.h"

namespace helix {
namespace sim {

thread_local ParallelLane *ClusterSimulator::tlsLane = nullptr;

void
ClusterSimulator::setTlsLane(ParallelLane *lane)
{
    tlsLane = lane;
}

const char *
toString(ChurnEvent::Kind kind)
{
    switch (kind) {
      case ChurnEvent::Kind::Fail:    return "fail";
      case ChurnEvent::Kind::Recover: return "recover";
      case ChurnEvent::Kind::Drift:   return "drift";
    }
    return "?";
}

const char *
toString(ResolveKind kind)
{
    switch (kind) {
      case ResolveKind::Cold:   return "cold";
      case ResolveKind::Repair: return "repair";
      case ResolveKind::Drift:  return "drift";
    }
    return "?";
}

ClusterSimulator::ClusterSimulator(
    const cluster::ClusterSpec &cluster_spec,
    const cluster::Profiler &profiler_ref,
    const placement::ModelPlacement &placement_spec,
    scheduler::RequestScheduler &scheduler_ref, SimConfig config)
    : clusterRef(cluster_spec), profiler(profiler_ref),
      placementRef(placement_spec), sched(scheduler_ref), cfg(config)
{
    const int n = cluster_spec.numNodes();
    nodes.resize(n);
    for (int i = 0; i < n; ++i) {
        nodes[i].layersHeld = placement_spec[i].count;
        nodes[i].kvCapacity =
            placement_spec[i].count > 0
                ? static_cast<double>(profiler.kvCapacityBytes(
                      cluster_spec.node(i), placement_spec[i].count))
                : 0.0;
        nodes[i].running.reserve(
            static_cast<size_t>(std::max(1, cfg.maxBatchRequests)));
    }
    if (cfg.maxActiveRequests == 0) {
        // Derive the engine-level concurrency bound from aggregate KV
        // capacity: one request occupies (context x layers) KV token
        // slots spread over its pipeline.
        double token_layers = 0.0;
        for (const NodeState &state : nodes) {
            token_layers +=
                state.kvCapacity /
                profiler.modelSpec().kvBytesPerTokenPerLayer();
        }
        double per_request = profiler.params().planningContextLen *
                             profiler.modelSpec().numLayers;
        cfg.maxActiveRequests = std::max(
            1, static_cast<int>(token_layers / per_request));
    }

    side = n + 1;
    links.resize(static_cast<size_t>(side) * side);
    for (int from = cluster::kCoordinator; from < n; ++from) {
        for (int to = cluster::kCoordinator; to < n; ++to) {
            if (from == to)
                continue;
            LinkState &ls = linkState(from, to);
            ls.stat.from = from;
            ls.stat.to = to;
            const cluster::LinkSpec &spec = cluster_spec.link(from, to);
            ls.bytesPerSecond = spec.bytesPerSecond();
            ls.latencyS = spec.latencyS;
        }
    }
}

ClusterSimulator::~ClusterSimulator() = default;

ClusterSimulator::LinkState &
ClusterSimulator::linkState(int from, int to)
{
    return links[static_cast<size_t>(from + 1) * side + (to + 1)];
}

bool
ClusterSimulator::eventBefore(const Event &a, const Event &b)
{
    // helix-lint: allow(float-eq) exact-time ties are real (symmetric workloads produce them) and fall through to the content key
    if (a.time != b.time)
        return a.time < b.time;
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    if (a.node != b.node)
        return a.node < b.node;
    if (a.item.request != b.item.request)
        return a.item.request < b.item.request;
    if (a.item.stage != b.item.stage)
        return a.item.stage < b.item.stage;
    if (a.item.epoch != b.item.epoch)
        return a.item.epoch < b.item.epoch;
    // Unreachable for distinct coexisting events (see the declaration
    // comment); kept so the order stays total for duplicates, e.g. two
    // identical churn entries in the schedule.
    return a.seq < b.seq;
}

double
ClusterSimulator::curTime() const
{
    return (par != nullptr && tlsLane != nullptr) ? tlsLane->now : now;
}

void
ClusterSimulator::scheduleEvent(double when, Event event)
{
    HELIX_ASSERT(when >= curTime());
    event.time = when;
    if (par != nullptr) {
        par->route(event, tlsLane);
        return;
    }
    event.seq = eventSeq++;
    events.push(event);
}

bool
ClusterSimulator::inWindow(double t) const
{
    return t >= cfg.warmupSeconds &&
           t < cfg.warmupSeconds + cfg.measureSeconds;
}

double
ClusterSimulator::contextLen(const RequestState &rs) const
{
    return static_cast<double>(rs.request.promptLen + rs.generated);
}

int
ClusterSimulator::nodeInFlightView(int node) const
{
    return par != nullptr ? par->viewInFlight(node)
                          : nodes[node].inFlight;
}

bool
ClusterSimulator::nodeBusyView(int node) const
{
    return par != nullptr ? par->viewBusy(node) : nodes[node].busy;
}

int
ClusterSimulator::queueLength(int node) const
{
    return nodeInFlightView(node);
}

double
ClusterSimulator::recentThroughput(int node) const
{
    // Decay the estimate by the time elapsed since the last batch on
    // the same tau the EWMA itself uses. Without this, a node that
    // went quiet (idle, masked, or dead) keeps reporting its last
    // busy-period rate forever, and the Swarm-style throughput-
    // proportional walker keeps over-weighting it.
    double ewma_tp = par != nullptr ? par->viewEwmaThroughput(node)
                                    : nodes[node].ewmaThroughput;
    if (ewma_tp <= 0.0)
        return 0.0;
    double ewma_at = par != nullptr ? par->viewEwmaUpdatedAt(node)
                                    : nodes[node].ewmaUpdatedAt;
    double tau = std::max(1e-9, cfg.throughputEwmaTauS);
    double idle = std::max(0.0, curTime() - ewma_at);
    return ewma_tp * std::exp(-idle / tau);
}

double
ClusterSimulator::kvUsedBytes(int node) const
{
    return par != nullptr ? par->viewKvUsed(node) : nodes[node].kvUsed;
}

bool
ClusterSimulator::nodeAlive(int node) const
{
    return !nodes[node].dead;
}

void
ClusterSimulator::tryAdmit()
{
    if (fair != nullptr) {
        // Tenancy active: admission is arbitrated per tenant class.
        // The single-queue loop below stays byte-identical for runs
        // without tenants.
        tryAdmitFair();
        return;
    }
    while (!pending.empty()) {
        long active = metrics.requestsAdmitted -
                      metrics.requestsCompleted;
        if (cfg.maxActiveRequests > 0 &&
            active >= cfg.maxActiveRequests) {
            break; // Engine-level KV backpressure.
        }
        int idx = pending.front();
        RequestState &rs = requests[idx];
        auto pipeline = sched.schedule(rs.request, *this);
        if (!pipeline) {
            // Nothing admissible right now. If the cluster is
            // completely idle AND fully alive, this request can never
            // be served (it exceeds every node's standalone
            // capacity): reject it to avoid blocking the queue
            // forever. With a dead node the inference does not hold —
            // a scheduled recover event may restore the missing stage
            // — so the backlog is held instead of rejected.
            bool idle = true;
            bool any_dead = false;
            for (size_t node = 0; node < nodes.size(); ++node) {
                // Busy/in-flight go through the coordinator view so the
                // parallel executor answers with the mirror (the state
                // as of the node events that precede this coordinator
                // event); `dead` only changes at barriers and is safe
                // to read live.
                if (nodes[node].dead) {
                    any_dead = true;
                } else if (nodeBusyView(static_cast<int>(node)) ||
                           nodeInFlightView(static_cast<int>(node)) >
                               0) {
                    idle = false;
                    break;
                }
            }
            long still_active = metrics.requestsAdmitted -
                                metrics.requestsCompleted;
            if (idle && !any_dead && still_active <= 0) {
                ++metrics.requestsRejected;
                pending.pop_front();
                continue;
            }
            break;
        }
        HELIX_ASSERT(scheduler::pipelineValid(
            *pipeline, profiler.modelSpec().numLayers));
        pending.pop_front();
        rs.pipeline = std::move(*pipeline);
        rs.kvWritten.assign(rs.pipeline.size(), 0.0);
        rs.admitted = true;
        ++metrics.requestsAdmitted;
        sched.onRequestAdmitted(rs.request, rs.pipeline);
        // Dispatch the prompt: the coordinator ships the token ids of
        // the prompt to the first stage.
        int first_node = rs.pipeline.front().node;
        double bytes = static_cast<double>(rs.request.promptLen) *
                       profiler.tokenBytes();
        Event ev;
        ev.kind = Event::Kind::WorkDelivery;
        ev.node = first_node;
        ev.item = WorkItem{idx, 0, rs.request.promptLen, rs.epoch,
                           true, true};
        scheduleEvent(
            transferDelivery(cluster::kCoordinator, first_node, bytes),
            ev);
    }
}

int
ClusterSimulator::tenantOf(int request_index) const
{
    const int t =
        requests[static_cast<size_t>(request_index)].request.tenant;
    if (fair == nullptr || t < 0 || t >= fair->numTenants())
        return 0;
    return t;
}

void
ClusterSimulator::tryAdmitFair()
{
    const double tnow = curTime();
    for (;;) {
        long active = metrics.requestsAdmitted -
                      metrics.requestsCompleted;
        if (cfg.maxActiveRequests > 0 &&
            active >= cfg.maxActiveRequests) {
            break; // Engine-level KV backpressure.
        }
        // The most under-share demanding tenant goes first; tenants
        // over share beyond tolerance are held while anyone else sits
        // below share (weighted max-min, scheduler/fair_share.h).
        int idx = fair->popNext(tnow);
        if (idx < 0)
            break; // Every queue is empty or held.
        int t = tenantOf(idx);
        RequestState &rs = requests[static_cast<size_t>(idx)];
        auto pipeline = sched.schedule(rs.request, *this);
        if (!pipeline) {
            // Same can-never-serve inference as the single-queue
            // path: reject only when the idle, fully-alive cluster
            // provably cannot serve this request; otherwise hold the
            // backlog (head of its tenant's queue).
            bool idle = true;
            bool any_dead = false;
            for (size_t node = 0; node < nodes.size(); ++node) {
                if (nodes[node].dead) {
                    any_dead = true;
                } else if (nodeBusyView(static_cast<int>(node)) ||
                           nodeInFlightView(static_cast<int>(node)) >
                               0) {
                    idle = false;
                    break;
                }
            }
            long still_active = metrics.requestsAdmitted -
                                metrics.requestsCompleted;
            if (idle && !any_dead && still_active <= 0) {
                ++metrics.requestsRejected;
                ++metrics.tenantStats[static_cast<size_t>(t)]
                      .requestsRejected;
                continue;
            }
            fair->requeueFront(t, idx);
            break;
        }
        HELIX_ASSERT(scheduler::pipelineValid(
            *pipeline, profiler.modelSpec().numLayers));
        rs.pipeline = std::move(*pipeline);
        rs.kvWritten.assign(rs.pipeline.size(), 0.0);
        rs.admitted = true;
        ++metrics.requestsAdmitted;
        ++metrics.tenantStats[static_cast<size_t>(t)]
              .requestsAdmitted;
        fair->onAdmitted(t);
        sched.onRequestAdmitted(rs.request, rs.pipeline);
        int first_node = rs.pipeline.front().node;
        double bytes = static_cast<double>(rs.request.promptLen) *
                       profiler.tokenBytes();
        Event ev;
        ev.kind = Event::Kind::WorkDelivery;
        ev.node = first_node;
        ev.item = WorkItem{idx, 0, rs.request.promptLen, rs.epoch,
                           true, true};
        scheduleEvent(
            transferDelivery(cluster::kCoordinator, first_node, bytes),
            ev);
    }
    maybeSchedulePreempt();
}

void
ClusterSimulator::maybeSchedulePreempt()
{
    if (fair == nullptr)
        return;
    const double tnow = curTime();
    int victim_class = fair->checkPreemption(tnow);
    if (victim_class < 0)
        return;
    // Newest admitted request of the victim class (LIFO victim
    // choice, like ytsaurus's preempt-newest-jobs: the newest request
    // has the least sunk prefill work to throw away). Request indices
    // follow arrival order, so scan from the back.
    int victim = -1;
    for (size_t i = requests.size(); i > 0; --i) {
        const RequestState &rs = requests[i - 1];
        if (!rs.admitted || rs.finished || rs.preemptScheduled)
            continue;
        if (tenantOf(static_cast<int>(i - 1)) != victim_class)
            continue;
        victim = static_cast<int>(i - 1);
        break;
    }
    if (victim < 0)
        return;
    requests[static_cast<size_t>(victim)].preemptScheduled = true;
    // One preemption delay out: far enough that the parallel
    // executor's current round (horizon <= decision time + lambda)
    // never straddles it, so the preemption runs as a serial barrier
    // in every mode.
    Event ev;
    ev.kind = Event::Kind::Preempt;
    ev.item.request = victim;
    ev.item.epoch = requests[static_cast<size_t>(victim)].epoch;
    scheduleEvent(tnow + preemptDelayS, ev);
}

void
ClusterSimulator::applyPreempt(const Event &event)
{
    const int idx = event.item.request;
    RequestState &rs = requests[static_cast<size_t>(idx)];
    rs.preemptScheduled = false;
    if (rs.finished || !rs.admitted || rs.epoch != event.item.epoch)
        return; // Finished or torn down since the decision: stale.
    const int t = tenantOf(idx);
    restartRequest(idx, -1);
    ++metrics.requestsPreempted;
    ++metrics.tenantStats[static_cast<size_t>(t)].requestsPreempted;
    purgeStaleQueuedWork();
    // Head of its tenant's queue: the request is re-admitted first
    // once its tenant is back within share.
    fair->requeueFront(t, idx);
    tryAdmit();
}

double
ClusterSimulator::transferDelivery(int from, int to, double bytes)
{
    LinkState &ls = linkState(from, to);
    // Interactive messages (single-token activations, output tokens)
    // ride a priority channel so they do not serialize behind bulk
    // prompt transfers, mirroring how real transports interleave
    // small messages with large streams.
    bool bulk = bytes > 16.0 * profiler.activationBytes();
    double &busy_until =
        bulk ? ls.bulkBusyUntil : ls.interactiveBusyUntil;
    const double tnow = curTime();
    double start = std::max(tnow, busy_until);
    double tx = bytes / ls.bytesPerSecond;
    busy_until = start + tx;
    if (cfg.collectLinkStats) {
        double queue_delay = start - tnow;
        ++ls.stat.transfers;
        ls.stat.totalBytes += bytes;
        ls.stat.busySeconds += tx;
        ls.stat.maxQueueDelayS =
            std::max(ls.stat.maxQueueDelayS, queue_delay);
        ls.stat.totalQueueDelayS += queue_delay;
    }
    return start + tx + ls.latencyS;
}

void
ClusterSimulator::enqueueWork(int node, const WorkItem &item)
{
    NodeState &state = nodes[node];
    if (state.dead || requests[item.request].epoch != item.epoch)
        return; // Stale delivery from before a node failure.
    state.queue.push_back(item);
    ++state.inFlight;
    if (!state.busy)
        startBatch(node);
}

void
ClusterSimulator::startBatch(int node)
{
    NodeState &state = nodes[node];
    HELIX_ASSERT(!state.busy);
    HELIX_ASSERT(!state.queue.empty());
    HELIX_ASSERT(state.running.empty());

    // Best-effort dynamic batching with vLLM-style KV backpressure:
    // decode items always run; a prompt item joins the batch only if
    // the node's KV can hold the request's context (otherwise it waits
    // in the queue until completions free pages). A prompt is always
    // accepted on an otherwise-empty node so oversized requests make
    // progress (with the swap penalty) instead of deadlocking.
    const model::TransformerSpec &spec = profiler.modelSpec();
    std::vector<WorkItem> &batch = state.running;
    // Deferred-prompt scratch must be shard-private when batches are
    // assembled concurrently on worker threads.
    std::vector<WorkItem> &deferred =
        (par != nullptr && tlsLane != nullptr) ? tlsLane->scratch
                                               : deferredScratch;
    deferred.clear();
    double reserved = 0.0;
    int token_budget = cfg.maxBatchTokens;
    while (!state.queue.empty() && token_budget > 0 &&
           static_cast<int>(batch.size()) < cfg.maxBatchRequests) {
        WorkItem item = state.queue.front();
        state.queue.pop_front();
        if (item.isPrompt) {
            const RequestState &rs = requests[item.request];
            // KV admission applies to the first chunk of a prompt
            // (when the request becomes resident on this node).
            bool first_chunk =
                item.numTokens == rs.request.promptLen;
            if (first_chunk) {
                double need =
                    (static_cast<double>(rs.request.promptLen) + 1.0) *
                    spec.kvBytesPerTokenPerLayer() *
                    rs.pipeline[item.stage].numLayers();
                bool node_empty =
                    state.kvUsed <= 0.0 && reserved <= 0.0;
                if (!node_empty &&
                    state.kvUsed + reserved + need >
                        state.kvCapacity) {
                    deferred.push_back(item);
                    continue;
                }
                reserved += need;
            }
            if (item.numTokens > token_budget) {
                // Chunked prefill: run what fits, leave the rest at
                // the head of the queue for the next iteration.
                WorkItem chunk = item;
                chunk.numTokens = token_budget;
                chunk.finalChunk = false;
                item.numTokens -= token_budget;
                state.queue.push_front(item);
                batch.push_back(chunk);
                token_budget = 0;
                break;
            }
            token_budget -= item.numTokens;
        } else {
            token_budget -= 1;
        }
        batch.push_back(item);
    }
    // Put deferred prompts back at the front, preserving arrival
    // order (ahead of any split remainder they preceded).
    for (size_t i = deferred.size(); i > 0; --i)
        state.queue.push_front(deferred[i - 1]);
    if (batch.empty())
        return; // All queued prompts are waiting for KV pages.
    state.busy = true;

    // Roofline batch time: all FLOPs at mfu, one pass over resident
    // weights, plus KV reads for decode items.
    const cluster::NodeSpec &hw = clusterRef.node(node);
    const cluster::CostModelParams &cost = profiler.params();
    double eff_flops = hw.totalTflops() * 1e12 * cost.mfu;
    double eff_bw = hw.totalMemBandwidthGBs() * 1e9 *
                    cost.memBwEfficiency;
    double compute_s = 0.0;
    double kv_bytes = 0.0;
    for (const WorkItem &item : batch) {
        const RequestState &rs = requests[item.request];
        const scheduler::PipelineStage &stage =
            rs.pipeline[item.stage];
        double ctx = contextLen(rs);
        double flops_per_token =
            spec.flopsPerTokenPerLayer() +
            spec.attentionFlopsPerToken(static_cast<int>(
                item.isPrompt ? ctx / 2 : ctx));
        compute_s += static_cast<double>(item.numTokens) *
                     stage.numLayers() * flops_per_token / eff_flops;
        if (!item.isPrompt) {
            kv_bytes += ctx * spec.kvBytesPerTokenPerLayer() *
                        stage.numLayers();
        }
    }
    double weight_bytes =
        static_cast<double>(spec.layerBytes()) * state.layersHeld;
    double memory_s = (weight_bytes + kv_bytes) / eff_bw;
    double batch_s = std::max(compute_s, memory_s) +
                     cost.iterationOverheadS;
    // Duration the profiled cost model alone predicts; the
    // multipliers below are exactly the degradation the drift
    // trigger is meant to observe.
    const double model_s = batch_s;

    // Degradation the profiler did not see (SimConfig::nodeSlowdown):
    // the node runs slower than planned, which the drift trigger can
    // then observe and route around.
    if (node < static_cast<int>(cfg.nodeSlowdown.size()) &&
        cfg.nodeSlowdown[node] > 0.0) {
        batch_s *= cfg.nodeSlowdown[node];
    }

    // KV oversubscription: model paging to host memory as a slowdown.
    if (state.kvCapacity > 0.0 && state.kvUsed > state.kvCapacity) {
        double over = state.kvUsed / state.kvCapacity - 1.0;
        batch_s *= 1.0 + cfg.kvSwapPenalty * over;
    }

    // Sample KV utilization for metrics.
    if (state.kvCapacity > 0.0 && inWindow(curTime())) {
        state.utilSum += state.kvUsed / state.kvCapacity;
        ++state.utilSamples;
    }

    Event ev;
    ev.kind = Event::Kind::BatchDone;
    ev.node = node;
    ev.batchSeconds = batch_s;
    ev.modelSeconds = model_s;
    // Stamp the node's liveness epoch so a failure (and possible
    // recovery) between now and completion invalidates this batch.
    ev.item.epoch = state.epoch;
    scheduleEvent(curTime() + batch_s, ev);
}

void
ClusterSimulator::finishBatch(int node, double batch_seconds,
                              double model_seconds,
                              uint32_t node_epoch)
{
    NodeState &state = nodes[node];
    if (state.epoch != node_epoch) {
        // The node failed while this batch was in flight (it may even
        // have recovered since): the failure already cleared running
        // and restarted the affected requests, and any batch running
        // now belongs to the new epoch. Drop the stale completion.
        return;
    }
    state.busy = false;

    const model::TransformerSpec &spec = profiler.modelSpec();
    long tokens_processed = 0;
    long items_processed = 0;
    for (const WorkItem &item : state.running) {
        RequestState &rs = requests[item.request];
        if (rs.epoch != item.epoch) {
            // The request was restarted (node churn) while this item
            // ran. Its KV on this node was already released; only the
            // in-flight counter still holds its slot.
            if (item.finalChunk)
                --state.inFlight;
            continue;
        }
        const scheduler::PipelineStage &stage =
            rs.pipeline[item.stage];
        tokens_processed += item.numTokens;
        ++items_processed;

        // KV written by this stage: the processed prompt chunk during
        // the prompt phase, one token per decode iteration.
        double kv_delta = static_cast<double>(item.numTokens) *
                          spec.kvBytesPerTokenPerLayer() *
                          stage.numLayers();
        state.kvUsed += kv_delta;
        rs.kvWritten[item.stage] += kv_delta;

        if (!item.finalChunk) {
            // Intermediate prefill chunk: the request stays at this
            // node; its remainder is already queued.
            continue;
        }
        --state.inFlight;

        bool last_stage =
            item.stage + 1 == static_cast<int>(rs.pipeline.size());
        if (last_stage) {
            Event ev;
            ev.kind = Event::Kind::TokenDelivery;
            ev.item.request = item.request;
            ev.item.epoch = item.epoch;
            scheduleEvent(transferDelivery(node, cluster::kCoordinator,
                                           profiler.tokenBytes()),
                          ev);
        } else {
            const scheduler::PipelineStage &next =
                rs.pipeline[item.stage + 1];
            // A prompt forwards in full once its last chunk finishes
            // here (earlier chunks produced activations that are
            // shipped together with the final one).
            int tokens = item.isPrompt ? rs.request.promptLen
                                       : item.numTokens;
            double bytes = static_cast<double>(tokens) *
                           profiler.activationBytes();
            Event ev;
            ev.kind = Event::Kind::WorkDelivery;
            ev.node = next.node;
            ev.item = WorkItem{item.request, item.stage + 1, tokens,
                               item.epoch, item.isPrompt, true};
            scheduleEvent(transferDelivery(node, next.node, bytes),
                          ev);
        }
        // Count a prompt completion once per request: a prompt rerun
        // after node churn is recovery work, not new served tokens.
        // Accumulated per node (summed exactly at finalize) because
        // this runs on shard workers under the parallel executor.
        if (item.isPrompt && last_stage && !rs.promptCounted) {
            rs.promptCounted = true;
            if (inWindow(curTime()))
                state.promptTokensInWindow += rs.request.promptLen;
        }
    }
    state.running.clear();
    ++state.batches;
    state.itemsProcessed += items_processed;
    state.tokensProcessed += tokens_processed;
    state.busySeconds += batch_seconds;

    // Duration-weighted exponential throughput estimate, consumed by
    // the Swarm-style scheduler baseline: a batch of duration d
    // carries weight 1 - exp(-d / tau), so the estimate tracks a
    // fixed time horizon instead of a fixed batch count (which would
    // bias toward nodes running many small batches).
    double rate =
        static_cast<double>(tokens_processed) / batch_seconds;
    double alpha =
        1.0 - std::exp(-batch_seconds /
                       std::max(1e-9, cfg.throughputEwmaTauS));
    state.ewmaThroughput += alpha * (rate - state.ewmaThroughput);
    state.ewmaUpdatedAt = curTime();
    // Speed sample for the drift trigger: 1.0 when the batch took
    // exactly what the cost model predicts, < 1 when the node ran
    // slower than profiled (nodeSlowdown, KV paging).
    if (batch_seconds > 0.0 && model_seconds > 0.0) {
        double speed = model_seconds / batch_seconds;
        state.ewmaSpeed += alpha * (speed - state.ewmaSpeed);
    }

    // Drift trigger: a node whose observed rate has fallen below its
    // planned flow loses routing weight before the next batch starts.
    maybeDriftResolve(node);

    if (!state.queue.empty())
        startBatch(node);
}

void
ClusterSimulator::onTokenAtCoordinator(int request, uint32_t epoch)
{
    RequestState &rs = requests[request];
    if (rs.epoch != epoch)
        return; // Token from a pipeline that was torn down by churn.
    const double tnow = curTime();
    ++rs.generated;
    // Fair-share usage is charged per physically generated token —
    // including churn/preemption regeneration, which consumes real
    // capacity just the same.
    if (fair != nullptr)
        fair->noteDecodeToken(tenantOf(request), tnow);
    // After a churn restart the pipeline regenerates tokens it had
    // already delivered; only tokens beyond the high-water mark are
    // new output.
    bool new_token = rs.generated > rs.peakGenerated;
    if (new_token)
        rs.peakGenerated = rs.generated;
    if (rs.firstTokenTime < 0.0) {
        rs.firstTokenTime = tnow;
        // Mixed-window guard: only requests measured entirely inside
        // the window contribute, i.e. the arrival must also be
        // in-window — otherwise warmup queueing leaks into the
        // latency distribution (requests that straddle the boundary
        // carry arbitrarily long pre-window waits). Restarted
        // requests are excluded: their first token was already
        // sampled before the failure.
        if (!rs.restartedEver && inWindow(tnow) &&
            inWindow(rs.request.arrivalS)) {
            metrics.promptLatency.add(tnow - rs.request.arrivalS);
            if (fair != nullptr) {
                // Per-tenant TTFT SLO sample, same mixed-window and
                // restart guards as the latency distribution.
                SimMetrics::TenantStat &stat =
                    metrics.tenantStats[static_cast<size_t>(
                        tenantOf(request))];
                if (stat.sloTtftS > 0.0) {
                    ++stat.ttftSamples;
                    if (tnow - rs.request.arrivalS <= stat.sloTtftS)
                        ++stat.ttftMet;
                }
            }
        }
    } else if (new_token && inWindow(tnow)) {
        ++metrics.decodeTokensInWindow;
        if (fair != nullptr) {
            ++metrics
                  .tenantStats[static_cast<size_t>(tenantOf(request))]
                  .decodeTokensInWindow;
        }
    }

    if (rs.generated >= rs.request.outputLen) {
        // Request complete: notify every stage to release exactly the
        // KV this request wrote there. The release is an event
        // delivered after the coordinator->node propagation latency —
        // not an instantaneous cross-node write — both because that is
        // what a real control plane does and because the parallel
        // executor's safe-horizon argument requires every cross-node
        // effect to be at least one link latency away.
        rs.finishTime = tnow;
        rs.finished = true;
        ++metrics.requestsCompleted;
        if (fair != nullptr) {
            int t = tenantOf(request);
            ++metrics.tenantStats[static_cast<size_t>(t)]
                  .requestsCompleted;
            fair->onFinished(t);
        }
        for (size_t s = 0; s < rs.pipeline.size(); ++s) {
            int stage_node = rs.pipeline[s].node;
            Event ev;
            ev.kind = Event::Kind::KvRelease;
            ev.node = stage_node;
            ev.kvBytes = rs.kvWritten[s];
            ev.item.request = request;
            ev.item.stage = static_cast<int>(s);
            // Liveness epoch: a failure between now and delivery
            // already zeroed the node's KV wholesale.
            ev.item.epoch = nodes[stage_node].epoch;
            scheduleEvent(
                tnow +
                    linkState(cluster::kCoordinator, stage_node)
                        .latencyS,
                ev);
            rs.kvWritten[s] = 0.0;
        }
        sched.onRequestFinished(rs.request, rs.pipeline);
        // Same mixed-window guard as prompt latency: the decode
        // interval is [firstToken, finish]; both ends must be
        // in-window for the sample to be entirely measured.
        // Restarted requests are excluded — their interval spans the
        // failure and recovery, not steady-state decode.
        if (!rs.restartedEver && rs.request.outputLen > 1 &&
            inWindow(rs.finishTime) && inWindow(rs.firstTokenTime)) {
            double tpot = (rs.finishTime - rs.firstTokenTime) /
                          (rs.request.outputLen - 1);
            metrics.decodeLatency.add(tpot);
            if (fair != nullptr) {
                SimMetrics::TenantStat &stat =
                    metrics.tenantStats[static_cast<size_t>(
                        tenantOf(request))];
                if (stat.sloTpotS > 0.0) {
                    ++stat.tpotSamples;
                    if (tpot <= stat.sloTpotS)
                        ++stat.tpotMet;
                }
            }
        }
        tryAdmit();
        return;
    }

    // Schedule the next decode iteration over the same pipeline: the
    // coordinator sends the newly sampled token to the first stage.
    int first_node = rs.pipeline.front().node;
    Event ev;
    ev.kind = Event::Kind::WorkDelivery;
    ev.node = first_node;
    ev.item = WorkItem{request, 0, 1, rs.epoch, false, true};
    scheduleEvent(transferDelivery(cluster::kCoordinator, first_node,
                                   profiler.tokenBytes()),
                  ev);
    // Starvation check on every delivered token: preemption decisions
    // ride the coordinator's natural cadence. May preempt the very
    // request whose next decode was just scheduled — the epoch bump
    // then makes that delivery stale.
    if (fair != nullptr)
        maybeSchedulePreempt();
}

void
ClusterSimulator::applyKvRelease(int node, double bytes,
                                 uint32_t node_epoch)
{
    NodeState &state = nodes[node];
    if (state.dead || state.epoch != node_epoch)
        return; // The failure already dropped the node's KV wholesale.
    state.kvUsed = std::max(0.0, state.kvUsed - bytes);
    // Freed KV pages may unblock prompts waiting at this node.
    if (!state.busy && !state.queue.empty())
        startBatch(node);
}

scheduler::TopologyManager &
ClusterSimulator::topologyManager()
{
    // Lazily build the manager: runs without churn or drift never pay
    // for the extra max-flow solves. The first build solves the full
    // topology (identical flows to the deployment's own solve —
    // construction and preflow-push are deterministic), then each
    // event re-solves on the surviving subgraph, cold or via
    // warm-start repair per SimConfig::repairTopology.
    if (!topoManager) {
        topoManager = std::make_unique<scheduler::TopologyManager>(
            clusterRef, profiler, placementRef,
            placement::GraphBuildOptions{},
            cfg.repairTopology ? scheduler::ResolveMode::Repair
                               : scheduler::ResolveMode::Cold);
    }
    return *topoManager;
}

void
ClusterSimulator::resolveTopology(int node, ChurnEvent::Kind kind)
{
    scheduler::TopologyManager &manager = topologyManager();
    double flow = manager.setNodeAlive(
        node, kind == ChurnEvent::Kind::Recover);
    // Atomic swap from the scheduler's point of view: no scheduling
    // decision can observe a half-updated weight set, because the
    // rebind happens inside this event before any walk runs.
    sched.onTopologyChange(manager.current());
    metrics.flowEvents.push_back({curTime(), node, kind, flow,
                                  cfg.repairTopology
                                      ? ResolveKind::Repair
                                      : ResolveKind::Cold});
    // Fair shares divide the LIVE serving capacity.
    if (fair != nullptr)
        fair->setCapacity(flow);
}

bool
ClusterSimulator::driftCheckLocal(int node) const
{
    if (cfg.driftThreshold <= 0.0)
        return false;
    const NodeState &state = nodes[node];
    if (state.dead || state.layersHeld == 0)
        return false;
    // Only act on a matured estimate: the EWMA climbs from zero, so
    // until the node has been busy for about one time constant the
    // observed rate understates steady state and would trigger
    // spurious shrinks.
    return state.busySeconds >= cfg.throughputEwmaTauS;
}

void
ClusterSimulator::applyDriftResolve(int node, double ewma_speed)
{
    scheduler::TopologyManager &manager = topologyManager();
    double planned = manager.plannedNodeFlow(node);
    if (planned <= flow::kFlowEps)
        return;
    // Observed serving capacity in the planner's units: the profiled
    // decode throughput scaled by the measured speed factor. The raw
    // ewmaThroughput blends prompt and decode tokens and is NOT
    // comparable to the planned decode flow.
    double observed =
        ewma_speed * profiler.decodeThroughput(clusterRef.node(node),
                                               nodes[node].layersHeld);
    if (observed >= planned * (1.0 - cfg.driftThreshold))
        return;
    // The straggler is serving below plan: shrink its compute
    // capacity to the observed rate so the re-solved flow routes
    // around it. plannedNodeFlow drops to at most the observed rate
    // afterwards, so the trigger re-arms only if the node degrades
    // further.
    double flow = manager.setNodeCapacity(node, observed);
    sched.onTopologyChange(manager.current());
    metrics.flowEvents.push_back({curTime(), node,
                                  ChurnEvent::Kind::Drift, flow,
                                  ResolveKind::Drift});
    if (fair != nullptr)
        fair->setCapacity(flow);
}

void
ClusterSimulator::maybeDriftResolve(int node)
{
    if (!driftCheckLocal(node))
        return;
    // Under the parallel executor a shard worker must not touch the
    // topology manager or the scheduler: defer to the coordinator
    // phase, which replays probes in serial event order (keyed by the
    // triggering BatchDone). The serial loop — and a barrier step,
    // where tlsLane is null — resolves inline.
    if (par != nullptr && tlsLane != nullptr && !tlsLane->coordinator) {
        tlsLane->probes.push_back(
            {curTime(), node, nodes[node].ewmaSpeed});
        return;
    }
    applyDriftResolve(node, nodes[node].ewmaSpeed);
}

void
ClusterSimulator::onNodeFailure(int node)
{
    NodeState &failed = nodes[node];
    if (failed.dead)
        return;
    failed.dead = true;
    ++failed.epoch;
    failed.queue.clear();
    failed.running.clear();
    failed.busy = false;
    failed.inFlight = 0;
    failed.kvUsed = 0.0;
    // Note: if a batch was running on the failed node, its BatchDone
    // event still fires; finishBatch discards it via the epoch bump.

    // Re-solve the max flow on the surviving subgraph and swap the
    // fresh flows into the scheduler before anything is rescheduled,
    // so restarted requests route by the live proportions — not the
    // pre-failure ones.
    resolveTopology(node, ChurnEvent::Kind::Fail);

    // Restart every admitted, unfinished request whose pipeline
    // crosses the failed node: release exactly the KV it wrote at
    // each surviving stage, invalidate its in-flight work via the
    // epoch, and re-queue it for admission (ahead of never-admitted
    // arrivals).
    std::vector<int> restarted;
    for (size_t i = 0; i < requests.size(); ++i) {
        RequestState &rs = requests[i];
        if (!rs.admitted || rs.finished)
            continue;
        bool affected = false;
        for (const scheduler::PipelineStage &stage : rs.pipeline) {
            if (stage.node == node) {
                affected = true;
                break;
            }
        }
        if (!affected)
            continue;
        restartRequest(static_cast<int>(i), node);
        ++metrics.requestsRestarted;
        restarted.push_back(static_cast<int>(i));
    }
    for (auto it = restarted.rbegin(); it != restarted.rend(); ++it) {
        if (fair != nullptr)
            fair->requeueFront(tenantOf(*it), *it);
        else
            pending.push_front(*it);
    }

    purgeStaleQueuedWork();
    tryAdmit();
}

void
ClusterSimulator::restartRequest(int request_index, int skip_node)
{
    RequestState &rs = requests[static_cast<size_t>(request_index)];
    // Release exactly what this request wrote at each live stage; the
    // skipped (failed) node's KV was already wiped wholesale. One
    // request's teardown can never drain KV accounted to others.
    for (size_t s = 0; s < rs.pipeline.size(); ++s) {
        if (rs.pipeline[s].node == skip_node)
            continue;
        NodeState &state = nodes[rs.pipeline[s].node];
        state.kvUsed = std::max(0.0, state.kvUsed - rs.kvWritten[s]);
        rs.kvWritten[s] = 0.0;
    }
    sched.onRequestFinished(rs.request, rs.pipeline);
    if (fair != nullptr)
        fair->onPreempted(tenantOf(request_index));
    rs.admitted = false;
    rs.restartedEver = true;
    rs.generated = 0;
    rs.firstTokenTime = -1.0;
    ++rs.epoch;
    --metrics.requestsAdmitted; // It will be admitted again.
}

void
ClusterSimulator::purgeStaleQueuedWork()
{
    // Purge work of torn-down requests still queued at live nodes.
    for (NodeState &state : nodes) {
        if (state.dead || state.queue.empty())
            continue;
        size_t before = state.queue.size();
        state.queue.erase(
            std::remove_if(state.queue.begin(), state.queue.end(),
                           [this](const WorkItem &item) {
                               return requests[item.request].epoch !=
                                      item.epoch;
                           }),
            state.queue.end());
        state.inFlight -=
            static_cast<int>(before - state.queue.size());
        HELIX_ASSERT(state.inFlight >= 0);
    }
}

void
ClusterSimulator::onNodeRecovery(int node)
{
    NodeState &state = nodes[node];
    if (!state.dead)
        return;
    // The node rejoins with empty KV and queue: nothing was enqueued
    // while it was dead (enqueueWork drops deliveries to dead nodes),
    // and its pre-failure work was already restarted elsewhere. The
    // epoch bumped at failure keeps any still-in-flight BatchDone of
    // the old life stale.
    state.dead = false;
    state.queue.clear();
    state.running.clear();
    state.busy = false;
    state.inFlight = 0;
    state.kvUsed = 0.0;
    state.ewmaThroughput = 0.0;
    state.ewmaSpeed = 1.0;
    state.ewmaUpdatedAt = curTime();

    // Re-solve with the node back in the graph and swap the restored
    // flows into the scheduler, then retry the backlog: requests that
    // were waiting on capacity can now route through the rejoined
    // node.
    resolveTopology(node, ChurnEvent::Kind::Recover);
    tryAdmit();
}

void
ClusterSimulator::dispatch(const Event &event)
{
    switch (event.kind) {
      case Event::Kind::Arrival:
        ++metrics.requestsArrived;
        if (fair != nullptr) {
            int t = tenantOf(event.item.request);
            ++metrics.tenantStats[static_cast<size_t>(t)]
                  .requestsArrived;
            fair->enqueue(t, event.item.request);
        } else {
            pending.push_back(event.item.request);
        }
        tryAdmit();
        break;
      case Event::Kind::WorkDelivery:
        enqueueWork(event.node, event.item);
        break;
      case Event::Kind::TokenDelivery:
        onTokenAtCoordinator(event.item.request, event.item.epoch);
        break;
      case Event::Kind::BatchDone:
        finishBatch(event.node, event.batchSeconds,
                    event.modelSeconds, event.item.epoch);
        break;
      case Event::Kind::NodeFailure:
        onNodeFailure(event.node);
        break;
      case Event::Kind::NodeRecovery:
        onNodeRecovery(event.node);
        break;
      case Event::Kind::KvRelease:
        applyKvRelease(event.node, event.kvBytes, event.item.epoch);
        break;
      case Event::Kind::Preempt:
        applyPreempt(event);
        break;
    }
}

std::vector<ChurnEvent>
ClusterSimulator::churnSchedule() const
{
    // Churn schedule: the legacy single-failure pair first, then the
    // event list, with invalid/drift entries dropped up front so both
    // executors see the identical filtered sequence. Ordering among
    // same-time events follows insertion order (duplicate entries tie
    // on the content key and fall through to the sequence number).
    std::vector<ChurnEvent> churn;
    if (cfg.failNodeIndex >= 0 && cfg.failAtSeconds >= 0.0) {
        churn.push_back({ChurnEvent::Kind::Fail, cfg.failNodeIndex,
                         cfg.failAtSeconds});
    }
    for (const ChurnEvent &event : cfg.churnEvents) {
        if (event.node < 0 ||
            event.node >= static_cast<int>(nodes.size()) ||
            event.atSeconds < 0.0 ||
            event.kind == ChurnEvent::Kind::Drift)
            continue;
        churn.push_back(event);
    }
    return churn;
}

double
ClusterSimulator::minLinkLatency() const
{
    // Minimum propagation latency over every directed link, including
    // the coordinator rows: the conservative lookahead of the parallel
    // executor. A zero anywhere means no safe horizon exists and the
    // run falls back to the serial loop.
    double best = std::numeric_limits<double>::infinity();
    const int n = static_cast<int>(nodes.size());
    for (int from = cluster::kCoordinator; from < n; ++from) {
        for (int to = cluster::kCoordinator; to < n; ++to) {
            if (from == to)
                continue;
            const LinkState &ls =
                links[static_cast<size_t>(from + 1) * side + (to + 1)];
            best = std::min(best, ls.latencyS);
        }
    }
    return best;
}

void
ClusterSimulator::runSerialLoop(const std::vector<ChurnEvent> &churn,
                                double end_time)
{
    for (size_t i = 0; i < requests.size(); ++i) {
        double at = requests[i].request.arrivalS;
        Event ev;
        ev.kind = Event::Kind::Arrival;
        ev.item.request = static_cast<int>(i);
        scheduleEvent(std::max(at, 0.0), ev);
    }
    for (const ChurnEvent &event : churn) {
        Event ev;
        ev.kind = event.kind == ChurnEvent::Kind::Fail
                      ? Event::Kind::NodeFailure
                      : Event::Kind::NodeRecovery;
        ev.node = event.node;
        scheduleEvent(event.atSeconds, ev);
    }

    while (!events.empty()) {
        Event top = events.top();
        if (top.time > end_time)
            break;
        events.pop();
        now = top.time;
        dispatch(top);
    }
    // Drain the queue so a reused simulator starts clean.
    while (!events.empty())
        events.pop();
}

SimMetrics
ClusterSimulator::run(const std::vector<trace::Request> &request_list)
{
    metrics = SimMetrics{};
    requests.clear();
    requests.reserve(request_list.size());
    for (const trace::Request &req : request_list) {
        RequestState rs;
        rs.request = req;
        requests.push_back(std::move(rs));
    }

    if (cfg.tenants.size() >= 2) {
        scheduler::FairShareController::Config fc;
        fc.tenants = cfg.tenants;
        fc.starvationTolerance = cfg.starvationTolerance;
        fc.preemptionTimeoutS = cfg.preemptionTimeoutS;
        fc.usageTauS = cfg.throughputEwmaTauS;
        fair = std::make_unique<scheduler::FairShareController>(
            std::move(fc));
        // Preemption decisions take effect one minimum link latency
        // later — the same conservative window the parallel executor
        // rounds on, so a Preempt event is always beyond the horizon
        // of the round that scheduled it.
        preemptDelayS = minLinkLatency();
        if (!std::isfinite(preemptDelayS))
            preemptDelayS = 0.0;
        // Shares divide the live serving capacity: the topology
        // manager's current max-flow, re-fed on every churn or drift
        // re-solve.
        fair->setCapacity(topologyManager().currentFlow());
        metrics.tenantStats.resize(cfg.tenants.size());
        for (size_t t = 0; t < cfg.tenants.size(); ++t) {
            SimMetrics::TenantStat &stat = metrics.tenantStats[t];
            stat.name = cfg.tenants[t].name;
            stat.weight = cfg.tenants[t].weight;
            stat.sloTtftS = cfg.tenants[t].sloTtftS;
            stat.sloTpotS = cfg.tenants[t].sloTpotS;
        }
    } else {
        fair.reset();
    }

    const double end_time = cfg.warmupSeconds + cfg.measureSeconds;
    std::vector<ChurnEvent> churn = churnSchedule();
    // The sharded executor needs a positive conservative lookahead;
    // single-node clusters and sim_threads <= 1 use the serial loop.
    const double lambda =
        cfg.simThreads > 1 ? minLinkLatency() : 0.0;
    if (cfg.simThreads > 1 && lambda > 0.0 && nodes.size() > 1) {
        ParallelExecutor executor(*this, cfg.simThreads, lambda,
                                  churn, end_time);
        par = &executor;
        executor.run();
        par = nullptr;
    } else {
        runSerialLoop(churn, end_time);
    }

    metrics.simulatedSeconds = cfg.measureSeconds;
    long prompt_tokens = 0;
    for (const NodeState &state : nodes)
        prompt_tokens += state.promptTokensInWindow;
    metrics.promptTokensInWindow = prompt_tokens;
    metrics.decodeThroughput =
        static_cast<double>(metrics.decodeTokensInWindow) /
        cfg.measureSeconds;
    metrics.promptThroughput =
        static_cast<double>(metrics.promptTokensInWindow) /
        cfg.measureSeconds;
    double util = 0.0;
    int counted = 0;
    for (const NodeState &state : nodes) {
        if (state.utilSamples > 0) {
            util += state.utilSum /
                    static_cast<double>(state.utilSamples);
            ++counted;
        }
    }
    metrics.avgKvUtilization = counted > 0 ? util / counted : 0.0;
    metrics.nodeStats.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const NodeState &state = nodes[i];
        SimMetrics::NodeStat &stat = metrics.nodeStats[i];
        stat.batches = state.batches;
        stat.itemsProcessed = state.itemsProcessed;
        stat.tokensProcessed = state.tokensProcessed;
        stat.busySeconds = state.busySeconds;
        stat.kvUtilization =
            state.utilSamples > 0
                ? state.utilSum / static_cast<double>(state.utilSamples)
                : 0.0;
    }
    if (cfg.collectLinkStats) {
        for (const LinkState &ls : links) {
            if (ls.stat.transfers > 0)
                metrics.linkStats.push_back(ls.stat);
        }
    }
    if (fair != nullptr) {
        double sum = 0.0;
        double sum_sq = 0.0;
        for (SimMetrics::TenantStat &stat : metrics.tenantStats) {
            stat.decodeThroughput =
                static_cast<double>(stat.decodeTokensInWindow) /
                cfg.measureSeconds;
            if (stat.sloTtftS > 0.0 && stat.ttftSamples > 0) {
                stat.ttftAttainment =
                    static_cast<double>(stat.ttftMet) /
                    static_cast<double>(stat.ttftSamples);
            }
            if (stat.sloTpotS > 0.0 && stat.tpotSamples > 0) {
                stat.tpotAttainment =
                    static_cast<double>(stat.tpotMet) /
                    static_cast<double>(stat.tpotSamples);
            }
            double x = stat.weight > 0.0
                           ? stat.decodeThroughput / stat.weight
                           : 0.0;
            sum += x;
            sum_sq += x * x;
        }
        // Jain index over weight-normalized throughput: 1.0 when
        // every tenant gets throughput proportional to its weight.
        if (sum_sq > 0.0) {
            metrics.jainIndex =
                sum * sum /
                (static_cast<double>(metrics.tenantStats.size()) *
                 sum_sq);
        }
    }
    return metrics;
}

} // namespace sim
} // namespace helix
