/**
 * @file
 * Discrete-event simulator for distributed LLM serving.
 *
 * This is the C++ equivalent of the 14k-LoC Python simulator the paper
 * uses for its geo-distributed and high-heterogeneity experiments
 * (Sec. 6.1, validated against the prototype to <5% error). It models:
 *
 *  - per-node dynamic best-effort batching (a node starts a new batch
 *    from everything that arrived while the previous batch ran);
 *  - prompt and decode phases with the roofline cost model from
 *    cluster::Profiler (weight reads, KV reads, FLOPs);
 *  - KV-cache occupancy per node with a swap penalty when a node is
 *    oversubscribed (offloading to host memory "significantly harms
 *    throughput", Sec. 5.2);
 *  - network transfers with per-directed-link serialization (FIFO) and
 *    propagation latency, which reproduces the congestion phenomena of
 *    the scheduling case study (Sec. 6.7);
 *  - the coordinator loop: per-request pipelines, one round trip per
 *    generated token, admission retry when the scheduler masks all
 *    candidates.
 */

#ifndef HELIX_SIM_SIMULATOR_H
#define HELIX_SIM_SIMULATOR_H

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "placement/placement.h"
#include "scheduler/scheduler.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace helix {
namespace sim {

/** Simulation parameters. */
struct SimConfig
{
    /** Seconds of warmup excluded from metrics. */
    double warmupSeconds = 30.0;
    /** Measurement window length after warmup. */
    double measureSeconds = 300.0;
    /** Iteration slowdown per unit of KV oversubscription. */
    double kvSwapPenalty = 4.0;
    /** Max requests batched per iteration. */
    int maxBatchRequests = 256;
    /**
     * Max tokens per iteration (vLLM's max_num_batched_tokens with
     * Sarathi-style chunked prefill): caps how much prompt work one
     * iteration can absorb, bounding the queueing delay decode tokens
     * experience behind long prompts.
     */
    int maxBatchTokens = 512;
    /** Collect per-link congestion statistics. */
    bool collectLinkStats = false;
    /**
     * Engine-level admission cap, mirroring vLLM's bound on
     * concurrently running sequences: the coordinator holds requests
     * in a host-side queue once the cluster's aggregate KV capacity is
     * fully subscribed. 0 = derive from KV capacity; negative =
     * unlimited.
     */
    int maxActiveRequests = 0;
};

/** Per-directed-link congestion statistics (Sec. 6.7 case study). */
struct LinkStat
{
    int from = 0; // cluster::kCoordinator or node index
    int to = 0;
    long transfers = 0;
    double totalBytes = 0.0;
    double busySeconds = 0.0;
    double maxQueueDelayS = 0.0;
    double totalQueueDelayS = 0.0;
};

/** Aggregate metrics of one simulation run. */
struct SimMetrics
{
    /** Decode tokens generated per second in the window. */
    double decodeThroughput = 0.0;
    /** Prompt tokens processed per second in the window. */
    double promptThroughput = 0.0;
    /** Per-request prompt latency (arrival to first token), seconds. */
    StatAccumulator promptLatency;
    /** Per-request average seconds per decode token. */
    StatAccumulator decodeLatency;
    long requestsArrived = 0;
    long requestsAdmitted = 0;
    long requestsCompleted = 0;
    long requestsRejected = 0;
    long decodeTokensInWindow = 0;
    long promptTokensInWindow = 0;
    double simulatedSeconds = 0.0;
    /** Mean per-node KV utilization sampled at batch boundaries. */
    double avgKvUtilization = 0.0;
    std::vector<LinkStat> linkStats;

    /** Per-node execution statistics. */
    struct NodeStat
    {
        long batches = 0;
        long itemsProcessed = 0;
        long tokensProcessed = 0;
        double busySeconds = 0.0;
        double kvUtilization = 0.0;
    };
    std::vector<NodeStat> nodeStats;
};

/**
 * The simulator. One instance runs one experiment: a cluster with a
 * placement, a scheduler, and an arrival trace.
 */
class ClusterSimulator : public scheduler::SchedulerContext
{
  public:
    ClusterSimulator(const cluster::ClusterSpec &cluster,
                     const cluster::Profiler &profiler,
                     const placement::ModelPlacement &placement,
                     scheduler::RequestScheduler &scheduler,
                     SimConfig config = {});

    /** Run to completion of the measurement window. */
    SimMetrics run(const std::vector<trace::Request> &requests);

    // --- SchedulerContext ---
    int queueLength(int node) const override;
    double recentThroughput(int node) const override;
    double kvUsedBytes(int node) const override;

  private:
    struct WorkItem
    {
        int request = -1;
        int stage = 0;
        bool isPrompt = false;
        int numTokens = 0;
        /**
         * False for all but the last chunk of a chunked prefill; only
         * the final chunk forwards the request to the next stage.
         */
        bool finalChunk = true;
    };

    struct NodeState
    {
        std::deque<WorkItem> queue;
        bool busy = false;
        double kvUsed = 0.0;
        double kvCapacity = 0.0;
        int layersHeld = 0;
        double ewmaThroughput = 0.0;
        int inFlight = 0;
        /** KV-utilization sampling for metrics. */
        double utilSum = 0.0;
        long utilSamples = 0;
        long batches = 0;
        long itemsProcessed = 0;
        long tokensProcessed = 0;
        double busySeconds = 0.0;
    };

    struct RequestState
    {
        trace::Request request;
        scheduler::Pipeline pipeline;
        bool admitted = false;
        int generated = 0;
        double firstTokenTime = -1.0;
        double finishTime = -1.0;
    };

    struct LinkState
    {
        /** Serialization horizon for bulk (prompt-sized) transfers. */
        double bulkBusyUntil = 0.0;
        /**
         * Serialization horizon for interactive (token/activation)
         * messages, which use a separate priority channel and do not
         * queue behind multi-megabyte prompt transfers.
         */
        double interactiveBusyUntil = 0.0;
        LinkStat stat;
    };

    using Callback = std::function<void()>;

    struct Event
    {
        double time = 0.0;
        uint64_t seq = 0;
        Callback fn;
    };

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /** Schedule @p fn at absolute time @p when. */
    void schedule(double when, Callback fn);

    /** Try to admit pending requests through the scheduler. */
    void tryAdmit();

    /** Transmit @p bytes over (from, to); @p on_arrival runs on
     *  delivery. */
    void sendMessage(int from, int to, double bytes,
                     Callback on_arrival);

    /** Deliver a work item to a node's queue. */
    void enqueueWork(int node, WorkItem item);

    /** Start a batch on an idle node with a non-empty queue. */
    void startBatch(int node);

    /** Complete a batch: update KV, forward items, restart. */
    void finishBatch(int node, std::vector<WorkItem> items,
                     double batch_seconds);

    /** Handle an output token arriving back at the coordinator. */
    void onTokenAtCoordinator(int request);

    /** Current context length of a request (prompt + generated). */
    double contextLen(const RequestState &rs) const;

    /** Whether @p t falls inside the measurement window. */
    bool inWindow(double t) const;

    LinkState &linkState(int from, int to);

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profiler;
    const placement::ModelPlacement &placementRef;
    scheduler::RequestScheduler &sched;
    SimConfig cfg;

    double now = 0.0;
    uint64_t eventSeq = 0;
    std::priority_queue<Event, std::vector<Event>, EventOrder> events;

    std::vector<NodeState> nodes;
    std::vector<RequestState> requests;
    std::deque<int> pending;
    std::vector<LinkState> links; // (side)^2, row 0 = coordinator
    int side = 0;

    SimMetrics metrics;
};

} // namespace sim
} // namespace helix

#endif // HELIX_SIM_SIMULATOR_H
