/**
 * @file
 * Discrete-event simulator for distributed LLM serving.
 *
 * This is the C++ equivalent of the 14k-LoC Python simulator the paper
 * uses for its geo-distributed and high-heterogeneity experiments
 * (Sec. 6.1, validated against the prototype to <5% error). It models:
 *
 *  - per-node dynamic best-effort batching (a node starts a new batch
 *    from everything that arrived while the previous batch ran);
 *  - prompt and decode phases with the roofline cost model from
 *    cluster::Profiler (weight reads, KV reads, FLOPs);
 *  - KV-cache occupancy per node with a swap penalty when a node is
 *    oversubscribed (offloading to host memory "significantly harms
 *    throughput", Sec. 5.2);
 *  - network transfers with per-directed-link serialization (FIFO) and
 *    propagation latency, which reproduces the congestion phenomena of
 *    the scheduling case study (Sec. 6.7);
 *  - the coordinator loop: per-request pipelines, one round trip per
 *    generated token, admission retry when the scheduler masks all
 *    candidates;
 *  - node churn mid-run: an ordered schedule of fail/recover events.
 *    A failed node's work is dropped and every affected request is
 *    rescheduled around it; a recovered node rejoins with empty KV
 *    and queue. On every event the simulator re-solves max-flow on
 *    the surviving subgraph (scheduler::TopologyManager) and swaps
 *    the fresh topology into the scheduler, so routing proportions
 *    always match the live cluster (Sec. 5 semantics).
 *
 * The event queue holds small trivially-copyable tagged-union events
 * (no std::function, no per-event heap allocation); batch vectors are
 * owned by the node states and reused across iterations.
 */

#ifndef HELIX_SIM_SIMULATOR_H
#define HELIX_SIM_SIMULATOR_H

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "core/annotations.h"
#include "placement/placement.h"
#include "scheduler/fair_share.h"
#include "scheduler/scheduler.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace helix {

namespace scheduler {
class TopologyManager;
} // namespace scheduler

namespace sim {

class ParallelExecutor;
class ParallelLane;

/** One scheduled topology change of the churn scenario. */
struct ChurnEvent
{
    enum class Kind : uint8_t
    {
        /** The node fails: work dropped, requests restart around it. */
        Fail,
        /** The node rejoins with empty KV and queue. */
        Recover,
        /**
         * Observed-throughput drift shrank the node's capacity. Never
         * appears in schedules — only in SimMetrics::FlowEvent logs
         * of drift-triggered re-solves.
         */
        Drift,
    };

    Kind kind = Kind::Fail;
    int node = -1;
    double atSeconds = 0.0;
};

/** Human-readable name of a ChurnEvent::Kind ("fail"/"recover"). */
const char *toString(ChurnEvent::Kind kind);

/**
 * How a topology re-solve happened: a cold solve of the masked
 * placement graph, a warm-start incremental repair of the persistent
 * flow network, or a drift-triggered capacity shrink (a node's
 * observed EWMA throughput fell below its planned flow).
 */
enum class ResolveKind : uint8_t
{
    Cold,
    Repair,
    Drift,
};

/** Human-readable name of a ResolveKind ("cold"/"repair"/"drift"). */
const char *toString(ResolveKind kind);

/** Simulation parameters. */
struct SimConfig
{
    /** Seconds of warmup excluded from metrics. */
    double warmupSeconds = 30.0;
    /** Measurement window length after warmup. */
    double measureSeconds = 300.0;
    /** Iteration slowdown per unit of KV oversubscription. */
    double kvSwapPenalty = 4.0;
    /** Max requests batched per iteration. */
    int maxBatchRequests = 256;
    /**
     * Max tokens per iteration (vLLM's max_num_batched_tokens with
     * Sarathi-style chunked prefill): caps how much prompt work one
     * iteration can absorb, bounding the queueing delay decode tokens
     * experience behind long prompts.
     */
    int maxBatchTokens = 512;
    /** Collect per-link congestion statistics. */
    bool collectLinkStats = false;
    /**
     * Engine-level admission cap, mirroring vLLM's bound on
     * concurrently running sequences: the coordinator holds requests
     * in a host-side queue once the cluster's aggregate KV capacity is
     * fully subscribed. 0 = derive from KV capacity; negative =
     * unlimited.
     */
    int maxActiveRequests = 0;
    /**
     * Legacy single-failure churn: node @p failNodeIndex fails at
     * @p failAtSeconds. Its queued and in-flight work is dropped,
     * affected requests restart from the prompt through the scheduler,
     * and schedulers see the node as dead (SchedulerContext::
     * nodeAlive). Negative values disable it. Merged ahead of
     * @p churnEvents at run start; prefer the event schedule.
     */
    int failNodeIndex = -1;
    double failAtSeconds = -1.0;
    /**
     * Churn event schedule: fail and recover events applied in time
     * order. Each event triggers a max-flow re-solve on the surviving
     * subgraph and a topology swap into the scheduler; the resulting
     * flow values are logged in SimMetrics::flowEvents. Events with
     * out-of-range nodes or negative times are ignored.
     */
    std::vector<ChurnEvent> churnEvents;
    /**
     * Time constant (seconds) of the per-node throughput EWMA exposed
     * to schedulers: a batch of duration d carries weight
     * 1 - exp(-d / tau), so many small batches and one long batch of
     * the same total duration influence the estimate equally.
     */
    double throughputEwmaTauS = 10.0;
    /**
     * Re-solve churn events with warm-start incremental repair
     * (scheduler::ResolveMode::Repair) instead of cold re-solves of
     * the masked placement graph. Same flow value either way; the
     * per-event cost drops from a full preflow-push to the repair
     * delta.
     */
    bool repairTopology = false;
    /**
     * Drift-triggered re-solve threshold, as a fraction in (0, 1):
     * after a batch completes on a node whose speed estimate has
     * matured (cumulative busy time >= throughputEwmaTauS), the
     * observed decode throughput is the profiled capacity scaled by
     * the node's speed EWMA (modeled / actual batch duration). When
     * that observed throughput falls below
     * plannedFlow * (1 - driftThreshold), the node's compute capacity
     * is shrunk to the observed rate and the topology re-solved,
     * shifting routing weight away from the straggler. 0 disables
     * drift detection.
     */
    double driftThreshold = 0.0;
    /**
     * Per-node batch-duration multipliers modeling degradation the
     * profiler did not see (thermal throttling, co-tenant
     * interference): entries > 1 slow the node down. Empty or
     * missing entries mean 1.0. Scenario/test hook for exercising
     * the drift trigger.
     */
    std::vector<double> nodeSlowdown;
    /**
     * Worker threads for the sharded event loop (sim/executor.h).
     * 1 (the default) runs the reference serial loop. Values > 1
     * partition the compute nodes into a FIXED number of shards
     * (independent of the thread count) and advance them in
     * deterministic rounds bounded by the minimum link propagation
     * latency; the merged outcome is byte-identical to the serial
     * loop at any thread count. Clusters with a zero-latency link
     * fall back to the serial loop (no conservative lookahead
     * window exists).
     */
    int simThreads = 1;
    /**
     * Tenant classes for fair-share admission arbitration
     * (scheduler::FairShareController). Fewer than two entries keeps
     * the original single-queue admission path — runs without
     * tenants (or with one) are byte-identical to pre-tenancy
     * behavior at every simThreads count.
     */
    std::vector<scheduler::Tenant> tenants;
    /** Fair-share starvation tolerance in [0, 1] (see
     *  FairShareController::Config). */
    double starvationTolerance = 0.8;
    /** Continuous starvation seconds before an over-share tenant's
     *  newest in-flight request is preempted; negative disables
     *  preemption. */
    double preemptionTimeoutS = 5.0;
};

/** Per-directed-link congestion statistics (Sec. 6.7 case study). */
struct LinkStat
{
    int from = 0; // cluster::kCoordinator or node index
    int to = 0;
    long transfers = 0;
    double totalBytes = 0.0;
    double busySeconds = 0.0;
    double maxQueueDelayS = 0.0;
    double totalQueueDelayS = 0.0;
};

/** Aggregate metrics of one simulation run. */
struct SimMetrics
{
    /** Decode tokens generated per second in the window. */
    double decodeThroughput = 0.0;
    /** Prompt tokens processed per second in the window. */
    double promptThroughput = 0.0;
    /**
     * Per-request prompt latency (arrival to first token), seconds.
     * Only requests whose arrival AND first token both fall inside the
     * measurement window contribute, so warmup queueing cannot leak
     * into the distribution.
     */
    StatAccumulator promptLatency;
    /**
     * Per-request average seconds per decode token. Only requests
     * whose first token AND completion both fall inside the window
     * contribute.
     */
    StatAccumulator decodeLatency;
    long requestsArrived = 0;
    long requestsAdmitted = 0;
    long requestsCompleted = 0;
    long requestsRejected = 0;
    /** Requests restarted because a node failed mid-run. */
    long requestsRestarted = 0;
    /** Requests preempted by fair-share arbitration (restarted from
     *  the prompt once their tenant is back within share). */
    long requestsPreempted = 0;
    /**
     * One entry per applied topology re-solve: scheduled churn events
     * (fail/recover) and drift-triggered capacity shrinks, with the
     * re-solved max-flow value of the live topology right after the
     * event took effect.
     */
    struct FlowEvent
    {
        double time = 0.0;
        int node = -1;
        ChurnEvent::Kind kind = ChurnEvent::Kind::Fail;
        /** Max-flow of the live topology after the event, tokens/s. */
        double flow = 0.0;
        /** How the re-solve happened: cold | repair | drift. */
        ResolveKind resolveKind = ResolveKind::Cold;
    };
    std::vector<FlowEvent> flowEvents;
    long decodeTokensInWindow = 0;
    long promptTokensInWindow = 0;
    double simulatedSeconds = 0.0;
    /** Mean per-node KV utilization sampled at batch boundaries. */
    double avgKvUtilization = 0.0;
    std::vector<LinkStat> linkStats;

    /** Per-node execution statistics. */
    struct NodeStat
    {
        long batches = 0;
        long itemsProcessed = 0;
        long tokensProcessed = 0;
        double busySeconds = 0.0;
        double kvUtilization = 0.0;
    };
    std::vector<NodeStat> nodeStats;

    /**
     * Per-tenant serving statistics; populated only when fair-share
     * tenancy is active (two or more SimConfig::tenants), empty
     * otherwise so single-tenant metrics stay identical to the
     * pre-tenancy simulator.
     */
    struct TenantStat
    {
        std::string name;
        double weight = 1.0;
        long requestsArrived = 0;
        long requestsAdmitted = 0;
        long requestsCompleted = 0;
        long requestsRejected = 0;
        long requestsPreempted = 0;
        /** Decode tokens generated inside the measurement window. */
        long decodeTokensInWindow = 0;
        /** decodeTokensInWindow / measured seconds. */
        double decodeThroughput = 0.0;
        /** Declared SLOs (0 = none declared). */
        double sloTtftS = 0.0;
        double sloTpotS = 0.0;
        /** SLO attainment over in-window samples (same windowing as
         *  promptLatency / decodeLatency); -1 = no SLO declared or no
         *  samples. */
        double ttftAttainment = -1.0;
        double tpotAttainment = -1.0;
        long ttftSamples = 0;
        long ttftMet = 0;
        long tpotSamples = 0;
        long tpotMet = 0;
    };
    std::vector<TenantStat> tenantStats;
    /**
     * Jain fairness index over weight-normalized per-tenant decode
     * throughput x_t = decodeThroughput_t / weight_t:
     * J = (sum x)^2 / (n * sum x^2), 1.0 = perfectly fair. 0 when
     * tenancy is inactive or no tenant produced tokens.
     */
    double jainIndex = 0.0;
};

/**
 * The simulator. One instance runs one experiment: a cluster with a
 * placement, a scheduler, and an arrival trace.
 */
class ClusterSimulator : public scheduler::SchedulerContext
{
  public:
    ClusterSimulator(const cluster::ClusterSpec &cluster,
                     const cluster::Profiler &profiler,
                     const placement::ModelPlacement &placement,
                     scheduler::RequestScheduler &scheduler,
                     SimConfig config = {});

    ~ClusterSimulator();

    /** Run to completion of the measurement window. */
    HELIX_CONTEXT_DISPATCH
    SimMetrics run(const std::vector<trace::Request> &requests);

    // --- SchedulerContext (coordinator-phase feedback views) ---
    HELIX_COORDINATOR_ONLY int queueLength(int node) const override;
    HELIX_COORDINATOR_ONLY double recentThroughput(int node) const override;
    HELIX_COORDINATOR_ONLY double kvUsedBytes(int node) const override;
    HELIX_COORDINATOR_ONLY bool nodeAlive(int node) const override;

  private:
    struct WorkItem
    {
        int request = -1;
        int stage = 0;
        int numTokens = 0;
        /**
         * Scheduling epoch of the request when the item was created.
         * A node failure bumps the epoch of every affected request;
         * stale items and messages are dropped when dequeued.
         */
        uint32_t epoch = 0;
        bool isPrompt = false;
        /**
         * False for all but the last chunk of a chunked prefill; only
         * the final chunk forwards the request to the next stage.
         */
        bool finalChunk = true;
    };

    /**
     * Tagged-union event. Trivially copyable and self-contained: the
     * hot loop never allocates per event. BatchDone carries only the
     * node; the batch items live in NodeState::running.
     */
    struct Event
    {
        enum class Kind : uint8_t
        {
            /** Request item.request arrives at the coordinator. */
            Arrival,
            /** Work item delivered to node's queue. */
            WorkDelivery,
            /** Output token of item.request reaches the coordinator. */
            TokenDelivery,
            /** The batch running on node completes. */
            BatchDone,
            /** Node fails (churn scenario). */
            NodeFailure,
            /** Node rejoins with empty KV and queue (churn). */
            NodeRecovery,
            /**
             * Control-plane notification that a finished request's KV
             * pages at node can be reclaimed (kvBytes of them). Sent
             * by the coordinator at completion and delivered after the
             * coordinator->node propagation latency, so KV release is
             * a message like every other cross-node effect — the
             * sharded executor relies on no zero-latency writes
             * between shards.
             */
            KvRelease,
            /**
             * Fair-share preemption of item.request takes effect: the
             * request's work is dropped and its KV released through
             * the epoch-safe restart machinery, and it rejoins the
             * head of its tenant's admission queue. Scheduled one
             * preemption delay (the minimum link latency) after the
             * decision so the parallel executor can run it as a
             * serial barrier, like churn. item.epoch is the request
             * epoch at decision time; a mismatch (or a finished
             * request) makes the event a stale no-op. Appended last
             * so existing kinds keep their eventBefore ranks.
             */
            Preempt,
        };

        double time = 0.0;
        uint64_t seq = 0;
        double batchSeconds = 0.0; // BatchDone: actual duration
        /** BatchDone: duration the cost model alone predicts, before
         *  unprofiled multipliers (nodeSlowdown, KV paging). The
         *  ratio model/actual is the drift trigger's speed sample. */
        double modelSeconds = 0.0;
        double kvBytes = 0.0;      // KvRelease: bytes to reclaim
        WorkItem item;             // WorkDelivery / Arrival / Token
        int node = 0;              // WorkDelivery / BatchDone / Failure
        Kind kind = Kind::Arrival;
    };

    /**
     * Total order on events: time first, then a CONTENT key (kind,
     * node, request, stage, epoch), then the scheduling sequence
     * number as a last-resort tie-break. Two distinct events that can
     * coexist in a queue always differ in the content key (a request
     * has at most one in-flight item, a node at most one running
     * batch), so equal-time ties order identically no matter which
     * loop — serial or any shard of the parallel executor — created
     * or queued them. That property, not the seq counter, is what
     * makes the sharded executor's merge byte-identical to the serial
     * loop even on symmetric workloads with exact time ties.
     */
    static bool eventBefore(const Event &a, const Event &b);

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            // priority_queue pops the maximum: invert eventBefore.
            return eventBefore(b, a);
        }
    };

    struct NodeState
    {
        std::deque<WorkItem> queue;
        /** Items of the batch currently running (reused storage). */
        std::vector<WorkItem> running;
        bool busy = false;
        bool dead = false;
        double kvUsed = 0.0;
        double kvCapacity = 0.0;
        int layersHeld = 0;
        double ewmaThroughput = 0.0;
        /** Sim time of the last EWMA update; recentThroughput decays
         *  the estimate by the elapsed time since then, so idle or
         *  dead nodes do not keep reporting their last busy rate. */
        double ewmaUpdatedAt = 0.0;
        /**
         * Speed EWMA for the drift trigger: modeled / actual batch
         * duration, 1.0 at profiled speed, < 1 when throttled. Kept
         * separate from ewmaThroughput, whose blended prompt+decode
         * token rate is not comparable to planned (decode) flow.
         */
        double ewmaSpeed = 1.0;
        /**
         * Liveness epoch: bumped when the node fails, so a BatchDone
         * scheduled before the failure is recognized as stale even if
         * the node has since recovered and started new batches.
         */
        uint32_t epoch = 0;
        int inFlight = 0;
        /** KV-utilization sampling for metrics. */
        double utilSum = 0.0;
        long utilSamples = 0;
        long batches = 0;
        long itemsProcessed = 0;
        long tokensProcessed = 0;
        double busySeconds = 0.0;
        /**
         * Prompt tokens whose pipeline completed at this node inside
         * the measurement window. Kept per node (not on SimMetrics)
         * because finishBatch runs on shard workers in parallel mode;
         * the integer per-node counters are summed once at the end of
         * the run, which is exact and order-free.
         */
        long promptTokensInWindow = 0;
    };

    struct RequestState
    {
        trace::Request request;
        scheduler::Pipeline pipeline;
        /**
         * KV bytes this request has actually written at each pipeline
         * stage's node (indexed like pipeline). Finish and churn
         * restarts release exactly this, so one request's teardown
         * can never drain KV accounted to others.
         */
        std::vector<double> kvWritten;
        bool admitted = false;
        bool finished = false;
        /** Ever torn down by node churn: excluded from latency
         *  samples, and regenerated work is not recounted. */
        bool restartedEver = false;
        /** Prompt completion already counted toward throughput. */
        bool promptCounted = false;
        int generated = 0;
        /** High-water mark of generated across restarts: only tokens
         *  beyond it are new output (not churn regeneration). */
        int peakGenerated = 0;
        uint32_t epoch = 0;
        double firstTokenTime = -1.0;
        double finishTime = -1.0;
        /** A Preempt event for this request is in flight; suppresses
         *  duplicate victim selection until it lands. */
        bool preemptScheduled = false;
    };

    struct LinkState
    {
        /** Serialization horizon for bulk (prompt-sized) transfers. */
        double bulkBusyUntil = 0.0;
        /**
         * Serialization horizon for interactive (token/activation)
         * messages, which use a separate priority channel and do not
         * queue behind multi-megabyte prompt transfers.
         */
        double interactiveBusyUntil = 0.0;
        /** Cached from ClusterSpec::link so the hot path is one load. */
        double bytesPerSecond = 0.0;
        double latencyS = 0.0;
        LinkStat stat;
    };

    /** Push a typed event at absolute time @p when (routes through
     *  the active lane or executor in parallel runs). */
    HELIX_CONTEXT_DISPATCH
    void scheduleEvent(double when, Event event);

    /** Dispatch one popped event to its kind's handler. */
    HELIX_CONTEXT_DISPATCH
    void dispatch(const Event &event);

    /** Try to admit pending requests through the scheduler. */
    HELIX_COORDINATOR_ONLY
    void tryAdmit();

    /** Fair-share admission: pull from the most under-share tenant's
     *  queue until the scheduler refuses or the active cap binds.
     *  Runs instead of the FIFO loop when tenancy is active. */
    HELIX_COORDINATOR_ONLY
    void tryAdmitFair();

    /** Tenant class of a request (clamped to the declared range,
     *  validated against the fair-share arbiter when one exists). */
    HELIX_COORDINATOR_ONLY
    int tenantOf(int request_index) const;

    /** Starvation sweep: when the controller names a victim class,
     *  schedule a Preempt event for its newest in-flight request one
     *  preemption delay from now. */
    HELIX_COORDINATOR_ONLY
    void maybeSchedulePreempt();

    /** Apply a Preempt event (epoch-safe; stale events no-op). */
    HELIX_CHURN_BARRIER_ONLY
    void applyPreempt(const Event &event);

    /**
     * Tear an admitted request back down to the admission queue: the
     * shared core of churn restarts and preemption. Releases exactly
     * RequestState::kvWritten at every live pipeline stage (skipping
     * @p skip_node, the failed node whose state was wiped wholesale;
     * -1 skips none), notifies the scheduler, bumps the request
     * epoch so in-flight work and messages go stale, and resets
     * generation progress (peakGenerated keeps regenerated tokens
     * from double-counting).
     */
    HELIX_CHURN_BARRIER_ONLY
    void restartRequest(int request_index, int skip_node);

    /** Drop queued work items whose request epoch went stale (after
     *  restartRequest), fixing up per-node inFlight. */
    HELIX_CHURN_BARRIER_ONLY
    void purgeStaleQueuedWork();

    /**
     * Account a transfer of @p bytes over (from, to) and return its
     * delivery time (serialization + propagation).
     */
    HELIX_LANE_SAFE
    double transferDelivery(int from, int to, double bytes);

    /** Deliver a work item to a node's queue. */
    HELIX_LANE_SAFE
    void enqueueWork(int node, const WorkItem &item);

    /** Start a batch on an idle node with a non-empty queue. */
    HELIX_LANE_SAFE
    void startBatch(int node);

    /** Complete the batch in NodeState::running. @p node_epoch is the
     *  node's liveness epoch when the batch started; a mismatch means
     *  the node failed meanwhile and the batch was dropped. */
    HELIX_LANE_SAFE
    void finishBatch(int node, double batch_seconds,
                     double model_seconds,
                     uint32_t node_epoch);

    /** Handle an output token arriving back at the coordinator. */
    HELIX_COORDINATOR_ONLY
    void onTokenAtCoordinator(int request, uint32_t epoch);

    /** Reclaim a finished request's KV at @p node (KvRelease). The
     *  node epoch stamped at send time guards against a failure (and
     *  possible recovery) while the message was in flight. */
    HELIX_LANE_SAFE
    void applyKvRelease(int node, double bytes, uint32_t node_epoch);

    /** Fail @p node: drop its work, restart affected requests. */
    HELIX_CHURN_BARRIER_ONLY
    void onNodeFailure(int node);

    /** Recover @p node: rejoin with empty KV and queue. */
    HELIX_CHURN_BARRIER_ONLY
    void onNodeRecovery(int node);

    /**
     * Re-solve max-flow on the surviving subgraph after a liveness
     * change, swap the fresh topology into the scheduler, and log the
     * new flow value in SimMetrics::flowEvents.
     */
    HELIX_COORDINATOR_ONLY
    void resolveTopology(int node, ChurnEvent::Kind kind);

    /** Lazily build the live-topology manager (first churn or drift
     *  event), honoring SimConfig::repairTopology. */
    HELIX_COORDINATOR_ONLY
    scheduler::TopologyManager &topologyManager();

    /**
     * Drift check after a batch on @p node: once the throughput EWMA
     * has matured, a node observed below plannedFlow * (1 - threshold)
     * has its compute capacity shrunk to the observed rate and the
     * topology re-solved (SimConfig::driftThreshold). In parallel
     * mode the node-local precheck runs on the shard worker and the
     * resolve itself is deferred as a probe to the coordinator phase,
     * which replays probes interleaved with its own events in event
     * order — the scheduler and topology manager stay confined to the
     * round-driver thread.
     */
    HELIX_CONTEXT_DISPATCH
    void maybeDriftResolve(int node);

    /** Node-local half of the drift check (no topology state read). */
    HELIX_LANE_SAFE
    bool driftCheckLocal(int node) const;

    /** Coordinator half: planned-vs-observed comparison + re-solve.
     *  @p ewma_speed is the node's speed EWMA sampled when the
     *  triggering batch finished. */
    HELIX_COORDINATOR_ONLY
    void applyDriftResolve(int node, double ewma_speed);

    /** Current context length of a request (prompt + generated). */
    double contextLen(const RequestState &rs) const;

    /** Whether @p t falls inside the measurement window. */
    bool inWindow(double t) const;

    LinkState &linkState(int from, int to);

    /**
     * Simulation time as seen by the executing context: the member
     * clock in the serial loop and during barrier steps, the owning
     * lane's clock on a shard worker or in the coordinator phase.
     * Every handler reads time through this accessor.
     */
    double curTime() const;

    /** Minimum propagation latency over all directed links — the
     *  conservative lookahead window of the parallel executor. */
    double minLinkLatency() const;

    /** Merged + filtered churn schedule (legacy pair first, then the
     *  event list, stably ordered by time). */
    std::vector<ChurnEvent> churnSchedule() const;

    /** The original single-threaded event loop (also the reference
     *  the differential harness compares the executor against). */
    HELIX_CHURN_BARRIER_ONLY
    void runSerialLoop(const std::vector<ChurnEvent> &churn,
                       double end_time);

    /** Coordinator-visible node state, read through the parallel
     *  executor's mirror during the coordinator phase so scheduler
     *  feedback reflects exactly the node events that precede the
     *  current event in the serial order. */
    HELIX_COORDINATOR_ONLY int nodeInFlightView(int node) const;
    HELIX_COORDINATOR_ONLY bool nodeBusyView(int node) const;

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profiler;
    const placement::ModelPlacement &placementRef;
    HELIX_COORDINATOR_ONLY scheduler::RequestScheduler &sched;
    SimConfig cfg;

    double now = 0.0;
    uint64_t eventSeq = 0;
    std::priority_queue<Event, std::vector<Event>, EventOrder> events;

    std::vector<NodeState> nodes;
    std::vector<RequestState> requests;
    /** Admission queue: coordinator-phase state, like the arbiter. */
    HELIX_COORDINATOR_ONLY std::deque<int> pending;
    std::vector<LinkState> links; // (side)^2, row 0 = coordinator
    int side = 0;
    /** Scratch for prompts deferred during batch assembly (reused). */
    std::vector<WorkItem> deferredScratch;
    /**
     * Live-topology re-solver, created lazily at the first churn
     * event (runs without churn never pay for the extra max-flow
     * solves). The scheduler copies the topology it is rebound to,
     * so its lifetime stays independent of the simulator's.
     */
    HELIX_COORDINATOR_ONLY
    std::unique_ptr<scheduler::TopologyManager> topoManager;

    /**
     * Fair-share admission arbiter, created per run() when two or
     * more tenants are configured; null otherwise, leaving the
     * original single-queue admission path (and its byte-exact
     * behavior) untouched.
     */
    HELIX_COORDINATOR_ONLY
    std::unique_ptr<scheduler::FairShareController> fair;
    /** Decision-to-effect delay of a preemption: the minimum link
     *  propagation latency, so Preempt events always land beyond the
     *  parallel executor's current round horizon. */
    double preemptDelayS = 0.0;

    /** Run-level counters: every write happens in coordinator or
     *  barrier context (lane-local stats live in NodeState). */
    HELIX_COORDINATOR_ONLY SimMetrics metrics;

    /**
     * Active parallel executor, set only while a sharded run is in
     * flight; scheduleEvent routes through it and the Scheduler-
     * Context views read its coordinator mirror. Null in serial runs,
     * so the serial path is exactly the original loop.
     */
    ParallelExecutor *par = nullptr;
    /**
     * Lane the calling thread is currently executing (its clock and
     * routing context). Thread-local because shard workers run the
     * same handler code concurrently on disjoint lanes; null on
     * threads not inside a lane (serial loop, barrier steps).
     */
    static thread_local ParallelLane *tlsLane;
    /**
     * Sole mutation point for tlsLane, defined in simulator.cpp so
     * every store uses local-exec TLS addressing. Cross-TU stores
     * from executor.cpp went through GCC's initial-exec TLS wrapper,
     * whose UBSan null-address check misfires at -O2 (observed with
     * GCC 12.2 under -fsanitize=address,undefined); confining the
     * stores to the defining TU keeps the sanitizer jobs clean.
     */
    static void setTlsLane(ParallelLane *lane);

    friend class ParallelExecutor;
    friend class ParallelLane;
};

} // namespace sim
} // namespace helix

#endif // HELIX_SIM_SIMULATOR_H
