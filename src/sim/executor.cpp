#include "sim/executor.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace helix {
namespace sim {

namespace {

/** Seed for the per-lane random streams. A constant (not derived from
 *  the workload) so a given lane's stream is identical across runs,
 *  thread counts, and scenarios — the golden-sequence tests pin it. */
constexpr uint64_t kLaneStreamSeed = 0x48656c6958506172ULL;

// ClusterSimulator::Event is private; ParallelLane (a friend)
// re-exports it publicly.
using Event = ParallelLane::Event;

/** Serial-order key comparison for merged NodeDelta logs: the same
 *  (time, kind, node, request, stage, epoch) key eventBefore uses.
 *  Deltas from different lanes never tie (distinct coexisting events
 *  differ in the key), so no sequence fallback is needed. */
bool
deltaBefore(const NodeDelta &a, const NodeDelta &b)
{
    // helix-lint: allow(float-eq) exact-time ties fall through to the content key, mirroring eventBefore
    if (a.time != b.time)
        return a.time < b.time;
    if (a.kindRank != b.kindRank)
        return a.kindRank < b.kindRank;
    if (a.node != b.node)
        return a.node < b.node;
    if (a.request != b.request)
        return a.request < b.request;
    if (a.stage != b.stage)
        return a.stage < b.stage;
    return a.epoch < b.epoch;
}

/** True when delta @p d precedes the key (time, kind, node, request,
 *  stage, epoch) in serial event order. */
bool
deltaBeforeKey(const NodeDelta &d, double time, uint8_t kind_rank,
               int node, int request, int stage, uint32_t epoch)
{
    NodeDelta key;
    key.time = time;
    key.kindRank = kind_rank;
    key.node = node;
    key.request = request;
    key.stage = stage;
    key.epoch = epoch;
    return deltaBefore(d, key);
}

constexpr uint8_t kBatchDoneRank =
    static_cast<uint8_t>(Event::Kind::BatchDone);

} // namespace

ParallelExecutor::ParallelExecutor(
    ClusterSimulator &simulator, int num_threads, double min_latency,
    std::vector<ChurnEvent> churn_schedule, double end_time)
    : sim(simulator), lambda(min_latency), endTime(end_time),
      churn(std::move(churn_schedule))
{
    HELIX_ASSERT(lambda > 0.0);
    const int n = static_cast<int>(sim.nodes.size());
    HELIX_ASSERT(n > 0);

    // Barrier steps need the schedule in time order; equal times keep
    // their insertion order (duplicate entries are intentional).
    std::stable_sort(churn.begin(), churn.end(),
                     [](const ChurnEvent &a, const ChurnEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });

    numShards = std::min(kMaxShards, n);
    numWorkers = std::max(1, std::min(num_threads, numShards));
    lanes.resize(static_cast<size_t>(numShards) + 1);
    Rng stream_base(kLaneStreamSeed);
    for (size_t i = 0; i < lanes.size(); ++i) {
        lanes[i].id = static_cast<int>(i);
        lanes[i].coordinator = i == 0;
        lanes[i].rng = stream_base.fork(i);
    }
    laneOfNode.resize(n);
    for (int node = 0; node < n; ++node)
        laneOfNode[node] = 1 + node % numShards;

    mirInFlight.assign(n, 0);
    mirBusy.assign(n, 0);
    mirKvUsed.assign(n, 0.0);
    mirEwmaTp.assign(n, 0.0);
    mirEwmaAt.assign(n, 0.0);

    helpers.reserve(static_cast<size_t>(numWorkers) - 1);
    for (int w = 1; w < numWorkers; ++w)
        helpers.emplace_back([this, w] { workerLoop(w); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        stopFlag = true;
    }
    cvStart.notify_all();
    for (std::thread &helper : helpers)
        helper.join();
}

int
ParallelExecutor::laneOf(const Event &event) const
{
    switch (event.kind) {
      case Event::Kind::Arrival:
      case Event::Kind::TokenDelivery:
        return 0; // Coordinator lane.
      default:
        return laneOfNode[event.node];
    }
}

void
ParallelExecutor::route(Event event, ParallelLane *from)
{
    if (event.kind == Event::Kind::Preempt) {
        // Preemptions execute as dynamic serial barriers (see the
        // member comment). Scheduled one lambda after the decision,
        // so the event always lies at or beyond the current round's
        // horizon — holding it here cannot skip anything.
        pendingPreempts.push_back(event);
        return;
    }
    const int target = laneOf(event);
    if (from == nullptr) {
        // Barrier step (no lane executing): push directly — everything
        // is synchronized, so there is nothing to defer.
        lanes[target].push(event);
        return;
    }
    if (target == from->id) {
        from->push(event);
        return;
    }
    // Cross-lane: the conservative-lookahead invariant guarantees
    // delivery at or beyond the round horizon, so deferring the push
    // to the round barrier cannot reorder anything.
    HELIX_ASSERT(event.time >= horizon);
    from->outbox.push_back(event);
}

int
ParallelExecutor::viewInFlight(int node) const
{
    return mirrorActive ? mirInFlight[node]
                        : sim.nodes[node].inFlight;
}

bool
ParallelExecutor::viewBusy(int node) const
{
    return mirrorActive ? mirBusy[node] != 0 : sim.nodes[node].busy;
}

double
ParallelExecutor::viewKvUsed(int node) const
{
    return mirrorActive ? mirKvUsed[node] : sim.nodes[node].kvUsed;
}

double
ParallelExecutor::viewEwmaThroughput(int node) const
{
    return mirrorActive ? mirEwmaTp[node]
                        : sim.nodes[node].ewmaThroughput;
}

double
ParallelExecutor::viewEwmaUpdatedAt(int node) const
{
    return mirrorActive ? mirEwmaAt[node]
                        : sim.nodes[node].ewmaUpdatedAt;
}

void
ParallelExecutor::refreshMirror()
{
    for (size_t i = 0; i < sim.nodes.size(); ++i) {
        const ClusterSimulator::NodeState &state = sim.nodes[i];
        mirInFlight[i] = state.inFlight;
        mirBusy[i] = state.busy ? 1 : 0;
        mirKvUsed[i] = state.kvUsed;
        mirEwmaTp[i] = state.ewmaThroughput;
        mirEwmaAt[i] = state.ewmaUpdatedAt;
    }
}

void
ParallelExecutor::advanceMirror(double time, uint8_t kind_rank,
                                int node, int request, int stage,
                                uint32_t epoch)
{
    while (deltaCursor < mergedDeltas.size() &&
           deltaBeforeKey(mergedDeltas[deltaCursor], time, kind_rank,
                          node, request, stage, epoch)) {
        const NodeDelta &d = mergedDeltas[deltaCursor++];
        mirInFlight[d.node] = d.inFlight;
        mirBusy[d.node] = d.busy ? 1 : 0;
        mirKvUsed[d.node] = d.kvUsed;
        mirEwmaTp[d.node] = d.ewmaThroughput;
        mirEwmaAt[d.node] = d.ewmaUpdatedAt;
    }
}

void
ParallelExecutor::runLane(ParallelLane &lane)
{
    ClusterSimulator::setTlsLane(&lane);
    while (!lane.queue.empty()) {
        const Event &top = lane.queue.top();
        if (top.time >= horizon || top.time > endTime)
            break;
        Event event = top;
        lane.queue.pop();
        lane.now = event.time;
        sim.dispatch(event);
        // Snapshot the node state for the coordinator mirror, keyed
        // by the event that produced it.
        const ClusterSimulator::NodeState &state =
            sim.nodes[event.node];
        NodeDelta d;
        d.time = event.time;
        d.kindRank = static_cast<uint8_t>(event.kind);
        d.node = event.node;
        d.request = event.item.request;
        d.stage = event.item.stage;
        d.epoch = event.item.epoch;
        d.inFlight = state.inFlight;
        d.busy = state.busy;
        d.kvUsed = state.kvUsed;
        d.ewmaThroughput = state.ewmaThroughput;
        d.ewmaUpdatedAt = state.ewmaUpdatedAt;
        lane.deltas.push_back(d);
    }
    ClusterSimulator::setTlsLane(nullptr);
}

void
ParallelExecutor::workerLoop(int worker_index)
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(poolMutex);
            cvStart.wait(lock, [&] {
                return stopFlag || roundGen != seen;
            });
            if (stopFlag)
                return;
            seen = roundGen;
        }
        for (int lane = 1 + worker_index; lane <= numShards;
             lane += numWorkers) {
            runLane(lanes[lane]);
        }
        {
            std::lock_guard<std::mutex> lock(poolMutex);
            --unfinished;
        }
        cvDone.notify_one();
    }
}

void
ParallelExecutor::runNodePhase()
{
    bool any = false;
    for (int lane = 1; lane <= numShards; ++lane) {
        const auto &queue = lanes[lane].queue;
        if (!queue.empty() && queue.top().time < horizon &&
            queue.top().time <= endTime) {
            any = true;
            break;
        }
    }
    if (!any)
        return;
    if (helpers.empty()) {
        for (int lane = 1; lane <= numShards; ++lane)
            runLane(lanes[lane]);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        ++roundGen;
        unfinished = numWorkers - 1;
    }
    cvStart.notify_all();
    // The round-driver thread is worker 0.
    for (int lane = 1; lane <= numShards; lane += numWorkers)
        runLane(lanes[lane]);
    std::unique_lock<std::mutex> lock(poolMutex);
    cvDone.wait(lock, [&] { return unfinished == 0; });
}

void
ParallelExecutor::runCoordinatorPhase()
{
    // Merge the per-lane logs into serial event order. Deltas from
    // distinct events never tie on the key, and probes inherit the
    // (time, node) of their (unique-per-node) BatchDone.
    mergedDeltas.clear();
    mergedProbes.clear();
    deltaCursor = 0;
    for (int lane = 1; lane <= numShards; ++lane) {
        ParallelLane &shard = lanes[lane];
        mergedDeltas.insert(mergedDeltas.end(), shard.deltas.begin(),
                            shard.deltas.end());
        shard.deltas.clear();
        mergedProbes.insert(mergedProbes.end(), shard.probes.begin(),
                            shard.probes.end());
        shard.probes.clear();
    }
    std::sort(mergedDeltas.begin(), mergedDeltas.end(), deltaBefore);
    std::sort(mergedProbes.begin(), mergedProbes.end(),
              [](const DriftProbe &a, const DriftProbe &b) {
                  // helix-lint: allow(float-eq) same tie-break pattern as eventBefore
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.node < b.node;
              });

    ParallelLane &coord = lanes[0];
    ClusterSimulator::setTlsLane(&coord);
    mirrorActive = true;
    size_t probe_idx = 0;
    for (;;) {
        const bool has_event = !coord.queue.empty() &&
                               coord.queue.top().time < horizon &&
                               coord.queue.top().time <= endTime;
        const bool has_probe = probe_idx < mergedProbes.size();
        if (!has_event && !has_probe)
            break;
        bool probe_first = !has_event;
        if (has_event && has_probe) {
            const Event &top = coord.queue.top();
            const DriftProbe &probe = mergedProbes[probe_idx];
            // Interleave by serial event order: the probe carries its
            // BatchDone's key (kind rank), so drift re-solves land
            // exactly where the serial loop ran them.
            probe_first =
                probe.time < top.time ||
                (!(top.time < probe.time) &&
                 kBatchDoneRank < static_cast<uint8_t>(top.kind));
        }
        if (probe_first) {
            const DriftProbe &probe = mergedProbes[probe_idx++];
            advanceMirror(probe.time, kBatchDoneRank, probe.node, -1,
                          0, 0);
            coord.now = probe.time;
            sim.applyDriftResolve(probe.node, probe.ewmaSpeed);
        } else {
            Event event = coord.queue.top();
            coord.queue.pop();
            advanceMirror(event.time,
                          static_cast<uint8_t>(event.kind),
                          event.node, event.item.request,
                          event.item.stage, event.item.epoch);
            coord.now = event.time;
            sim.dispatch(event);
        }
    }
    // Bring the mirror fully up to date for the next round's start.
    while (deltaCursor < mergedDeltas.size()) {
        const NodeDelta &d = mergedDeltas[deltaCursor++];
        mirInFlight[d.node] = d.inFlight;
        mirBusy[d.node] = d.busy ? 1 : 0;
        mirKvUsed[d.node] = d.kvUsed;
        mirEwmaTp[d.node] = d.ewmaThroughput;
        mirEwmaAt[d.node] = d.ewmaUpdatedAt;
    }
    ClusterSimulator::setTlsLane(nullptr);
    mirrorActive = false;
}

void
ParallelExecutor::flushOutboxes()
{
    for (ParallelLane &lane : lanes) {
        for (const Event &event : lane.outbox)
            lanes[laneOf(event)].push(event);
        lane.outbox.clear();
    }
}

void
ParallelExecutor::runBarrier(double when)
{
    // All events strictly before `when` have executed; pop everything
    // at exactly `when` from every lane, add the due churn entries,
    // and run the batch serially in serial event order against fully
    // synchronized state — identical to the serial loop around a
    // churn event.
    std::vector<Event> batch;
    for (ParallelLane &lane : lanes) {
        while (!lane.queue.empty() &&
               lane.queue.top().time <= when) {
            batch.push_back(lane.queue.top());
            lane.queue.pop();
        }
    }
    uint64_t churn_seq = 0;
    while (churnIdx < churn.size() &&
           churn[churnIdx].atSeconds <= when) {
        const ChurnEvent &entry = churn[churnIdx++];
        Event event;
        event.kind = entry.kind == ChurnEvent::Kind::Fail
                         ? Event::Kind::NodeFailure
                         : Event::Kind::NodeRecovery;
        event.node = entry.node;
        event.time = when;
        // Duplicate churn entries tie on the full content key; the
        // sequence fallback preserves their schedule order.
        event.seq = churn_seq++;
        batch.push_back(event);
    }
    // Due preemptions join the same batch; distinct preempts always
    // differ in item.request, so eventBefore orders them without the
    // sequence fallback (Preempt ranks after every other kind at the
    // same time, matching the serial priority queue).
    size_t keep = 0;
    for (size_t i = 0; i < pendingPreempts.size(); ++i) {
        Event event = pendingPreempts[i];
        if (event.time <= when) {
            event.seq = churn_seq++;
            batch.push_back(event);
        } else {
            pendingPreempts[keep++] = pendingPreempts[i];
        }
    }
    pendingPreempts.resize(keep);
    std::stable_sort(batch.begin(), batch.end(),
                     ClusterSimulator::eventBefore);

    mirrorActive = false;
    ClusterSimulator::setTlsLane(nullptr);
    sim.now = when;
    for (const Event &event : batch)
        sim.dispatch(event);
    flushOutboxes();
}

void
ParallelExecutor::run()
{
    // Seed arrivals into the coordinator lane in request order.
    for (size_t i = 0; i < sim.requests.size(); ++i) {
        Event event;
        event.kind = Event::Kind::Arrival;
        event.item.request = static_cast<int>(i);
        event.time =
            std::max(sim.requests[i].request.arrivalS, 0.0);
        lanes[0].push(event);
    }
    refreshMirror();

    const double inf = std::numeric_limits<double>::infinity();
    for (;;) {
        double next = inf;
        for (const ParallelLane &lane : lanes) {
            if (!lane.queue.empty())
                next = std::min(next, lane.queue.top().time);
        }
        const double churn_at =
            churnIdx < churn.size() ? churn[churnIdx].atSeconds : inf;
        // Barriers come in two flavors: the static churn schedule and
        // dynamically scheduled preemptions; the earliest one bounds
        // the round.
        double barrier_at = churn_at;
        for (const Event &event : pendingPreempts)
            barrier_at = std::min(barrier_at, event.time);
        if (next > endTime && barrier_at > endTime)
            break;
        if (barrier_at <= next) {
            // Rounds never span a barrier time: execute it (and any
            // events at exactly that time) as a serial barrier step.
            runBarrier(barrier_at);
            refreshMirror();
            continue;
        }
        // Conservative round: every event below the horizon is causally
        // closed — any message it sends arrives at >= next + lambda.
        horizon = std::min(next + lambda, barrier_at);
        runNodePhase();
        runCoordinatorPhase();
        flushOutboxes();
    }
    // Leave the simulator's master clock at the end of the run and the
    // lanes drained so a reused simulator starts clean.
    sim.now = std::max(sim.now, endTime);
    for (ParallelLane &lane : lanes) {
        while (!lane.queue.empty())
            lane.queue.pop();
        lane.outbox.clear();
    }
    pendingPreempts.clear();
}

} // namespace sim
} // namespace helix
