#include "trace/trace.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace helix {
namespace trace {

namespace {

/** Standard normal CDF. */
double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/**
 * Find mu such that the rejection-truncated log-normal(mu, sigma)
 * capped at @p cap has the given mean, by bisection.
 */
double
calibrateMu(double target_mean, double sigma, double cap)
{
    double lo = std::log(target_mean) - 3.0;
    double hi = std::log(cap) + 2.0;
    for (int iter = 0; iter < 100; ++iter) {
        double mid = 0.5 * (lo + hi);
        double mean =
            LengthSampler::truncatedLogNormalMean(mid, sigma, cap);
        if (mean < target_mean)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

double
LengthSampler::truncatedLogNormalMean(double mu, double sigma,
                                      double cap)
{
    // E[X | X <= cap] for X ~ LogNormal(mu, sigma):
    //   exp(mu + sigma^2/2) * Phi((ln cap - mu - sigma^2)/sigma)
    //   / Phi((ln cap - mu)/sigma)
    double a = (std::log(cap) - mu) / sigma;
    double numer = std::exp(mu + 0.5 * sigma * sigma) *
                   normalCdf(a - sigma);
    double denom = normalCdf(a);
    HELIX_ASSERT(denom > 0.0);
    return numer / denom;
}

LengthSampler::LengthSampler(LengthModel model) : spec(model)
{
    promptMu = calibrateMu(spec.targetMeanPrompt, spec.promptSigma,
                           spec.maxPromptLen);
    outputMu = calibrateMu(spec.targetMeanOutput, spec.outputSigma,
                           spec.maxOutputLen);
}

int
LengthSampler::sampleTruncated(Rng &rng, double mu, double sigma,
                               int cap) const
{
    for (int attempt = 0; attempt < 1000; ++attempt) {
        double x = rng.nextLogNormal(mu, sigma);
        if (x <= cap) {
            int len = static_cast<int>(std::lround(x));
            return std::clamp(len, spec.minLen, cap);
        }
    }
    return cap;
}

int
LengthSampler::samplePrompt(Rng &rng) const
{
    return sampleTruncated(rng, promptMu, spec.promptSigma,
                           spec.maxPromptLen);
}

int
LengthSampler::sampleOutput(Rng &rng) const
{
    return sampleTruncated(rng, outputMu, spec.outputSigma,
                           spec.maxOutputLen);
}

double
PoissonArrivals::nextArrival(double now, Rng &rng)
{
    HELIX_ASSERT(rate > 0.0);
    return now + rng.nextExponential(rate);
}

DiurnalArrivals::DiurnalArrivals(double mean_rate_per_s,
                                 double amplitude_frac,
                                 double period_s)
    : meanRate(mean_rate_per_s), amplitude(amplitude_frac),
      periodS(period_s)
{
    HELIX_ASSERT(meanRate > 0.0);
    HELIX_ASSERT(amplitude >= 0.0 && amplitude < 1.0);
}

double
DiurnalArrivals::rateAt(double t) const
{
    return meanRate *
           (1.0 + amplitude * std::sin(2.0 * M_PI * t / periodS));
}

double
DiurnalArrivals::nextArrival(double now, Rng &rng)
{
    // Ogata thinning against the max rate.
    double max_rate = meanRate * (1.0 + amplitude);
    double t = now;
    for (;;) {
        t += rng.nextExponential(max_rate);
        if (rng.nextDouble() <= rateAt(t) / max_rate)
            return t;
    }
}

BurstyArrivals::BurstyArrivals(double base_rate_per_s,
                               double burst_multiplier,
                               double mean_burst_s, double mean_gap_s)
    : baseRate(base_rate_per_s), burstMultiplier(burst_multiplier),
      meanBurstS(mean_burst_s), meanGapS(mean_gap_s)
{
    HELIX_ASSERT(baseRate > 0.0);
    HELIX_ASSERT(burstMultiplier >= 1.0);
    HELIX_ASSERT(meanBurstS > 0.0);
    HELIX_ASSERT(meanGapS > 0.0);
}

void
BurstyArrivals::advanceTo(double t, Rng &rng)
{
    if (nextTransitionS < 0.0) {
        // Lazy start in the quiet state; first transition drawn here
        // so construction itself consumes no randomness.
        bursting = false;
        nextTransitionS = rng.nextExponential(1.0 / meanGapS);
    }
    while (nextTransitionS <= t) {
        bursting = !bursting;
        double mean = bursting ? meanBurstS : meanGapS;
        nextTransitionS += rng.nextExponential(1.0 / mean);
    }
}

bool
BurstyArrivals::burstingAt(double t, Rng &rng)
{
    advanceTo(t, rng);
    return bursting;
}

double
BurstyArrivals::rateAt(double t, Rng &rng)
{
    advanceTo(t, rng);
    return bursting ? baseRate * burstMultiplier : baseRate;
}

double
BurstyArrivals::meanRate() const
{
    double burst_frac = meanBurstS / (meanBurstS + meanGapS);
    return baseRate *
           (1.0 + burst_frac * (burstMultiplier - 1.0));
}

double
BurstyArrivals::nextArrival(double now, Rng &rng)
{
    // Thinning against the burst-state (maximum) rate; the modulating
    // chain advances on the same RNG stream for reproducibility.
    double max_rate = baseRate * burstMultiplier;
    double t = now;
    for (;;) {
        t += rng.nextExponential(max_rate);
        double rate = rateAt(t, rng);
        if (rng.nextDouble() <= rate / max_rate)
            return t;
    }
}

TraceGenerator::TraceGenerator(uint64_t seed, LengthModel model)
    : rng(seed), sampler(model)
{
}

Request
TraceGenerator::makeRequest(int id, double arrival)
{
    Request req;
    req.id = id;
    req.arrivalS = arrival;
    req.promptLen = sampler.samplePrompt(rng);
    req.outputLen = sampler.sampleOutput(rng);
    return req;
}

std::vector<Request>
TraceGenerator::generate(double duration_s, ArrivalProcess &arrivals)
{
    std::vector<Request> requests;
    double t = 0.0;
    int id = 0;
    for (;;) {
        t = arrivals.nextArrival(t, rng);
        if (t >= duration_s)
            break;
        requests.push_back(makeRequest(id++, t));
    }
    return requests;
}

std::vector<Request>
TraceGenerator::generateCount(int count, ArrivalProcess &arrivals)
{
    std::vector<Request> requests;
    requests.reserve(count);
    double t = 0.0;
    for (int id = 0; id < count; ++id) {
        t = arrivals.nextArrival(t, rng);
        requests.push_back(makeRequest(id, t));
    }
    return requests;
}

} // namespace trace
} // namespace helix
