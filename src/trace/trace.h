/**
 * @file
 * Request traces: the synthetic Azure-Conversation-equivalent workload
 * and arrival processes.
 *
 * The paper evaluates with the Azure Conversation dataset filtered to
 * input <= 2048 and output <= 1024 tokens, leaving 16657 requests with
 * mean input 763 and mean output 232 (Sec. 6.2, Fig. 5). We do not
 * have the proprietary trace, so we generate a synthetic equivalent:
 * truncated log-normal length marginals calibrated to those published
 * statistics, and either Poisson (offline) or diurnally-modulated
 * Poisson (online) arrivals. This exercises the same code paths (long
 * prompts, KV pressure, bursts) that the real trace does.
 */

#ifndef HELIX_TRACE_TRACE_H
#define HELIX_TRACE_TRACE_H

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace helix {
namespace trace {

/** One inference request. */
struct Request
{
    int id = 0;
    /** Arrival time at the coordinator, seconds from epoch 0. */
    double arrivalS = 0.0;
    /** Prompt length in tokens. */
    int promptLen = 0;
    /** Output length in tokens (unknown to the system until EOS). */
    int outputLen = 0;
    /** Tenant class index for fair-share serving; 0 in single-tenant
     *  traces (the default keeps existing traces valid unchanged). */
    int tenant = 0;
};

/** Length-distribution parameters for the synthetic trace. */
struct LengthModel
{
    double targetMeanPrompt = 763.0;
    int maxPromptLen = 2048;
    double promptSigma = 1.0;
    double targetMeanOutput = 232.0;
    int maxOutputLen = 1024;
    double outputSigma = 0.9;
    int minLen = 4;
};

/**
 * Samples request lengths from truncated log-normal distributions
 * whose post-truncation means match the published trace statistics
 * (calibrated numerically at construction).
 */
class LengthSampler
{
  public:
    explicit LengthSampler(LengthModel model = {});

    /** Sample a prompt length. */
    int samplePrompt(Rng &rng) const;

    /** Sample an output length. */
    int sampleOutput(Rng &rng) const;

    /** The underlying model. */
    const LengthModel &model() const { return spec; }

    /**
     * Mean of a log-normal(mu, sigma) truncated (by rejection) to
     * [0, cap]. Exposed for tests.
     */
    static double truncatedLogNormalMean(double mu, double sigma,
                                         double cap);

  private:
    int sampleTruncated(Rng &rng, double mu, double sigma,
                        int cap) const;

    LengthModel spec;
    double promptMu = 0.0;
    double outputMu = 0.0;
};

/** Arrival-process interface: produces arrival timestamps. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Next arrival time strictly after @p now. */
    virtual double nextArrival(double now, Rng &rng) = 0;
};

/** Memoryless arrivals at a constant rate (offline saturation). */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(double rate_per_s) : rate(rate_per_s) {}

    double nextArrival(double now, Rng &rng) override;

  private:
    double rate;
};

/**
 * Non-homogeneous Poisson arrivals with a diurnal rate curve
 * rate(t) = mean * (1 + amplitude * sin(2 pi t / period)), sampled by
 * thinning. Mirrors the Azure trace's time-varying arrival rate
 * (Fig. 5b).
 */
class DiurnalArrivals : public ArrivalProcess
{
  public:
    explicit DiurnalArrivals(double mean_rate_per_s,
                             double amplitude = 0.3,
                             double period_s = 3600.0);

    double nextArrival(double now, Rng &rng) override;

    /** Instantaneous rate at time @p t. */
    double rateAt(double t) const;

  private:
    double meanRate;
    double amplitude;
    double periodS;
};

/**
 * Markov-modulated Poisson process (MMPP) with two states: a baseline
 * state at @p base_rate and a burst state at
 * @p base_rate * burst_multiplier. State sojourn times are
 * exponential, so burst onsets are memoryless and bursts of arrivals
 * cluster the way production traffic spikes do. Sampled by thinning
 * against the burst rate; the modulating chain advances on the same
 * RNG stream, keeping traces reproducible from one seed.
 */
class BurstyArrivals : public ArrivalProcess
{
  public:
    /**
     * @param base_rate_per_s arrival rate outside bursts
     * @param burst_multiplier rate multiplier during a burst (>= 1)
     * @param mean_burst_s mean burst duration
     * @param mean_gap_s mean quiet time between bursts
     */
    explicit BurstyArrivals(double base_rate_per_s,
                   double burst_multiplier = 5.0,
                   double mean_burst_s = 30.0,
                   double mean_gap_s = 270.0);

    double nextArrival(double now, Rng &rng) override;

    /** Whether the modulating chain is bursting at time @p t. */
    bool burstingAt(double t, Rng &rng);

    /** Instantaneous rate at time @p t (advances the chain). */
    double rateAt(double t, Rng &rng);

    /** Long-run average arrival rate implied by the parameters. */
    double meanRate() const;

  private:
    /** Advance the modulating chain to time @p t. */
    void advanceTo(double t, Rng &rng);

    double baseRate;
    double burstMultiplier;
    double meanBurstS;
    double meanGapS;
    /** Modulating-chain state: bursting until/quiet until. */
    bool bursting = false;
    double nextTransitionS = -1.0;
};

/** Generates complete request traces. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(uint64_t seed, LengthModel model = {});

    /**
     * Generate requests arriving over [0, duration_s) according to
     * @p arrivals.
     */
    std::vector<Request> generate(double duration_s,
                                  ArrivalProcess &arrivals);

    /** Generate a fixed number of requests. */
    std::vector<Request> generateCount(int count,
                                       ArrivalProcess &arrivals);

    const LengthSampler &lengths() const { return sampler; }

  private:
    Request makeRequest(int id, double arrival);

    Rng rng;
    LengthSampler sampler;
};

} // namespace trace
} // namespace helix

#endif // HELIX_TRACE_TRACE_H
