/**
 * @file
 * helixctl: the command-line front end over the experiment engine.
 *
 *   helixctl run <spec.exp> [--csv FILE] [--json FILE] [--threads N]
 *       Execute a declarative `experiment v1` sweep and emit results.
 *       With no output flag, the spec's `output` format goes to
 *       stdout after a human-readable summary table; `-` as FILE
 *       writes the emitter to stdout and suppresses the table.
 *
 *   helixctl plan <cluster> <model> [--planner NAME] [--budget S]
 *                 [--threads N] [--out FILE]
 *       Run a placement planner and write a `placement v1` artifact
 *       (stdout by default).
 *
 *   helixctl gen-cluster <preset> [--nodes N] [--seed S] [--out FILE]
 *       Generate a synthetic cluster and write it as a `cluster v1`
 *       artifact (stdout by default).
 *
 *   helixctl validate <spec.exp> [...]
 *       Parse + registry-resolve specs without running anything;
 *       errors are reported as `<path>:<line>: <message>`.
 *
 *   helixctl list
 *       Dump the registries a spec can name.
 *
 * Every subcommand prints its own synopsis with `--help`;
 * `helixctl --version` prints the release version.
 *
 * Exit codes: 0 success, 1 runtime/validation failure, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "exp/spec.h"
#include "io/serialization.h"
#include "io/spec.h"

#ifndef HELIX_VERSION
#define HELIX_VERSION "dev"
#endif

namespace {

using namespace helix;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> [...]\n"
        "\n"
        "commands:\n"
        "  run <spec.exp> [--csv FILE] [--json FILE] [--threads N]\n"
        "      execute an experiment spec ('-' as FILE = stdout)\n"
        "  plan <cluster> <model> [--planner NAME] [--budget SECONDS]\n"
        "       [--threads N] [--out FILE]\n"
        "      run a planner, write a 'placement v1' artifact\n"
        "  gen-cluster <preset> [--nodes N] [--seed S] [--out FILE]\n"
        "      generate a synthetic cluster, write a 'cluster v1' "
        "artifact\n"
        "  validate <spec.exp> [...]\n"
        "      parse + resolve specs, report line-numbered errors\n"
        "  list\n"
        "      dump registered clusters/models/planners/schedulers/"
        "scenarios\n"
        "\n"
        "every command accepts --help; --version prints '%s'\n"
        "see docs/FILE_FORMATS.md for the spec grammar,\n"
        "docs/PLANNERS.md for planner semantics, and\n"
        "docs/SCENARIOS.md for scenario semantics\n",
        argv0, HELIX_VERSION);
    return 2;
}

// --- Per-subcommand help ---------------------------------------------
// One normative synopsis per subcommand, printed on `<cmd> --help`.
// tests/test_cli.cpp asserts this text, so the binary and the docs
// cannot drift apart.

const char *const kRunHelp =
    "usage: helixctl run <spec.exp> [--csv FILE] [--json FILE]\n"
    "                    [--threads N]\n"
    "\n"
    "Execute a declarative 'experiment v1' sweep (see\n"
    "docs/FILE_FORMATS.md). With no output flag the spec's 'output'\n"
    "format goes to stdout after a summary table; '-' as FILE writes\n"
    "the emitter to stdout and suppresses the table.\n"
    "\n"
    "  --csv FILE      write results as CSV ('-' = stdout)\n"
    "  --json FILE     write results as JSON ('-' = stdout)\n"
    "  --threads N     worker threads (0 = hardware concurrency);\n"
    "                  overrides the spec's 'threads' directive and\n"
    "                  caps a portfolio planner's member race\n";

const char *const kPlanHelp =
    "usage: helixctl plan <cluster> <model> [--planner NAME]\n"
    "                     [--budget SECONDS] [--threads N]\n"
    "                     [--out FILE]\n"
    "\n"
    "Run a placement planner and write the chosen placement as a\n"
    "'placement v1' artifact. <cluster> is a registry name or a\n"
    "generated cluster 'gen:<preset>:<nodes>[:<seed>]'.\n"
    "\n"
    "  --planner NAME  planner registry name (default helix); for\n"
    "                  'portfolio[:a,b,...]' see docs/PLANNERS.md\n"
    "  --budget S      wall-clock budget for budgeted planners\n"
    "                  (default 2)\n"
    "  --threads N     worker threads for a portfolio's member race\n"
    "                  (0 = one thread per member)\n"
    "  --out FILE      output path (default '-' = stdout)\n";

const char *const kGenClusterHelp =
    "usage: helixctl gen-cluster <preset> [--nodes N] [--seed S]\n"
    "                            [--out FILE]\n"
    "\n"
    "Generate a synthetic cluster and write it as a 'cluster v1'\n"
    "artifact. Generation is deterministic in (preset, nodes, seed);\n"
    "experiment specs can name the same cluster directly as\n"
    "'gen:<preset>:<nodes>[:<seed>]'. Presets (docs/FILE_FORMATS.md):\n"
    "homogeneous, two-tier, long-tail-heterogeneous, geo-distributed.\n"
    "\n"
    "  --nodes N       number of compute nodes (default 100)\n"
    "  --seed S        RNG seed for the randomized presets "
    "(default 42)\n"
    "  --out FILE      output path (default '-' = stdout)\n";

const char *const kValidateHelp =
    "usage: helixctl validate <spec.exp> [...]\n"
    "\n"
    "Parse and registry-resolve experiment specs without running\n"
    "anything. Errors are reported as '<path>:<line>: <message>';\n"
    "exit code 1 if any spec fails.\n";

const char *const kListHelp =
    "usage: helixctl list\n"
    "\n"
    "Dump every registry a spec can name: clusters, cluster\n"
    "generator presets, models, planners, schedulers, and scenario\n"
    "kinds with their options.\n";

/** True when any argument is --help/-h (printing @p text if so). */
bool
wantsHelp(int argc, char **argv, const char *text)
{
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::fputs(text, stdout);
            return true;
        }
    }
    return false;
}

/** Load + parse + validate one spec file; nullopt after reporting. */
std::optional<io::ExperimentSpec>
loadSpec(const std::string &path)
{
    auto text = io::readFile(path);
    if (!text) {
        std::fprintf(stderr, "%s: cannot read file\n", path.c_str());
        return std::nullopt;
    }
    io::ParseError error;
    auto spec = io::experimentFromString(*text, error);
    if (!spec) {
        std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), error.line,
                     error.message.c_str());
        return std::nullopt;
    }
    if (!exp::validateSpec(*spec, &error)) {
        std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), error.line,
                     error.message.c_str());
        return std::nullopt;
    }
    return spec;
}

/** Write @p text to @p path, or to stdout when path is "-". */
bool
emit(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    if (!io::writeFile(path, text)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

int
cmdRun(int argc, char **argv)
{
    if (wantsHelp(argc, argv, kRunHelp))
        return 0;
    std::string spec_path;
    std::string csv_path;
    std::string json_path;
    int threads = 0;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            if (!io::parseInt(argv[++i], threads) || threads < 0) {
                std::fprintf(stderr,
                             "run: --threads needs a non-negative "
                             "integer, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "run: unknown flag %s\n", argv[i]);
            return 2;
        } else if (spec_path.empty()) {
            spec_path = argv[i];
        } else {
            std::fprintf(stderr, "run: extra argument %s\n", argv[i]);
            return 2;
        }
    }
    if (spec_path.empty()) {
        std::fprintf(stderr, "run: missing <spec.exp>\n");
        return 2;
    }

    auto spec = loadSpec(spec_path);
    if (!spec)
        return 1;

    exp::RunnerOptions options;
    options.numThreads = threads;
    io::ParseError error;
    auto results = exp::runSpec(*spec, &error, options);
    if (!results) {
        std::fprintf(stderr, "%s:%d: %s\n", spec_path.c_str(),
                     error.line, error.message.c_str());
        return 1;
    }

    bool quiet = csv_path == "-" || json_path == "-";
    if (!quiet) {
        std::printf("experiment '%s': %zu runs\n",
                    spec->name.c_str(), results->size());
        std::printf("%-52s %10s %12s %12s %10s %8s\n", "run",
                    "planned", "decode t/s", "p-lat p95", "completed",
                    "restart");
        for (const auto &result : *results) {
            std::printf(
                "%-52s %10.0f %12.1f %12.3f %10ld %8ld\n",
                result.label.c_str(), result.plannedThroughput,
                result.metrics.decodeThroughput,
                result.metrics.promptLatency.percentile(95),
                result.metrics.requestsCompleted,
                result.metrics.requestsRestarted);
        }
    }

    bool ok = true;
    if (!csv_path.empty())
        ok = emit(csv_path, exp::resultsToCsv(*results)) && ok;
    if (!json_path.empty())
        ok = emit(json_path, exp::resultsToJson(*results)) && ok;
    if (csv_path.empty() && json_path.empty()) {
        const std::string text = spec->output == "json"
                                     ? exp::resultsToJson(*results)
                                     : exp::resultsToCsv(*results);
        std::fputs(text.c_str(), stdout);
    }
    return ok ? 0 : 1;
}

int
cmdPlan(int argc, char **argv)
{
    if (wantsHelp(argc, argv, kPlanHelp))
        return 0;
    std::string cluster_name;
    std::string model_name;
    std::string planner_name = "helix";
    std::string out_path = "-";
    double budget_s = 2.0;
    int threads = 0;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--planner") == 0 && i + 1 < argc) {
            planner_name = argv[++i];
        } else if (std::strcmp(argv[i], "--budget") == 0 &&
                   i + 1 < argc) {
            if (!io::parseDouble(argv[++i], budget_s) ||
                budget_s < 0.0) {
                std::fprintf(stderr,
                             "plan: --budget needs a non-negative "
                             "number of seconds, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            if (!io::parseInt(argv[++i], threads) || threads < 0) {
                std::fprintf(stderr,
                             "plan: --threads needs a non-negative "
                             "integer, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (argv[i][0] == '-' && std::strlen(argv[i]) > 1) {
            std::fprintf(stderr, "plan: unknown flag %s\n", argv[i]);
            return 2;
        } else if (cluster_name.empty()) {
            cluster_name = argv[i];
        } else if (model_name.empty()) {
            model_name = argv[i];
        } else {
            std::fprintf(stderr, "plan: extra argument %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (cluster_name.empty() || model_name.empty()) {
        std::fprintf(stderr, "plan: need <cluster> <model>\n");
        return 2;
    }

    auto clus = exp::clusterByName(cluster_name);
    if (!clus) {
        std::fprintf(stderr, "unknown cluster '%s' (helixctl list)\n",
                     cluster_name.c_str());
        return 1;
    }
    auto model_spec = exp::modelByName(model_name);
    if (!model_spec) {
        std::fprintf(stderr, "unknown model '%s' (helixctl list)\n",
                     model_name.c_str());
        return 1;
    }
    auto planner = exp::plannerByName(planner_name, budget_s, threads);
    if (!planner) {
        std::fprintf(stderr, "unknown planner '%s' (helixctl list)\n",
                     planner_name.c_str());
        return 1;
    }

    Deployment deployment(*clus, *model_spec, *planner);
    std::fprintf(stderr,
                 "planned %s on %s with %s: %.0f tokens/s peak\n",
                 model_spec->name.c_str(), cluster_name.c_str(),
                 planner_name.c_str(),
                 deployment.plannedThroughput());
    return emit(out_path,
                io::placementToString(deployment.placement()))
               ? 0
               : 1;
}

int
cmdGenCluster(int argc, char **argv)
{
    if (wantsHelp(argc, argv, kGenClusterHelp))
        return 0;
    cluster::gen::GeneratorConfig config;
    config.preset.clear();
    std::string out_path = "-";
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
            if (!io::parseInt(argv[++i], config.numNodes) ||
                config.numNodes < 1) {
                std::fprintf(stderr,
                             "gen-cluster: --nodes needs a positive "
                             "integer, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            if (!io::parseU64(argv[++i], config.seed)) {
                std::fprintf(stderr,
                             "gen-cluster: --seed needs an unsigned "
                             "integer, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (argv[i][0] == '-' && std::strlen(argv[i]) > 1) {
            std::fprintf(stderr, "gen-cluster: unknown flag %s\n",
                         argv[i]);
            return 2;
        } else if (config.preset.empty()) {
            config.preset = argv[i];
        } else {
            std::fprintf(stderr, "gen-cluster: extra argument %s\n",
                         argv[i]);
            return 2;
        }
    }
    if (config.preset.empty()) {
        std::fprintf(stderr, "gen-cluster: missing <preset>\n");
        return 2;
    }

    auto clus = cluster::gen::generate(config);
    if (!clus) {
        std::fprintf(stderr,
                     "unknown generator preset '%s' (known: %s)\n",
                     config.preset.c_str(),
                     io::joinNames(cluster::gen::presetNames())
                         .c_str());
        return 1;
    }
    std::fprintf(stderr, "generated %s cluster (seed %llu): %s\n",
                 config.preset.c_str(),
                 static_cast<unsigned long long>(config.seed),
                 clus->summary().c_str());
    return emit(out_path, io::clusterToString(*clus)) ? 0 : 1;
}

int
cmdValidate(int argc, char **argv)
{
    if (wantsHelp(argc, argv, kValidateHelp))
        return 0;
    if (argc == 0) {
        std::fprintf(stderr, "validate: missing <spec.exp>\n");
        return 2;
    }
    int failures = 0;
    for (int i = 0; i < argc; ++i) {
        auto spec = loadSpec(argv[i]);
        if (!spec) {
            ++failures;
            continue;
        }
        size_t num_systems =
            spec->systems.empty()
                ? spec->planners.size() * spec->schedulers.size()
                : spec->systems.size();
        std::printf("%s: OK (%zu cluster(s) x %zu model(s) x %zu "
                    "system(s) x %zu scenario(s))\n",
                    argv[i], spec->clusters.size(),
                    spec->models.size(), num_systems,
                    spec->scenarios.size());
    }
    return failures == 0 ? 0 : 1;
}

int
cmdList()
{
    std::printf("clusters:\n");
    for (const std::string &name : exp::clusterNames()) {
        auto clus = exp::clusterByName(name);
        std::printf("  %-14s %s\n", name.c_str(),
                    clus->summary().c_str());
    }
    std::printf("cluster generators (gen:<preset>:<nodes>[:<seed>]):"
                "\n");
    for (const std::string &name : cluster::gen::presetNames())
        std::printf("  %s\n", name.c_str());
    std::printf("models:\n");
    for (const std::string &name : exp::modelNames()) {
        auto model_spec = exp::modelByName(name);
        std::printf("  %-14s %s (%d layers)\n", name.c_str(),
                    model_spec->name.c_str(), model_spec->numLayers);
    }
    std::printf("planners:\n");
    for (const std::string &name : exp::plannerNames())
        std::printf("  %s\n", name.c_str());
    std::printf("schedulers:\n");
    for (const std::string &name : exp::schedulerNames())
        std::printf("  %s\n", name.c_str());
    std::printf("scenarios:\n");
    for (const std::string &kind : io::scenarioKinds()) {
        std::string keys;
        for (const std::string &key : io::scenarioOptionKeys(kind)) {
            if (!keys.empty())
                keys += " ";
            keys += key + "=";
        }
        std::printf("  %-14s %s\n", kind.c_str(), keys.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(cmd, "plan") == 0)
        return cmdPlan(argc - 2, argv + 2);
    if (std::strcmp(cmd, "gen-cluster") == 0)
        return cmdGenCluster(argc - 2, argv + 2);
    if (std::strcmp(cmd, "validate") == 0)
        return cmdValidate(argc - 2, argv + 2);
    if (std::strcmp(cmd, "list") == 0) {
        if (wantsHelp(argc - 2, argv + 2, kListHelp))
            return 0;
        return cmdList();
    }
    if (std::strcmp(cmd, "--version") == 0 ||
        std::strcmp(cmd, "version") == 0) {
        std::printf("helixctl %s\n", HELIX_VERSION);
        return 0;
    }
    if (std::strcmp(cmd, "help") == 0 ||
        std::strcmp(cmd, "--help") == 0 ||
        std::strcmp(cmd, "-h") == 0) {
        usage(argv[0]);
        return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd);
    return usage(argv[0]);
}
