/**
 * @file
 * Linear programming via the two-phase primal simplex method.
 *
 * This is the LP engine underneath the MILP branch-and-bound solver
 * (src/milp) that replaces Gurobi in our reproduction. The
 * implementation is a dense-tableau two-phase simplex with Bland's
 * anti-cycling rule as a fallback; Helix's MILP relaxations are small
 * (hundreds to a few thousand variables), so dense algebra is adequate.
 */

#ifndef HELIX_LP_SIMPLEX_H
#define HELIX_LP_SIMPLEX_H

#include <string>
#include <utility>
#include <vector>

namespace helix {
namespace lp {

/** Relation of a linear constraint's left side to its right side. */
enum class Relation {
    LessEq,
    GreaterEq,
    Equal,
};

/** Outcome of an LP solve. */
enum class LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
    IterLimit,
};

/** Human-readable name of an LpStatus. */
const char *toString(LpStatus status);

/** One linear constraint: sum(coef * var) REL rhs. */
struct Constraint
{
    std::vector<std::pair<int, double>> terms;
    Relation relation = Relation::LessEq;
    double rhs = 0.0;
};

/**
 * A linear program in maximization form with per-variable bounds.
 * Variables may have finite or infinite (kInfinity) upper bounds and
 * arbitrary finite lower bounds.
 */
class LpProblem
{
  public:
    static constexpr double kInfinity = 1e30;

    /**
     * Add a decision variable.
     * @param lower lower bound (finite)
     * @param upper upper bound (kInfinity for none)
     * @param objective coefficient in the maximization objective
     * @param name optional label for diagnostics
     * @return the variable's index
     */
    int addVariable(double lower, double upper, double objective,
                    std::string name = "");

    /** Add a linear constraint over previously added variables. */
    void addConstraint(std::vector<std::pair<int, double>> terms,
                       Relation relation, double rhs);

    int numVariables() const { return static_cast<int>(lowers.size()); }
    int numConstraints() const
    {
        return static_cast<int>(constraints.size());
    }

    double lowerBound(int var) const { return lowers[var]; }
    double upperBound(int var) const { return uppers[var]; }
    double objectiveCoef(int var) const { return objectives[var]; }
    const std::string &variableName(int var) const { return names[var]; }
    const Constraint &constraint(int row) const
    {
        return constraints[row];
    }

    /** Tighten a variable's bounds (used by branch-and-bound). */
    void setBounds(int var, double lower, double upper);

  private:
    std::vector<double> lowers;
    std::vector<double> uppers;
    std::vector<double> objectives;
    std::vector<std::string> names;
    std::vector<Constraint> constraints;
};

/** Result of solving an LpProblem. */
struct LpResult
{
    LpStatus status = LpStatus::Infeasible;
    /** Objective value (maximization). Valid only when Optimal. */
    double objective = 0.0;
    /** Value of every variable. Valid only when Optimal. */
    std::vector<double> values;
    /** Simplex pivots performed across both phases. */
    long iterations = 0;
};

/**
 * Dense two-phase primal simplex.
 *
 * Usage: construct once, call solve() with any LpProblem. The solver
 * keeps no state between calls.
 */
class SimplexSolver
{
  public:
    /** Upper limit on total pivots before giving up. */
    long maxIterations = 200000;

    /** Numerical tolerance for reduced costs and ratio tests. */
    double tolerance = 1e-7;

    /** Solve @p problem and return the outcome. */
    LpResult solve(const LpProblem &problem) const;
};

} // namespace lp
} // namespace helix

#endif // HELIX_LP_SIMPLEX_H
