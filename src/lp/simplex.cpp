#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace helix {
namespace lp {

const char *
toString(LpStatus status)
{
    switch (status) {
      case LpStatus::Optimal:    return "optimal";
      case LpStatus::Infeasible: return "infeasible";
      case LpStatus::Unbounded:  return "unbounded";
      case LpStatus::IterLimit:  return "iteration-limit";
    }
    return "?";
}

int
LpProblem::addVariable(double lower, double upper, double objective,
                       std::string name)
{
    HELIX_ASSERT(lower <= upper);
    lowers.push_back(lower);
    uppers.push_back(upper);
    objectives.push_back(objective);
    if (name.empty())
        name = "x" + std::to_string(lowers.size() - 1);
    names.push_back(std::move(name));
    return static_cast<int>(lowers.size() - 1);
}

void
LpProblem::addConstraint(std::vector<std::pair<int, double>> terms,
                         Relation relation, double rhs)
{
    for (const auto &[var, coef] : terms) {
        HELIX_ASSERT(var >= 0 && var < numVariables());
        (void)coef;
    }
    constraints.push_back({std::move(terms), relation, rhs});
}

void
LpProblem::setBounds(int var, double lower, double upper)
{
    HELIX_ASSERT(var >= 0 && var < numVariables());
    HELIX_ASSERT(lower <= upper);
    lowers[var] = lower;
    uppers[var] = upper;
}

namespace {

/**
 * Dense simplex working state. Columns: n shifted structural variables,
 * then slack/surplus columns, then artificial columns; the right-hand
 * side is stored separately.
 */
struct Tableau
{
    int rows = 0;
    int cols = 0; // structural + slack + artificial
    int numStructural = 0;
    int firstArtificial = 0;
    std::vector<std::vector<double>> a; // rows x cols
    std::vector<double> rhs;            // rows
    std::vector<int> basis;             // rows -> basic column

    double &at(int r, int c) { return a[r][c]; }
};

void
pivot(Tableau &t, std::vector<double> &zc, double &zval, int row, int col)
{
    double p = t.at(row, col);
    HELIX_ASSERT(std::fabs(p) > 1e-12);
    double inv = 1.0 / p;
    for (int c = 0; c < t.cols; ++c)
        t.at(row, c) *= inv;
    t.rhs[row] *= inv;
    for (int r = 0; r < t.rows; ++r) {
        if (r == row)
            continue;
        double factor = t.at(r, col);
        if (std::fabs(factor) < 1e-13)
            continue;
        for (int c = 0; c < t.cols; ++c)
            t.at(r, c) -= factor * t.at(row, c);
        t.at(r, col) = 0.0;
        t.rhs[r] -= factor * t.rhs[row];
    }
    double zfactor = zc[col];
    if (std::fabs(zfactor) > 1e-13) {
        for (int c = 0; c < t.cols; ++c)
            zc[c] -= zfactor * t.at(row, c);
        zc[col] = 0.0;
        zval -= zfactor * t.rhs[row];
    }
    t.basis[row] = col;
}

/**
 * Run the simplex loop on the tableau with the given reduced-cost row.
 * @param allow_artificial whether artificial columns may enter
 * @return status of the phase
 */
LpStatus
runSimplex(Tableau &t, std::vector<double> &zc, double &zval,
           bool allow_artificial, double tol, long max_iter,
           long &iterations)
{
    long phase_iterations = 0;
    long bland_threshold = 20L * (t.rows + t.cols) + 200;
    while (true) {
        if (iterations >= max_iter)
            return LpStatus::IterLimit;
        bool use_bland = phase_iterations > bland_threshold;
        int limit = allow_artificial ? t.cols : t.firstArtificial;
        // Entering column: most negative reduced cost (Dantzig), or
        // first negative (Bland) once cycling is suspected.
        int enter = -1;
        double best = -tol;
        for (int c = 0; c < limit; ++c) {
            if (zc[c] < best) {
                enter = c;
                if (use_bland)
                    break;
                best = zc[c];
            }
        }
        if (enter < 0)
            return LpStatus::Optimal;
        // Ratio test.
        int leave = -1;
        double best_ratio = std::numeric_limits<double>::max();
        for (int r = 0; r < t.rows; ++r) {
            double coef = t.at(r, enter);
            if (coef > tol) {
                double ratio = t.rhs[r] / coef;
                if (ratio < best_ratio - 1e-12 ||
                    (use_bland && ratio < best_ratio + 1e-12 &&
                     leave >= 0 && t.basis[r] < t.basis[leave])) {
                    best_ratio = ratio;
                    leave = r;
                }
            }
        }
        if (leave < 0)
            return LpStatus::Unbounded;
        pivot(t, zc, zval, leave, enter);
        ++iterations;
        ++phase_iterations;
    }
}

} // namespace

LpResult
SimplexSolver::solve(const LpProblem &problem) const
{
    LpResult result;
    const int n = problem.numVariables();

    // Shift variables to y = x - lo >= 0 and collect finite upper
    // bounds as extra rows.
    std::vector<double> shift(n);
    for (int v = 0; v < n; ++v)
        shift[v] = problem.lowerBound(v);

    struct Row
    {
        std::vector<std::pair<int, double>> terms;
        Relation relation;
        double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(problem.numConstraints() + n);
    for (int r = 0; r < problem.numConstraints(); ++r) {
        const Constraint &con = problem.constraint(r);
        double rhs = con.rhs;
        for (const auto &[var, coef] : con.terms)
            rhs -= coef * shift[var];
        rows.push_back({con.terms, con.relation, rhs});
    }
    for (int v = 0; v < n; ++v) {
        double ub = problem.upperBound(v);
        if (ub < LpProblem::kInfinity) {
            rows.push_back({{{v, 1.0}}, Relation::LessEq, ub - shift[v]});
        }
    }

    const int m = static_cast<int>(rows.size());

    // Normalize rows so every right-hand side is non-negative.
    for (auto &row : rows) {
        if (row.rhs < 0) {
            row.rhs = -row.rhs;
            for (auto &[var, coef] : row.terms)
                coef = -coef;
            if (row.relation == Relation::LessEq)
                row.relation = Relation::GreaterEq;
            else if (row.relation == Relation::GreaterEq)
                row.relation = Relation::LessEq;
        }
    }

    // Count slack and artificial columns.
    int num_slack = 0;
    int num_art = 0;
    for (const auto &row : rows) {
        if (row.relation != Relation::Equal)
            ++num_slack;
        if (row.relation != Relation::LessEq)
            ++num_art;
    }

    Tableau t;
    t.rows = m;
    t.numStructural = n;
    t.firstArtificial = n + num_slack;
    t.cols = n + num_slack + num_art;
    t.a.assign(m, std::vector<double>(t.cols, 0.0));
    t.rhs.assign(m, 0.0);
    t.basis.assign(m, -1);

    int slack_at = n;
    int art_at = t.firstArtificial;
    for (int r = 0; r < m; ++r) {
        const Row &row = rows[r];
        for (const auto &[var, coef] : row.terms)
            t.at(r, var) += coef;
        t.rhs[r] = row.rhs;
        switch (row.relation) {
          case Relation::LessEq:
            t.at(r, slack_at) = 1.0;
            t.basis[r] = slack_at++;
            break;
          case Relation::GreaterEq:
            t.at(r, slack_at) = -1.0;
            ++slack_at;
            t.at(r, art_at) = 1.0;
            t.basis[r] = art_at++;
            break;
          case Relation::Equal:
            t.at(r, art_at) = 1.0;
            t.basis[r] = art_at++;
            break;
        }
    }

    long iterations = 0;

    // Phase 1: maximize -(sum of artificials). Reduced costs start as
    // zc[j] = sum over artificial-basic rows of -row coefficients.
    if (num_art > 0) {
        std::vector<double> zc(t.cols, 0.0);
        double zval = 0.0;
        for (int c = t.firstArtificial; c < t.cols; ++c)
            zc[c] = 1.0; // cost -1 => zc = z_j - c_j = 0 - (-1)
        for (int r = 0; r < m; ++r) {
            if (t.basis[r] >= t.firstArtificial) {
                for (int c = 0; c < t.cols; ++c)
                    zc[c] -= t.at(r, c);
                zval -= t.rhs[r];
            }
        }
        LpStatus st = runSimplex(t, zc, zval, true, tolerance,
                                 maxIterations, iterations);
        if (st == LpStatus::IterLimit) {
            result.status = st;
            result.iterations = iterations;
            return result;
        }
        if (zval < -1e-6) {
            result.status = LpStatus::Infeasible;
            result.iterations = iterations;
            return result;
        }
        // Drive any artificial that is still basic (at value 0) out of
        // the basis when a non-artificial pivot exists.
        for (int r = 0; r < m; ++r) {
            if (t.basis[r] >= t.firstArtificial) {
                int enter = -1;
                for (int c = 0; c < t.firstArtificial; ++c) {
                    if (std::fabs(t.at(r, c)) > tolerance) {
                        enter = c;
                        break;
                    }
                }
                if (enter >= 0)
                    pivot(t, zc, zval, r, enter);
                // Otherwise the row is redundant; the artificial stays
                // basic at zero and is barred from re-entering.
            }
        }
    }

    // Phase 2: maximize the original objective.
    std::vector<double> zc(t.cols, 0.0);
    double zval = 0.0;
    for (int v = 0; v < n; ++v)
        zc[v] = -problem.objectiveCoef(v);
    // Make reduced costs consistent with the current basis.
    for (int r = 0; r < m; ++r) {
        int b = t.basis[r];
        double cost = (b < n) ? problem.objectiveCoef(b) : 0.0;
        if (std::fabs(cost) > 1e-13) {
            for (int c = 0; c < t.cols; ++c)
                zc[c] += cost * t.at(r, c);
            zval += cost * t.rhs[r];
        }
    }
    for (int r = 0; r < m; ++r)
        zc[t.basis[r]] = 0.0;

    LpStatus st = runSimplex(t, zc, zval, false, tolerance, maxIterations,
                             iterations);
    result.iterations = iterations;
    if (st != LpStatus::Optimal) {
        result.status = st;
        return result;
    }

    // Recover variable values (undo the lower-bound shift).
    std::vector<double> y(n, 0.0);
    for (int r = 0; r < m; ++r) {
        if (t.basis[r] < n)
            y[t.basis[r]] = t.rhs[r];
    }
    result.values.resize(n);
    double objective = 0.0;
    for (int v = 0; v < n; ++v) {
        result.values[v] = y[v] + shift[v];
        objective += problem.objectiveCoef(v) * result.values[v];
    }
    result.objective = objective;
    result.status = LpStatus::Optimal;
    return result;
}

} // namespace lp
} // namespace helix
