/**
 * @file
 * The `experiment v1` declarative experiment-spec format.
 *
 * An experiment spec is a line-oriented text file (same grammar family
 * as `cluster v1` / `trace v1`: one record per line, `#` comments,
 * whitespace-separated tokens) that names every part of a sweep via
 * the src/exp registries instead of compiled code:
 *
 *   experiment v1
 *   name fig6
 *   seed 42
 *   warmup 1              # seconds excluded from metrics
 *   measure 3             # measurement window, seconds
 *   planner-budget 0.05   # wall-clock budget for budgeted planners
 *   output csv            # csv | json
 *   cluster single24      # sweep axis: cluster registry names
 *   model llama30b        # sweep axis: model registry names
 *   system helix helix helix        # label, planner, scheduler
 *   system swarm swarm swarm        # (paired planner+scheduler)
 *   scenario offline
 *   scenario online-peak fraction=0.75 seed=43
 *
 * Job generation is either *paired* (`system` lines: each declares a
 * labeled planner+scheduler pair, as the paper's figure comparisons
 * do) or *cartesian* (`planner` and `scheduler` axis lines, crossed
 * like exp::SweepConfig). Scenario lines carry `key=value` options
 * inline (see docs/SCENARIOS.md for the catalog and semantics).
 *
 * This header is pure syntax: names are kept as strings with their
 * source lines. Registry resolution and execution live in
 * src/exp/spec.h, so `helixctl validate` can report line-numbered
 * errors for unknown names as well as grammar violations.
 */

#ifndef HELIX_IO_SPEC_H
#define HELIX_IO_SPEC_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/serialization.h"

namespace helix {
namespace io {

/** A registry name plus the spec line it came from. */
struct SpecName
{
    std::string value;
    int line = 0;

    bool operator==(const SpecName &other) const
    {
        return value == other.value;
    }
};

/** One `system <label> <planner> <scheduler>` line. */
struct SystemSpec
{
    std::string label;
    std::string planner;
    std::string scheduler;
    int line = 0;
};

/**
 * One churn event from a `fail=<node>@<fraction>` or
 * `recover=<node>@<fraction>` scenario option (churn scenarios only;
 * repeatable, in declaration order).
 */
struct ChurnEventSpec
{
    /** True for `fail=`, false for `recover=`. */
    bool fail = true;
    int node = -1;
    /** Event time as a fraction of (warmup + measure), in [0, 1]. */
    double atFraction = 0.0;
    int line = 0;

    bool operator==(const ChurnEventSpec &other) const
    {
        if (fail != other.fail || node != other.node)
            return false;
        // helix-lint: allow(float-eq) structural equality of parsed specs: identical text must parse bit-identically
        return atFraction == other.atFraction;
    }
};

/**
 * One `tenant <name> weight=<w> [mix=<f>] [slo-ttft=<s>]
 * [slo-tpot=<s>]` line (fair-share serving; see docs/SCENARIOS.md).
 */
struct TenantSpec
{
    std::string name;
    /** Fair-share weight (> 0; see core::specParams()). */
    double weight = 1.0;
    /** Arrival-mix fraction in [0, 1]; negative = unset (defaults to
     *  weight-proportional at run time). If any tenant declares a
     *  mix, all must, and they must sum to 1. */
    double mix = -1.0;
    /** Time-to-first-token SLO in seconds; 0 = no SLO declared. */
    double sloTtftS = 0.0;
    /** Time-per-output-token SLO in seconds; 0 = no SLO declared. */
    double sloTpotS = 0.0;
    int line = 0;

    bool operator==(const TenantSpec &other) const
    {
        if (name != other.name)
            return false;
        // helix-lint: allow(float-eq) structural equality of parsed specs: identical text must parse bit-identically
        return weight == other.weight && mix == other.mix &&
               // helix-lint: allow(float-eq) same: parsed-literal bit equality
               sloTtftS == other.sloTtftS &&
               // helix-lint: allow(float-eq) same: parsed-literal bit equality
               sloTpotS == other.sloTpotS;
    }
};

/** One `scenario <kind> [key=value ...]` line. */
struct ScenarioSpec
{
    std::string kind;
    /** Options in declaration order (serialization round-trips). */
    std::vector<std::pair<std::string, double>> options;
    /** Churn schedule (`fail=`/`recover=` options, declaration
     *  order). Only populated for kind == "churn". */
    std::vector<ChurnEventSpec> events;
    int line = 0;

    [[nodiscard]] bool has(const std::string &key) const;
    [[nodiscard]] double get(const std::string &key, double fallback) const;
};

/** A parsed `experiment v1` file. */
struct ExperimentSpec
{
    std::string name = "experiment";
    /** Emitter for `helixctl run`: "csv" or "json". */
    std::string output = "csv";
    /** Worker threads (0 = hardware concurrency). */
    int threads = 0;
    /** Worker threads inside each simulation's sharded event loop
     *  (sim::SimConfig::simThreads); 1 = serial reference loop. Any
     *  value produces byte-identical results, so this is purely a
     *  wall-clock knob. */
    int simThreads = 1;
    uint64_t seed = 42;
    /** Default warmup/measure windows, overridable per scenario. */
    double warmupS = 30.0;
    double measureS = 120.0;
    /** Wall-clock budget handed to budgeted planners. */
    double plannerBudgetS = 2.0;
    /** Fair-share starvation tolerance in [0, 1]: a demanding tenant
     *  below this fraction of its fair share is starving. */
    double starvationTolerance = 0.8;
    /** Seconds a tenant may starve before an over-share tenant's
     *  newest in-flight request is preempted. */
    double preemptionTimeoutS = 5.0;

    /** Declared tenants (empty = single implicit tenant; the
     *  simulation path is byte-identical to pre-tenancy). */
    std::vector<TenantSpec> tenants;

    std::vector<SpecName> clusters;
    std::vector<SpecName> models;
    /** Cartesian axes; mutually exclusive with `systems`. */
    std::vector<SpecName> planners;
    std::vector<SpecName> schedulers;
    /** Paired mode; mutually exclusive with planner/scheduler axes. */
    std::vector<SystemSpec> systems;
    std::vector<ScenarioSpec> scenarios;
};

/** Serialize a spec (comments are not preserved). */
[[nodiscard]] std::string experimentToString(const ExperimentSpec &spec);

/**
 * Parse an `experiment v1` file. Grammar-level validation only (the
 * header, directive arity, numeric fields, known directives, known
 * scenario kinds, paired-vs-cartesian exclusivity, and the presence
 * of clusters/models/scenarios and a planner source). Registry names
 * are not resolved here; see exp::validateSpec.
 */
[[nodiscard]] std::optional<ExperimentSpec> experimentFromString(
    const std::string &text, ParseError &error);

/** As above, discarding the error detail. */
[[nodiscard]] std::optional<ExperimentSpec> experimentFromString(
    const std::string &text);

/** The scenario kinds the format accepts (see docs/SCENARIOS.md). */
[[nodiscard]] const std::vector<std::string> &scenarioKinds();

/** Option keys accepted by @p kind (common keys included). */
[[nodiscard]] std::vector<std::string> scenarioOptionKeys(const std::string &kind);

/** Option keys accepted by `tenant` lines. */
[[nodiscard]] std::vector<std::string> tenantOptionKeys();

} // namespace io
} // namespace helix

#endif // HELIX_IO_SPEC_H
