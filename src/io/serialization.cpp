#include "io/serialization.h"

#include <fstream>
#include <sstream>

namespace helix {
namespace io {

namespace {

/** Replace spaces in names so tokens stay whitespace-delimited. */
std::string
escapeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == ' ')
            c = '_';
    }
    return out.empty() ? "_" : out;
}

} // namespace

std::string
clusterToString(const cluster::ClusterSpec &clus)
{
    std::ostringstream out;
    out.precision(17);
    out << "cluster v1\n";
    for (int i = 0; i < clus.numNodes(); ++i) {
        const cluster::NodeSpec &node = clus.node(i);
        out << "node " << escapeName(node.name) << " "
            << escapeName(node.gpu.name) << " " << node.gpu.tflopsFp16
            << " " << node.gpu.memoryGiB << " "
            << node.gpu.memBandwidthGBs << " " << node.gpu.powerW
            << " " << node.numGpus << " " << node.region << "\n";
    }
    for (int from = cluster::kCoordinator; from < clus.numNodes();
         ++from) {
        for (int to = cluster::kCoordinator; to < clus.numNodes();
             ++to) {
            if (from == to)
                continue;
            const cluster::LinkSpec &link = clus.link(from, to);
            out << "link " << from << " " << to << " "
                << link.bandwidthBps << " " << link.latencyS << "\n";
        }
    }
    return out.str();
}

std::optional<cluster::ClusterSpec>
clusterFromString(const std::string &text)
{
    std::istringstream in(text);
    std::string header;
    std::string version;
    if (!(in >> header >> version) || header != "cluster" ||
        version != "v1") {
        return std::nullopt;
    }
    cluster::ClusterSpec clus;
    struct PendingLink
    {
        int from;
        int to;
        cluster::LinkSpec spec;
    };
    std::vector<PendingLink> links;
    std::string tag;
    while (in >> tag) {
        if (tag == "node") {
            cluster::NodeSpec node;
            if (!(in >> node.name >> node.gpu.name >>
                  node.gpu.tflopsFp16 >> node.gpu.memoryGiB >>
                  node.gpu.memBandwidthGBs >> node.gpu.powerW >>
                  node.numGpus >> node.region)) {
                return std::nullopt;
            }
            clus.addNode(std::move(node));
        } else if (tag == "link") {
            PendingLink link;
            if (!(in >> link.from >> link.to >>
                  link.spec.bandwidthBps >> link.spec.latencyS)) {
                return std::nullopt;
            }
            links.push_back(link);
        } else {
            return std::nullopt;
        }
    }
    if (clus.numNodes() == 0)
        return std::nullopt;
    clus.setUniformLinks(0.0, 0.0);
    for (const PendingLink &link : links) {
        if (link.from < cluster::kCoordinator ||
            link.from >= clus.numNodes() ||
            link.to < cluster::kCoordinator ||
            link.to >= clus.numNodes() || link.from == link.to) {
            return std::nullopt;
        }
        clus.setLink(link.from, link.to, link.spec);
    }
    return clus;
}

std::string
placementToString(const placement::ModelPlacement &placement)
{
    std::ostringstream out;
    out << "placement v1 " << placement.size() << "\n";
    for (const auto &node : placement.nodes)
        out << node.start << " " << node.count << "\n";
    return out.str();
}

std::optional<placement::ModelPlacement>
placementFromString(const std::string &text)
{
    std::istringstream in(text);
    std::string header;
    std::string version;
    size_t count = 0;
    if (!(in >> header >> version >> count) || header != "placement" ||
        version != "v1") {
        return std::nullopt;
    }
    placement::ModelPlacement placement;
    placement.nodes.resize(count);
    for (size_t i = 0; i < count; ++i) {
        if (!(in >> placement[i].start >> placement[i].count))
            return std::nullopt;
        if (placement[i].count < 0 || placement[i].start < 0)
            return std::nullopt;
    }
    return placement;
}

std::string
traceToString(const std::vector<trace::Request> &requests)
{
    std::ostringstream out;
    out.precision(17);
    out << "trace v1 " << requests.size() << "\n";
    for (const auto &req : requests) {
        out << req.id << " " << req.arrivalS << " " << req.promptLen
            << " " << req.outputLen << "\n";
    }
    return out.str();
}

std::optional<std::vector<trace::Request>>
traceFromString(const std::string &text)
{
    std::istringstream in(text);
    std::string header;
    std::string version;
    size_t count = 0;
    if (!(in >> header >> version >> count) || header != "trace" ||
        version != "v1") {
        return std::nullopt;
    }
    std::vector<trace::Request> requests(count);
    for (size_t i = 0; i < count; ++i) {
        trace::Request &req = requests[i];
        if (!(in >> req.id >> req.arrivalS >> req.promptLen >>
              req.outputLen)) {
            return std::nullopt;
        }
        if (req.promptLen < 0 || req.outputLen < 0)
            return std::nullopt;
    }
    return requests;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace io
} // namespace helix
