#include "io/serialization.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace helix {
namespace io {

std::string
ParseError::str() const
{
    if (line <= 0)
        return message;
    return "line " + std::to_string(line) + ": " + message;
}

LineReader::LineReader(const std::string &text)
{
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::istringstream line_in(raw);
        std::vector<std::string> tokens;
        std::string token;
        while (line_in >> token)
            tokens.push_back(std::move(token));
        if (!tokens.empty())
            lines.emplace_back(number, std::move(tokens));
    }
}

bool
LineReader::next()
{
    if (cursor >= lines.size())
        return false;
    lineNo = lines[cursor].first;
    toks = lines[cursor].second;
    ++cursor;
    return true;
}

bool
parseLong(const std::string &token, long &out)
{
    if (token.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long value = std::strtol(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size())
        return false;
    out = value;
    return true;
}

bool
parseInt(const std::string &token, int &out)
{
    long value = 0;
    if (!parseLong(token, value) || value < INT_MIN || value > INT_MAX)
        return false;
    out = static_cast<int>(value);
    return true;
}

bool
parseU64(const std::string &token, uint64_t &out)
{
    if (token.empty() || token[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long value =
        std::strtoull(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + token.size())
        return false;
    out = static_cast<uint64_t>(value);
    return true;
}

bool
parseDouble(const std::string &token, double &out)
{
    if (token.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
        return false;
    }
    out = value;
    return true;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (size_t i = 0; i < names.size(); ++i) {
        if (i)
            out += ", ";
        out += names[i];
    }
    return out;
}

namespace {

/** Replace spaces (token delimiters) and '#' (comment starter) in
 *  names so serialized records survive the line-oriented grammar. */
std::string
escapeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == ' ' || c == '#')
            c = '_';
    }
    return out.empty() ? "_" : out;
}

std::optional<cluster::ClusterSpec>
fail(ParseError &error, int line, std::string message)
{
    error.line = line;
    error.message = std::move(message);
    return std::nullopt;
}

} // namespace

bool
checkHeader(LineReader &reader, const char *format, size_t extra,
            ParseError &error)
{
    if (!reader.next()) {
        error = {0, std::string("empty input; expected '") + format +
                        " v1' header"};
        return false;
    }
    const auto &toks = reader.tokens();
    if (toks[0] != format) {
        error = {reader.line(), "expected '" + std::string(format) +
                                    " v1' header, got '" + toks[0] +
                                    "'"};
        return false;
    }
    if (toks.size() < 2 || toks[1] != "v1") {
        error = {reader.line(),
                 std::string(format) + " version '" +
                     (toks.size() > 1 ? toks[1] : "") +
                     "' not supported (expected v1)"};
        return false;
    }
    if (toks.size() != 2 + extra) {
        error = {reader.line(),
                 "malformed header: expected '" + std::string(format) +
                     " v1" + (extra ? " <count>'" : "'")};
        return false;
    }
    return true;
}

std::string
clusterToString(const cluster::ClusterSpec &clus)
{
    std::ostringstream out;
    out.precision(17);
    out << "cluster v1\n";
    for (int i = 0; i < clus.numNodes(); ++i) {
        const cluster::NodeSpec &node = clus.node(i);
        out << "node " << escapeName(node.name) << " "
            << escapeName(node.gpu.name) << " " << node.gpu.tflopsFp16
            << " " << node.gpu.memoryGiB << " "
            << node.gpu.memBandwidthGBs << " " << node.gpu.powerW
            << " " << node.numGpus << " " << node.region << "\n";
    }
    for (int from = cluster::kCoordinator; from < clus.numNodes();
         ++from) {
        for (int to = cluster::kCoordinator; to < clus.numNodes();
             ++to) {
            if (from == to)
                continue;
            const cluster::LinkSpec &link = clus.link(from, to);
            out << "link " << from << " " << to << " "
                << link.bandwidthBps << " " << link.latencyS << "\n";
        }
    }
    return out.str();
}

std::optional<cluster::ClusterSpec>
clusterFromString(const std::string &text, ParseError &error)
{
    LineReader reader(text);
    if (!checkHeader(reader, "cluster", 0, error))
        return std::nullopt;

    cluster::ClusterSpec clus;
    struct PendingLink
    {
        int from;
        int to;
        int line;
        cluster::LinkSpec spec;
    };
    std::vector<PendingLink> links;
    while (reader.next()) {
        const auto &toks = reader.tokens();
        if (toks[0] == "node") {
            if (toks.size() != 9) {
                return fail(error, reader.line(),
                            "node record needs 8 fields (name gpu "
                            "tflops memGiB bwGBs powerW gpus region), "
                            "got " + std::to_string(toks.size() - 1));
            }
            cluster::NodeSpec node;
            node.name = toks[1];
            node.gpu.name = toks[2];
            if (!parseDouble(toks[3], node.gpu.tflopsFp16) ||
                !parseDouble(toks[4], node.gpu.memoryGiB) ||
                !parseDouble(toks[5], node.gpu.memBandwidthGBs) ||
                !parseDouble(toks[6], node.gpu.powerW) ||
                !parseInt(toks[7], node.numGpus) ||
                !parseInt(toks[8], node.region)) {
                return fail(error, reader.line(),
                            "node record has a non-numeric field");
            }
            clus.addNode(std::move(node));
        } else if (toks[0] == "link") {
            if (toks.size() != 5) {
                return fail(error, reader.line(),
                            "link record needs 4 fields (from to "
                            "bandwidthBps latencyS), got " +
                                std::to_string(toks.size() - 1));
            }
            PendingLink link;
            link.line = reader.line();
            if (!parseInt(toks[1], link.from) ||
                !parseInt(toks[2], link.to) ||
                !parseDouble(toks[3], link.spec.bandwidthBps) ||
                !parseDouble(toks[4], link.spec.latencyS)) {
                return fail(error, reader.line(),
                            "link record has a non-numeric field");
            }
            links.push_back(link);
        } else {
            return fail(error, reader.line(),
                        "unknown record '" + toks[0] +
                            "' (expected 'node' or 'link')");
        }
    }
    if (clus.numNodes() == 0)
        return fail(error, 0, "cluster has no node records");
    clus.setUniformLinks(0.0, 0.0);
    for (const PendingLink &link : links) {
        if (link.from < cluster::kCoordinator ||
            link.from >= clus.numNodes() ||
            link.to < cluster::kCoordinator ||
            link.to >= clus.numNodes() || link.from == link.to) {
            return fail(error, link.line,
                        "link endpoints " + std::to_string(link.from) +
                            " -> " + std::to_string(link.to) +
                            " out of range for " +
                            std::to_string(clus.numNodes()) +
                            " nodes");
        }
        clus.setLink(link.from, link.to, link.spec);
    }
    return clus;
}

std::optional<cluster::ClusterSpec>
clusterFromString(const std::string &text)
{
    ParseError ignored;
    return clusterFromString(text, ignored);
}

std::string
placementToString(const placement::ModelPlacement &placement)
{
    std::ostringstream out;
    out << "placement v1 " << placement.size() << "\n";
    for (const auto &node : placement.nodes)
        out << node.start << " " << node.count << "\n";
    return out.str();
}

std::optional<placement::ModelPlacement>
placementFromString(const std::string &text, ParseError &error)
{
    LineReader reader(text);
    if (!checkHeader(reader, "placement", 1, error))
        return std::nullopt;
    int header_line = reader.line();
    int count = 0;
    if (!parseInt(reader.tokens()[2], count) || count < 0) {
        error = {header_line, "invalid node count '" +
                                  reader.tokens()[2] + "'"};
        return std::nullopt;
    }

    placement::ModelPlacement placement;
    placement.nodes.resize(count);
    for (int i = 0; i < count; ++i) {
        if (!reader.next()) {
            error = {header_line,
                     "expected " + std::to_string(count) +
                         " node lines, got " + std::to_string(i)};
            return std::nullopt;
        }
        const auto &toks = reader.tokens();
        if (toks.size() != 2 || !parseInt(toks[0], placement[i].start) ||
            !parseInt(toks[1], placement[i].count)) {
            error = {reader.line(),
                     "placement line needs '<start> <count>'"};
            return std::nullopt;
        }
        if (placement[i].count < 0 || placement[i].start < 0) {
            error = {reader.line(),
                     "placement start/count must be non-negative"};
            return std::nullopt;
        }
    }
    if (reader.next()) {
        error = {reader.line(), "trailing content after " +
                                    std::to_string(count) +
                                    " node lines"};
        return std::nullopt;
    }
    return placement;
}

std::optional<placement::ModelPlacement>
placementFromString(const std::string &text)
{
    ParseError ignored;
    return placementFromString(text, ignored);
}

std::string
traceToString(const std::vector<trace::Request> &requests)
{
    std::ostringstream out;
    out.precision(17);
    out << "trace v1 " << requests.size() << "\n";
    for (const auto &req : requests) {
        out << req.id << " " << req.arrivalS << " " << req.promptLen
            << " " << req.outputLen << "\n";
    }
    return out.str();
}

std::optional<std::vector<trace::Request>>
traceFromString(const std::string &text, ParseError &error)
{
    LineReader reader(text);
    if (!checkHeader(reader, "trace", 1, error))
        return std::nullopt;
    int header_line = reader.line();
    int count = 0;
    if (!parseInt(reader.tokens()[2], count) || count < 0) {
        error = {header_line, "invalid request count '" +
                                  reader.tokens()[2] + "'"};
        return std::nullopt;
    }

    std::vector<trace::Request> requests(count);
    for (int i = 0; i < count; ++i) {
        if (!reader.next()) {
            error = {header_line,
                     "expected " + std::to_string(count) +
                         " request lines, got " + std::to_string(i)};
            return std::nullopt;
        }
        const auto &toks = reader.tokens();
        trace::Request &req = requests[i];
        if (toks.size() != 4 || !parseInt(toks[0], req.id) ||
            !parseDouble(toks[1], req.arrivalS) ||
            !parseInt(toks[2], req.promptLen) ||
            !parseInt(toks[3], req.outputLen)) {
            error = {reader.line(), "request line needs '<id> "
                                    "<arrivalS> <promptLen> "
                                    "<outputLen>'"};
            return std::nullopt;
        }
        if (req.promptLen < 0 || req.outputLen < 0) {
            error = {reader.line(),
                     "prompt/output lengths must be non-negative"};
            return std::nullopt;
        }
    }
    if (reader.next()) {
        error = {reader.line(), "trailing content after " +
                                    std::to_string(count) +
                                    " request lines"};
        return std::nullopt;
    }
    return requests;
}

std::optional<std::vector<trace::Request>>
traceFromString(const std::string &text)
{
    ParseError ignored;
    return traceFromString(text, ignored);
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << text;
    return static_cast<bool>(out);
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace io
} // namespace helix
