#include "io/spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "core/params.h"

namespace helix {
namespace io {

bool
ScenarioSpec::has(const std::string &key) const
{
    for (const auto &option : options) {
        if (option.first == key)
            return true;
    }
    return false;
}

double
ScenarioSpec::get(const std::string &key, double fallback) const
{
    for (const auto &option : options) {
        if (option.first == key)
            return option.second;
    }
    return fallback;
}

const std::vector<std::string> &
scenarioKinds()
{
    static const std::vector<std::string> kinds = {
        "offline", "online", "bursty", "churn", "online-peak"};
    return kinds;
}

std::vector<std::string>
scenarioOptionKeys(const std::string &kind)
{
    // Declaration order in core::specParams() is pinned: it decides
    // the "(known: ...)" error messages golden-tested in test_spec.
    return core::specParams().keysInScope("scenario:" + kind);
}

std::vector<std::string>
tenantOptionKeys()
{
    return core::specParams().keysInScope("tenant");
}

namespace {

std::string
num(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

std::string
experimentToString(const ExperimentSpec &spec)
{
    std::ostringstream out;
    out << "experiment v1\n";
    out << "name " << spec.name << "\n";
    out << "output " << spec.output << "\n";
    if (spec.threads != 0)
        out << "threads " << spec.threads << "\n";
    if (spec.simThreads != 1)
        out << "sim-threads " << spec.simThreads << "\n";
    out << "seed " << spec.seed << "\n";
    out << "warmup " << num(spec.warmupS) << "\n";
    out << "measure " << num(spec.measureS) << "\n";
    out << "planner-budget " << num(spec.plannerBudgetS) << "\n";
    if (!spec.tenants.empty()) {
        out << "starvation-tolerance " << num(spec.starvationTolerance)
            << "\n";
        out << "preemption-timeout " << num(spec.preemptionTimeoutS)
            << "\n";
    }
    for (const SpecName &name : spec.clusters)
        out << "cluster " << name.value << "\n";
    for (const SpecName &name : spec.models)
        out << "model " << name.value << "\n";
    for (const SpecName &name : spec.planners)
        out << "planner " << name.value << "\n";
    for (const SpecName &name : spec.schedulers)
        out << "scheduler " << name.value << "\n";
    for (const SystemSpec &system : spec.systems) {
        out << "system " << system.label << " " << system.planner
            << " " << system.scheduler << "\n";
    }
    for (const TenantSpec &tenant : spec.tenants) {
        out << "tenant " << tenant.name
            << " weight=" << num(tenant.weight);
        if (tenant.mix >= 0.0)
            out << " mix=" << num(tenant.mix);
        if (tenant.sloTtftS > 0.0)
            out << " slo-ttft=" << num(tenant.sloTtftS);
        if (tenant.sloTpotS > 0.0)
            out << " slo-tpot=" << num(tenant.sloTpotS);
        out << "\n";
    }
    for (const ScenarioSpec &scenario : spec.scenarios) {
        out << "scenario " << scenario.kind;
        for (const auto &option : scenario.options)
            out << " " << option.first << "=" << num(option.second);
        for (const ChurnEventSpec &event : scenario.events) {
            out << " " << (event.fail ? "fail=" : "recover=")
                << event.node << "@" << num(event.atFraction);
        }
        out << "\n";
    }
    return out.str();
}

std::optional<ExperimentSpec>
experimentFromString(const std::string &text, ParseError &error)
{
    LineReader reader(text);
    if (!checkHeader(reader, "experiment", 0, error))
        return std::nullopt;

    ExperimentSpec spec;
    std::map<std::string, int> seen_scalar;
    auto scalar_once = [&](const std::string &tag, int line) {
        auto inserted = seen_scalar.emplace(tag, line);
        if (!inserted.second) {
            error = {line,
                     "duplicate '" + tag + "' directive (first on line " +
                         std::to_string(inserted.first->second) + ")"};
            return false;
        }
        return true;
    };
    auto want_args = [&](const std::vector<std::string> &toks,
                         size_t n, const std::string &usage) {
        if (toks.size() == n + 1)
            return true;
        error = {reader.line(), "'" + toks[0] + "' needs " +
                                    std::to_string(n) +
                                    " argument(s): " + usage};
        return false;
    };
    // One top-level scalar directive, resolved through the validated
    // parameter registry: kind, range, and the pinned error message
    // all come from the declaration in core::specParams().
    auto handle_scalar = [&](const core::Param &param,
                             const std::vector<std::string> &toks,
                             int line) {
        const std::string &key = param.key();
        if (!want_args(toks, 1, param.usageText()) ||
            !scalar_once(key, line))
            return false;
        const std::string &raw = toks[1];
        switch (param.kind()) {
          case core::ParamKind::String: {
            if (!param.checkText(raw)) {
                error = {line, param.formatError(raw)};
                return false;
            }
            if (key == "name")
                spec.name = raw;
            else
                spec.output = raw;
            return true;
          }
          case core::ParamKind::Int: {
            int value = 0;
            if (!parseInt(raw, value) || !param.check(value)) {
                error = {line, param.formatError(raw)};
                return false;
            }
            if (key == "threads")
                spec.threads = value;
            else
                spec.simThreads = value;
            return true;
          }
          case core::ParamKind::UInt64: {
            uint64_t value = 0;
            if (!parseU64(raw, value)) {
                error = {line, param.formatError(raw)};
                return false;
            }
            spec.seed = value;
            return true;
          }
          default: {
            double value = 0.0;
            if (!parseDouble(raw, value) || !param.check(value)) {
                error = {line, param.formatError(raw)};
                return false;
            }
            if (key == "warmup")
                spec.warmupS = value;
            else if (key == "measure")
                spec.measureS = value;
            else if (key == "planner-budget")
                spec.plannerBudgetS = value;
            else if (key == "starvation-tolerance")
                spec.starvationTolerance = value;
            else
                spec.preemptionTimeoutS = value;
            return true;
          }
        }
    };

    while (reader.next()) {
        const auto &toks = reader.tokens();
        const std::string &tag = toks[0];
        const int line = reader.line();
        const core::Param *top_param = core::specParams().find(tag);
        if (top_param != nullptr &&
            top_param->kind() != core::ParamKind::Structural &&
            top_param->inScope("top")) {
            if (!handle_scalar(*top_param, toks, line))
                return std::nullopt;
        } else if (tag == "cluster" || tag == "model" ||
                   tag == "planner" || tag == "scheduler") {
            if (!want_args(toks, 1, tag + " <registry-name>"))
                return std::nullopt;
            if ((tag == "planner" || tag == "scheduler") &&
                !spec.systems.empty()) {
                error = {line,
                         "cannot mix '" + tag + "' axes with 'system' "
                         "lines (first system on line " +
                             std::to_string(spec.systems.front().line) +
                             ")"};
                return std::nullopt;
            }
            SpecName name{toks[1], line};
            if (tag == "cluster")
                spec.clusters.push_back(std::move(name));
            else if (tag == "model")
                spec.models.push_back(std::move(name));
            else if (tag == "planner")
                spec.planners.push_back(std::move(name));
            else
                spec.schedulers.push_back(std::move(name));
        } else if (tag == "system") {
            if (!want_args(toks, 3,
                           "system <label> <planner> <scheduler>"))
                return std::nullopt;
            if (!spec.planners.empty() || !spec.schedulers.empty()) {
                int axis_line = spec.planners.empty()
                                    ? spec.schedulers.front().line
                                    : spec.planners.front().line;
                error = {line,
                         "cannot mix 'system' lines with "
                         "planner/scheduler axes (first axis on line " +
                             std::to_string(axis_line) + ")"};
                return std::nullopt;
            }
            spec.systems.push_back({toks[1], toks[2], toks[3], line});
        } else if (tag == "scenario") {
            if (toks.size() < 2) {
                error = {line, "'scenario' needs a kind: scenario "
                               "<kind> [key=value ...]"};
                return std::nullopt;
            }
            ScenarioSpec scenario;
            scenario.kind = toks[1];
            scenario.line = line;
            const auto &kinds = scenarioKinds();
            if (std::find(kinds.begin(), kinds.end(), scenario.kind) ==
                kinds.end()) {
                error = {line, "unknown scenario kind '" +
                                   scenario.kind + "' (known: " +
                                   joinNames(kinds) + ")"};
                return std::nullopt;
            }
            std::vector<std::string> known =
                scenarioOptionKeys(scenario.kind);
            for (size_t i = 2; i < toks.size(); ++i) {
                size_t eq = toks[i].find('=');
                if (eq == std::string::npos || eq == 0) {
                    error = {line, "scenario option '" + toks[i] +
                                       "' is not key=value"};
                    return std::nullopt;
                }
                std::string key = toks[i].substr(0, eq);
                if (std::find(known.begin(), known.end(), key) ==
                    known.end()) {
                    error = {line, "scenario '" + scenario.kind +
                                       "' does not take option '" +
                                       key + "' (known: " +
                                       joinNames(known) + ")"};
                    return std::nullopt;
                }
                if (key == "fail" || key == "recover") {
                    // Churn events are repeatable and carry a
                    // <node>@<fraction> value instead of a number.
                    const std::string raw = toks[i].substr(eq + 1);
                    size_t at = raw.find('@');
                    ChurnEventSpec event;
                    event.fail = key == "fail";
                    event.line = line;
                    if (at == std::string::npos || at == 0 ||
                        at + 1 >= raw.size() ||
                        !parseInt(raw.substr(0, at), event.node) ||
                        !parseDouble(raw.substr(at + 1),
                                     event.atFraction)) {
                        error = {line,
                                 "scenario option '" + key +
                                     "' must be <node>@<fraction>, "
                                     "got '" + raw + "'"};
                        return std::nullopt;
                    }
                    scenario.events.push_back(event);
                    continue;
                }
                if (scenario.has(key)) {
                    error = {line, "duplicate scenario option '" +
                                       key + "'"};
                    return std::nullopt;
                }
                const std::string raw = toks[i].substr(eq + 1);
                double value = 0.0;
                if (key == "seed") {
                    // Seeds route through the double-valued option
                    // table; cap them at 2^53 so the round trip is
                    // exact and never silently shifts the RNG stream.
                    uint64_t seed_value = 0;
                    if (!parseU64(raw, seed_value)) {
                        error = {line, "scenario option 'seed' has "
                                       "non-numeric value '" +
                                           raw + "'"};
                        return std::nullopt;
                    }
                    if (seed_value > (uint64_t{1} << 53)) {
                        error = {line,
                                 "scenario option 'seed' exceeds "
                                 "2^53 and would lose precision; use "
                                 "the top-level 'seed' directive"};
                        return std::nullopt;
                    }
                    value = static_cast<double>(seed_value);
                } else if (!parseDouble(raw, value)) {
                    error = {line, "scenario option '" + key +
                                       "' has non-numeric value '" +
                                       raw + "'"};
                    return std::nullopt;
                }
                scenario.options.emplace_back(std::move(key), value);
            }
            if (scenario.kind == "churn") {
                bool legacy = scenario.has("node") ||
                              scenario.has("at");
                if (legacy && !scenario.events.empty()) {
                    error = {line,
                             "churn scenario cannot mix node=/at= "
                             "with fail=/recover= events"};
                    return std::nullopt;
                }
                if (!scenario.has("node") &&
                    scenario.events.empty()) {
                    error = {line,
                             "churn scenario requires node=<index> "
                             "or fail=<node>@<fraction> events"};
                    return std::nullopt;
                }
            }
            spec.scenarios.push_back(std::move(scenario));
        } else if (tag == "tenant") {
            if (toks.size() < 2) {
                error = {line, "'tenant' needs a name: tenant <name> "
                               "[key=value ...]"};
                return std::nullopt;
            }
            TenantSpec tenant;
            tenant.name = toks[1];
            tenant.line = line;
            for (const TenantSpec &existing : spec.tenants) {
                if (existing.name == tenant.name) {
                    error = {line,
                             "duplicate tenant '" + tenant.name +
                                 "' (first on line " +
                                 std::to_string(existing.line) + ")"};
                    return std::nullopt;
                }
            }
            bool saw_weight = false;
            std::vector<std::string> seen_keys;
            for (size_t i = 2; i < toks.size(); ++i) {
                size_t eq = toks[i].find('=');
                if (eq == std::string::npos || eq == 0) {
                    error = {line, "tenant option '" + toks[i] +
                                       "' is not key=value"};
                    return std::nullopt;
                }
                std::string key = toks[i].substr(0, eq);
                const core::Param *opt = core::specParams().find(key);
                if (opt == nullptr || !opt->inScope("tenant")) {
                    error = {line,
                             "tenant '" + tenant.name +
                                 "' does not take option '" + key +
                                 "' (known: " +
                                 joinNames(tenantOptionKeys()) + ")"};
                    return std::nullopt;
                }
                if (std::find(seen_keys.begin(), seen_keys.end(),
                              opt->key()) != seen_keys.end()) {
                    error = {line, "duplicate tenant option '" +
                                       opt->key() + "'"};
                    return std::nullopt;
                }
                seen_keys.push_back(opt->key());
                const std::string raw = toks[i].substr(eq + 1);
                double value = 0.0;
                if (!parseDouble(raw, value)) {
                    error = {line, "tenant option '" + opt->key() +
                                       "' has non-numeric value '" +
                                       raw + "'"};
                    return std::nullopt;
                }
                if (!opt->check(value)) {
                    error = {line, opt->formatError(raw)};
                    return std::nullopt;
                }
                if (opt->key() == "weight") {
                    tenant.weight = value;
                    saw_weight = true;
                } else if (opt->key() == "mix") {
                    tenant.mix = value;
                } else if (opt->key() == "slo-ttft") {
                    tenant.sloTtftS = value;
                } else {
                    tenant.sloTpotS = value;
                }
            }
            if (!saw_weight) {
                error = {line, "tenant '" + tenant.name +
                                   "' requires weight=<w>"};
                return std::nullopt;
            }
            spec.tenants.push_back(std::move(tenant));
        } else {
            error = {line, "unknown directive '" + tag + "'"};
            return std::nullopt;
        }
    }

    if (spec.clusters.empty()) {
        error = {0, "spec declares no 'cluster' lines"};
        return std::nullopt;
    }
    if (spec.models.empty()) {
        error = {0, "spec declares no 'model' lines"};
        return std::nullopt;
    }
    if (spec.systems.empty() && spec.planners.empty() &&
        spec.schedulers.empty()) {
        error = {0, "spec declares no 'system' lines and no "
                    "planner/scheduler axes"};
        return std::nullopt;
    }
    if (spec.systems.empty()) {
        if (spec.planners.empty()) {
            error = {spec.schedulers.front().line,
                     "cartesian mode needs at least one 'planner'"};
            return std::nullopt;
        }
        if (spec.schedulers.empty()) {
            error = {spec.planners.front().line,
                     "cartesian mode needs at least one 'scheduler'"};
            return std::nullopt;
        }
    }
    if (spec.scenarios.empty()) {
        error = {0, "spec declares no 'scenario' lines"};
        return std::nullopt;
    }
    bool offline_seen = false;
    for (const ScenarioSpec &scenario : spec.scenarios) {
        if (scenario.kind == "offline")
            offline_seen = true;
        if (scenario.kind == "online-peak" && !offline_seen) {
            error = {scenario.line,
                     "online-peak needs an earlier offline scenario "
                     "to derive its arrival rate from"};
            return std::nullopt;
        }
    }
    int mixes = 0;
    for (const TenantSpec &tenant : spec.tenants) {
        if (tenant.mix >= 0.0)
            ++mixes;
    }
    if (mixes > 0) {
        for (const TenantSpec &tenant : spec.tenants) {
            if (tenant.mix < 0.0) {
                error = {tenant.line,
                         "tenant '" + tenant.name +
                             "' needs mix=<fraction>: arrival mixes "
                             "are all-or-none"};
                return std::nullopt;
            }
        }
        double sum = 0.0;
        for (const TenantSpec &tenant : spec.tenants)
            sum += tenant.mix;
        if (std::fabs(sum - 1.0) > 1e-9) {
            error = {spec.tenants.front().line,
                     "tenant mixes must sum to 1, got " + num(sum)};
            return std::nullopt;
        }
    }
    return spec;
}

std::optional<ExperimentSpec>
experimentFromString(const std::string &text)
{
    ParseError ignored;
    return experimentFromString(text, ignored);
}

} // namespace io
} // namespace helix
