#include "io/spec.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace helix {
namespace io {

bool
ScenarioSpec::has(const std::string &key) const
{
    for (const auto &option : options) {
        if (option.first == key)
            return true;
    }
    return false;
}

double
ScenarioSpec::get(const std::string &key, double fallback) const
{
    for (const auto &option : options) {
        if (option.first == key)
            return option.second;
    }
    return fallback;
}

const std::vector<std::string> &
scenarioKinds()
{
    static const std::vector<std::string> kinds = {
        "offline", "online", "bursty", "churn", "online-peak"};
    return kinds;
}

std::vector<std::string>
scenarioOptionKeys(const std::string &kind)
{
    std::vector<std::string> keys = {"seed", "warmup", "measure"};
    if (kind == "offline" || kind == "online") {
        keys.push_back("utilization");
    } else if (kind == "bursty") {
        keys.insert(keys.end(),
                    {"utilization", "multiplier", "burst", "gap"});
    } else if (kind == "churn") {
        keys.insert(keys.end(), {"utilization", "node", "at", "online",
                                 "fail", "recover", "repair", "drift"});
    } else if (kind == "online-peak") {
        keys.push_back("fraction");
    }
    return keys;
}

namespace {

std::string
num(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

std::string
experimentToString(const ExperimentSpec &spec)
{
    std::ostringstream out;
    out << "experiment v1\n";
    out << "name " << spec.name << "\n";
    out << "output " << spec.output << "\n";
    if (spec.threads != 0)
        out << "threads " << spec.threads << "\n";
    if (spec.simThreads != 1)
        out << "sim-threads " << spec.simThreads << "\n";
    out << "seed " << spec.seed << "\n";
    out << "warmup " << num(spec.warmupS) << "\n";
    out << "measure " << num(spec.measureS) << "\n";
    out << "planner-budget " << num(spec.plannerBudgetS) << "\n";
    for (const SpecName &name : spec.clusters)
        out << "cluster " << name.value << "\n";
    for (const SpecName &name : spec.models)
        out << "model " << name.value << "\n";
    for (const SpecName &name : spec.planners)
        out << "planner " << name.value << "\n";
    for (const SpecName &name : spec.schedulers)
        out << "scheduler " << name.value << "\n";
    for (const SystemSpec &system : spec.systems) {
        out << "system " << system.label << " " << system.planner
            << " " << system.scheduler << "\n";
    }
    for (const ScenarioSpec &scenario : spec.scenarios) {
        out << "scenario " << scenario.kind;
        for (const auto &option : scenario.options)
            out << " " << option.first << "=" << num(option.second);
        for (const ChurnEventSpec &event : scenario.events) {
            out << " " << (event.fail ? "fail=" : "recover=")
                << event.node << "@" << num(event.atFraction);
        }
        out << "\n";
    }
    return out.str();
}

std::optional<ExperimentSpec>
experimentFromString(const std::string &text, ParseError &error)
{
    LineReader reader(text);
    if (!checkHeader(reader, "experiment", 0, error))
        return std::nullopt;

    ExperimentSpec spec;
    std::map<std::string, int> seen_scalar;
    auto scalar_once = [&](const std::string &tag, int line) {
        auto inserted = seen_scalar.emplace(tag, line);
        if (!inserted.second) {
            error = {line,
                     "duplicate '" + tag + "' directive (first on line " +
                         std::to_string(inserted.first->second) + ")"};
            return false;
        }
        return true;
    };
    auto want_args = [&](const std::vector<std::string> &toks,
                         size_t n, const std::string &usage) {
        if (toks.size() == n + 1)
            return true;
        error = {reader.line(), "'" + toks[0] + "' needs " +
                                    std::to_string(n) +
                                    " argument(s): " + usage};
        return false;
    };

    while (reader.next()) {
        const auto &toks = reader.tokens();
        const std::string &tag = toks[0];
        const int line = reader.line();
        if (tag == "name") {
            if (!want_args(toks, 1, "name <identifier>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            spec.name = toks[1];
        } else if (tag == "output") {
            if (!want_args(toks, 1, "output <csv|json>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            if (toks[1] != "csv" && toks[1] != "json") {
                error = {line, "output must be 'csv' or 'json', got '" +
                                   toks[1] + "'"};
                return std::nullopt;
            }
            spec.output = toks[1];
        } else if (tag == "threads") {
            if (!want_args(toks, 1, "threads <count>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            if (!parseInt(toks[1], spec.threads) || spec.threads < 0) {
                error = {line, "threads must be a non-negative "
                               "integer, got '" + toks[1] + "'"};
                return std::nullopt;
            }
        } else if (tag == "sim-threads") {
            if (!want_args(toks, 1, "sim-threads <count>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            if (!parseInt(toks[1], spec.simThreads) ||
                spec.simThreads < 1) {
                error = {line, "sim-threads must be a positive "
                               "integer, got '" + toks[1] + "'"};
                return std::nullopt;
            }
        } else if (tag == "seed") {
            if (!want_args(toks, 1, "seed <uint64>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            if (!parseU64(toks[1], spec.seed)) {
                error = {line, "seed must be an unsigned integer, "
                               "got '" + toks[1] + "'"};
                return std::nullopt;
            }
        } else if (tag == "warmup" || tag == "measure" ||
                   tag == "planner-budget") {
            if (!want_args(toks, 1, "<seconds>") ||
                !scalar_once(tag, line))
                return std::nullopt;
            double value = 0.0;
            if (!parseDouble(toks[1], value) || value < 0.0) {
                error = {line, "'" + tag + "' must be a non-negative "
                               "number of seconds, got '" + toks[1] +
                               "'"};
                return std::nullopt;
            }
            if (tag == "warmup")
                spec.warmupS = value;
            else if (tag == "measure")
                spec.measureS = value;
            else
                spec.plannerBudgetS = value;
        } else if (tag == "cluster" || tag == "model" ||
                   tag == "planner" || tag == "scheduler") {
            if (!want_args(toks, 1, tag + " <registry-name>"))
                return std::nullopt;
            if ((tag == "planner" || tag == "scheduler") &&
                !spec.systems.empty()) {
                error = {line,
                         "cannot mix '" + tag + "' axes with 'system' "
                         "lines (first system on line " +
                             std::to_string(spec.systems.front().line) +
                             ")"};
                return std::nullopt;
            }
            SpecName name{toks[1], line};
            if (tag == "cluster")
                spec.clusters.push_back(std::move(name));
            else if (tag == "model")
                spec.models.push_back(std::move(name));
            else if (tag == "planner")
                spec.planners.push_back(std::move(name));
            else
                spec.schedulers.push_back(std::move(name));
        } else if (tag == "system") {
            if (!want_args(toks, 3,
                           "system <label> <planner> <scheduler>"))
                return std::nullopt;
            if (!spec.planners.empty() || !spec.schedulers.empty()) {
                int axis_line = spec.planners.empty()
                                    ? spec.schedulers.front().line
                                    : spec.planners.front().line;
                error = {line,
                         "cannot mix 'system' lines with "
                         "planner/scheduler axes (first axis on line " +
                             std::to_string(axis_line) + ")"};
                return std::nullopt;
            }
            spec.systems.push_back({toks[1], toks[2], toks[3], line});
        } else if (tag == "scenario") {
            if (toks.size() < 2) {
                error = {line, "'scenario' needs a kind: scenario "
                               "<kind> [key=value ...]"};
                return std::nullopt;
            }
            ScenarioSpec scenario;
            scenario.kind = toks[1];
            scenario.line = line;
            const auto &kinds = scenarioKinds();
            if (std::find(kinds.begin(), kinds.end(), scenario.kind) ==
                kinds.end()) {
                error = {line, "unknown scenario kind '" +
                                   scenario.kind + "' (known: " +
                                   joinNames(kinds) + ")"};
                return std::nullopt;
            }
            std::vector<std::string> known =
                scenarioOptionKeys(scenario.kind);
            for (size_t i = 2; i < toks.size(); ++i) {
                size_t eq = toks[i].find('=');
                if (eq == std::string::npos || eq == 0) {
                    error = {line, "scenario option '" + toks[i] +
                                       "' is not key=value"};
                    return std::nullopt;
                }
                std::string key = toks[i].substr(0, eq);
                if (std::find(known.begin(), known.end(), key) ==
                    known.end()) {
                    error = {line, "scenario '" + scenario.kind +
                                       "' does not take option '" +
                                       key + "' (known: " +
                                       joinNames(known) + ")"};
                    return std::nullopt;
                }
                if (key == "fail" || key == "recover") {
                    // Churn events are repeatable and carry a
                    // <node>@<fraction> value instead of a number.
                    const std::string raw = toks[i].substr(eq + 1);
                    size_t at = raw.find('@');
                    ChurnEventSpec event;
                    event.fail = key == "fail";
                    event.line = line;
                    if (at == std::string::npos || at == 0 ||
                        at + 1 >= raw.size() ||
                        !parseInt(raw.substr(0, at), event.node) ||
                        !parseDouble(raw.substr(at + 1),
                                     event.atFraction)) {
                        error = {line,
                                 "scenario option '" + key +
                                     "' must be <node>@<fraction>, "
                                     "got '" + raw + "'"};
                        return std::nullopt;
                    }
                    scenario.events.push_back(event);
                    continue;
                }
                if (scenario.has(key)) {
                    error = {line, "duplicate scenario option '" +
                                       key + "'"};
                    return std::nullopt;
                }
                const std::string raw = toks[i].substr(eq + 1);
                double value = 0.0;
                if (key == "seed") {
                    // Seeds route through the double-valued option
                    // table; cap them at 2^53 so the round trip is
                    // exact and never silently shifts the RNG stream.
                    uint64_t seed_value = 0;
                    if (!parseU64(raw, seed_value)) {
                        error = {line, "scenario option 'seed' has "
                                       "non-numeric value '" +
                                           raw + "'"};
                        return std::nullopt;
                    }
                    if (seed_value > (uint64_t{1} << 53)) {
                        error = {line,
                                 "scenario option 'seed' exceeds "
                                 "2^53 and would lose precision; use "
                                 "the top-level 'seed' directive"};
                        return std::nullopt;
                    }
                    value = static_cast<double>(seed_value);
                } else if (!parseDouble(raw, value)) {
                    error = {line, "scenario option '" + key +
                                       "' has non-numeric value '" +
                                       raw + "'"};
                    return std::nullopt;
                }
                scenario.options.emplace_back(std::move(key), value);
            }
            if (scenario.kind == "churn") {
                bool legacy = scenario.has("node") ||
                              scenario.has("at");
                if (legacy && !scenario.events.empty()) {
                    error = {line,
                             "churn scenario cannot mix node=/at= "
                             "with fail=/recover= events"};
                    return std::nullopt;
                }
                if (!scenario.has("node") &&
                    scenario.events.empty()) {
                    error = {line,
                             "churn scenario requires node=<index> "
                             "or fail=<node>@<fraction> events"};
                    return std::nullopt;
                }
            }
            spec.scenarios.push_back(std::move(scenario));
        } else {
            error = {line, "unknown directive '" + tag + "'"};
            return std::nullopt;
        }
    }

    if (spec.clusters.empty()) {
        error = {0, "spec declares no 'cluster' lines"};
        return std::nullopt;
    }
    if (spec.models.empty()) {
        error = {0, "spec declares no 'model' lines"};
        return std::nullopt;
    }
    if (spec.systems.empty() && spec.planners.empty() &&
        spec.schedulers.empty()) {
        error = {0, "spec declares no 'system' lines and no "
                    "planner/scheduler axes"};
        return std::nullopt;
    }
    if (spec.systems.empty()) {
        if (spec.planners.empty()) {
            error = {spec.schedulers.front().line,
                     "cartesian mode needs at least one 'planner'"};
            return std::nullopt;
        }
        if (spec.schedulers.empty()) {
            error = {spec.planners.front().line,
                     "cartesian mode needs at least one 'scheduler'"};
            return std::nullopt;
        }
    }
    if (spec.scenarios.empty()) {
        error = {0, "spec declares no 'scenario' lines"};
        return std::nullopt;
    }
    bool offline_seen = false;
    for (const ScenarioSpec &scenario : spec.scenarios) {
        if (scenario.kind == "offline")
            offline_seen = true;
        if (scenario.kind == "online-peak" && !offline_seen) {
            error = {scenario.line,
                     "online-peak needs an earlier offline scenario "
                     "to derive its arrival rate from"};
            return std::nullopt;
        }
    }
    return spec;
}

std::optional<ExperimentSpec>
experimentFromString(const std::string &text)
{
    ParseError ignored;
    return experimentFromString(text, ignored);
}

} // namespace io
} // namespace helix
