/**
 * @file
 * Plain-text serialization of clusters, placements, and traces.
 *
 * Enables artifact-style reproducibility: a cluster description, the
 * placement a planner produced, and the request trace of an experiment
 * can be written to disk and reloaded bit-for-bit, so experiments can
 * be re-run and placements audited without re-planning.
 *
 * Formats are line-oriented:
 *
 *   cluster v1
 *   node <name> <gpu> <tflops> <memGiB> <bwGBs> <powerW> <gpus> <region>
 *   link <from> <to> <bandwidthBps> <latencyS>     # -1 = coordinator
 *
 *   placement v1 <numNodes>
 *   <start> <count>          # one line per node, in node order
 *
 *   trace v1 <numRequests>
 *   <id> <arrivalS> <promptLen> <outputLen>
 */

#ifndef HELIX_IO_SERIALIZATION_H
#define HELIX_IO_SERIALIZATION_H

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "placement/placement.h"
#include "trace/trace.h"

namespace helix {
namespace io {

/** Serialize a cluster (nodes + full link matrix). */
std::string clusterToString(const cluster::ClusterSpec &cluster);

/** Parse a cluster; nullopt on malformed input. */
std::optional<cluster::ClusterSpec> clusterFromString(
    const std::string &text);

/** Serialize a model placement. */
std::string placementToString(
    const placement::ModelPlacement &placement);

/** Parse a model placement; nullopt on malformed input. */
std::optional<placement::ModelPlacement> placementFromString(
    const std::string &text);

/** Serialize a request trace. */
std::string traceToString(const std::vector<trace::Request> &requests);

/** Parse a request trace; nullopt on malformed input. */
std::optional<std::vector<trace::Request>> traceFromString(
    const std::string &text);

/** Write @p text to @p path. @return false on I/O error. */
bool writeFile(const std::string &path, const std::string &text);

/** Read the whole file at @p path; nullopt on I/O error. */
std::optional<std::string> readFile(const std::string &path);

} // namespace io
} // namespace helix

#endif // HELIX_IO_SERIALIZATION_H
