/**
 * @file
 * Plain-text serialization of clusters, placements, and traces.
 *
 * Enables artifact-style reproducibility: a cluster description, the
 * placement a planner produced, and the request trace of an experiment
 * can be written to disk and reloaded bit-for-bit, so experiments can
 * be re-run and placements audited without re-planning.
 *
 * Formats are line-oriented (one record per line, `#` starts a
 * comment, blank lines are ignored); docs/FILE_FORMATS.md is the
 * normative reference:
 *
 *   cluster v1
 *   node <name> <gpu> <tflops> <memGiB> <bwGBs> <powerW> <gpus> <region>
 *   link <from> <to> <bandwidthBps> <latencyS>     # -1 = coordinator
 *
 *   placement v1 <numNodes>
 *   <start> <count>          # one line per node, in node order
 *
 *   trace v1 <numRequests>
 *   <id> <arrivalS> <promptLen> <outputLen>
 *
 * Every parser comes in two flavors: an error-reporting overload that
 * fills a ParseError {line, message} on failure, and the historical
 * signature returning bare nullopt (now a wrapper). Tools such as
 * `helixctl validate` use the former to report actionable errors.
 */

#ifndef HELIX_IO_SERIALIZATION_H
#define HELIX_IO_SERIALIZATION_H

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "placement/placement.h"
#include "trace/trace.h"

namespace helix {
namespace io {

/** A structured parse failure: 1-based source line + message. */
struct ParseError
{
    /** 1-based line the error was detected on (0 = whole input). */
    int line = 0;
    std::string message;

    /** "line N: message" (or just the message when line == 0). */
    [[nodiscard]] std::string str() const;
};

/** Serialize a cluster (nodes + full link matrix). */
[[nodiscard]] std::string clusterToString(const cluster::ClusterSpec &cluster);

/** Parse a cluster; on failure returns nullopt and fills @p error. */
[[nodiscard]] std::optional<cluster::ClusterSpec> clusterFromString(
    const std::string &text, ParseError &error);

/** Parse a cluster; nullopt on malformed input. */
[[nodiscard]] std::optional<cluster::ClusterSpec> clusterFromString(
    const std::string &text);

/** Serialize a model placement. */
[[nodiscard]] std::string placementToString(
    const placement::ModelPlacement &placement);

/** Parse a placement; on failure returns nullopt and fills @p error. */
[[nodiscard]] std::optional<placement::ModelPlacement> placementFromString(
    const std::string &text, ParseError &error);

/** Parse a model placement; nullopt on malformed input. */
[[nodiscard]] std::optional<placement::ModelPlacement> placementFromString(
    const std::string &text);

/** Serialize a request trace. */
[[nodiscard]] std::string traceToString(const std::vector<trace::Request> &requests);

/** Parse a trace; on failure returns nullopt and fills @p error. */
[[nodiscard]] std::optional<std::vector<trace::Request>> traceFromString(
    const std::string &text, ParseError &error);

/** Parse a request trace; nullopt on malformed input. */
[[nodiscard]] std::optional<std::vector<trace::Request>> traceFromString(
    const std::string &text);

/** Write @p text to @p path. @return false on I/O error. */
[[nodiscard]] bool writeFile(const std::string &path, const std::string &text);

/** Read the whole file at @p path; nullopt on I/O error. */
[[nodiscard]] std::optional<std::string> readFile(const std::string &path);

// --- Line-oriented parsing substrate (shared with spec.h) ----------

/**
 * Splits text into whitespace-tokenized lines, dropping blank lines
 * and `#` comments while remembering each line's 1-based number, so
 * parsers can report errors against the original file.
 */
class LineReader
{
  public:
    explicit LineReader(const std::string &text);

    /** Advance to the next non-empty line. @return false at EOF. */
    bool next();

    /** Tokens of the current line. */
    [[nodiscard]] const std::vector<std::string> &tokens() const { return toks; }

    /** 1-based number of the current line in the source text. */
    [[nodiscard]] int line() const { return lineNo; }

  private:
    std::vector<std::pair<int, std::vector<std::string>>> lines;
    size_t cursor = 0;
    std::vector<std::string> toks;
    int lineNo = 0;
};

/** Parse helpers: return false without touching @p out on failure.
 *  parseDouble rejects inf/nan — every quantity in these formats is
 *  finite. */
[[nodiscard]] bool parseInt(const std::string &token, int &out);
[[nodiscard]] bool parseLong(const std::string &token, long &out);
[[nodiscard]] bool parseU64(const std::string &token, uint64_t &out);
[[nodiscard]] bool parseDouble(const std::string &token, double &out);

/**
 * Check a "<format> v1 [<count>]" header line (@p extra = number of
 * tokens after the version). Reads one line from @p reader; on
 * failure fills @p error and returns false.
 */
[[nodiscard]] bool checkHeader(LineReader &reader, const char *format, size_t extra,
                 ParseError &error);

/** "a, b, c" — for known-names lists in error messages. */
[[nodiscard]] std::string joinNames(const std::vector<std::string> &names);

} // namespace io
} // namespace helix

#endif // HELIX_IO_SERIALIZATION_H
