/**
 * @file
 * The single source of truth for the experiment output schema.
 *
 * Every emitted column — the flat metric columns, the string identity
 * columns, and the tenancy/churn-gated composite columns — is one row
 * of the tables declared here, and both emitters (resultsToJson /
 * resultsToCsv in experiment.cpp) iterate these tables instead of
 * carrying their own copies of the column list. Each row also records
 * which SimMetrics / JobResult member feeds it and the token under
 * which the serial-vs-parallel differential harness fingerprints that
 * member, so `tools/helix_analyze.py` (check id `metrics-schema`) can
 * verify the three artifacts — struct, emitters, fingerprint — never
 * drift apart: a new SimMetrics field must gain a schema row, and a
 * schema row's column must be emitted by BOTH formats and
 * fingerprinted by tests/test_sim_differential.cpp.
 *
 * Changing a row changes the output byte format; docs/FILE_FORMATS.md
 * documents the column set consumers may rely on.
 */

#ifndef HELIX_EXP_SCHEMA_H
#define HELIX_EXP_SCHEMA_H

#include <cstddef>
#include <string>

namespace helix {
namespace exp {

struct JobResult;

/** A flat numeric column present in every row of both emitters. */
struct MetricColumnSpec
{
    /** Column name in CSV headers and JSON keys. */
    const char *column;
    /** Member feeding the column ("metrics.x" = SimMetrics field). */
    const char *field;
    /** Token identifying the field in the differential fingerprint
     *  (tests/test_sim_differential.cpp); "" = job-level field
     *  outside SimMetrics, which the fingerprint does not cover. */
    const char *fingerprint;
    double (*get)(const JobResult &);
};

/** A string identity column present in every row of both emitters. */
struct StringColumnSpec
{
    const char *column;
    const char *field;
    const std::string &(*get)(const JobResult &);
};

/**
 * A structured or conditionally-emitted column: churn logs and the
 * tenancy block. The emitters render these by hand (nested JSON
 * arrays, compact CSV records), so the schema row only carries the
 * names for the coherence check — the CSV column, the JSON key (they
 * differ for tenant_stats/tenants), the feeding member, and the
 * fingerprint token.
 */
struct CompositeColumnSpec
{
    const char *csvColumn;
    const char *jsonKey;
    const char *field;
    const char *fingerprint;
};

/**
 * A SimMetrics member that is intentionally NOT an output column —
 * either an intermediate the emitted values are derived from, or
 * per-node/per-link detail only the differential fingerprint renders.
 * Listing it here (with its fingerprint token) is the explicit
 * opt-out that keeps the metrics-schema check exhaustive over the
 * struct.
 */
struct InternalMetricSpec
{
    const char *field;
    const char *fingerprint;
};

const MetricColumnSpec *metricColumns(size_t &count);
const StringColumnSpec *stringColumns(size_t &count);
const CompositeColumnSpec *compositeColumns(size_t &count);
const InternalMetricSpec *internalMetrics(size_t &count);

} // namespace exp
} // namespace helix

#endif // HELIX_EXP_SCHEMA_H
