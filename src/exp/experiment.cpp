#include "exp/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "cluster/generator.h"
#include "exp/schema.h"
#include "placement/partitioned_planner.h"
#include "placement/portfolio.h"
#include "util/logging.h"

namespace helix {
namespace exp {

RunConfig
Scenario::toRun(double warmup_s, double measure_s,
                uint64_t seed) const
{
    RunConfig run;
    run.online = online;
    run.utilization = utilization;
    run.warmupSeconds = warmup_s;
    run.measureSeconds = measure_s;
    run.seed = seed;
    run.arrivals = arrivals;
    run.burstMultiplier = burstMultiplier;
    run.burstMeanS = burstMeanS;
    run.burstGapS = burstGapS;
    run.failNodeIndex = failNodeIndex;
    run.repairTopology = repairTopology;
    run.driftThreshold = driftThreshold;
    if (failNodeIndex >= 0 && failAtFraction >= 0.0)
        run.failAtSeconds = failAtFraction * (warmup_s + measure_s);
    run.churnEvents.reserve(churnSchedule.size());
    for (const ChurnEventFrac &event : churnSchedule) {
        run.churnEvents.push_back(
            {event.kind, event.node,
             event.atFraction * (warmup_s + measure_s)});
    }
    return run;
}

namespace scenarios {

Scenario
offline()
{
    Scenario s;
    s.name = "offline";
    return s;
}

Scenario
onlineDiurnal()
{
    Scenario s;
    s.name = "online-diurnal";
    s.online = true;
    return s;
}

Scenario
bursty(double burst_multiplier, double mean_burst_s,
       double mean_gap_s)
{
    Scenario s;
    s.name = "bursty";
    s.online = true;
    s.arrivals = ArrivalKind::Bursty;
    s.burstMultiplier = burst_multiplier;
    s.burstMeanS = mean_burst_s;
    s.burstGapS = mean_gap_s;
    return s;
}

Scenario
nodeChurn(int node, double at_fraction, bool online_mode)
{
    Scenario s;
    s.name = "node-churn";
    s.online = online_mode;
    s.failNodeIndex = node;
    s.failAtFraction = at_fraction;
    return s;
}

Scenario
churnSchedule(std::vector<Scenario::ChurnEventFrac> events,
              bool online_mode)
{
    Scenario s;
    s.name = "node-churn";
    s.online = online_mode;
    s.churnSchedule = std::move(events);
    return s;
}

std::vector<Scenario>
all()
{
    return {offline(), onlineDiurnal(), bursty(), nodeChurn(0)};
}

} // namespace scenarios

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : opts(options)
{
}

void
ExperimentRunner::runTasks(
    const std::vector<std::function<void()>> &tasks) const
{
    if (tasks.empty())
        return;

    int hw = static_cast<int>(std::thread::hardware_concurrency());
    int workers = opts.numThreads > 0 ? opts.numThreads
                                      : std::max(1, hw);
    workers = std::min<int>(workers, static_cast<int>(tasks.size()));

    // A task that throws must surface to the caller, not
    // std::terminate the pool thread: capture the first exception
    // (later ones are dropped), let the workers drain, and rethrow
    // after the joins. The single-worker path goes through the same
    // machinery so both modes report the same (first) exception.
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            try {
                tasks[i]();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    if (workers == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<JobResult>
ExperimentRunner::run(const std::vector<Job> &jobs) const
{
    std::vector<JobResult> results(jobs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        tasks.push_back([&jobs, &results, i]() {
            const Job &job = jobs[i];
            HELIX_ASSERT(job.deployment != nullptr);
            JobResult &out = results[i];
            out.label = job.label;
            out.cluster = job.deployment->clusterSpec().summary();
            out.model = job.deployment->modelSpec().name;
            out.planner = job.deployment->plannerName();
            out.scheduler = toString(job.scheduler);
            out.arrivals = toString(job.run.arrivals);
            out.plannedThroughput = job.deployment->plannedThroughput();
            auto t0 = std::chrono::steady_clock::now();
            auto sched = makeScheduler(*job.deployment, job.scheduler,
                                       job.schedulerConfig);
            out.metrics =
                runExperiment(*job.deployment, *sched, job.run);
            auto t1 = std::chrono::steady_clock::now();
            out.wallSeconds =
                std::chrono::duration<double>(t1 - t0).count();
        });
    }
    runTasks(tasks);
    return results;
}

std::vector<JobResult>
runSweep(const SweepConfig &sweep, RunnerOptions options)
{
    // Plan each (cluster, model, planner) deployment once; all its
    // jobs share it const.
    std::vector<std::unique_ptr<Deployment>> deployments;
    std::vector<Job> jobs;
    for (const std::string &cluster_name : sweep.clusters) {
        auto clus = clusterByName(cluster_name);
        if (!clus) {
            HELIX_WARN("unknown cluster '%s'; skipping",
                       cluster_name.c_str());
            continue;
        }
        for (const std::string &model_name : sweep.models) {
            auto model_spec = modelByName(model_name);
            if (!model_spec) {
                HELIX_WARN("unknown model '%s'; skipping",
                           model_name.c_str());
                continue;
            }
            for (const std::string &planner_name : sweep.planners) {
                auto planner = plannerByName(planner_name,
                                             sweep.plannerBudgetS);
                if (!planner) {
                    HELIX_WARN("unknown planner '%s'; skipping",
                               planner_name.c_str());
                    continue;
                }
                deployments.push_back(std::make_unique<Deployment>(
                    *clus, *model_spec, *planner));
                const Deployment *dep = deployments.back().get();
                for (const std::string &sched_name :
                     sweep.schedulers) {
                    auto kind = schedulerKindByName(sched_name);
                    if (!kind) {
                        HELIX_WARN("unknown scheduler '%s'; skipping",
                                   sched_name.c_str());
                        continue;
                    }
                    for (const Scenario &scenario : sweep.scenarios) {
                        Job job;
                        job.label = cluster_name + "/" + model_name +
                                    "/" + planner_name + "/" +
                                    sched_name + "/" + scenario.name;
                        job.deployment = dep;
                        job.scheduler = *kind;
                        job.run = scenario.toRun(sweep.warmupSeconds,
                                                 sweep.measureSeconds,
                                                 sweep.seed);
                        jobs.push_back(std::move(job));
                    }
                }
            }
        }
    }
    ExperimentRunner runner(options);
    return runner.run(jobs);
}

namespace {

/** JSON string escaping, including \uXXXX for control characters. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

std::string
num(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/**
 * Compact churn log: "fail:1@33=1234.5/cold;recover:1@66=2345.6/cold".
 * The trailing /<resolve> distinguishes cold re-solves from
 * incremental repairs and drift-triggered shrinks.
 */
std::string
formatChurnEvents(const sim::SimMetrics &metrics)
{
    std::string out;
    for (const sim::SimMetrics::FlowEvent &event :
         metrics.flowEvents) {
        if (!out.empty())
            out += ';';
        out += sim::toString(event.kind);
        out += ':' + std::to_string(event.node);
        out += '@' + num(event.time);
        out += '=' + num(event.flow);
        out += '/';
        out += sim::toString(event.resolveKind);
    }
    return out;
}

/**
 * Compact per-tenant log, one ';'-separated record per tenant:
 * "alpha:w=2:tput=123.4:arr=10:adm=8:done=7:rej=2:pre=1:ttft=0.95:tpot=-".
 * Attainments print "-" when no SLO was declared (or no samples).
 */
std::string
formatTenantStats(const sim::SimMetrics &metrics)
{
    std::string out;
    for (const sim::SimMetrics::TenantStat &t : metrics.tenantStats) {
        if (!out.empty())
            out += ';';
        out += t.name;
        out += ":w=" + num(t.weight);
        out += ":tput=" + num(t.decodeThroughput);
        out += ":arr=" + std::to_string(t.requestsArrived);
        out += ":adm=" + std::to_string(t.requestsAdmitted);
        out += ":done=" + std::to_string(t.requestsCompleted);
        out += ":rej=" + std::to_string(t.requestsRejected);
        out += ":pre=" + std::to_string(t.requestsPreempted);
        out += ":ttft=";
        out += t.ttftAttainment >= 0.0 ? num(t.ttftAttainment) : "-";
        out += ":tpot=";
        out += t.tpotAttainment >= 0.0 ? num(t.tpotAttainment) : "-";
    }
    return out;
}

/** Whether any result carries per-tenant statistics. The tenant
 *  emitter fields are gated on this so single-tenant output stays
 *  byte-identical to the pre-tenancy emitters. */
bool
anyTenantStats(const std::vector<JobResult> &results)
{
    return std::any_of(results.begin(), results.end(),
                       [](const JobResult &r) {
                           return !r.metrics.tenantStats.empty();
                       });
}

} // namespace

std::string
resultsToJson(const std::vector<JobResult> &results)
{
    size_t num_metric = 0;
    size_t num_string = 0;
    const MetricColumnSpec *metric_cols = metricColumns(num_metric);
    const StringColumnSpec *string_cols = stringColumns(num_string);
    std::ostringstream out;
    out << "[\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        out << "  {";
        bool first = true;
        for (size_t c = 0; c < num_string; ++c) {
            const StringColumnSpec &col = string_cols[c];
            out << (first ? "" : ", ") << '"' << col.column
                << "\": \"" << jsonEscape(col.get(r)) << '"';
            first = false;
        }
        out << ", \"churn_events\": [";
        for (size_t e = 0; e < r.metrics.flowEvents.size(); ++e) {
            const sim::SimMetrics::FlowEvent &event =
                r.metrics.flowEvents[e];
            out << (e == 0 ? "" : ", ") << "{\"kind\": \""
                << sim::toString(event.kind) << "\", \"node\": "
                << event.node << ", \"time\": " << num(event.time)
                << ", \"flow\": " << num(event.flow)
                << ", \"resolve\": \""
                << sim::toString(event.resolveKind) << "\"}";
        }
        out << "]";
        for (size_t c = 0; c < num_metric; ++c) {
            const MetricColumnSpec &col = metric_cols[c];
            double value = col.get(r);
            // Zero-sample statistics emit null, not a fake 0.
            out << ", \"" << col.column << "\": "
                << (std::isnan(value) ? "null" : num(value));
        }
        if (!r.metrics.tenantStats.empty()) {
            out << ", \"requests_preempted\": "
                << r.metrics.requestsPreempted
                << ", \"jain_index\": " << num(r.metrics.jainIndex)
                << ", \"tenants\": [";
            for (size_t t = 0; t < r.metrics.tenantStats.size();
                 ++t) {
                const sim::SimMetrics::TenantStat &stat =
                    r.metrics.tenantStats[t];
                out << (t == 0 ? "" : ", ") << "{\"name\": \""
                    << jsonEscape(stat.name)
                    << "\", \"weight\": " << num(stat.weight)
                    << ", \"decode_throughput\": "
                    << num(stat.decodeThroughput)
                    << ", \"requests_arrived\": "
                    << stat.requestsArrived
                    << ", \"requests_admitted\": "
                    << stat.requestsAdmitted
                    << ", \"requests_completed\": "
                    << stat.requestsCompleted
                    << ", \"requests_rejected\": "
                    << stat.requestsRejected
                    << ", \"requests_preempted\": "
                    << stat.requestsPreempted
                    << ", \"slo_ttft\": " << num(stat.sloTtftS)
                    << ", \"slo_tpot\": " << num(stat.sloTpotS)
                    << ", \"ttft_attainment\": "
                    << (stat.ttftAttainment >= 0.0
                            ? num(stat.ttftAttainment)
                            : "null")
                    << ", \"tpot_attainment\": "
                    << (stat.tpotAttainment >= 0.0
                            ? num(stat.tpotAttainment)
                            : "null")
                    << "}";
            }
            out << "]";
        }
        out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.str();
}

std::string
resultsToCsv(const std::vector<JobResult> &results)
{
    size_t num_metric = 0;
    size_t num_string = 0;
    const MetricColumnSpec *metric_cols = metricColumns(num_metric);
    const StringColumnSpec *string_cols = stringColumns(num_string);
    std::ostringstream out;
    bool tenancy = anyTenantStats(results);
    bool first = true;
    for (size_t c = 0; c < num_string; ++c) {
        out << (first ? "" : ",") << string_cols[c].column;
        first = false;
    }
    out << ",churn_events";
    for (size_t c = 0; c < num_metric; ++c)
        out << ',' << metric_cols[c].column;
    if (tenancy)
        out << ",requests_preempted,jain_index,tenant_stats";
    out << '\n';
    for (const JobResult &r : results) {
        auto quoted = [&out](const std::string &field) {
            // Quote string fields (cluster summaries contain commas)
            // and double embedded quotes per RFC 4180.
            out << '"';
            for (char c : field) {
                if (c == '"')
                    out << '"';
                out << c;
            }
            out << '"';
        };
        first = true;
        for (size_t c = 0; c < num_string; ++c) {
            if (!first)
                out << ',';
            first = false;
            quoted(string_cols[c].get(r));
        }
        out << ',';
        quoted(formatChurnEvents(r.metrics));
        for (size_t c = 0; c < num_metric; ++c) {
            double value = metric_cols[c].get(r);
            out << ',';
            // Zero-sample statistics emit an empty field, not a
            // fake 0.
            if (!std::isnan(value))
                out << num(value);
        }
        if (tenancy) {
            out << ',' << r.metrics.requestsPreempted << ','
                << num(r.metrics.jainIndex) << ',';
            quoted(formatTenantStats(r.metrics));
        }
        out << '\n';
    }
    return out.str();
}

std::optional<cluster::ClusterSpec>
clusterByName(const std::string &name)
{
    if (name == "single24")
        return cluster::setups::singleCluster24();
    if (name == "geo24")
        return cluster::setups::geoDistributed24();
    if (name == "hetero42")
        return cluster::setups::highHeterogeneity42();
    if (name == "planner10")
        return cluster::setups::plannerCluster10();
    if (name.rfind("gen:", 0) == 0) {
        auto config = cluster::gen::parseGeneratorName(name);
        if (!config)
            return std::nullopt;
        return cluster::gen::generate(*config);
    }
    return std::nullopt;
}

std::optional<int>
clusterNodeCountByName(const std::string &name)
{
    if (name.rfind("gen:", 0) == 0) {
        auto config = cluster::gen::parseGeneratorName(name);
        if (!config)
            return std::nullopt;
        const auto &presets = cluster::gen::presetNames();
        if (std::find(presets.begin(), presets.end(),
                      config->preset) == presets.end())
            return std::nullopt;
        return config->numNodes;
    }
    auto clus = clusterByName(name);
    if (!clus)
        return std::nullopt;
    return clus->numNodes();
}

std::optional<model::TransformerSpec>
modelByName(const std::string &name)
{
    if (name == "llama30b")
        return model::catalog::llama30b();
    if (name == "llama70b")
        return model::catalog::llama70b();
    if (name == "gpt3-175b")
        return model::catalog::gpt3_175b();
    if (name == "grok1-314b")
        return model::catalog::grok1_314b();
    if (name == "llama3-405b")
        return model::catalog::llama3_405b();
    return std::nullopt;
}

namespace {

/**
 * Member names of a portfolio registry entry: the default set (every
 * registry planner except the portfolio itself) for "portfolio", or
 * the comma-separated list after "portfolio:". Nullopt when the list
 * is malformed (empty members, or a nested portfolio).
 */
std::optional<std::vector<std::string>>
portfolioMemberNames(const std::string &name)
{
    if (name == "portfolio") {
        std::vector<std::string> members;
        for (const std::string &entry : plannerNames()) {
            if (entry != "portfolio")
                members.push_back(entry);
        }
        return members;
    }
    std::vector<std::string> members;
    std::string list = name.substr(std::string("portfolio:").size());
    size_t at = 0;
    while (at <= list.size()) {
        size_t comma = list.find(',', at);
        size_t end = comma == std::string::npos ? list.size() : comma;
        std::string member = list.substr(at, end - at);
        if (member.empty() ||
            member.rfind("portfolio", 0) == 0)
            return std::nullopt;
        members.push_back(std::move(member));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    if (members.empty())
        return std::nullopt;
    return members;
}

} // namespace

std::unique_ptr<placement::Planner>
plannerByName(const std::string &name, double planner_budget_s,
              int portfolio_threads)
{
    if (name == "helix" || name == "helix-pruned") {
        placement::HelixPlannerConfig config;
        config.timeBudgetSeconds = planner_budget_s;
        config.usePruning = (name == "helix-pruned");
        return std::make_unique<placement::HelixPlanner>(config);
    }
    if (name == "helix-partitioned") {
        placement::HelixPlannerConfig config;
        config.timeBudgetSeconds = planner_budget_s;
        return std::make_unique<placement::PartitionedPlanner>(config);
    }
    if (name == "portfolio" || name.rfind("portfolio:", 0) == 0) {
        auto member_names = portfolioMemberNames(name);
        if (!member_names)
            return nullptr;
        std::vector<placement::PortfolioMember> members;
        members.reserve(member_names->size());
        for (const std::string &member : *member_names) {
            // Resolve once up front so unknown member names fail
            // here (registry lookup), not mid-plan.
            if (!plannerByName(member, planner_budget_s))
                return nullptr;
            members.push_back(
                {member, [member](double search_budget_s) {
                     return plannerByName(member, search_budget_s);
                 }});
        }
        placement::PortfolioConfig config;
        config.budgetS = planner_budget_s;
        RunnerOptions pool;
        pool.numThreads = portfolio_threads > 0
                              ? portfolio_threads
                              : static_cast<int>(members.size());
        placement::TaskExecutor executor =
            [pool](const std::vector<std::function<void()>> &tasks) {
                ExperimentRunner(pool).runTasks(tasks);
            };
        return std::make_unique<placement::PortfolioPlanner>(
            std::move(members), config, std::move(executor));
    }
    if (name == "swarm")
        return std::make_unique<placement::SwarmPlanner>();
    if (name == "petals")
        return std::make_unique<placement::PetalsPlanner>();
    if (name == "sp")
        return std::make_unique<placement::SeparatePipelinesPlanner>(
            false);
    if (name == "sp+")
        return std::make_unique<placement::SeparatePipelinesPlanner>(
            true);
    if (name == "uniform")
        return std::make_unique<placement::UniformPlanner>();
    return nullptr;
}

std::optional<SchedulerKind>
schedulerKindByName(const std::string &name)
{
    if (name == "helix")
        return SchedulerKind::Helix;
    if (name == "swarm")
        return SchedulerKind::Swarm;
    if (name == "random")
        return SchedulerKind::Random;
    if (name == "shortest-queue")
        return SchedulerKind::ShortestQueue;
    if (name == "fixed-rr")
        return SchedulerKind::FixedRoundRobin;
    return std::nullopt;
}

const std::vector<std::string> &
clusterNames()
{
    static const std::vector<std::string> names = {
        "single24", "geo24", "hetero42", "planner10"};
    return names;
}

const std::vector<std::string> &
modelNames()
{
    static const std::vector<std::string> names = {
        "llama30b", "llama70b", "gpt3-175b", "grok1-314b",
        "llama3-405b"};
    return names;
}

const std::vector<std::string> &
plannerNames()
{
    static const std::vector<std::string> names = {
        "helix", "helix-pruned", "helix-partitioned", "swarm",
        "petals", "sp", "sp+", "uniform", "portfolio"};
    return names;
}

const std::vector<std::string> &
schedulerNames()
{
    static const std::vector<std::string> names = {
        "helix", "swarm", "random", "shortest-queue", "fixed-rr"};
    return names;
}

} // namespace exp
} // namespace helix
