#include "exp/spec.h"

#include <algorithm>
#include <cmath>

namespace helix {
namespace exp {

using io::joinNames;

namespace {

void
setError(io::ParseError *error, int line, std::string message)
{
    if (error) {
        error->line = line;
        error->message = std::move(message);
    }
}

/** A resolved planner+scheduler pair with its row label. */
struct ResolvedSystem
{
    std::string label;
    std::string planner;
    SchedulerKind scheduler = SchedulerKind::Helix;
};

/**
 * The systems a spec runs per (cluster, model): either its `system`
 * lines verbatim, or the planner x scheduler cartesian product with
 * "<planner>/<scheduler>" labels.
 */
std::vector<ResolvedSystem>
resolveSystems(const io::ExperimentSpec &spec)
{
    std::vector<ResolvedSystem> systems;
    if (!spec.systems.empty()) {
        for (const io::SystemSpec &system : spec.systems) {
            ResolvedSystem resolved;
            resolved.label = system.label;
            resolved.planner = system.planner;
            resolved.scheduler =
                *schedulerKindByName(system.scheduler);
            systems.push_back(std::move(resolved));
        }
        return systems;
    }
    for (const io::SpecName &planner : spec.planners) {
        for (const io::SpecName &sched : spec.schedulers) {
            ResolvedSystem resolved;
            resolved.label = planner.value + "/" + sched.value;
            resolved.planner = planner.value;
            resolved.scheduler = *schedulerKindByName(sched.value);
            systems.push_back(std::move(resolved));
        }
    }
    return systems;
}

} // namespace

bool
validateSpec(const io::ExperimentSpec &spec, io::ParseError *error)
{
    int min_nodes = -1;
    for (const io::SpecName &name : spec.clusters) {
        // Node-count lookup only: resolving a generated cluster here
        // would materialize its O(nodes^2) link matrix just to
        // validate the name.
        auto num_nodes = clusterNodeCountByName(name.value);
        if (!num_nodes) {
            setError(error, name.line,
                     "unknown cluster '" + name.value + "' (known: " +
                         joinNames(clusterNames()) + ")");
            return false;
        }
        if (min_nodes < 0 || *num_nodes < min_nodes)
            min_nodes = *num_nodes;
    }
    for (const io::SpecName &name : spec.models) {
        if (!modelByName(name.value)) {
            setError(error, name.line,
                     "unknown model '" + name.value + "' (known: " +
                         joinNames(modelNames()) + ")");
            return false;
        }
    }
    for (const io::SpecName &name : spec.planners) {
        if (!plannerByName(name.value, 0.01)) {
            setError(error, name.line,
                     "unknown planner '" + name.value + "' (known: " +
                         joinNames(plannerNames()) + ")");
            return false;
        }
    }
    for (const io::SpecName &name : spec.schedulers) {
        if (!schedulerKindByName(name.value)) {
            setError(error, name.line,
                     "unknown scheduler '" + name.value +
                         "' (known: " + joinNames(schedulerNames()) +
                         ")");
            return false;
        }
    }
    for (const io::SystemSpec &system : spec.systems) {
        if (!plannerByName(system.planner, 0.01)) {
            setError(error, system.line,
                     "system '" + system.label +
                         "' names unknown planner '" + system.planner +
                         "' (known: " + joinNames(plannerNames()) +
                         ")");
            return false;
        }
        if (!schedulerKindByName(system.scheduler)) {
            setError(error, system.line,
                     "system '" + system.label +
                         "' names unknown scheduler '" +
                         system.scheduler + "' (known: " +
                         joinNames(schedulerNames()) + ")");
            return false;
        }
    }
    for (const io::ScenarioSpec &scenario : spec.scenarios) {
        if (scenario.kind != "churn")
            continue;
        if (scenario.has("node")) {
            double node_value = scenario.get("node", -1.0);
            // helix-lint: allow(float-eq) exact integrality test on a parsed value; floor() is bit-exact for in-range indices
            if (node_value != std::floor(node_value)) {
                setError(error, scenario.line,
                         "churn node=" + std::to_string(node_value) +
                             " must be an integer node index");
                return false;
            }
            int node = static_cast<int>(node_value);
            if (node < 0 || (min_nodes >= 0 && node >= min_nodes)) {
                setError(error, scenario.line,
                         "churn node index " + std::to_string(node) +
                             " is out of range for the smallest "
                             "declared cluster (" +
                             std::to_string(min_nodes) + " nodes)");
                return false;
            }
            double at = scenario.get("at", 0.3);
            if (at < 0.0 || at > 1.0) {
                setError(error, scenario.line,
                         "churn at=" + std::to_string(at) +
                             " must be a fraction of the run in "
                             "[0, 1]");
                return false;
            }
        }
        double repair = scenario.get("repair", 0.0);
        // helix-lint: allow(float-eq) repair= is an exact 0/1 flag parsed from text; any other bit pattern is a spec error
        if (repair != 0.0 && repair != 1.0) {
            setError(error, scenario.line,
                     "churn repair=" + std::to_string(repair) +
                         " must be 0 (cold re-solve) or 1 "
                         "(incremental repair)");
            return false;
        }
        double drift = scenario.get("drift", 0.0);
        if (drift < 0.0 || drift >= 1.0) {
            setError(error, scenario.line,
                     "churn drift=" + std::to_string(drift) +
                         " must be a fraction in [0, 1)");
            return false;
        }
        // Event schedule: every event's node must exist in every
        // declared cluster, times must be fractions declared in
        // non-decreasing order, and the fail/recover alternation must
        // be consistent per node (no double fail, no recover of a
        // node that never failed).
        double prev_at = -1.0;
        std::vector<int> dead;
        for (const io::ChurnEventSpec &event : scenario.events) {
            const std::string what =
                std::string(event.fail ? "fail=" : "recover=") +
                std::to_string(event.node) + "@" +
                std::to_string(event.atFraction);
            if (event.node < 0 ||
                (min_nodes >= 0 && event.node >= min_nodes)) {
                setError(error, event.line,
                         "churn event node index " +
                             std::to_string(event.node) +
                             " is out of range for the smallest "
                             "declared cluster (" +
                             std::to_string(min_nodes) + " nodes)");
                return false;
            }
            if (event.atFraction < 0.0 || event.atFraction > 1.0) {
                setError(error, event.line,
                         "churn event " + what +
                             " must occur at a fraction of the run "
                             "in [0, 1]");
                return false;
            }
            if (event.atFraction < prev_at) {
                setError(error, event.line,
                         "churn event " + what +
                             " is out of order: events must be "
                             "declared in non-decreasing time order");
                return false;
            }
            prev_at = event.atFraction;
            auto found =
                std::find(dead.begin(), dead.end(), event.node);
            if (event.fail) {
                if (found != dead.end()) {
                    setError(error, event.line,
                             "churn event " + what +
                                 " fails a node that is already "
                                 "failed");
                    return false;
                }
                dead.push_back(event.node);
            } else {
                if (found == dead.end()) {
                    setError(error, event.line,
                             "churn event " + what +
                                 " recovers a node with no earlier "
                                 "fail event");
                    return false;
                }
                dead.erase(found);
            }
        }
    }
    return true;
}

RunConfig
scenarioRunConfig(const io::ExperimentSpec &spec,
                  const io::ScenarioSpec &scenario,
                  double offline_peak)
{
    Scenario catalog;
    if (scenario.kind == "offline") {
        catalog = scenarios::offline();
    } else if (scenario.kind == "online") {
        catalog = scenarios::onlineDiurnal();
    } else if (scenario.kind == "bursty") {
        catalog = scenarios::bursty(scenario.get("multiplier", 5.0),
                                    scenario.get("burst", 30.0),
                                    scenario.get("gap", 270.0));
    } else if (scenario.kind == "churn") {
        bool online_mode = scenario.get("online", 1.0) != 0.0;
        if (scenario.events.empty()) {
            catalog = scenarios::nodeChurn(
                static_cast<int>(scenario.get("node", 0.0)),
                scenario.get("at", 0.3), online_mode);
        } else {
            std::vector<Scenario::ChurnEventFrac> events;
            events.reserve(scenario.events.size());
            for (const io::ChurnEventSpec &event : scenario.events) {
                events.push_back(
                    {event.fail ? sim::ChurnEvent::Kind::Fail
                                : sim::ChurnEvent::Kind::Recover,
                     event.node, event.atFraction});
            }
            catalog = scenarios::churnSchedule(std::move(events),
                                               online_mode);
        }
        catalog.repairTopology = scenario.get("repair", 0.0) != 0.0;
        catalog.driftThreshold = scenario.get("drift", 0.0);
    } else { // online-peak
        catalog.name = "online-peak";
        catalog.online = true;
    }
    catalog.utilization = scenario.get("utilization", 0.0);

    double warmup = scenario.get("warmup", spec.warmupS);
    double measure = scenario.get("measure", spec.measureS);
    uint64_t seed = static_cast<uint64_t>(
        scenario.get("seed", static_cast<double>(spec.seed)));
    RunConfig run = catalog.toRun(warmup, measure, seed);
    // Purely a wall-clock knob: the sharded executor is byte-identical
    // to the serial loop, so sim-threads never alters results.
    run.simThreads = spec.simThreads;
    // Tenancy: two or more tenant lines activate fair-share admission
    // and tenant-labeled trace generation; zero or one leaves the run
    // byte-identical to the pre-tenancy path.
    if (spec.tenants.size() >= 2) {
        run.tenants.reserve(spec.tenants.size());
        for (const io::TenantSpec &tenant : spec.tenants) {
            scheduler::Tenant cls;
            cls.name = tenant.name;
            cls.weight = tenant.weight;
            cls.mix = tenant.mix;
            cls.sloTtftS = tenant.sloTtftS;
            cls.sloTpotS = tenant.sloTpotS;
            run.tenants.push_back(std::move(cls));
        }
        run.starvationTolerance = spec.starvationTolerance;
        run.preemptionTimeoutS = spec.preemptionTimeoutS;
    }
    if (scenario.kind == "online-peak") {
        // Sec. 6.2: the online arrival rate is `fraction` of the
        // measured offline peak, in requests/s of mean output length.
        double fraction = scenario.get("fraction", 0.75);
        run.requestRate = fraction * offline_peak /
                          run.lengths.targetMeanOutput;
    }
    return run;
}

std::optional<std::vector<JobResult>>
runSpec(const io::ExperimentSpec &spec, io::ParseError *error,
        RunnerOptions options)
{
    if (!validateSpec(spec, error))
        return std::nullopt;

    if (options.numThreads <= 0)
        options.numThreads = spec.threads;
    ExperimentRunner runner(options);
    std::vector<ResolvedSystem> systems = resolveSystems(spec);

    std::vector<JobResult> results;
    for (const io::SpecName &cluster_name : spec.clusters) {
        auto clus = clusterByName(cluster_name.value);
        for (const io::SpecName &model_name : spec.models) {
            auto model_spec = modelByName(model_name.value);

            // Plan each distinct planner once per (cluster, model);
            // every system and scenario job naming it shares the
            // deployment const (schedulers don't affect planning).
            std::vector<std::string> planner_order;
            std::vector<size_t> system_deployment(systems.size());
            for (size_t i = 0; i < systems.size(); ++i) {
                auto found = std::find(planner_order.begin(),
                                       planner_order.end(),
                                       systems[i].planner);
                system_deployment[i] =
                    static_cast<size_t>(found - planner_order.begin());
                if (found == planner_order.end())
                    planner_order.push_back(systems[i].planner);
            }
            std::vector<Deployment> deployments;
            deployments.reserve(planner_order.size());
            for (const std::string &planner_name : planner_order) {
                // The thread count also caps a portfolio planner's
                // member race, so `--threads 1` runs serially and a
                // spec's results stay reproducible either way.
                auto planner = plannerByName(planner_name,
                                             spec.plannerBudgetS,
                                             options.numThreads);
                deployments.emplace_back(*clus, *model_spec,
                                         *planner);
            }

            double offline_peak = 0.0;
            for (const io::ScenarioSpec &scenario : spec.scenarios) {
                RunConfig run =
                    scenarioRunConfig(spec, scenario, offline_peak);
                std::vector<Job> jobs;
                jobs.reserve(systems.size());
                for (size_t i = 0; i < systems.size(); ++i) {
                    Job job;
                    job.label = cluster_name.value + "/" +
                                model_name.value + "/" +
                                systems[i].label + "/" +
                                scenario.kind;
                    job.deployment =
                        &deployments[system_deployment[i]];
                    job.scheduler = systems[i].scheduler;
                    job.run = run;
                    jobs.push_back(std::move(job));
                }
                std::vector<JobResult> batch = runner.run(jobs);
                if (scenario.kind == "offline" && !batch.empty()) {
                    offline_peak =
                        batch.front().metrics.decodeThroughput;
                }
                for (JobResult &result : batch)
                    results.push_back(std::move(result));
            }
        }
    }
    return results;
}

} // namespace exp
} // namespace helix
