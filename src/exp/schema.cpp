/**
 * @file
 * Experiment output schema tables (see schema.h). helix-analyze
 * parses this file textually: keep one row per line-group with the
 * string fields as plain literals (no macros, no concatenation).
 */

#include "exp/schema.h"

#include <limits>

#include "exp/experiment.h"
#include "util/stats.h"

namespace helix {
namespace exp {

namespace {

/**
 * A latency statistic, or NaN when the accumulator holds no samples.
 * StatAccumulator returns 0.0 on empty, which in emitted output is
 * indistinguishable from a true zero-latency measurement; the
 * emitters turn the NaN into an empty CSV field / JSON null so
 * downstream analysis can tell "no data" from "zero".
 */
double
statOrNan(const StatAccumulator &stat, double value)
{
    return stat.count() > 0
               ? value
               : std::numeric_limits<double>::quiet_NaN();
}

const MetricColumnSpec kMetricColumns[] = {
    {"planned_throughput", "plannedThroughput", "",
     [](const JobResult &r) { return r.plannedThroughput; }},
    {"decode_throughput", "metrics.decodeThroughput",
     "decodeThroughput=",
     [](const JobResult &r) { return r.metrics.decodeThroughput; }},
    {"prompt_throughput", "metrics.promptThroughput",
     "promptThroughput=",
     [](const JobResult &r) { return r.metrics.promptThroughput; }},
    {"prompt_latency_mean", "metrics.promptLatency", "promptLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.promptLatency,
                          r.metrics.promptLatency.mean());
     }},
    {"prompt_latency_p50", "metrics.promptLatency", "promptLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.promptLatency,
                          r.metrics.promptLatency.percentile(50));
     }},
    {"prompt_latency_p95", "metrics.promptLatency", "promptLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.promptLatency,
                          r.metrics.promptLatency.percentile(95));
     }},
    {"prompt_latency_p99", "metrics.promptLatency", "promptLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.promptLatency,
                          r.metrics.promptLatency.percentile(99));
     }},
    {"decode_latency_mean", "metrics.decodeLatency", "decodeLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.decodeLatency,
                          r.metrics.decodeLatency.mean());
     }},
    {"decode_latency_p50", "metrics.decodeLatency", "decodeLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.decodeLatency,
                          r.metrics.decodeLatency.percentile(50));
     }},
    {"decode_latency_p95", "metrics.decodeLatency", "decodeLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.decodeLatency,
                          r.metrics.decodeLatency.percentile(95));
     }},
    {"decode_latency_p99", "metrics.decodeLatency", "decodeLatency",
     [](const JobResult &r) {
         return statOrNan(r.metrics.decodeLatency,
                          r.metrics.decodeLatency.percentile(99));
     }},
    {"requests_arrived", "metrics.requestsArrived", "arrived=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsArrived);
     }},
    {"requests_admitted", "metrics.requestsAdmitted", "admitted=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsAdmitted);
     }},
    {"requests_completed", "metrics.requestsCompleted", "completed=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsCompleted);
     }},
    {"requests_rejected", "metrics.requestsRejected", "rejected=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsRejected);
     }},
    {"requests_restarted", "metrics.requestsRestarted", "restarted=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsRestarted);
     }},
    {"avg_kv_utilization", "metrics.avgKvUtilization",
     "avgKvUtilization=",
     [](const JobResult &r) { return r.metrics.avgKvUtilization; }},
    {"wall_seconds", "wallSeconds", "",
     [](const JobResult &r) { return r.wallSeconds; }},
};

const StringColumnSpec kStringColumns[] = {
    {"label", "label",
     [](const JobResult &r) -> const std::string & { return r.label; }},
    {"cluster", "cluster",
     [](const JobResult &r) -> const std::string & {
         return r.cluster;
     }},
    {"model", "model",
     [](const JobResult &r) -> const std::string & { return r.model; }},
    {"planner", "planner",
     [](const JobResult &r) -> const std::string & {
         return r.planner;
     }},
    {"scheduler", "scheduler",
     [](const JobResult &r) -> const std::string & {
         return r.scheduler;
     }},
    {"arrivals", "arrivals",
     [](const JobResult &r) -> const std::string & {
         return r.arrivals;
     }},
};

const CompositeColumnSpec kCompositeColumns[] = {
    {"churn_events", "churn_events", "metrics.flowEvents", "flow t="},
    {"requests_preempted", "requests_preempted",
     "metrics.requestsPreempted", "preempted="},
    {"jain_index", "jain_index", "metrics.jainIndex", "jain="},
    {"tenant_stats", "tenants", "metrics.tenantStats", "tenant "},
};

const InternalMetricSpec kInternalMetrics[] = {
    // Raw token counters the *_throughput columns are derived from.
    {"metrics.decodeTokensInWindow", "decodeTokens="},
    {"metrics.promptTokensInWindow", "promptTokens="},
    // The denominator of the throughput columns.
    {"metrics.simulatedSeconds", "simulatedSeconds="},
    // Per-node / per-link detail: fingerprinted exhaustively, far too
    // wide for flat experiment rows.
    {"metrics.nodeStats", "batches="},
    {"metrics.linkStats", "transfers="},
};

} // namespace

const MetricColumnSpec *
metricColumns(size_t &count)
{
    count = sizeof(kMetricColumns) / sizeof(kMetricColumns[0]);
    return kMetricColumns;
}

const StringColumnSpec *
stringColumns(size_t &count)
{
    count = sizeof(kStringColumns) / sizeof(kStringColumns[0]);
    return kStringColumns;
}

const CompositeColumnSpec *
compositeColumns(size_t &count)
{
    count = sizeof(kCompositeColumns) / sizeof(kCompositeColumns[0]);
    return kCompositeColumns;
}

const InternalMetricSpec *
internalMetrics(size_t &count)
{
    count = sizeof(kInternalMetrics) / sizeof(kInternalMetrics[0]);
    return kInternalMetrics;
}

} // namespace exp
} // namespace helix
