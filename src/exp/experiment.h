/**
 * @file
 * Experiment-runner subsystem: declarative sweeps over
 * (cluster x placement x scheduler x trace scenario) configurations,
 * executed on a thread pool with structured JSON/CSV output.
 *
 * The per-figure bench binaries are thin configs over this engine:
 * they declare the systems under test and hand the jobs to
 * ExperimentRunner, which runs each ClusterSimulator instance on its
 * own worker. Every job is self-contained (its own scheduler and
 * simulator over a shared const Deployment), so results are
 * byte-identical to invoking runExperiment() directly, regardless of
 * thread count or completion order.
 */

#ifndef HELIX_EXP_EXPERIMENT_H
#define HELIX_EXP_EXPERIMENT_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/helix.h"

namespace helix {
namespace exp {

/**
 * A named trace/failure scenario. The catalog below provides the
 * standard entries; sweeps may also construct their own.
 */
struct Scenario
{
    std::string name = "offline";
    /** Arrival process (Auto = online ? diurnal : poisson). */
    ArrivalKind arrivals = ArrivalKind::Auto;
    /** Online mode: diurnal default arrivals, 75% utilization. */
    bool online = false;
    /** Arrival rate as a fraction of planned peak (0 = mode default). */
    double utilization = 0.0;
    /** Burst shape for ArrivalKind::Bursty. */
    double burstMultiplier = 5.0;
    double burstMeanS = 30.0;
    double burstGapS = 270.0;
    /**
     * Legacy single-failure churn: the node with this index fails at
     * failAtFraction * (warmup + measure). Negative = disabled.
     */
    int failNodeIndex = -1;
    double failAtFraction = -1.0;
    /** One churn event at a fraction of the run horizon. */
    struct ChurnEventFrac
    {
        sim::ChurnEvent::Kind kind = sim::ChurnEvent::Kind::Fail;
        int node = -1;
        double atFraction = 0.0;
    };
    /**
     * Churn event schedule (fail/recover). Materialized alongside the
     * legacy pair: each event lands at atFraction * (warmup + measure)
     * seconds in RunConfig::churnEvents.
     */
    std::vector<ChurnEventFrac> churnSchedule;
    /** Re-solve churn events by warm-start incremental repair
     *  (`repair=1` spec key) instead of cold re-solves. */
    bool repairTopology = false;
    /** Drift-triggered re-solve threshold (`drift=<fraction>` spec
     *  key); 0 disables. */
    double driftThreshold = 0.0;

    /** Materialize as a RunConfig at the given scale. */
    [[nodiscard]] RunConfig toRun(double warmup_s, double measure_s,
                                  uint64_t seed) const;
};

/** The standard scenario catalog (see README "Scenario catalog"). */
namespace scenarios {

/** Saturating Poisson arrivals (the paper's offline setting). */
Scenario offline();

/** Diurnally modulated arrivals at 75% utilization (online). */
Scenario onlineDiurnal();

/** MMPP bursts: quiet baseline punctuated by arrival spikes. */
Scenario bursty(double burst_multiplier = 5.0,
                double mean_burst_s = 30.0,
                double mean_gap_s = 270.0);

/** Node @p node fails at @p at_fraction of the run horizon. */
Scenario nodeChurn(int node, double at_fraction = 0.3,
                   bool online = true);

/**
 * Churn with an explicit fail/recover schedule (fractions of the run
 * horizon, in non-decreasing time order).
 */
Scenario churnSchedule(
    std::vector<Scenario::ChurnEventFrac> events, bool online = true);

/** All catalog entries (churn applied to node 0 at 30%). */
std::vector<Scenario> all();

} // namespace scenarios

/** One unit of work: simulate a deployment under one configuration. */
struct Job
{
    /** Row label in the emitted results. */
    std::string label;
    /** Planned deployment (non-owning; must outlive the run). */
    const Deployment *deployment = nullptr;
    SchedulerKind scheduler = SchedulerKind::Helix;
    scheduler::SchedulerConfig schedulerConfig;
    RunConfig run;
};

/** Result of one job. */
struct JobResult
{
    std::string label;
    std::string cluster;
    std::string model;
    std::string planner;
    std::string scheduler;
    std::string arrivals;
    double plannedThroughput = 0.0;
    sim::SimMetrics metrics;
    /** Wall-clock seconds the simulation took. */
    double wallSeconds = 0.0;
};

/** Thread-pool options for ExperimentRunner. */
struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    int numThreads = 0;
};

/**
 * Runs batches of jobs on a thread pool. Results are returned in job
 * order and are independent of the number of workers.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {});

    /** Run every job; results align with the input order. */
    [[nodiscard]] std::vector<JobResult> run(
        const std::vector<Job> &jobs) const;

    /**
     * Run arbitrary tasks on the pool; each task runs exactly once,
     * and the call returns after all of them finish. Tasks must only
     * touch their own state (the simulation path writes one result
     * slot per job; the planner portfolio writes one report entry per
     * member). run() is implemented on top of this.
     */
    void runTasks(const std::vector<std::function<void()>> &tasks)
        const;

  private:
    RunnerOptions opts;
};

/**
 * Declarative sweep: the cartesian product of clusters, models,
 * planners, schedulers, and scenarios. Each (cluster, model, planner)
 * deployment is planned once and shared (const) by all its jobs.
 */
struct SweepConfig
{
    /** Cluster registry names (see clusterByName). */
    std::vector<std::string> clusters;
    /** Model registry names (see modelByName). */
    std::vector<std::string> models;
    /** Planner names (see plannerByName). */
    std::vector<std::string> planners;
    /** Scheduler names (helix, swarm, random, shortest-queue,
     *  fixed-rr). */
    std::vector<std::string> schedulers;
    std::vector<Scenario> scenarios;
    double plannerBudgetS = 2.0;
    double warmupSeconds = 30.0;
    double measureSeconds = 120.0;
    uint64_t seed = 42;
};

/** Expand and execute a sweep. */
[[nodiscard]] std::vector<JobResult> runSweep(const SweepConfig &sweep,
                                RunnerOptions options = {});

/** Structured emitters for downstream analysis/plotting. */
[[nodiscard]] std::string resultsToJson(const std::vector<JobResult> &results);
[[nodiscard]] std::string resultsToCsv(const std::vector<JobResult> &results);

// --- Registries (declarative configs name their parts) -------------

/**
 * "single24", "geo24", "hetero42", "planner10", plus generated
 * clusters named "gen:<preset>:<nodes>[:<seed>]" (seed defaults to
 * 42) — e.g. "gen:two-tier:300:7". Presets: cluster::gen::presetNames.
 */
[[nodiscard]] std::optional<cluster::ClusterSpec> clusterByName(
    const std::string &name);

/**
 * Node count of the cluster @p name resolves to, without
 * materializing it — for a generated cluster this skips building the
 * O(nodes^2) link matrix, so validation of e.g. "gen:...:1000:7"
 * stays O(1). Nullopt exactly when clusterByName would fail.
 */
[[nodiscard]] std::optional<int> clusterNodeCountByName(const std::string &name);

/** "llama30b", "llama70b", "gpt3-175b", "grok1-314b", "llama3-405b". */
[[nodiscard]] std::optional<model::TransformerSpec> modelByName(
    const std::string &name);

/**
 * "helix" / "helix-pruned" (budgeted, the latter with bandwidth
 * pruning), "helix-partitioned" (budgeted, region-partitioned),
 * "swarm", "petals", "sp", "sp+", "uniform", and "portfolio" — all
 * other registry planners raced concurrently under the budget (see
 * placement/portfolio.h). "portfolio:<a>,<b>,..." restricts the
 * member list (e.g. "portfolio:swarm,sp+,uniform"; members may not
 * themselves be portfolios).
 *
 * @param portfolio_threads worker threads for a portfolio's member
 *        race (0 = one thread per member); ignored by every other
 *        planner. `helixctl plan --threads` and a spec's `threads`
 *        land here.
 * @return a fresh planner instance, or nullptr for unknown names.
 */
[[nodiscard]] std::unique_ptr<placement::Planner> plannerByName(
    const std::string &name, double planner_budget_s,
    int portfolio_threads = 0);

/** Scheduler kind from its toString name. */
[[nodiscard]] std::optional<SchedulerKind> schedulerKindByName(
    const std::string &name);

/**
 * Registry enumeration (for `helixctl list` and spec validation).
 * Every returned name resolves through the matching *ByName lookup;
 * tests/test_spec.cpp pins that invariant.
 */
[[nodiscard]] const std::vector<std::string> &clusterNames();
[[nodiscard]] const std::vector<std::string> &modelNames();
[[nodiscard]] const std::vector<std::string> &plannerNames();
[[nodiscard]] const std::vector<std::string> &schedulerNames();

} // namespace exp
} // namespace helix

#endif // HELIX_EXP_EXPERIMENT_H
