/**
 * @file
 * Semantics for `experiment v1` specs: registry resolution and
 * execution over the experiment runner.
 *
 * io::experimentFromString gives a syntactically valid ExperimentSpec
 * with names as strings; this layer resolves those names against the
 * exp registries (validateSpec) and executes the sweep (runSpec).
 *
 * Execution order is deterministic and mirrors the compiled figure
 * benches exactly (bench/bench_common.h builds a spec and calls
 * runSpec, so `helixctl run` and e.g. `bench_fig6_single_cluster`
 * share one code path): for each (cluster, model) pair, each
 * distinct planner is planned once (schedulers don't affect
 * planning, so systems naming the same planner share the
 * deployment), then the scenarios run in declaration order, each as
 * one batch of per-system jobs on the thread pool. Batch boundaries only order the work; per-job results
 * are independent of worker count (see ExperimentRunner).
 *
 * The `online-peak` scenario reproduces the paper's Sec. 6.2 online
 * methodology: its arrival rate is `fraction` of the decode
 * throughput the *first* system measured in the most recent offline
 * scenario of the same (cluster, model) group, divided by the mean
 * output length.
 */

#ifndef HELIX_EXP_SPEC_H
#define HELIX_EXP_SPEC_H

#include <optional>
#include <vector>

#include "exp/experiment.h"
#include "io/spec.h"

namespace helix {
namespace exp {

/**
 * Resolve every registry name in @p spec (clusters, models, planners,
 * schedulers, per-system pairs) and check scenario applicability
 * (e.g. a churn scenario's node index must exist in every declared
 * cluster). On failure returns false and fills @p error with the
 * offending spec line. Does not plan or simulate anything.
 */
[[nodiscard]] bool validateSpec(const io::ExperimentSpec &spec,
                  io::ParseError *error = nullptr);

/**
 * Execute @p spec end-to-end. Results are ordered by
 * (cluster, model, scenario, system), with labels
 * "<cluster>/<model>/<system>/<scenario>". Returns nullopt and fills
 * @p error if validateSpec rejects the spec.
 *
 * @p options.numThreads > 0 overrides the spec's `threads` directive.
 */
[[nodiscard]] std::optional<std::vector<JobResult>> runSpec(
    const io::ExperimentSpec &spec, io::ParseError *error = nullptr,
    RunnerOptions options = {});

/**
 * Materialize one scenario line as a RunConfig, applying the spec's
 * defaults and the scenario's inline overrides. @p offline_peak is
 * the reference decode throughput used by `online-peak` (ignored by
 * every other kind). Exposed for tests; runSpec uses this exact
 * function.
 */
[[nodiscard]] RunConfig scenarioRunConfig(const io::ExperimentSpec &spec,
                            const io::ScenarioSpec &scenario,
                            double offline_peak);

} // namespace exp
} // namespace helix

#endif // HELIX_EXP_SPEC_H
