/**
 * @file
 * Transformer model descriptions and the analytic cost model Helix
 * uses in place of one-time hardware profiling.
 *
 * The paper profiles real GPUs once per cluster to obtain per-node
 * inference throughput and link capacities (Sec. 4.3). Without GPUs we
 * derive the same quantities analytically from the model architecture
 * (parameters, FLOPs, KV-cache bytes per token) and GPU datasheet
 * numbers (Table 3), using standard roofline reasoning: prompt phase
 * is compute-bound, decode phase is bound by weight + KV-cache reads.
 */

#ifndef HELIX_MODEL_TRANSFORMER_H
#define HELIX_MODEL_TRANSFORMER_H

#include <cstdint>
#include <string>

namespace helix {
namespace model {

/**
 * Architecture description of a decoder-only transformer. All derived
 * quantities (parameter counts, FLOPs, KV bytes) are computed from
 * these fields.
 */
struct TransformerSpec
{
    std::string name;
    /** Number of transformer layers (L in the paper). */
    int numLayers = 0;
    /** Hidden state size. */
    int hiddenSize = 0;
    /** Number of attention (query) heads. */
    int numHeads = 0;
    /** Number of key/value heads (== numHeads unless GQA/MQA). */
    int numKvHeads = 0;
    /** Feed-forward intermediate size. */
    int intermediateSize = 0;
    /** Vocabulary size (embedding + output head). */
    int vocabSize = 0;
    /** Bytes per parameter / activation element (2 for FP16). */
    int dtypeBytes = 2;
    /**
     * Whether the MLP is gated (SwiGLU-style, three projections) as in
     * the LLaMA family, or classic two-projection GELU as in GPT-3.
     */
    bool gatedMlp = true;

    /** Parameters in one transformer layer. */
    int64_t paramsPerLayer() const;

    /** Parameters in the input/output embeddings. */
    int64_t embeddingParams() const;

    /** Total parameter count. */
    int64_t totalParams() const;

    /** Bytes of weights for one layer. */
    int64_t layerBytes() const { return paramsPerLayer() * dtypeBytes; }

    /** Bytes of KV-cache stored per token per layer. */
    int64_t kvBytesPerTokenPerLayer() const;

    /** Bytes of the activation transmitted between pipeline stages
     *  for one token. */
    int64_t activationBytesPerToken() const
    {
        return static_cast<int64_t>(hiddenSize) * dtypeBytes;
    }

    /**
     * Forward FLOPs for one token through one layer, ignoring the
     * context-dependent attention term (which dominates only at very
     * long context).
     */
    double flopsPerTokenPerLayer() const
    {
        return 2.0 * static_cast<double>(paramsPerLayer());
    }

    /**
     * Context-dependent attention FLOPs for one token against a
     * context of @p context_len tokens, per layer.
     */
    double attentionFlopsPerToken(int context_len) const;
};

/** Catalog of the models used in the paper's evaluation and Table 1. */
namespace catalog {

/** LLaMA-1 30B (the paper's "LLaMA 30B"). */
TransformerSpec llama30b();

/** LLaMA-2 70B (the paper's "LLaMA 70B", GQA with 8 KV heads). */
TransformerSpec llama70b();

/** GPT-3 175B (Table 1 row). */
TransformerSpec gpt3_175b();

/** Grok-1 314B dense-equivalent (Table 1 row). */
TransformerSpec grok1_314b();

/** LLaMA-3 405B (Table 1 row). */
TransformerSpec llama3_405b();

} // namespace catalog

} // namespace model
} // namespace helix

#endif // HELIX_MODEL_TRANSFORMER_H
