#include "model/transformer.h"

namespace helix {
namespace model {

int64_t
TransformerSpec::paramsPerLayer() const
{
    const int64_t h = hiddenSize;
    const int64_t inter = intermediateSize;
    const int64_t head_dim = h / numHeads;
    const int64_t kv_dim = head_dim * numKvHeads;
    // Attention: Q and O are h x h; K and V are h x kv_dim (GQA).
    int64_t attention = 2 * h * h + 2 * h * kv_dim;
    // MLP: gated (three projections) or classic (two projections).
    int64_t mlp = (gatedMlp ? 3 : 2) * h * inter;
    return attention + mlp;
}

int64_t
TransformerSpec::embeddingParams() const
{
    // Input embedding + output head (untied).
    return 2LL * vocabSize * hiddenSize;
}

int64_t
TransformerSpec::totalParams() const
{
    return paramsPerLayer() * numLayers + embeddingParams();
}

int64_t
TransformerSpec::kvBytesPerTokenPerLayer() const
{
    const int64_t head_dim = hiddenSize / numHeads;
    // K and V vectors for each KV head.
    return 2LL * numKvHeads * head_dim * dtypeBytes;
}

double
TransformerSpec::attentionFlopsPerToken(int context_len) const
{
    // QK^T scores plus attention-weighted V sum: 2 multiply-adds per
    // (head, context position, head_dim) pair for each of the two
    // matmuls, collapsing to 4 * hiddenSize per context token.
    return 4.0 * static_cast<double>(hiddenSize) *
           static_cast<double>(context_len);
}

namespace catalog {

TransformerSpec
llama30b()
{
    TransformerSpec spec;
    spec.name = "LLaMA-30B";
    spec.numLayers = 60;
    spec.hiddenSize = 6656;
    spec.numHeads = 52;
    spec.numKvHeads = 52;
    spec.intermediateSize = 17920;
    spec.vocabSize = 32000;
    spec.gatedMlp = true;
    return spec;
}

TransformerSpec
llama70b()
{
    TransformerSpec spec;
    spec.name = "LLaMA-70B";
    spec.numLayers = 80;
    spec.hiddenSize = 8192;
    spec.numHeads = 64;
    spec.numKvHeads = 8;
    spec.intermediateSize = 28672;
    spec.vocabSize = 32000;
    spec.gatedMlp = true;
    return spec;
}

TransformerSpec
gpt3_175b()
{
    TransformerSpec spec;
    spec.name = "GPT-3";
    spec.numLayers = 96;
    spec.hiddenSize = 12288;
    spec.numHeads = 96;
    spec.numKvHeads = 96;
    spec.intermediateSize = 4 * 12288;
    spec.vocabSize = 50257;
    spec.gatedMlp = false;
    return spec;
}

TransformerSpec
grok1_314b()
{
    // Grok-1 is a mixture-of-experts model; for capacity planning
    // (Table 1) what matters is total resident parameter bytes, so we
    // use a dense-equivalent description with matching total size.
    TransformerSpec spec;
    spec.name = "Grok-1";
    spec.numLayers = 64;
    spec.hiddenSize = 6144;
    spec.numHeads = 48;
    spec.numKvHeads = 8;
    spec.intermediateSize = 262144; // dense-equivalent of 8 experts
    spec.vocabSize = 131072;
    spec.gatedMlp = true;
    return spec;
}

TransformerSpec
llama3_405b()
{
    TransformerSpec spec;
    spec.name = "LLaMA-3-405B";
    spec.numLayers = 126;
    spec.hiddenSize = 16384;
    spec.numHeads = 128;
    spec.numKvHeads = 8;
    spec.intermediateSize = 53248;
    spec.vocabSize = 128256;
    spec.gatedMlp = true;
    return spec;
}

} // namespace catalog

} // namespace model
} // namespace helix
