/**
 * @file
 * Weighted fair-share admission control and preemption for
 * multi-tenant serving.
 *
 * The ROADMAP north-star is heavy traffic from millions of users:
 * contended clusters where one bursty tenant can starve everyone
 * else. FairShareController arbitrates admission over the existing
 * schedulers: each tenant declares a weight, the live serving
 * capacity C (the TopologyManager's current max-flow, tokens/s) is
 * divided weighted max-min across *demanding* tenants (those with
 * queued or in-flight work), and each tenant's usage — a decayed
 * decode-token rate, the same EWMA time constant the simulator's
 * per-node throughput estimates use — is compared against its share:
 *
 *   f_t = w_t / (sum of demanding weights) * C
 *   u_t = decayed decode tokens/s of tenant t
 *
 * Admission always serves the most under-share demanding tenant
 * first; a tenant more than (1 + starvation_tolerance) over its
 * share is held in queue while any other demanding tenant sits below
 * share. When a demanding tenant stays below
 * starvation_tolerance * f_t continuously for preemption_timeout
 * seconds while another tenant is over share, the controller names
 * the most over-share tenant as a preemption victim; the simulator
 * then restarts that tenant's newest in-flight request through the
 * epoch-safe churn machinery (LIFO victim choice, mirroring
 * ytsaurus's preempt-newest-jobs policy — newest requests have the
 * least sunk prefill work).
 *
 * The knobs (starvation tolerance defaulting to 0.8, preemption
 * timeout) follow the ytsaurus fair-share strategy config; they are
 * declared with ranges and defaults in core::specParams().
 *
 * With fewer than two tenants the controller reports inactive and
 * the simulator keeps its original single-queue admission path —
 * single-tenant runs are byte-identical to the pre-tenancy code.
 */

#ifndef HELIX_SCHEDULER_FAIR_SHARE_H
#define HELIX_SCHEDULER_FAIR_SHARE_H

#include <deque>
#include <string>
#include <vector>

#include "core/annotations.h"

namespace helix {
namespace scheduler {

/** One tenant class sharing the cluster. */
struct Tenant
{
    std::string name;
    /** Fair-share weight (> 0). */
    double weight = 1.0;
    /** Arrival-mix fraction in [0, 1]; negative = weight-
     *  proportional (trace generation only; ignored by the
     *  controller). */
    double mix = -1.0;
    /** Time-to-first-token SLO in seconds; 0 = none declared. */
    double sloTtftS = 0.0;
    /** Time-per-output-token SLO in seconds; 0 = none declared. */
    double sloTpotS = 0.0;
};

/**
 * Fair-share admission arbiter (see file comment).
 *
 * The whole controller is coordinator-confined state: admission,
 * usage accounting, and the starvation sweep all run in the
 * simulator's coordinator phase or inside serial barrier steps,
 * never on a node-lane shard worker — hence the blanket
 * HELIX_COORDINATOR_ONLY annotations checked by helix-analyze.
 */
class FairShareController
{
  public:
    struct Config
    {
        std::vector<Tenant> tenants;
        /** Below this fraction of fair share a demanding tenant is
         *  starving (ytsaurus fair_share_starvation_tolerance). */
        double starvationTolerance = 0.8;
        /** Continuous starvation seconds before preemption
         *  (ytsaurus fair_share_preemption_timeout). */
        double preemptionTimeoutS = 5.0;
        /** Decay time constant of the usage-rate estimator; matches
         *  sim::SimConfig::throughputEwmaTauS. */
        double usageTauS = 10.0;
    };

    explicit FairShareController(Config config);

    /** Fair-share arbitration requires at least two tenants. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] bool active() const { return classes.size() >= 2; }

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] int numTenants() const
    {
        return static_cast<int>(classes.size());
    }

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] const Tenant &tenant(int t) const
    {
        return classes[static_cast<size_t>(t)].spec;
    }

    /** Update the live serving capacity the shares divide
     *  (TopologyManager::currentFlow(), tokens/s). */
    HELIX_COORDINATOR_ONLY
    void setCapacity(double tokens_per_s) { capacity = tokens_per_s; }

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double currentCapacity() const { return capacity; }

    /** Queue an arrived request of tenant @p t for admission. */
    HELIX_COORDINATOR_ONLY
    void enqueue(int t, int request_index);

    /** Put a request back at the head of its tenant's queue (a
     *  schedule refusal, or a preempted request awaiting
     *  re-admission). */
    HELIX_COORDINATOR_ONLY
    void requeueFront(int t, int request_index);

    /**
     * Pop the next request to try admitting at time @p now: the most
     * under-share demanding tenant with queued work, skipping
     * tenants held over share while someone else is below share.
     * @return the request index, or -1 when every queue is empty or
     *         held.
     */
    HELIX_COORDINATOR_ONLY
    int popNext(double now);

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] bool queuesEmpty() const;

    /** Total queued (not yet admitted) requests. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] size_t queuedCount() const;

    /** Queued requests of tenant @p t. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] size_t queuedCount(int t) const
    {
        return classes[static_cast<size_t>(t)].queue.size();
    }

    HELIX_COORDINATOR_ONLY void onAdmitted(int t);
    HELIX_COORDINATOR_ONLY void onFinished(int t);
    HELIX_COORDINATOR_ONLY void onPreempted(int t);

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] int inFlight(int t) const
    {
        return classes[static_cast<size_t>(t)].inFlight;
    }

    /** Account one completed decode token of tenant @p t. */
    HELIX_COORDINATOR_ONLY
    void noteDecodeToken(int t, double now);

    /** Decayed decode-token rate of @p t (tokens/s) at @p now. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double usageRate(int t, double now) const;

    /** Weighted max-min fair share of @p t (tokens/s) over the
     *  currently demanding tenants; the full weighted share of the
     *  total when no tenant is demanding. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double fairShare(int t) const;

    /** usage / fair-share, with 0/0 = 0 and x/0 = +inf for x > 0. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double normalizedUsage(int t, double now) const;

    /**
     * Starvation sweep at @p now. Updates each tenant's continuous-
     * starvation clock; when some demanding tenant has starved for
     * at least the preemption timeout while another tenant with
     * in-flight work is over share beyond tolerance, returns that
     * over-share tenant (the preemption victim class) and re-arms
     * the starving tenant's clock. Returns -1 otherwise.
     */
    HELIX_COORDINATOR_ONLY
    int checkPreemption(double now);

  private:
    struct ClassState
    {
        Tenant spec;
        std::deque<int> queue;
        int inFlight = 0;
        /** Exponentially decayed decode-token mass and its last
         *  update time: rate = decayed / tau after decay to now. */
        double decayed = 0.0;
        double decayedAt = 0.0;
        /** Start of the current continuous-starvation interval;
         *  negative = not starving. */
        double starvingSince = -1.0;
    };

    [[nodiscard]] bool demanding(const ClassState &cls) const
    {
        return !cls.queue.empty() || cls.inFlight > 0;
    }

    /** Sum of demanding weights (all weights when none demand). */
    [[nodiscard]] double demandingWeight() const;

    std::vector<ClassState> classes;
    double capacity = 0.0;
    double tolerance;
    double preemptTimeoutS;
    double tauS;
};

} // namespace scheduler
} // namespace helix

#endif // HELIX_SCHEDULER_FAIR_SHARE_H
