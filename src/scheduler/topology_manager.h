/**
 * @file
 * Live topology maintenance under node churn (Sec. 5 semantics).
 *
 * The paper's scheduler routes every request along the *current*
 * max-flow of the cluster. When a node fails (or a failed node
 * rejoins), the flow solution of the original placement graph is
 * stale: surviving nodes must not keep their pre-failure flow
 * proportions, and the reported serving bound must reflect the
 * surviving subgraph. TopologyManager owns that invariant: it tracks
 * per-node liveness, and on every change re-runs preflow-push
 * max-flow on the placement graph restricted to live nodes, producing
 * a fresh Topology whose edge flows become the schedulers' IWRR
 * weights (RequestScheduler::onTopologyChange swaps them in).
 *
 * Re-solves are deterministic: the masked graph is rebuilt in node
 * order and solved with the same preflow-push configuration every
 * time, so a given liveness set always yields byte-identical flows.
 */

#ifndef HELIX_SCHEDULER_TOPOLOGY_MANAGER_H
#define HELIX_SCHEDULER_TOPOLOGY_MANAGER_H

#include <memory>
#include <vector>

#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"

namespace helix {
namespace scheduler {

/**
 * Tracks node liveness and keeps a Topology solved on the surviving
 * subgraph of a placement. The cluster, profiler, and placement are
 * held by reference and must outlive the manager.
 */
class TopologyManager
{
  public:
    TopologyManager(const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler,
                    const placement::ModelPlacement &placement,
                    placement::GraphBuildOptions options = {});

    /** The topology solved for the current liveness set. */
    const Topology &current() const { return *topo; }

    bool nodeAlive(int node) const;

    /**
     * Mark @p node dead or alive and re-solve max-flow on the
     * surviving subgraph. No-op (returning the current flow) when the
     * liveness bit is unchanged.
     * @return the max-flow value of the new topology (tokens/s).
     */
    double setNodeAlive(int node, bool alive);

    /** Max-flow value of the current topology (tokens/s). */
    double currentFlow() const { return topo->maxFlow(); }

    /** Number of max-flow re-solves performed (initial build + one
     *  per effective liveness change). */
    int numSolves() const { return solves; }

  private:
    /** Rebuild the masked placement graph and re-solve. */
    void rebuild();

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profilerRef;
    const placement::ModelPlacement &placementRef;
    placement::GraphBuildOptions opts;
    std::vector<bool> alive;
    std::unique_ptr<Topology> topo;
    int solves = 0;
};

} // namespace scheduler
} // namespace helix

#endif // HELIX_SCHEDULER_TOPOLOGY_MANAGER_H
