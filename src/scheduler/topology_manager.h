/**
 * @file
 * Live topology maintenance under node churn (Sec. 5 semantics).
 *
 * The paper's scheduler routes every request along the *current*
 * max-flow of the cluster. When a node fails (or a failed node
 * rejoins), the flow solution of the original placement graph is
 * stale: surviving nodes must not keep their pre-failure flow
 * proportions, and the reported serving bound must reflect the
 * surviving subgraph. TopologyManager owns that invariant: it tracks
 * per-node liveness and per-node capacity overrides, and on every
 * change re-solves max-flow on the live placement graph, producing a
 * fresh Topology whose edge flows become the schedulers' IWRR weights
 * (RequestScheduler::onTopologyChange swaps them in).
 *
 * Two re-solve strategies are supported (ResolveMode):
 *
 * - Cold: rebuild the placement graph masked to live nodes and
 *   re-solve preflow-push from scratch. Deterministic — the masked
 *   graph is rebuilt in node order and solved with the same
 *   preflow-push configuration every time, so a given liveness set
 *   always yields byte-identical flows.
 *
 * - Repair: keep one persistent flow network over the full placement
 *   where every liveness/capacity event is a single compute-edge
 *   capacity update (a dead node's in->out edge drops to zero, which
 *   severs exactly the flow through that node), then warm-start
 *   PreflowPush::repair() so only the affected flow is cancelled and
 *   re-augmented. The repaired flow value always equals the cold
 *   value; per-edge flows agree whenever the max flow is unique.
 *
 * Beyond liveness, capacity overrides generalize the re-solve trigger
 * to observed-throughput drift (ROADMAP: "Incremental max-flow and
 * drift-triggered re-solve"): when a node's EWMA decode throughput
 * falls below its planned flow, the simulator shrinks the node's
 * compute capacity via setNodeCapacity() so the straggler loses
 * routing weight mid-run.
 */

#ifndef HELIX_SCHEDULER_TOPOLOGY_MANAGER_H
#define HELIX_SCHEDULER_TOPOLOGY_MANAGER_H

#include <memory>
#include <vector>

#include "core/annotations.h"
#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"

namespace helix {
namespace scheduler {

/** How TopologyManager re-solves after a liveness or capacity event. */
enum class ResolveMode
{
    /** Rebuild the masked placement graph and cold-solve (default). */
    Cold,
    /** Keep one persistent flow network and warm-start repair. */
    Repair,
};

/**
 * Tracks node liveness and keeps a Topology solved on the surviving
 * subgraph of a placement. The cluster, profiler, and placement are
 * held by reference and must outlive the manager.
 *
 * Coordinator-confined: re-solves mutate the published Topology the
 * schedulers route by, so every member runs in the simulator's
 * coordinator phase or a serial barrier step, never on a node-lane
 * shard worker (HELIX_COORDINATOR_ONLY, checked by helix-analyze).
 */
class TopologyManager
{
  public:
    TopologyManager(const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler,
                    const placement::ModelPlacement &placement,
                    placement::GraphBuildOptions options = {},
                    ResolveMode mode = ResolveMode::Cold);

    /** The topology solved for the current liveness set. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] const Topology &current() const { return *topo; }

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] bool nodeAlive(int node) const;

    /**
     * Mark @p node dead or alive and re-solve max-flow on the
     * surviving subgraph. Recovery also restores the node's profiled
     * compute capacity, clearing any drift shrink. No-op (returning
     * the current flow) when the liveness bit is unchanged.
     * @return the max-flow value of the new topology (tokens/s).
     */
    HELIX_COORDINATOR_ONLY
    double setNodeAlive(int node, bool alive);

    /**
     * Override @p node's compute capacity to @p tokens_per_s (e.g.
     * the observed EWMA throughput of a drifting straggler) and
     * re-solve so routing weight shifts away from it. A negative
     * value restores the profiled capacity. No-op on dead nodes and
     * on unchanged values.
     * @return the max-flow value of the new topology (tokens/s).
     */
    HELIX_COORDINATOR_ONLY
    double setNodeCapacity(int node, double tokens_per_s);

    /** Current compute capacity of @p node (tokens/s): the override
     *  when set, otherwise the profiled decode throughput; 0 for
     *  nodes holding no layers. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double nodeCapacity(int node) const;

    /** Flow planned through @p node's compute edge by the current
     *  topology (tokens/s) — the reference the drift trigger compares
     *  observed EWMA throughput against. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double plannedNodeFlow(int node) const;

    /** Max-flow value of the current topology (tokens/s). */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double currentFlow() const { return topo->maxFlow(); }

    /** Number of cold max-flow solves performed (initial build + one
     *  per effective event in Cold mode). */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] int numSolves() const { return solves; }

    /** Number of warm-start incremental repairs performed (Repair
     *  mode only; the initial build is always a cold solve). */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] int numRepairs() const { return repairs; }

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] ResolveMode resolveMode() const { return mode; }

  private:
    /** Rebuild the masked placement graph and re-solve (Cold), or
     *  update the persistent graph's capacities and repair (Repair),
     *  then refresh the published Topology. */
    void resolve();

    /** Compute capacity currently in force for @p node. */
    double effectiveCapacity(int node) const;

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profilerRef;
    const placement::ModelPlacement &placementRef;
    placement::GraphBuildOptions opts;
    ResolveMode mode;
    std::vector<bool> alive;
    /** Per-node compute-capacity override (tokens/s); < 0 = profiled. */
    std::vector<double> capOverride;
    /** Persistent flow network (Repair mode only). */
    std::unique_ptr<placement::PlacementGraph> liveGraph;
    std::unique_ptr<Topology> topo;
    /** Planned per-node compute-edge flow of the current topology. */
    std::vector<double> planned;
    int solves = 0;
    int repairs = 0;
};

} // namespace scheduler
} // namespace helix

#endif // HELIX_SCHEDULER_TOPOLOGY_MANAGER_H
