#include "scheduler/fair_share.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace helix {
namespace scheduler {

FairShareController::FairShareController(Config config)
    : tolerance(config.starvationTolerance),
      preemptTimeoutS(config.preemptionTimeoutS),
      tauS(config.usageTauS)
{
    classes.reserve(config.tenants.size());
    for (Tenant &tenant : config.tenants) {
        HELIX_ASSERT(tenant.weight > 0.0);
        ClassState cls;
        cls.spec = std::move(tenant);
        classes.push_back(std::move(cls));
    }
}

void
FairShareController::enqueue(int t, int request_index)
{
    classes[static_cast<size_t>(t)].queue.push_back(request_index);
}

void
FairShareController::requeueFront(int t, int request_index)
{
    classes[static_cast<size_t>(t)].queue.push_front(request_index);
}

bool
FairShareController::queuesEmpty() const
{
    for (const ClassState &cls : classes) {
        if (!cls.queue.empty())
            return false;
    }
    return true;
}

size_t
FairShareController::queuedCount() const
{
    size_t count = 0;
    for (const ClassState &cls : classes)
        count += cls.queue.size();
    return count;
}

void
FairShareController::onAdmitted(int t)
{
    ++classes[static_cast<size_t>(t)].inFlight;
}

void
FairShareController::onFinished(int t)
{
    ClassState &cls = classes[static_cast<size_t>(t)];
    HELIX_ASSERT(cls.inFlight > 0);
    --cls.inFlight;
}

void
FairShareController::onPreempted(int t)
{
    onFinished(t);
}

void
FairShareController::noteDecodeToken(int t, double now)
{
    ClassState &cls = classes[static_cast<size_t>(t)];
    double dt = now - cls.decayedAt;
    if (dt > 0.0 && tauS > 0.0)
        cls.decayed *= std::exp(-dt / tauS);
    if (dt > 0.0)
        cls.decayedAt = now;
    cls.decayed += 1.0;
}

double
FairShareController::usageRate(int t, double now) const
{
    const ClassState &cls = classes[static_cast<size_t>(t)];
    if (tauS <= 0.0)
        return 0.0;
    double mass = cls.decayed;
    double dt = now - cls.decayedAt;
    if (dt > 0.0)
        mass *= std::exp(-dt / tauS);
    return mass / tauS;
}

double
FairShareController::demandingWeight() const
{
    double demanding_sum = 0.0;
    double total = 0.0;
    for (const ClassState &cls : classes) {
        total += cls.spec.weight;
        if (demanding(cls))
            demanding_sum += cls.spec.weight;
    }
    return demanding_sum > 0.0 ? demanding_sum : total;
}

double
FairShareController::fairShare(int t) const
{
    double weight_sum = demandingWeight();
    if (weight_sum <= 0.0 || capacity <= 0.0)
        return 0.0;
    return classes[static_cast<size_t>(t)].spec.weight / weight_sum *
           capacity;
}

double
FairShareController::normalizedUsage(int t, double now) const
{
    double usage = usageRate(t, now);
    double share = fairShare(t);
    if (share > 0.0)
        return usage / share;
    return usage > 0.0 ? std::numeric_limits<double>::infinity()
                       : 0.0;
}

int
FairShareController::popNext(double now)
{
    // Does anyone sit below fair share? Only then are over-share
    // tenants held back; with every demanding tenant at or above
    // share there is no one to protect, so work-conservation wins.
    bool someone_below = false;
    for (size_t t = 0; t < classes.size(); ++t) {
        if (demanding(classes[t]) &&
            normalizedUsage(static_cast<int>(t), now) < 1.0) {
            someone_below = true;
            break;
        }
    }
    int best = -1;
    double best_usage = 0.0;
    for (size_t t = 0; t < classes.size(); ++t) {
        if (classes[t].queue.empty())
            continue;
        double normalized = normalizedUsage(static_cast<int>(t), now);
        if (someone_below && normalized > 1.0 + tolerance)
            continue; // held: over share while someone is starved
        if (best < 0 || normalized < best_usage) {
            best = static_cast<int>(t);
            best_usage = normalized;
        }
    }
    if (best < 0)
        return -1;
    ClassState &cls = classes[static_cast<size_t>(best)];
    int request_index = cls.queue.front();
    cls.queue.pop_front();
    return request_index;
}

int
FairShareController::checkPreemption(double now)
{
    if (preemptTimeoutS < 0.0)
        return -1;
    // Sweep the continuous-starvation clocks.
    int starving = -1;
    for (size_t t = 0; t < classes.size(); ++t) {
        ClassState &cls = classes[t];
        bool starved =
            demanding(cls) &&
            normalizedUsage(static_cast<int>(t), now) < tolerance;
        if (!starved) {
            cls.starvingSince = -1.0;
            continue;
        }
        if (cls.starvingSince < 0.0)
            cls.starvingSince = now;
        if (now - cls.starvingSince >= preemptTimeoutS &&
            starving < 0) {
            starving = static_cast<int>(t);
        }
    }
    if (starving < 0)
        return -1;
    // Victim class: the most over-share tenant with in-flight work.
    int victim = -1;
    double victim_usage = 0.0;
    for (size_t t = 0; t < classes.size(); ++t) {
        if (static_cast<int>(t) == starving ||
            classes[t].inFlight <= 0)
            continue;
        double normalized = normalizedUsage(static_cast<int>(t), now);
        if (normalized <= 1.0 + tolerance)
            continue;
        if (victim < 0 || normalized > victim_usage) {
            victim = static_cast<int>(t);
            victim_usage = normalized;
        }
    }
    if (victim < 0)
        return -1;
    // Re-arm: one preemption per starvation interval.
    classes[static_cast<size_t>(starving)].starvingSince = -1.0;
    return victim;
}

} // namespace scheduler
} // namespace helix
