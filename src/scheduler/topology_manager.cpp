#include "scheduler/topology_manager.h"

#include "util/logging.h"

namespace helix {
namespace scheduler {

TopologyManager::TopologyManager(
    const cluster::ClusterSpec &cluster,
    const cluster::Profiler &profiler,
    const placement::ModelPlacement &placement,
    placement::GraphBuildOptions options, ResolveMode resolve_mode)
    : clusterRef(cluster), profilerRef(profiler),
      placementRef(placement), opts(options), mode(resolve_mode),
      alive(placement.size(), true),
      capOverride(placement.size(), -1.0),
      planned(placement.size(), 0.0)
{
    if (mode == ResolveMode::Repair) {
        // One persistent flow network over the full placement; every
        // later event is a compute-edge capacity update on it. The
        // initial build is a cold solve.
        liveGraph = std::make_unique<placement::PlacementGraph>(
            clusterRef, profilerRef, placementRef, opts);
        (void)liveGraph->maxThroughput(); // prime the cached solve
        ++solves;
        placement::ModelPlacement masked = placementRef;
        topo = std::make_unique<Topology>(clusterRef, profilerRef,
                                          masked, *liveGraph);
        for (size_t i = 0; i < planned.size(); ++i)
            planned[i] = liveGraph->nodeFlow(static_cast<int>(i));
    } else {
        resolve();
    }
}

bool
TopologyManager::nodeAlive(int node) const
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    return alive[node];
}

double
TopologyManager::effectiveCapacity(int node) const
{
    if (!alive[node] || placementRef[node].count == 0)
        return 0.0;
    if (capOverride[node] >= 0.0)
        return capOverride[node];
    return profilerRef.decodeThroughput(clusterRef.node(node),
                                        placementRef[node].count);
}

double
TopologyManager::nodeCapacity(int node) const
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    return effectiveCapacity(node);
}

double
TopologyManager::plannedNodeFlow(int node) const
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(planned.size()));
    return planned[node];
}

double
TopologyManager::setNodeAlive(int node, bool is_alive)
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    if (alive[node] == is_alive)
        return currentFlow();
    alive[node] = is_alive;
    // A recovered node serves at its profiled speed again; drift will
    // re-shrink it if its observed throughput still lags.
    if (is_alive)
        capOverride[node] = -1.0;
    resolve();
    return currentFlow();
}

double
TopologyManager::setNodeCapacity(int node, double tokens_per_s)
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    if (!alive[node] || placementRef[node].count == 0)
        return currentFlow();
    double next = tokens_per_s < 0.0 ? -1.0 : tokens_per_s;
    // helix-lint: allow(float-eq) idempotence short-circuit: only a bit-identical override skips the re-solve
    if (capOverride[node] == next)
        return currentFlow();
    capOverride[node] = next;
    resolve();
    return currentFlow();
}

void
TopologyManager::resolve()
{
    // Restrict the placement to live nodes: a dead node's interval is
    // zeroed, which removes its vertices and every incident edge from
    // a cold-built placement graph (PlacementGraph skips count == 0
    // nodes). The published Topology carries the masked placement in
    // both modes so schedulers see dead nodes as layer-less.
    placement::ModelPlacement masked = placementRef;
    for (size_t i = 0; i < masked.size(); ++i) {
        if (!alive[i])
            masked[i] = placement::NodePlacement{0, 0};
    }
    if (mode == ResolveMode::Repair) {
        // The persistent graph keeps every node; liveness and drift
        // are capacity updates on the node's compute edge (zero
        // capacity severs exactly the flow through the node), then a
        // warm-start repair restores a maximum flow.
        for (size_t i = 0; i < alive.size(); ++i) {
            int node = static_cast<int>(i);
            if (liveGraph->computeEdge(node) == flow::kInvalidEdge)
                continue;
            double want = effectiveCapacity(node);
            flow::EdgeId e = liveGraph->computeEdge(node);
            // helix-lint: allow(float-eq) exact no-op filter: capacities are copied values, never computed, so equal means unchanged
            if (liveGraph->graph().edge(e).originalCapacity != want)
                liveGraph->setComputeCapacity(node, want);
        }
        (void)liveGraph->repairFlow(); // value read via nodeFlow below
        ++repairs;
        topo = std::make_unique<Topology>(clusterRef, profilerRef,
                                          masked, *liveGraph);
        for (size_t i = 0; i < planned.size(); ++i)
            planned[i] = liveGraph->nodeFlow(static_cast<int>(i));
        return;
    }
    placement::GraphBuildOptions local = opts;
    local.computeCapOverride = &capOverride;
    placement::PlacementGraph graph(clusterRef, profilerRef, masked,
                                    local);
    (void)graph.maxThroughput(); // prime flows before Topology copies
    // Topology copies the placements and edge flows it needs, so the
    // local graph and masked placement may go out of scope. Consumers
    // of current() copy in turn (RequestScheduler::onTopologyChange),
    // so the replaced topology can be released immediately.
    topo = std::make_unique<Topology>(clusterRef, profilerRef, masked,
                                      graph);
    for (size_t i = 0; i < planned.size(); ++i)
        planned[i] = graph.nodeFlow(static_cast<int>(i));
    ++solves;
}

} // namespace scheduler
} // namespace helix
