#include "scheduler/topology_manager.h"

#include "util/logging.h"

namespace helix {
namespace scheduler {

TopologyManager::TopologyManager(
    const cluster::ClusterSpec &cluster,
    const cluster::Profiler &profiler,
    const placement::ModelPlacement &placement,
    placement::GraphBuildOptions options)
    : clusterRef(cluster), profilerRef(profiler),
      placementRef(placement), opts(options),
      alive(placement.size(), true)
{
    rebuild();
}

bool
TopologyManager::nodeAlive(int node) const
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    return alive[node];
}

double
TopologyManager::setNodeAlive(int node, bool is_alive)
{
    HELIX_ASSERT(node >= 0 &&
                 node < static_cast<int>(alive.size()));
    if (alive[node] == is_alive)
        return currentFlow();
    alive[node] = is_alive;
    rebuild();
    return currentFlow();
}

void
TopologyManager::rebuild()
{
    // Restrict the placement to live nodes: a dead node's interval is
    // zeroed, which removes its vertices and every incident edge from
    // the placement graph (PlacementGraph skips count == 0 nodes), so
    // the max flow is solved on exactly the surviving subgraph.
    placement::ModelPlacement masked = placementRef;
    for (size_t i = 0; i < masked.size(); ++i) {
        if (!alive[i])
            masked[i] = placement::NodePlacement{0, 0};
    }
    placement::PlacementGraph graph(clusterRef, profilerRef, masked,
                                    opts);
    graph.maxThroughput();
    // Topology copies the placements and edge flows it needs, so the
    // local graph and masked placement may go out of scope. Consumers
    // of current() copy in turn (RequestScheduler::onTopologyChange),
    // so the replaced topology can be released immediately.
    topo = std::make_unique<Topology>(clusterRef, profilerRef, masked,
                                      graph);
    ++solves;
}

} // namespace scheduler
} // namespace helix
