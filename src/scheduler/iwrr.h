/**
 * @file
 * Interleaved weighted round-robin (IWRR) selection.
 *
 * Helix binds one IWRR scheduler to every vertex of the topology graph
 * (Sec. 5.1); candidate weights are the max-flow edge flows, so the
 * long-run selection frequency of each candidate is proportional to
 * the flow routed over its connection, without creating bursts.
 *
 * The implementation uses the smooth weighted round-robin credit
 * scheme: each pick adds every candidate's weight to its credit,
 * selects the candidate with the largest credit, and charges the
 * winner the total weight. This yields the interleaving property of
 * IWRR (consecutive picks of the same candidate are spread maximally)
 * with O(n) per pick and exact proportional share.
 */

#ifndef HELIX_SCHEDULER_IWRR_H
#define HELIX_SCHEDULER_IWRR_H

#include <cstddef>
#include <vector>

namespace helix {
namespace scheduler {

/** IWRR selector over a fixed candidate set with positive weights. */
class IwrrScheduler
{
  public:
    IwrrScheduler() = default;

    /**
     * @param candidate_ids opaque ids returned by pick()
     * @param weights positive selection weights (same length)
     */
    IwrrScheduler(std::vector<int> candidate_ids,
                  std::vector<double> weights);

    /** Number of candidates. */
    size_t size() const { return ids.size(); }

    const std::vector<int> &candidates() const { return ids; }
    const std::vector<double> &weights() const { return weight; }

    /**
     * Pick the next candidate, skipping masked entries.
     * @param masked optional per-candidate mask (true = ineligible);
     *               pass nullptr to consider all candidates
     * @return the chosen candidate id, or -1 if every candidate is
     *         masked (or the set is empty)
     */
    int pick(const std::vector<bool> *masked = nullptr);

  private:
    std::vector<int> ids;
    std::vector<double> weight;
    std::vector<double> credit;
};

} // namespace scheduler
} // namespace helix

#endif // HELIX_SCHEDULER_IWRR_H
