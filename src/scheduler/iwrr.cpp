#include "scheduler/iwrr.h"

#include "util/logging.h"

namespace helix {
namespace scheduler {

IwrrScheduler::IwrrScheduler(std::vector<int> candidate_ids,
                             std::vector<double> weights)
    : ids(std::move(candidate_ids)), weight(std::move(weights)),
      credit(ids.size(), 0.0)
{
    HELIX_ASSERT(ids.size() == weight.size());
    for (double w : weight)
        HELIX_ASSERT(w > 0.0);
}

int
IwrrScheduler::pick(const std::vector<bool> *masked)
{
    if (ids.empty())
        return -1;
    HELIX_ASSERT(!masked || masked->size() == ids.size());
    double eligible_total = 0.0;
    int best = -1;
    for (size_t i = 0; i < ids.size(); ++i) {
        if (masked && (*masked)[i])
            continue;
        credit[i] += weight[i];
        eligible_total += weight[i];
        if (best < 0 || credit[i] > credit[best])
            best = static_cast<int>(i);
    }
    if (best < 0)
        return -1;
    credit[best] -= eligible_total;
    return ids[best];
}

} // namespace scheduler
} // namespace helix
