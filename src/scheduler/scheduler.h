/**
 * @file
 * Request scheduling (Sec. 5): per-request pipelines over the cluster
 * topology graph.
 *
 * The Helix scheduler walks the topology graph from the coordinator,
 * using one IWRR selector per vertex whose weights are the max-flow
 * edge flows, and masks nodes whose estimated KV-cache usage exceeds
 * the high-water mark (Sec. 5.2). Baseline schedulers (Swarm-style
 * throughput-proportional, random, shortest-queue-first, fixed
 * pipelines) share the same topology and interface.
 */

#ifndef HELIX_SCHEDULER_SCHEDULER_H
#define HELIX_SCHEDULER_SCHEDULER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/profiler.h"
#include "core/annotations.h"
#include "placement/placement_graph.h"
#include "scheduler/iwrr.h"
#include "trace/trace.h"
#include "util/random.h"

namespace helix {
namespace scheduler {

/** One stage of a request's pipeline: which node runs which layers. */
struct PipelineStage
{
    int node = 0;
    int startLayer = 0;
    int endLayer = 0;

    [[nodiscard]] int numLayers() const { return endLayer - startLayer; }
};

/** A complete per-request pipeline covering layers [0, L). */
using Pipeline = std::vector<PipelineStage>;

/** Check a pipeline covers every layer exactly once and in order. */
[[nodiscard]] bool pipelineValid(const Pipeline &pipeline, int num_layers);

/**
 * Runtime feedback the simulator exposes to schedulers (queue depths,
 * recent throughput, actual KV occupancy). Coordinator-phase views:
 * the parallel executor materializes them from its node-state mirror,
 * so they may only be read where the mirror is valid — the serial
 * coordinator phase and barrier steps (HELIX_COORDINATOR_ONLY).
 */
class SchedulerContext
{
  public:
    virtual ~SchedulerContext() = default;

    /** Requests queued + running at @p node. */
    HELIX_COORDINATOR_ONLY
    virtual int queueLength(int node) const = 0;

    /** Recent tokens/s processed by @p node (EWMA). */
    HELIX_COORDINATOR_ONLY
    virtual double recentThroughput(int node) const = 0;

    /** Actual KV-cache bytes in use at @p node. */
    HELIX_COORDINATOR_ONLY
    virtual double kvUsedBytes(int node) const = 0;

    /**
     * Whether @p node is alive. The simulator's churn scenario marks
     * failed nodes dead; schedulers must not route through them.
     */
    HELIX_COORDINATOR_ONLY
    virtual bool
    nodeAlive(int node) const
    {
        (void)node;
        return true;
    }
};

/**
 * Topology shared by the graph-walking schedulers: the valid
 * connections of a placement with their max-flow values, plus the
 * per-node KV figures needed for admission control.
 */
class Topology
{
  public:
    /**
     * Build from a solved placement graph.
     * @param graph placement graph; maxThroughput() is invoked here
     *              if not already computed
     */
    Topology(const cluster::ClusterSpec &cluster,
             const cluster::Profiler &profiler,
             const placement::ModelPlacement &placement,
             placement::PlacementGraph &graph);

    struct OutEdge
    {
        int to = 0; // node index or kSink
        double flow = 0.0;
        double capacity = 0.0;
    };

    static constexpr int kSink = -2;

    /** Outgoing valid connections of a vertex (kCoordinator or node). */
    [[nodiscard]] const std::vector<OutEdge> &outEdges(int vertex) const;

    /** Layer interval held by @p node. */
    [[nodiscard]] const placement::NodePlacement &nodePlacement(int node) const;

    /** KV capacity of @p node under its placement. */
    [[nodiscard]] double kvCapacityBytes(int node) const;

    /** KV bytes per (token, layer) of the served model. */
    [[nodiscard]] double kvBytesPerTokenPerLayer() const;

    [[nodiscard]] int numNodes() const
    {
        return static_cast<int>(placements.size());
    }
    [[nodiscard]] int numLayers() const { return layers; }

    /** Max-flow value of the underlying graph (tokens/s). */
    [[nodiscard]] double maxFlow() const { return flowValue; }

  private:
    std::vector<std::vector<OutEdge>> edges; // [node + 1]; 0 = coord
    std::vector<placement::NodePlacement> placements;
    std::vector<double> kvCapacity;
    double kvPerTokenLayer = 0.0;
    int layers = 0;
    double flowValue = 0.0;
};

/** Interface implemented by all request schedulers. */
class RequestScheduler
{
  public:
    virtual ~RequestScheduler() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /**
     * Assign @p request a pipeline.
     * @return the pipeline, or nullopt if no node can accept the
     *         request right now (the coordinator should retry after
     *         some requests finish).
     */
    HELIX_COORDINATOR_ONLY
    virtual std::optional<Pipeline> schedule(
        const trace::Request &request, const SchedulerContext &ctx) = 0;

    /** Notification that a scheduled request was admitted. */
    HELIX_COORDINATOR_ONLY
    virtual void
    onRequestAdmitted(const trace::Request &request,
                      const Pipeline &pipeline)
    {
        (void)request;
        (void)pipeline;
    }

    /** Notification that a request finished and released its KV. */
    HELIX_COORDINATOR_ONLY
    virtual void
    onRequestFinished(const trace::Request &request,
                      const Pipeline &pipeline)
    {
        (void)request;
        (void)pipeline;
    }

    /**
     * Notification that the live topology changed (a node failed or
     * rejoined and the flow was re-solved on the surviving subgraph;
     * see TopologyManager). Implementations must atomically rebind to
     * @p topology — the Helix scheduler rebuilds its IWRR selectors
     * from the new edge flows — so routing proportions always match
     * the live cluster. Implementations copy what they keep, so
     * @p topology only needs to live for the duration of the call.
     *
     * Threading: topology swaps are coordinator-confined. The
     * parallel simulation executor (sim/executor.h) only delivers
     * this callback from the round-driver thread — churn events run
     * inside a full serial barrier, and drift re-solves are deferred
     * from node shards to the serial coordinator phase — so
     * implementations need no internal locking; every scheduler call
     * (schedule, notifications, this swap) is serialized by the
     * executor's round structure.
     */
    HELIX_COORDINATOR_ONLY
    virtual void
    onTopologyChange(const Topology &topology)
    {
        (void)topology;
    }

  protected:
    /**
     * Copy @p topology into scheduler-owned storage and return the
     * copy, for onTopologyChange implementations: owning the
     * re-solved topology decouples the scheduler's lifetime from the
     * TopologyManager (typically simulator-owned) that produced it.
     * The copy is taken before the previously owned topology is
     * released, so @p topology may alias it (redundant swap).
     */
    const Topology &adoptTopology(const Topology &topology);

  private:
    std::unique_ptr<Topology> ownedTopo;
};

/** Shared admission bookkeeping: scheduler-side KV estimation.
 *  Scheduler-internal state, so coordinator-confined like its owner
 *  (every call site sits inside a RequestScheduler entry point). */
class KvEstimator
{
  public:
    KvEstimator(const Topology &topology, double avg_output_len,
                double high_water_mark);

    /** Estimated KV bytes @p request needs on @p stage's node. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double requestBytes(const trace::Request &request,
                                      const PipelineStage &stage) const;

    /** Whether @p node can accept @p request's stage load. */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] bool admits(int node, double bytes) const;

    /** Reserve estimated bytes for an admitted request. */
    HELIX_COORDINATOR_ONLY
    void reserve(int node, double bytes);

    /** Release estimated bytes when a request finishes. */
    HELIX_COORDINATOR_ONLY
    void release(int node, double bytes);

    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double estimatedUsage(int node) const
    {
        return usage[node];
    }

    /**
     * Rebind to a re-solved topology (same cluster, same node count).
     * Reserved usage survives: live requests keep their estimates.
     */
    HELIX_COORDINATOR_ONLY
    void rebind(const Topology &topology);

  private:
    const Topology *topo;
    double avgOutputLen;
    double highWaterMark;
    std::vector<double> usage;
};

/** Configuration shared by the graph-walking schedulers. */
struct SchedulerConfig
{
    /** Output-length estimate for KV admission (Sec. 5.2). */
    double avgOutputLen = 232.0;
    /** Fraction of KV capacity usable before a node is masked. */
    double kvHighWaterMark = 0.95;
    /** RNG seed (random / throughput-proportional baselines). */
    uint64_t seed = 0x5c4ed;
};

/**
 * Helix's per-request pipeline scheduler: IWRR walk weighted by
 * max-flow edge flows with KV high-water-mark masking.
 */
class HelixScheduler : public RequestScheduler
{
  public:
    explicit HelixScheduler(const Topology &topology,
                            SchedulerConfig config = {});

    std::string name() const override { return "helix"; }

    std::optional<Pipeline> schedule(const trace::Request &request,
                                     const SchedulerContext &ctx)
        override;

    void onRequestAdmitted(const trace::Request &request,
                           const Pipeline &pipeline) override;

    void onRequestFinished(const trace::Request &request,
                           const Pipeline &pipeline) override;

    /** Swap in a re-solved topology: rebuilds every IWRR selector
     *  from the new edge flows, preserving KV reservations. */
    void onTopologyChange(const Topology &topology) override;

    /** Topology currently driving the IWRR weights (for tests). */
    [[nodiscard]] const Topology &topology() const { return *topo; }

  private:
    /** One IWRR walk attempt; nullopt when it dead-ends. */
    std::optional<Pipeline> tryWalk(const trace::Request &request,
                                    const SchedulerContext &ctx);

    /** Rebuild the per-vertex IWRR selectors from topo's flows. */
    void rebuildSelectors();

    const Topology *topo;
    SchedulerConfig cfg;
    KvEstimator kv;
    std::vector<IwrrScheduler> iwrr; // [vertex + 1]; 0 = coordinator
};

/** How the baseline graph-walkers choose the next hop. */
enum class WalkPolicy
{
    /** Probability proportional to recent throughput (Swarm). */
    ThroughputProportional,
    /** Uniformly random candidate. */
    Random,
    /** Candidate with the shortest queue. */
    ShortestQueue,
};

/**
 * Baseline schedulers that walk the same topology but pick next hops
 * with simple local policies and no KV admission control.
 */
class WalkScheduler : public RequestScheduler
{
  public:
    WalkScheduler(const Topology &topology, WalkPolicy policy,
                  SchedulerConfig config = {});

    std::string name() const override;

    std::optional<Pipeline> schedule(const trace::Request &request,
                                     const SchedulerContext &ctx)
        override;

    /** Rebind to a re-solved topology (edges of dead nodes vanish;
     *  a recovered node's edges come back). */
    void onTopologyChange(const Topology &topology) override;

  private:
    const Topology *topo;
    WalkPolicy policy;
    SchedulerConfig cfg;
    Rng rng;
};

/**
 * Fixed-pipeline round-robin (the separate-pipelines baseline):
 * disjoint pipelines derived from the placement, requests assigned
 * round-robin with KV admission per pipeline.
 */
class FixedPipelineScheduler : public RequestScheduler
{
  public:
    FixedPipelineScheduler(const Topology &topology,
                           std::vector<Pipeline> pipelines,
                           SchedulerConfig config = {});

    std::string name() const override { return "fixed-rr"; }

    std::optional<Pipeline> schedule(const trace::Request &request,
                                     const SchedulerContext &ctx)
        override;

    void onRequestAdmitted(const trace::Request &request,
                           const Pipeline &pipeline) override;

    void onRequestFinished(const trace::Request &request,
                           const Pipeline &pipeline) override;

    /** Rebind KV capacities to a re-solved topology (a dead node's
     *  capacity drops to zero, masking pipelines through it). */
    void onTopologyChange(const Topology &topology) override;

    [[nodiscard]] size_t numPipelines() const { return fixed.size(); }

  private:
    const Topology *topo;
    std::vector<Pipeline> fixed;
    SchedulerConfig cfg;
    KvEstimator kv;
    size_t nextIndex = 0;
};

/**
 * Derive disjoint full-coverage pipelines from a placement by chaining
 * nodes whose intervals tile [0, L) (used with the SP planner).
 */
[[nodiscard]] std::vector<Pipeline> derivePipelines(
    const placement::ModelPlacement &placement, int num_layers);

} // namespace scheduler
} // namespace helix

#endif // HELIX_SCHEDULER_SCHEDULER_H
