#include "scheduler/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace helix {
namespace scheduler {

const Topology &
RequestScheduler::adoptTopology(const Topology &topology)
{
    // Construct the copy before assigning: the unique_ptr assignment
    // releases the old owned topology only after the new one exists,
    // so an aliasing @p topology is copied safely.
    ownedTopo = std::make_unique<Topology>(topology);
    return *ownedTopo;
}

bool
pipelineValid(const Pipeline &pipeline, int num_layers)
{
    if (pipeline.empty())
        return false;
    int at = 0;
    for (const PipelineStage &stage : pipeline) {
        if (stage.startLayer != at || stage.numLayers() <= 0)
            return false;
        at = stage.endLayer;
    }
    return at == num_layers;
}

Topology::Topology(const cluster::ClusterSpec &cluster,
                   const cluster::Profiler &profiler,
                   const placement::ModelPlacement &placement,
                   placement::PlacementGraph &graph)
{
    const int n = cluster.numNodes();
    layers = profiler.modelSpec().numLayers;
    kvPerTokenLayer = static_cast<double>(
        profiler.modelSpec().kvBytesPerTokenPerLayer());
    flowValue = graph.maxThroughput();

    placements.resize(n);
    kvCapacity.resize(n);
    for (int i = 0; i < n; ++i) {
        placements[i] = placement[i];
        kvCapacity[i] = placement[i].count > 0
                            ? static_cast<double>(profiler.kvCapacityBytes(
                                  cluster.node(i), placement[i].count))
                            : 0.0;
    }

    edges.assign(n + 1, {});
    for (const auto &conn : graph.connections()) {
        int from_vertex = conn.from + 1; // kCoordinator (-1) -> 0
        int to = (conn.to == cluster::kCoordinator) ? kSink : conn.to;
        edges[from_vertex].push_back({to, conn.flow, conn.capacity});
    }
}

const std::vector<Topology::OutEdge> &
Topology::outEdges(int vertex) const
{
    HELIX_ASSERT(vertex >= cluster::kCoordinator &&
                 vertex < numNodes());
    return edges[vertex + 1];
}

const placement::NodePlacement &
Topology::nodePlacement(int node) const
{
    HELIX_ASSERT(node >= 0 && node < numNodes());
    return placements[node];
}

double
Topology::kvCapacityBytes(int node) const
{
    HELIX_ASSERT(node >= 0 && node < numNodes());
    return kvCapacity[node];
}

double
Topology::kvBytesPerTokenPerLayer() const
{
    return kvPerTokenLayer;
}

KvEstimator::KvEstimator(const Topology &topology, double avg_output_len,
                         double high_water_mark)
    : topo(&topology), avgOutputLen(avg_output_len),
      highWaterMark(high_water_mark), usage(topology.numNodes(), 0.0)
{
}

void
KvEstimator::rebind(const Topology &topology)
{
    HELIX_ASSERT(topology.numNodes() ==
                 static_cast<int>(usage.size()));
    topo = &topology;
}

double
KvEstimator::requestBytes(const trace::Request &request,
                          const PipelineStage &stage) const
{
    // The output length is unknown before the request finishes; the
    // scheduler estimates with the average output length (Sec. 5.2).
    // Active requests sit at uniformly distributed points of their
    // decode phase, so the expected current KV footprint is the
    // prompt plus half the average output.
    double tokens = static_cast<double>(request.promptLen) +
                    0.5 * avgOutputLen;
    return tokens * topo->kvBytesPerTokenPerLayer() *
           stage.numLayers();
}

bool
KvEstimator::admits(int node, double bytes) const
{
    return usage[node] + bytes <=
           highWaterMark * topo->kvCapacityBytes(node);
}

void
KvEstimator::reserve(int node, double bytes)
{
    usage[node] += bytes;
}

void
KvEstimator::release(int node, double bytes)
{
    usage[node] -= bytes;
    if (usage[node] < 0.0)
        usage[node] = 0.0;
}

HelixScheduler::HelixScheduler(const Topology &topology,
                               SchedulerConfig config)
    : topo(&topology), cfg(config),
      kv(topology, config.avgOutputLen, config.kvHighWaterMark)
{
    rebuildSelectors();
}

void
HelixScheduler::rebuildSelectors()
{
    // One IWRR selector per vertex; candidates are the outgoing valid
    // connections carrying positive flow, weighted by that flow.
    iwrr.assign(topo->numNodes() + 1, IwrrScheduler());
    for (int vertex = cluster::kCoordinator; vertex < topo->numNodes();
         ++vertex) {
        const auto &out = topo->outEdges(vertex);
        std::vector<int> ids;
        std::vector<double> weights;
        for (size_t e = 0; e < out.size(); ++e) {
            if (out[e].flow > flow::kFlowEps) {
                ids.push_back(static_cast<int>(e));
                weights.push_back(out[e].flow);
            }
        }
        iwrr[vertex + 1] = IwrrScheduler(std::move(ids),
                                         std::move(weights));
    }
}

void
HelixScheduler::onTopologyChange(const Topology &topology)
{
    HELIX_ASSERT(topology.numNodes() == topo->numNodes());
    topo = &adoptTopology(topology);
    kv.rebind(*topo);
    rebuildSelectors();
}

std::optional<Pipeline>
HelixScheduler::schedule(const trace::Request &request,
                         const SchedulerContext &ctx)
{
    // A single walk can dead-end mid-path while another first hop
    // would succeed; retry a few times before reporting congestion.
    for (int attempt = 0; attempt < 4; ++attempt) {
        auto pipeline = tryWalk(request, ctx);
        if (pipeline)
            return pipeline;
    }
    return std::nullopt;
}

std::optional<Pipeline>
HelixScheduler::tryWalk(const trace::Request &request,
                        const SchedulerContext &ctx)
{
    Pipeline pipeline;
    int vertex = cluster::kCoordinator;
    int at = 0;
    while (at < topo->numLayers()) {
        const auto &out = topo->outEdges(vertex);
        IwrrScheduler &selector = iwrr[vertex + 1];
        // Mask candidates that are the sink or whose KV admission
        // fails for this request's stage there.
        std::vector<bool> masked(selector.size(), false);
        bool any = false;
        for (size_t c = 0; c < selector.size(); ++c) {
            const auto &edge = out[selector.candidates()[c]];
            if (edge.to == Topology::kSink ||
                !ctx.nodeAlive(edge.to)) {
                masked[c] = true;
                continue;
            }
            PipelineStage stage{edge.to, at,
                                topo->nodePlacement(edge.to).end()};
            if (!kv.admits(edge.to, kv.requestBytes(request, stage))) {
                masked[c] = true;
                continue;
            }
            any = true;
        }
        if (!any)
            return std::nullopt;
        int picked = selector.pick(&masked);
        if (picked < 0)
            return std::nullopt;
        const auto &edge = out[picked];
        PipelineStage stage{edge.to, at,
                            topo->nodePlacement(edge.to).end()};
        pipeline.push_back(stage);
        at = stage.endLayer;
        vertex = edge.to;
    }
    return pipeline;
}

void
HelixScheduler::onRequestAdmitted(const trace::Request &request,
                                  const Pipeline &pipeline)
{
    for (const PipelineStage &stage : pipeline)
        kv.reserve(stage.node, kv.requestBytes(request, stage));
}

void
HelixScheduler::onRequestFinished(const trace::Request &request,
                                  const Pipeline &pipeline)
{
    for (const PipelineStage &stage : pipeline)
        kv.release(stage.node, kv.requestBytes(request, stage));
}

WalkScheduler::WalkScheduler(const Topology &topology, WalkPolicy pol,
                             SchedulerConfig config)
    : topo(&topology), policy(pol), cfg(config), rng(config.seed)
{
}

void
WalkScheduler::onTopologyChange(const Topology &topology)
{
    HELIX_ASSERT(topology.numNodes() == topo->numNodes());
    topo = &adoptTopology(topology);
}

std::string
WalkScheduler::name() const
{
    switch (policy) {
      case WalkPolicy::ThroughputProportional: return "swarm";
      case WalkPolicy::Random:                 return "random";
      case WalkPolicy::ShortestQueue:          return "shortest-queue";
    }
    return "?";
}

std::optional<Pipeline>
WalkScheduler::schedule(const trace::Request &request,
                        const SchedulerContext &ctx)
{
    (void)request;
    Pipeline pipeline;
    int vertex = cluster::kCoordinator;
    int at = 0;
    while (at < topo->numLayers()) {
        const auto &out = topo->outEdges(vertex);
        // Collect live compute-node candidates (skip the sink edge).
        std::vector<int> candidates;
        for (size_t e = 0; e < out.size(); ++e) {
            if (out[e].to != Topology::kSink &&
                ctx.nodeAlive(out[e].to))
                candidates.push_back(static_cast<int>(e));
        }
        if (candidates.empty())
            return std::nullopt;
        int chosen = -1;
        switch (policy) {
          case WalkPolicy::ThroughputProportional: {
            // Swarm routes to replicas proportionally to their
            // recently observed throughput.
            std::vector<double> weights;
            weights.reserve(candidates.size());
            for (int e : candidates) {
                weights.push_back(
                    ctx.recentThroughput(out[e].to) + 1.0);
            }
            size_t index = rng.nextWeighted(weights);
            chosen = candidates[index];
            break;
          }
          case WalkPolicy::Random: {
            chosen = candidates[rng.nextBounded(candidates.size())];
            break;
          }
          case WalkPolicy::ShortestQueue: {
            int best_len = std::numeric_limits<int>::max();
            for (int e : candidates) {
                int len = ctx.queueLength(out[e].to);
                if (len < best_len) {
                    best_len = len;
                    chosen = e;
                }
            }
            break;
          }
        }
        HELIX_ASSERT(chosen >= 0);
        const auto &edge = out[chosen];
        PipelineStage stage{edge.to, at,
                            topo->nodePlacement(edge.to).end()};
        pipeline.push_back(stage);
        at = stage.endLayer;
        vertex = edge.to;
    }
    return pipeline;
}

FixedPipelineScheduler::FixedPipelineScheduler(
    const Topology &topology, std::vector<Pipeline> pipelines,
    SchedulerConfig config)
    : topo(&topology), fixed(std::move(pipelines)), cfg(config),
      kv(topology, config.avgOutputLen, config.kvHighWaterMark)
{
}

void
FixedPipelineScheduler::onTopologyChange(const Topology &topology)
{
    HELIX_ASSERT(topology.numNodes() == topo->numNodes());
    topo = &adoptTopology(topology);
    kv.rebind(*topo);
}

std::optional<Pipeline>
FixedPipelineScheduler::schedule(const trace::Request &request,
                                 const SchedulerContext &ctx)
{
    if (fixed.empty())
        return std::nullopt;
    // Round-robin, skipping pipelines that fail KV admission or that
    // route through a dead node.
    for (size_t attempt = 0; attempt < fixed.size(); ++attempt) {
        const Pipeline &candidate =
            fixed[(nextIndex + attempt) % fixed.size()];
        bool ok = true;
        for (const PipelineStage &stage : candidate) {
            if (!ctx.nodeAlive(stage.node) ||
                !kv.admits(stage.node,
                           kv.requestBytes(request, stage))) {
                ok = false;
                break;
            }
        }
        if (ok) {
            nextIndex = (nextIndex + attempt + 1) % fixed.size();
            return candidate;
        }
    }
    return std::nullopt;
}

void
FixedPipelineScheduler::onRequestAdmitted(const trace::Request &request,
                                          const Pipeline &pipeline)
{
    for (const PipelineStage &stage : pipeline)
        kv.reserve(stage.node, kv.requestBytes(request, stage));
}

void
FixedPipelineScheduler::onRequestFinished(const trace::Request &request,
                                          const Pipeline &pipeline)
{
    for (const PipelineStage &stage : pipeline)
        kv.release(stage.node, kv.requestBytes(request, stage));
}

std::vector<Pipeline>
derivePipelines(const placement::ModelPlacement &placement,
                int num_layers)
{
    const int n = static_cast<int>(placement.size());
    std::vector<bool> used(n, false);
    std::vector<Pipeline> pipelines;
    for (;;) {
        Pipeline chain;
        std::vector<int> taken;
        int at = 0;
        while (at < num_layers) {
            int next = -1;
            for (int i = 0; i < n; ++i) {
                if (!used[i] && placement[i].count > 0 &&
                    placement[i].start == at) {
                    next = i;
                    break;
                }
            }
            if (next < 0)
                break;
            chain.push_back({next, at, placement[next].end()});
            used[next] = true;
            taken.push_back(next);
            at = placement[next].end();
        }
        if (at == num_layers && !chain.empty()) {
            pipelines.push_back(std::move(chain));
        } else {
            // Incomplete chain: release the nodes and stop searching.
            for (int i : taken)
                used[i] = false;
            break;
        }
    }
    return pipelines;
}

} // namespace scheduler
} // namespace helix
