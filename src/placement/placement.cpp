#include "placement/placement.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace helix {
namespace placement {

std::string
ModelPlacement::describe(const cluster::ClusterSpec &cluster) const
{
    std::ostringstream out;
    for (size_t i = 0; i < nodes.size(); ++i) {
        const NodePlacement &p = nodes[i];
        out << cluster.node(static_cast<int>(i)).name << ": ";
        if (p.count == 0) {
            out << "(unused)";
        } else {
            out << "[" << p.start << ", " << p.end() << ") "
                << p.count << " layers";
        }
        out << "\n";
    }
    return out.str();
}

bool
placementValid(const ModelPlacement &placement,
               const cluster::ClusterSpec &cluster,
               const cluster::Profiler &profiler)
{
    const int num_layers = profiler.modelSpec().numLayers;
    if (static_cast<int>(placement.size()) != cluster.numNodes())
        return false;
    std::vector<int> coverage(num_layers, 0);
    for (int i = 0; i < cluster.numNodes(); ++i) {
        const NodePlacement &p = placement[i];
        if (p.count == 0)
            continue;
        if (p.start < 0 || p.end() > num_layers)
            return false;
        if (p.count > profiler.hardMaxLayers(cluster.node(i)))
            return false;
        for (int layer = p.start; layer < p.end(); ++layer)
            ++coverage[layer];
    }
    return std::all_of(coverage.begin(), coverage.end(),
                       [](int c) { return c > 0; });
}

double
bottleneckLayerThroughput(const ModelPlacement &placement,
                          const cluster::ClusterSpec &cluster,
                          const cluster::Profiler &profiler)
{
    const int num_layers = profiler.modelSpec().numLayers;
    std::vector<double> coverage(num_layers, 0.0);
    for (int i = 0; i < cluster.numNodes(); ++i) {
        const NodePlacement &p = placement[i];
        if (p.count == 0)
            continue;
        double throughput =
            profiler.decodeThroughput(cluster.node(i), p.count);
        for (int layer = p.start; layer < p.end(); ++layer)
            coverage[layer] += throughput;
    }
    double worst = coverage.empty() ? 0.0 : coverage[0];
    for (double c : coverage)
        worst = std::min(worst, c);
    return worst;
}

} // namespace placement
} // namespace helix
