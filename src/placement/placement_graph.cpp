#include "placement/placement_graph.h"

#include <algorithm>

#include "flow/max_flow.h"
#include "util/logging.h"

namespace helix {
namespace placement {

ConnectionFilter
ConnectionFilter::allowAll(int num_nodes)
{
    ConnectionFilter filter;
    filter.side = num_nodes;
    filter.mask.assign(static_cast<size_t>(num_nodes) * num_nodes, true);
    return filter;
}

ConnectionFilter
ConnectionFilter::pruneByBandwidth(const cluster::ClusterSpec &cluster,
                                   int target_degree)
{
    int n = cluster.numNodes();
    ConnectionFilter filter;
    filter.side = n;
    filter.mask.assign(static_cast<size_t>(n) * n, false);
    for (int from = 0; from < n; ++from) {
        // Rank outgoing links by bandwidth and keep the fastest ones.
        std::vector<std::pair<double, int>> ranked;
        for (int to = 0; to < n; ++to) {
            if (to == from)
                continue;
            ranked.push_back(
                {cluster.link(from, to).bandwidthBps, to});
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        int keep = std::min<int>(target_degree,
                                 static_cast<int>(ranked.size()));
        for (int r = 0; r < keep; ++r) {
            filter.mask[static_cast<size_t>(from) * n +
                        ranked[r].second] = true;
        }
    }
    return filter;
}

bool
ConnectionFilter::allowed(int from, int to) const
{
    HELIX_ASSERT(from >= 0 && from < side && to >= 0 && to < side);
    return mask[static_cast<size_t>(from) * side + to];
}

int
ConnectionFilter::numAllowed() const
{
    int count = 0;
    for (bool b : mask)
        count += b ? 1 : 0;
    return count;
}

bool
connectionValid(const NodePlacement &from, const NodePlacement &to,
                bool allow_partial_inference)
{
    if (from.count == 0 || to.count == 0)
        return false;
    if (allow_partial_inference)
        return to.start <= from.end() && from.end() < to.end();
    return from.end() == to.start;
}

PlacementGraph::PlacementGraph(const cluster::ClusterSpec &cluster,
                               const cluster::Profiler &profiler,
                               const ModelPlacement &placement,
                               GraphBuildOptions options)
    : clusterRef(cluster), placementCopy(placement)
{
    const int n = cluster.numNodes();
    const int num_layers = profiler.modelSpec().numLayers;
    side = n + 1;
    connEdge.assign(static_cast<size_t>(side) * side,
                    flow::kInvalidEdge);

    src = net.addNode("source");
    dst = net.addNode("sink");
    inV.assign(n, flow::kInvalidNode);
    outV.assign(n, flow::kInvalidNode);
    compEdge.assign(n, flow::kInvalidEdge);
    for (int i = 0; i < n; ++i) {
        const NodePlacement &p = placement[i];
        if (p.count == 0)
            continue;
        inV[i] = net.addNode(cluster.node(i).name + ".in");
        outV[i] = net.addNode(cluster.node(i).name + ".out");
        double throughput =
            profiler.decodeThroughput(cluster.node(i), p.count);
        if (options.computeCapOverride &&
            i < static_cast<int>(options.computeCapOverride->size()) &&
            (*options.computeCapOverride)[i] >= 0.0) {
            throughput = (*options.computeCapOverride)[i];
        }
        compEdge[i] = net.addEdge(inV[i], outV[i], throughput);
    }

    auto addConnection = [&](int from, int to, double capacity) {
        flow::NodeId a = (from == cluster::kCoordinator) ? src
                                                         : outV[from];
        flow::NodeId b = (to == cluster::kCoordinator) ? dst : inV[to];
        flow::EdgeId id = net.addEdge(a, b, capacity);
        connEdge[key(from, to)] = id;
    };

    const double act_bytes = profiler.activationBytes();
    const double tok_bytes = profiler.tokenBytes();

    for (int i = 0; i < n; ++i) {
        const NodePlacement &p = placement[i];
        if (p.count == 0)
            continue;
        // Criterion 1: coordinator -> node holding the first layer.
        if (p.start == 0) {
            double cap = profiler.linkTokensPerSecond(
                cluster.link(cluster::kCoordinator, i), tok_bytes);
            addConnection(cluster::kCoordinator, i, cap);
        }
        // Criterion 2: node holding the last layer -> coordinator.
        if (p.end() == num_layers) {
            double cap = profiler.linkTokensPerSecond(
                cluster.link(i, cluster::kCoordinator), tok_bytes);
            addConnection(i, cluster::kCoordinator, cap);
        }
        // Criterion 3: node -> node holding the next needed layer.
        for (int j = 0; j < n; ++j) {
            if (j == i || placement[j].count == 0)
                continue;
            if (options.filter && !options.filter->allowed(i, j))
                continue;
            if (connectionValid(p, placement[j],
                                options.allowPartialInference)) {
                double cap = profiler.linkTokensPerSecond(
                    cluster.link(i, j), act_bytes);
                addConnection(i, j, cap);
            }
        }
    }
}

int
PlacementGraph::key(int from, int to) const
{
    HELIX_ASSERT(from >= cluster::kCoordinator && from < side - 1);
    HELIX_ASSERT(to >= cluster::kCoordinator && to < side - 1);
    return (from + 1) * side + (to + 1);
}

double
PlacementGraph::maxThroughput()
{
    if (!cachedFlow) {
        flow::PreflowPush solver(net);
        // Value is read back via netOutflow below; see comment.
        (void)solver.solve(src, dst);
        // Report the value via the same accumulation repairFlow()
        // uses, so a repaired run and a cold run of the same network
        // log bit-identical flow values.
        cachedFlow = net.netOutflow(src);
    }
    return *cachedFlow;
}

double
PlacementGraph::repairFlow()
{
    flow::PreflowPush solver(net);
    cachedFlow = solver.repair(src, dst);
    return *cachedFlow;
}

void
PlacementGraph::setComputeCapacity(int node, double capacity)
{
    HELIX_ASSERT(node >= 0 && node < side - 1);
    HELIX_ASSERT(compEdge[node] != flow::kInvalidEdge);
    net.setEdgeCapacity(compEdge[node], capacity);
}

flow::EdgeId
PlacementGraph::computeEdge(int node) const
{
    HELIX_ASSERT(node >= 0 && node < side - 1);
    return compEdge[node];
}

double
PlacementGraph::nodeFlow(int node) const
{
    HELIX_ASSERT(node >= 0 && node < side - 1);
    if (compEdge[node] == flow::kInvalidEdge)
        return 0.0;
    HELIX_ASSERT(cachedFlow.has_value());
    return net.flowOn(compEdge[node]);
}

bool
PlacementGraph::hasConnection(int from, int to) const
{
    return connEdge[key(from, to)] != flow::kInvalidEdge;
}

double
PlacementGraph::connectionFlow(int from, int to) const
{
    HELIX_ASSERT(cachedFlow.has_value());
    flow::EdgeId id = connEdge[key(from, to)];
    if (id == flow::kInvalidEdge)
        return 0.0;
    return net.flowOn(id);
}

std::vector<PlacementGraph::ConnectionInfo>
PlacementGraph::connections() const
{
    std::vector<ConnectionInfo> result;
    for (int from = cluster::kCoordinator; from < side - 1; ++from) {
        for (int to = cluster::kCoordinator; to < side - 1; ++to) {
            if (from == to)
                continue;
            flow::EdgeId id = connEdge[key(from, to)];
            if (id == flow::kInvalidEdge)
                continue;
            ConnectionInfo info;
            info.from = from;
            info.to = to;
            info.capacity = net.edge(id).originalCapacity;
            info.flow = cachedFlow ? net.flowOn(id) : 0.0;
            result.push_back(info);
        }
    }
    return result;
}

flow::NodeId
PlacementGraph::inVertex(int node) const
{
    HELIX_ASSERT(node >= 0 && node < side - 1);
    return inV[node];
}

flow::NodeId
PlacementGraph::outVertex(int node) const
{
    HELIX_ASSERT(node >= 0 && node < side - 1);
    return outV[node];
}

int
PlacementGraph::clusterEndpoint(flow::NodeId vertex) const
{
    if (vertex == src || vertex == dst)
        return cluster::kCoordinator;
    for (int i = 0; i < side - 1; ++i) {
        if (inV[i] == vertex || outV[i] == vertex)
            return i;
    }
    HELIX_PANIC("unknown flow vertex %d", vertex);
}

bool
PlacementGraph::isInVertex(flow::NodeId vertex) const
{
    for (int i = 0; i < side - 1; ++i) {
        if (inV[i] == vertex)
            return true;
    }
    return false;
}

double
estimateServingThroughput(const cluster::ClusterSpec &cluster,
                          const cluster::Profiler &profiler,
                          const ModelPlacement &placement,
                          PlacementGraph &graph)
{
    double flow_value = graph.maxThroughput();
    if (flow_value <= flow::kFlowEps)
        return 0.0;

    const cluster::CostModelParams &cost = profiler.params();
    const model::TransformerSpec &spec = profiler.modelSpec();

    // Flow-weighted average pipeline round-trip: per stage one
    // iteration of service plus ~half an iteration of queueing, plus
    // link latency and a one-token activation transmission per hop.
    auto paths = flow::decomposeFlow(graph.graph(), graph.source(),
                                     graph.sink());
    double weighted_rt = 0.0;
    double total_flow = 0.0;
    for (const flow::FlowPath &path : paths) {
        double rt = 0.0;
        int prev_endpoint = cluster::kCoordinator;
        for (size_t i = 1; i < path.nodes.size(); ++i) {
            flow::NodeId vertex = path.nodes[i];
            int endpoint = graph.clusterEndpoint(vertex);
            if (graph.isInVertex(vertex)) {
                // Network hop into this node.
                const cluster::LinkSpec &link =
                    cluster.link(prev_endpoint, endpoint);
                rt += link.latencyS +
                      profiler.activationBytes() /
                          link.bytesPerSecond();
            } else if (endpoint != cluster::kCoordinator) {
                // Service at this node: 1.5 iterations (service +
                // expected residual-iteration queueing).
                int count = placement[endpoint].count;
                int batch = std::max(
                    1, std::min(cost.referenceDecodeBatch,
                                profiler.maxDecodeBatch(
                                    cluster.node(endpoint), count)));
                rt += 1.5 * profiler.decodeIterationSeconds(
                                cluster.node(endpoint), count, batch,
                                cost.planningContextLen);
                prev_endpoint = endpoint;
            } else {
                // Sink: final token hop back to the coordinator.
                const cluster::LinkSpec &link =
                    cluster.link(prev_endpoint, cluster::kCoordinator);
                rt += link.latencyS;
            }
        }
        weighted_rt += path.amount * rt;
        total_flow += path.amount;
    }
    if (total_flow <= flow::kFlowEps)
        return 0.0;
    double avg_rt = weighted_rt / total_flow;

    // Little's-law ceiling: concurrently resident requests are
    // bounded by aggregate KV capacity.
    double token_layers = 0.0;
    for (int i = 0; i < cluster.numNodes(); ++i) {
        if (placement[i].count > 0) {
            token_layers += static_cast<double>(profiler.kvCapacityBytes(
                                cluster.node(i), placement[i].count)) /
                            spec.kvBytesPerTokenPerLayer();
        }
    }
    double inflight = token_layers /
                      (cost.planningContextLen * spec.numLayers);
    double little_bound = avg_rt > 0.0 ? inflight / avg_rt
                                       : flow_value;
    return std::min(flow_value, little_bound);
}

} // namespace placement
} // namespace helix
