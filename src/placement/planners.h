/**
 * @file
 * Model-placement planners: the abstract interface plus the baseline
 * heuristics the paper compares against (Sec. 6.6) — Swarm-style even
 * partitioning, Petals-style greedy joining, separate pipelines
 * (SP/SP+), and uniform partitioning (Fig. 1b).
 */

#ifndef HELIX_PLACEMENT_PLANNERS_H
#define HELIX_PLACEMENT_PLANNERS_H

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "placement/placement.h"

namespace helix {
namespace placement {

/** Interface implemented by every model-placement planner. */
class Planner
{
  public:
    virtual ~Planner() = default;

    /** Short identifier used in reports ("helix", "swarm", ...). */
    [[nodiscard]] virtual std::string name() const = 0;

    /** Produce a placement for @p cluster serving @p profiler's model. */
    [[nodiscard]] virtual ModelPlacement plan(
        const cluster::ClusterSpec &cluster,
        const cluster::Profiler &profiler) = 0;
};

/**
 * Uniform partition (Fig. 1b): the model is split into equal stages,
 * one stage per node, in node order, ignoring heterogeneity. Stages
 * are clamped to each node's VRAM limit.
 */
class UniformPlanner : public Planner
{
  public:
    std::string name() const override { return "uniform"; }
    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;
};

/**
 * Swarm-style placement (Sec. 6.2 baselines): the model is evenly
 * partitioned into the minimum number of stages that lets the weakest
 * GPU hold one stage with half its VRAM; nodes are then assigned to
 * stages greedily so that per-stage aggregate compute is balanced.
 */
class SwarmPlanner : public Planner
{
  public:
    std::string name() const override { return "swarm"; }
    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;
};

/**
 * Petals-style placement (Sec. 2.2): nodes join one at a time; each
 * new node serves the contiguous window of layers with the least
 * aggregate throughput so far, holding as many layers as its VRAM
 * allows.
 */
class PetalsPlanner : public Planner
{
  public:
    std::string name() const override { return "petals"; }
    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;
};

/**
 * Separate pipelines (SP): each GPU-type group independently serves
 * replicas of the whole model. Groups whose aggregate half-VRAM
 * capacity cannot hold the model either pack weights beyond the
 * half-VRAM rule (shrinking KV) when possible, or are left unused.
 * With includeMixedPipeline (SP+), leftover/unusable nodes are chained
 * into additional mixed-type pipelines.
 */
class SeparatePipelinesPlanner : public Planner
{
  public:
    explicit SeparatePipelinesPlanner(bool include_mixed_pipeline = false)
        : includeMixed(include_mixed_pipeline)
    {
    }

    std::string name() const override
    {
        return includeMixed ? "sp+" : "sp";
    }

    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;

  private:
    bool includeMixed;
};

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_PLANNERS_H
