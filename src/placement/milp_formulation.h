/**
 * @file
 * The exact MILP formulation of optimal model placement from Sec. 4.4
 * of the paper (variables of Table 5, constraints of Table 6).
 *
 * Variables per compute node i: integer s_i (first layer held) and
 * binaries b_i^j (node holds j layers, j = 1..k_i). Variables per
 * network connection: real flow f and binary validity d, plus two
 * auxiliary binaries cond1/cond2 for compute-compute connections when
 * partial inference is enabled. The objective maximizes the total flow
 * leaving the source, i.e. the cluster's serving throughput.
 */

#ifndef HELIX_PLACEMENT_MILP_FORMULATION_H
#define HELIX_PLACEMENT_MILP_FORMULATION_H

#include <vector>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "milp/branch_and_bound.h"
#include "placement/placement.h"
#include "placement/placement_graph.h"

namespace helix {
namespace placement {

/** Options controlling MILP construction. */
struct MilpBuildOptions
{
    /** Allow overlapping placements with partial inference. */
    bool allowPartialInference = true;
    /** Optional pruning filter (Sec. 4.5 speedup 1). */
    const ConnectionFilter *filter = nullptr;
};

/**
 * Builds and interprets the placement MILP for one (cluster, model)
 * pair.
 */
class MilpFormulation
{
  public:
    MilpFormulation(const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler,
                    MilpBuildOptions options = {});

    /** The constructed MILP (maximization). */
    const milp::MilpProblem &problem() const { return milpProblem; }

    /** Problem-size figures for the Table 8 reproduction. */
    int numVariables() const { return milpProblem.numVariables(); }
    int numConstraints() const { return milpProblem.numConstraints(); }

    /** Decode a solver assignment into a model placement. */
    ModelPlacement extractPlacement(
        const std::vector<double> &values) const;

    /**
     * Encode a heuristic placement as a complete feasible assignment
     * (warm start, Sec. 4.5 speedup 2): placement variables from the
     * placement itself, validity variables from the validity rules,
     * and flow variables from a max-flow solve on the corresponding
     * placement graph. Unused nodes are assigned layer [0, 1) with no
     * flow, since the formulation requires every node to hold at
     * least one layer.
     */
    std::vector<double> encodePlacement(
        const ModelPlacement &placement) const;

  private:
    /** Index helpers into the connection variable arrays. */
    int pairIndex(int from, int to) const;

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profilerRef;
    MilpBuildOptions opts;
    milp::MilpProblem milpProblem;

    int numLayers = 0;
    std::vector<int> sVar;               // per node
    std::vector<std::vector<int>> bVar;  // per node, j = 1..k_i
    std::vector<int> fSource;            // per node
    std::vector<int> dSource;            // per node
    std::vector<int> fSink;              // per node
    std::vector<int> dSink;              // per node
    // Compute-compute connections, -1 when pruned / absent.
    std::vector<int> fPair;
    std::vector<int> dPair;
    std::vector<int> cond1Pair;
    std::vector<int> cond2Pair;
};

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_MILP_FORMULATION_H
