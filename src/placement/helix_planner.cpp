#include "placement/helix_planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "placement/milp_formulation.h"
#include "util/logging.h"

namespace helix {
namespace placement {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since).count();
}

} // namespace

FlowSearch::FlowSearch(const cluster::ClusterSpec &cluster,
                       const cluster::Profiler &profiler,
                       const HelixPlannerConfig &config)
    : clusterRef(cluster), profilerRef(profiler), cfg(config)
{
    if (cfg.usePruning) {
        filter = ConnectionFilter::pruneByBandwidth(cluster,
                                                    cfg.pruneDegree);
    }
}

double
FlowSearch::evaluate(const ModelPlacement &placement) const
{
    GraphBuildOptions opts;
    opts.allowPartialInference = cfg.allowPartialInference;
    opts.filter = filter ? &*filter : nullptr;
    PlacementGraph graph(clusterRef, profilerRef, placement, opts);
    if (cfg.objective == PlannerObjective::MaxFlow)
        return graph.maxThroughput();
    return estimateServingThroughput(clusterRef, profilerRef,
                                     placement, graph);
}

void
FlowSearch::mutate(ModelPlacement &placement, Rng &rng) const
{
    const int n = clusterRef.numNodes();
    const int num_layers = profilerRef.modelSpec().numLayers;
    int node = static_cast<int>(rng.nextBounded(n));
    int max_layers =
        std::max(1, profilerRef.maxLayers(clusterRef.node(node)));
    NodePlacement &p = placement[node];
    if (p.count == 0)
        p = {0, 1};

    switch (rng.nextBounded(4)) {
      case 0: {
        // Resize by +-1 layer.
        int delta = rng.nextBounded(2) == 0 ? 1 : -1;
        p.count = std::clamp(p.count + delta, 1, max_layers);
        p.start = std::min(p.start, num_layers - p.count);
        break;
      }
      case 1: {
        // Shift the window.
        int delta = static_cast<int>(rng.nextInt(-4, 4));
        p.start = std::clamp(p.start + delta, 0,
                             num_layers - p.count);
        break;
      }
      case 2: {
        // Re-seat over the least-covered layer at full width.
        std::vector<double> coverage(num_layers, 0.0);
        for (int i = 0; i < n; ++i) {
            const NodePlacement &q = placement[i];
            if (i == node || q.count == 0)
                continue;
            double t = profilerRef.decodeThroughput(
                clusterRef.node(i), q.count);
            for (int l = q.start; l < q.end(); ++l)
                coverage[l] += t;
        }
        int weakest = 0;
        for (int l = 1; l < num_layers; ++l) {
            if (coverage[l] < coverage[weakest])
                weakest = l;
        }
        p.count = std::min(max_layers, num_layers);
        p.start = std::clamp(weakest - p.count / 2, 0,
                             num_layers - p.count);
        break;
      }
      default: {
        // Adopt another node's interval, clamped to our VRAM.
        int other = static_cast<int>(rng.nextBounded(n));
        const NodePlacement &q = placement[other];
        if (q.count > 0) {
            p.count = std::min(q.count, max_layers);
            p.start = std::min(q.start, num_layers - p.count);
        }
        break;
      }
    }
}

ModelPlacement
FlowSearch::run(const std::vector<ModelPlacement> &seeds,
                HelixPlannerReport &report)
{
    const auto start = Clock::now();
    Rng rng(cfg.seed);

    const int n = clusterRef.numNodes();
    const int num_layers = profilerRef.modelSpec().numLayers;
    double bound = profilerRef.throughputUpperBound(clusterRef);
    report.upperBound = bound;

    ModelPlacement best;
    double best_value = -1.0;
    auto consider = [&](const ModelPlacement &candidate) {
        double value = evaluate(candidate);
        ++report.candidatesEvaluated;
        if (value > best_value) {
            best_value = value;
            best = candidate;
            report.progress.push_back(
                {seconds(start), best_value, bound});
        }
        return value;
    };

    for (const auto &seed : seeds) {
        if (static_cast<int>(seed.size()) != clusterRef.numNodes())
            continue;
        // The search space honors the half-VRAM rule (the MILP's
        // b_i^j only reach k_i); clamp seeds that pack harder (SP).
        ModelPlacement clamped = seed;
        for (int i = 0; i < clusterRef.numNodes(); ++i) {
            int soft = profilerRef.maxLayers(clusterRef.node(i));
            if (clamped[i].count > soft)
                clamped[i].count = soft;
        }
        consider(clamped);
    }
    if (best_value < 0.0) {
        // Cold start (no heuristic seeds): give every node its full
        // half-VRAM window at staggered offsets so the model is
        // covered, but without any load balancing — the "default
        // values" baseline of the warm-start ablation (Fig. 11b).
        ModelPlacement cold;
        cold.nodes.resize(n);
        int at = 0;
        for (int i = 0; i < n; ++i) {
            int k = std::max(
                1, profilerRef.maxLayers(clusterRef.node(i)));
            int first = std::min(at % num_layers, num_layers - k);
            cold[i] = {std::max(first, 0), std::min(k, num_layers)};
            at += k;
        }
        consider(cold);
    }

    // Simulated annealing from the best seed.
    ModelPlacement current = best;
    double current_value = best_value;
    double t0 = std::max(bound * 0.05, 1e-6);
    double t_end = t0 * 1e-3;
    long stagnation = 0;
    while (seconds(start) < cfg.timeBudgetSeconds) {
        if (best_value >= cfg.earlyStopFraction * bound) {
            report.earlyStopped = true;
            break;
        }
        double progress_frac =
            seconds(start) / cfg.timeBudgetSeconds;
        double temperature =
            t0 * std::pow(t_end / t0, progress_frac);
        ModelPlacement candidate = current;
        // Apply 1-3 mutations per step.
        int num_mutations = 1 + static_cast<int>(rng.nextBounded(3));
        for (int k = 0; k < num_mutations; ++k)
            mutate(candidate, rng);
        double value = evaluate(candidate);
        ++report.candidatesEvaluated;
        bool accept =
            value > current_value ||
            rng.nextDouble() <
                std::exp((value - current_value) / temperature);
        if (accept) {
            current = candidate;
            current_value = value;
        }
        if (value > best_value) {
            best_value = value;
            best = candidate;
            report.progress.push_back(
                {seconds(start), best_value, bound});
            stagnation = 0;
        } else if (++stagnation > 2000L * n / 10) {
            // Restart from the incumbent.
            current = best;
            current_value = best_value;
            stagnation = 0;
        }
    }

    report.bestThroughput = best_value;
    report.wallSeconds = seconds(start);
    return best;
}

ModelPlacement
HelixPlanner::plan(const cluster::ClusterSpec &cluster,
                   const cluster::Profiler &profiler)
{
    const auto start = Clock::now();
    lastReport = HelixPlannerReport{};
    lastReport.upperBound = profiler.throughputUpperBound(cluster);

    // Heuristic warm starts (Sec. 4.5 speedup 2).
    std::vector<ModelPlacement> seeds;
    if (cfg.useWarmStarts) {
        SwarmPlanner swarm;
        PetalsPlanner petals;
        SeparatePipelinesPlanner sp(false);
        SeparatePipelinesPlanner sp_plus(true);
        seeds.push_back(swarm.plan(cluster, profiler));
        seeds.push_back(petals.plan(cluster, profiler));
        seeds.push_back(sp.plan(cluster, profiler));
        seeds.push_back(sp_plus.plan(cluster, profiler));
    }

    if (cluster.numNodes() <= cfg.exactMilpNodeLimit) {
        // Exact MILP path (Tables 5/6 + branch-and-bound).
        lastReport.usedExactMilp = true;
        std::optional<ConnectionFilter> filter;
        MilpBuildOptions build;
        build.allowPartialInference = cfg.allowPartialInference;
        if (cfg.usePruning) {
            filter = ConnectionFilter::pruneByBandwidth(
                cluster, cfg.pruneDegree);
            build.filter = &*filter;
        }
        MilpFormulation formulation(cluster, profiler, build);
        milp::BnbConfig bnb;
        bnb.timeLimitSeconds = cfg.timeBudgetSeconds;
        bnb.objectiveUpperBound = lastReport.upperBound;
        bnb.earlyStopFraction = cfg.earlyStopFraction;
        bnb.recordProgress = true;
        for (const auto &seed : seeds)
            bnb.warmStarts.push_back(formulation.encodePlacement(seed));
        milp::BranchAndBound solver;
        milp::MilpResult result =
            solver.solve(formulation.problem(), bnb);
        lastReport.progress = result.progress;
        if (result.status == milp::MilpStatus::Optimal ||
            result.status == milp::MilpStatus::Feasible) {
            ModelPlacement placement =
                formulation.extractPlacement(result.values);
            lastReport.bestThroughput = result.objective;
            lastReport.wallSeconds = seconds(start);
            lastReport.candidatesEvaluated = result.nodesExplored;
            return placement;
        }
        HELIX_WARN("exact MILP found no solution (%s); "
                   "falling back to flow search",
                   milp::toString(result.status));
    }

    FlowSearch search(cluster, profiler, cfg);
    ModelPlacement placement = search.run(seeds, lastReport);
    lastReport.wallSeconds = seconds(start);
    return placement;
}

} // namespace placement
} // namespace helix
