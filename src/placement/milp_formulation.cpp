#include "placement/milp_formulation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace helix {
namespace placement {

using lp::Relation;

MilpFormulation::MilpFormulation(const cluster::ClusterSpec &cluster,
                                 const cluster::Profiler &profiler,
                                 MilpBuildOptions options)
    : clusterRef(cluster), profilerRef(profiler), opts(options)
{
    const int n = cluster.numNodes();
    numLayers = profiler.modelSpec().numLayers;
    const double big_l = numLayers;

    // --- Node variables (Table 5) ---
    sVar.resize(n);
    bVar.resize(n);
    for (int i = 0; i < n; ++i) {
        sVar[i] = milpProblem.addInteger(
            0, numLayers - 1, 0.0,
            "s_" + std::to_string(i));
        int k = profiler.maxLayers(cluster.node(i));
        HELIX_ASSERT(k >= 1);
        bVar[i].resize(k);
        for (int j = 1; j <= k; ++j) {
            bVar[i][j - 1] = milpProblem.addBinary(
                0.0, "b_" + std::to_string(i) + "_" + std::to_string(j));
        }
    }

    // --- Connection variables ---
    fSource.resize(n);
    dSource.resize(n);
    fSink.resize(n);
    dSink.resize(n);
    const double tok_bytes = profiler.tokenBytes();
    const double act_bytes = profiler.activationBytes();
    for (int i = 0; i < n; ++i) {
        double cap_in = profiler.linkTokensPerSecond(
            cluster.link(cluster::kCoordinator, i), tok_bytes);
        double cap_out = profiler.linkTokensPerSecond(
            cluster.link(i, cluster::kCoordinator), tok_bytes);
        // Flow from source contributes to the objective (maximize
        // total throughput).
        fSource[i] = milpProblem.addContinuous(
            0.0, cap_in, 1.0, "f_src_" + std::to_string(i));
        dSource[i] = milpProblem.addBinary(
            0.0, "d_src_" + std::to_string(i));
        fSink[i] = milpProblem.addContinuous(
            0.0, cap_out, 0.0, "f_" + std::to_string(i) + "_sink");
        dSink[i] = milpProblem.addBinary(
            0.0, "d_" + std::to_string(i) + "_sink");
    }
    fPair.assign(static_cast<size_t>(n) * n, -1);
    dPair.assign(static_cast<size_t>(n) * n, -1);
    cond1Pair.assign(static_cast<size_t>(n) * n, -1);
    cond2Pair.assign(static_cast<size_t>(n) * n, -1);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            if (opts.filter && !opts.filter->allowed(i, j))
                continue;
            int idx = pairIndex(i, j);
            double cap = profiler.linkTokensPerSecond(
                cluster.link(i, j), act_bytes);
            std::string tag =
                std::to_string(i) + "_" + std::to_string(j);
            fPair[idx] = milpProblem.addContinuous(0.0, cap, 0.0,
                                                   "f_" + tag);
            dPair[idx] = milpProblem.addBinary(0.0, "d_" + tag);
            if (opts.allowPartialInference) {
                cond1Pair[idx] =
                    milpProblem.addBinary(0.0, "cond1_" + tag);
                cond2Pair[idx] =
                    milpProblem.addBinary(0.0, "cond2_" + tag);
            }
        }
    }

    // e_i = s_i + sum_j j * b_i^j, expressed inline via terms.
    auto endLayerTerms = [&](int i, double scale) {
        std::vector<std::pair<int, double>> terms;
        terms.push_back({sVar[i], scale});
        for (size_t j = 1; j <= bVar[i].size(); ++j)
            terms.push_back({bVar[i][j - 1],
                             scale * static_cast<double>(j)});
        return terms;
    };

    // --- Constraint group 1: model placement ---
    for (int i = 0; i < n; ++i) {
        std::vector<std::pair<int, double>> one;
        for (int b : bVar[i])
            one.push_back({b, 1.0});
        milpProblem.addConstraint(one, Relation::Equal, 1.0);
        // e_i <= L
        milpProblem.addConstraint(endLayerTerms(i, 1.0),
                                  Relation::LessEq, big_l);
    }

    // --- Constraint group 2: flow conservation ---
    for (int i = 0; i < n; ++i) {
        std::vector<std::pair<int, double>> terms;
        terms.push_back({fSource[i], 1.0});
        terms.push_back({fSink[i], -1.0});
        for (int u = 0; u < n; ++u) {
            if (u == i)
                continue;
            if (fPair[pairIndex(u, i)] >= 0)
                terms.push_back({fPair[pairIndex(u, i)], 1.0});
            if (fPair[pairIndex(i, u)] >= 0)
                terms.push_back({fPair[pairIndex(i, u)], -1.0});
        }
        milpProblem.addConstraint(terms, Relation::Equal, 0.0);
    }

    // --- Constraint group 3: inference throughput ---
    for (int i = 0; i < n; ++i) {
        std::vector<std::pair<int, double>> terms;
        terms.push_back({fSource[i], 1.0});
        for (int u = 0; u < n; ++u) {
            if (u != i && fPair[pairIndex(u, i)] >= 0)
                terms.push_back({fPair[pairIndex(u, i)], 1.0});
        }
        for (size_t j = 1; j <= bVar[i].size(); ++j) {
            double t_j = profiler.decodeThroughput(
                cluster.node(i), static_cast<int>(j));
            terms.push_back({bVar[i][j - 1], -t_j});
        }
        milpProblem.addConstraint(terms, Relation::LessEq, 0.0);
    }

    // --- Constraint group 4: connection validity ---
    for (int i = 0; i < n; ++i) {
        // Source -> i valid only if s_i == 0: s_i <= L * (1 - d).
        milpProblem.addConstraint(
            {{sVar[i], 1.0}, {dSource[i], big_l}}, Relation::LessEq,
            big_l);
        // i -> sink valid only if e_i == L: L * d <= e_i.
        auto terms = endLayerTerms(i, -1.0);
        terms.push_back({dSink[i], big_l});
        milpProblem.addConstraint(terms, Relation::LessEq, 0.0);
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            int idx = pairIndex(i, j);
            if (fPair[idx] < 0)
                continue;
            if (opts.allowPartialInference) {
                // cond1 = 1 only if s_j <= e_i:
                //   (L+1)(1 - cond1) >= s_j - e_i
                // => s_j - e_i + (L+1) cond1 <= L+1.
                auto c1 = endLayerTerms(i, -1.0);
                c1.push_back({sVar[j], 1.0});
                c1.push_back({cond1Pair[idx], big_l + 1.0});
                milpProblem.addConstraint(c1, Relation::LessEq,
                                          big_l + 1.0);
                // cond2 = 1 only if e_i < e_j:
                //   e_j - e_i >= 1 - (L+1)(1 - cond2)
                // => e_i - e_j + (L+1) cond2 <= L.
                auto c2 = endLayerTerms(i, 1.0);
                auto ej = endLayerTerms(j, -1.0);
                c2.insert(c2.end(), ej.begin(), ej.end());
                c2.push_back({cond2Pair[idx], big_l + 1.0});
                milpProblem.addConstraint(c2, Relation::LessEq, big_l);
                // d <= 0.5 cond1 + 0.5 cond2.
                milpProblem.addConstraint(
                    {{dPair[idx], 1.0},
                     {cond1Pair[idx], -0.5},
                     {cond2Pair[idx], -0.5}},
                    Relation::LessEq, 0.0);
            } else {
                // d = 1 only if e_i == s_j:
                //   L d <= L + s_j - e_i  and  L d <= L - s_j + e_i.
                auto c1 = endLayerTerms(i, 1.0);
                c1.push_back({sVar[j], -1.0});
                c1.push_back({dPair[idx], big_l});
                milpProblem.addConstraint(c1, Relation::LessEq, big_l);
                auto c2 = endLayerTerms(i, -1.0);
                c2.push_back({sVar[j], 1.0});
                c2.push_back({dPair[idx], big_l});
                milpProblem.addConstraint(c2, Relation::LessEq, big_l);
            }
        }
    }

    // --- Constraint group 5: transmission throughput ---
    for (int i = 0; i < n; ++i) {
        double cap_in = profiler.linkTokensPerSecond(
            cluster.link(cluster::kCoordinator, i), tok_bytes);
        double cap_out = profiler.linkTokensPerSecond(
            cluster.link(i, cluster::kCoordinator), tok_bytes);
        milpProblem.addConstraint(
            {{fSource[i], 1.0}, {dSource[i], -cap_in}},
            Relation::LessEq, 0.0);
        milpProblem.addConstraint(
            {{fSink[i], 1.0}, {dSink[i], -cap_out}}, Relation::LessEq,
            0.0);
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            int idx = pairIndex(i, j);
            if (fPair[idx] < 0)
                continue;
            double cap = profiler.linkTokensPerSecond(
                cluster.link(i, j), act_bytes);
            milpProblem.addConstraint(
                {{fPair[idx], 1.0}, {dPair[idx], -cap}},
                Relation::LessEq, 0.0);
        }
    }
}

int
MilpFormulation::pairIndex(int from, int to) const
{
    return from * clusterRef.numNodes() + to;
}

ModelPlacement
MilpFormulation::extractPlacement(const std::vector<double> &values) const
{
    const int n = clusterRef.numNodes();
    ModelPlacement placement;
    placement.nodes.resize(n);
    for (int i = 0; i < n; ++i) {
        placement[i].start =
            static_cast<int>(std::lround(values[sVar[i]]));
        placement[i].count = 0;
        for (size_t j = 1; j <= bVar[i].size(); ++j) {
            if (values[bVar[i][j - 1]] > 0.5)
                placement[i].count = static_cast<int>(j);
        }
    }
    return placement;
}

std::vector<double>
MilpFormulation::encodePlacement(const ModelPlacement &placement) const
{
    const int n = clusterRef.numNodes();
    HELIX_ASSERT(static_cast<int>(placement.size()) == n);

    // Unused nodes must formally hold one layer; give them [0, 1) and
    // route no flow through them.
    ModelPlacement effective = placement;
    for (int i = 0; i < n; ++i) {
        if (effective[i].count == 0)
            effective[i] = {0, 1};
    }

    GraphBuildOptions graph_opts;
    graph_opts.allowPartialInference = opts.allowPartialInference;
    graph_opts.filter = opts.filter;
    PlacementGraph graph(clusterRef, profilerRef, placement, graph_opts);
    (void)graph.maxThroughput(); // prime per-edge flows for the warm start

    std::vector<double> values(milpProblem.numVariables(), 0.0);
    for (int i = 0; i < n; ++i) {
        values[sVar[i]] = effective[i].start;
        int count = std::min<int>(effective[i].count,
                                  static_cast<int>(bVar[i].size()));
        HELIX_ASSERT(count >= 1);
        values[bVar[i][count - 1]] = 1.0;
    }
    const int num_layers = numLayers;
    for (int i = 0; i < n; ++i) {
        const NodePlacement &p = effective[i];
        bool used = placement[i].count > 0;
        // Source-side validity and flow.
        if (used && p.start == 0) {
            values[dSource[i]] = 1.0;
            values[fSource[i]] =
                graph.connectionFlow(cluster::kCoordinator, i);
        }
        if (used && p.end() == num_layers) {
            values[dSink[i]] = 1.0;
            values[fSink[i]] =
                graph.connectionFlow(i, cluster::kCoordinator);
        }
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            int idx = pairIndex(i, j);
            if (fPair[idx] < 0)
                continue;
            const NodePlacement &q = effective[j];
            if (opts.allowPartialInference) {
                // cond1/cond2 may be set to their implied truth value.
                values[cond1Pair[idx]] =
                    (q.start <= p.end()) ? 1.0 : 0.0;
                values[cond2Pair[idx]] = (p.end() < q.end()) ? 1.0 : 0.0;
            }
            bool valid = used && placement[j].count > 0 &&
                         connectionValid(placement[i], placement[j],
                                         opts.allowPartialInference);
            if (valid) {
                values[dPair[idx]] = 1.0;
                values[fPair[idx]] = graph.connectionFlow(i, j);
            }
        }
    }
    return values;
}

} // namespace placement
} // namespace helix
