/**
 * @file
 * Model placement type: which contiguous block of transformer layers
 * each compute node holds (the function Psi of Sec. 4.1).
 */

#ifndef HELIX_PLACEMENT_PLACEMENT_H
#define HELIX_PLACEMENT_PLACEMENT_H

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/profiler.h"

namespace helix {
namespace placement {

/** Layer interval [start, start + count) held by one node. */
struct NodePlacement
{
    int start = 0;
    int count = 0;

    /** One past the last layer held (e_i in the paper). */
    int end() const { return start + count; }

    bool
    operator==(const NodePlacement &other) const
    {
        return start == other.start && count == other.count;
    }
};

/**
 * A full model placement: one layer interval per compute node. Nodes
 * with count == 0 are unused (allowed for the separate-pipelines
 * baseline, which leaves some nodes idle).
 */
struct ModelPlacement
{
    std::vector<NodePlacement> nodes;

    NodePlacement &operator[](size_t i) { return nodes[i]; }
    const NodePlacement &operator[](size_t i) const { return nodes[i]; }
    size_t size() const { return nodes.size(); }

    bool
    operator==(const ModelPlacement &other) const
    {
        return nodes == other.nodes;
    }

    /** Human-readable per-node layer ranges. */
    std::string describe(const cluster::ClusterSpec &cluster) const;
};

/**
 * Check structural validity of a placement: every used node's interval
 * fits within the model and its VRAM limit, and every layer of the
 * model is held by at least one node.
 */
bool placementValid(const ModelPlacement &placement,
                    const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler);

/**
 * Sum of per-layer compute coverage: for each layer, the total decode
 * throughput of nodes holding it. Returns the minimum over layers
 * (the classic bottleneck metric the paper contrasts with max-flow).
 */
double bottleneckLayerThroughput(const ModelPlacement &placement,
                                 const cluster::ClusterSpec &cluster,
                                 const cluster::Profiler &profiler);

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_PLACEMENT_H
