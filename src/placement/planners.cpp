#include "placement/planners.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "util/logging.h"

namespace helix {
namespace placement {

namespace {

/**
 * Split @p total layers among nodes with the given per-node caps,
 * processing in the given order. Balances shares while guaranteeing
 * full coverage whenever sum(caps) >= total.
 * @return per-node layer counts (aligned with @p caps), or empty if
 *         coverage is impossible.
 */
std::vector<int>
partitionLayers(const std::vector<int> &caps, int total)
{
    int sum = std::accumulate(caps.begin(), caps.end(), 0);
    if (sum < total)
        return {};
    std::vector<int> counts(caps.size(), 0);
    int remaining = total;
    int rest = sum;
    for (size_t i = 0; i < caps.size(); ++i) {
        int nodes_left = static_cast<int>(caps.size() - i);
        rest -= caps[i];
        int even_share =
            (remaining + nodes_left - 1) / nodes_left; // ceil
        int must_take = remaining - rest; // leave the rest coverable
        int take = std::max(even_share, must_take);
        take = std::min(take, caps[i]);
        take = std::min(take, remaining);
        counts[i] = take;
        remaining -= take;
    }
    HELIX_ASSERT(remaining == 0);
    return counts;
}

} // namespace

ModelPlacement
UniformPlanner::plan(const cluster::ClusterSpec &cluster,
                     const cluster::Profiler &profiler)
{
    const int n = cluster.numNodes();
    const int num_layers = profiler.modelSpec().numLayers;
    ModelPlacement placement;
    if (n == 0)
        return placement;
    placement.nodes.resize(n);
    int stage = (num_layers + n - 1) / n;
    int at = 0;
    for (int i = 0; i < n && at < num_layers; ++i) {
        int count = std::min({stage, num_layers - at,
                              profiler.hardMaxLayers(cluster.node(i))});
        placement[i] = {at, count};
        at += count;
    }
    return placement;
}

ModelPlacement
SwarmPlanner::plan(const cluster::ClusterSpec &cluster,
                   const cluster::Profiler &profiler)
{
    const int n = cluster.numNodes();
    const int num_layers = profiler.modelSpec().numLayers;

    // Minimum stage depth that the weakest GPU can hold with half its
    // VRAM (paper Sec. 6.2, baseline configuration).
    int weakest = num_layers;
    for (int i = 0; i < n; ++i)
        weakest = std::min(weakest,
                           profiler.maxLayers(cluster.node(i)));
    weakest = std::max(weakest, 1);
    int num_stages = (num_layers + weakest - 1) / weakest;

    // Even partition of layers over stages.
    std::vector<std::pair<int, int>> stages(num_stages); // start,count
    int base = num_layers / num_stages;
    int rem = num_layers % num_stages;
    int at = 0;
    for (int s = 0; s < num_stages; ++s) {
        int count = base + (s < rem ? 1 : 0);
        stages[s] = {at, count};
        at += count;
    }

    // Assign nodes to stages, balancing aggregate compute per stage.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return cluster.node(a).totalTflops() >
               cluster.node(b).totalTflops();
    });
    std::vector<double> stage_capacity(num_stages, 0.0);
    ModelPlacement placement;
    placement.nodes.resize(n);
    for (int node : order) {
        int best_stage = 0;
        for (int s = 1; s < num_stages; ++s) {
            if (stage_capacity[s] <
                stage_capacity[best_stage] - 1e-12) {
                best_stage = s;
            }
        }
        auto [start, count] = stages[best_stage];
        placement[node] = {start, count};
        stage_capacity[best_stage] +=
            profiler.decodeThroughput(cluster.node(node), count);
    }
    return placement;
}

ModelPlacement
PetalsPlanner::plan(const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler)
{
    const int n = cluster.numNodes();
    const int num_layers = profiler.modelSpec().numLayers;
    std::vector<double> coverage(num_layers, 0.0);
    ModelPlacement placement;
    placement.nodes.resize(n);
    for (int i = 0; i < n; ++i) {
        int window = std::min(profiler.maxLayers(cluster.node(i)),
                              num_layers);
        window = std::max(window, 1);
        // Choose the least-served window (lexicographically: lowest
        // minimum coverage, then lowest total coverage).
        int best_start = 0;
        double best_min = std::numeric_limits<double>::max();
        double best_sum = std::numeric_limits<double>::max();
        for (int s = 0; s + window <= num_layers; ++s) {
            double w_min = std::numeric_limits<double>::max();
            double w_sum = 0.0;
            for (int l = s; l < s + window; ++l) {
                w_min = std::min(w_min, coverage[l]);
                w_sum += coverage[l];
            }
            if (w_min < best_min - 1e-12 ||
                (std::fabs(w_min - best_min) <= 1e-12 &&
                 w_sum < best_sum - 1e-12)) {
                best_min = w_min;
                best_sum = w_sum;
                best_start = s;
            }
        }
        placement[i] = {best_start, window};
        double throughput =
            profiler.decodeThroughput(cluster.node(i), window);
        for (int l = best_start; l < best_start + window; ++l)
            coverage[l] += throughput;
    }
    return placement;
}

ModelPlacement
SeparatePipelinesPlanner::plan(const cluster::ClusterSpec &cluster,
                               const cluster::Profiler &profiler)
{
    const int n = cluster.numNodes();
    const int num_layers = profiler.modelSpec().numLayers;
    ModelPlacement placement;
    placement.nodes.resize(n);

    // Group nodes by hardware signature.
    std::map<std::string, std::vector<int>> groups;
    for (int i = 0; i < n; ++i) {
        const cluster::NodeSpec &node = cluster.node(i);
        groups[node.gpu.name + "/" + std::to_string(node.numGpus)]
            .push_back(i);
    }

    std::vector<int> leftovers;
    auto placeReplica = [&](const std::vector<int> &members,
                            const std::vector<int> &caps) {
        std::vector<int> counts = partitionLayers(caps, num_layers);
        if (counts.empty())
            return false;
        int at = 0;
        for (size_t i = 0; i < members.size(); ++i) {
            if (counts[i] > 0)
                placement[members[i]] = {at, counts[i]};
            at += counts[i];
        }
        return true;
    };

    for (const auto &[signature, members] : groups) {
        (void)signature;
        int soft = profiler.maxLayers(cluster.node(members[0]));
        int hard = profiler.hardMaxLayers(cluster.node(members[0]));
        int count = static_cast<int>(members.size());
        // Number of replicas this group can serve at half VRAM,
        // reduced until every replica's share can hold the model.
        int replicas = soft > 0
                           ? (count * soft) / num_layers
                           : 0;
        while (replicas > 0 &&
               (count / replicas) * soft < num_layers) {
            --replicas;
        }
        if (replicas > 0) {
            int per = count / replicas;
            int extra = count % replicas;
            int at = 0;
            for (int r = 0; r < replicas; ++r) {
                int size = per + (r < extra ? 1 : 0);
                std::vector<int> replica_members(
                    members.begin() + at, members.begin() + at + size);
                std::vector<int> caps(size, soft);
                bool ok = placeReplica(replica_members, caps);
                HELIX_ASSERT(ok);
                at += size;
            }
            for (int i = at; i < count; ++i)
                leftovers.push_back(members[i]);
        } else if (count * hard >= num_layers) {
            // Pack beyond the half-VRAM rule: one replica using every
            // node of the group with weights crowding out KV-cache.
            std::vector<int> caps(count, hard);
            bool ok = placeReplica(members, caps);
            HELIX_ASSERT(ok);
        } else {
            for (int member : members)
                leftovers.push_back(member);
        }
    }

    if (includeMixed) {
        // SP+: chain leftover nodes (largest VRAM first) into mixed
        // pipelines until the pool can no longer cover the model.
        std::sort(leftovers.begin(), leftovers.end(), [&](int a, int b) {
            return profiler.maxLayers(cluster.node(a)) >
                   profiler.maxLayers(cluster.node(b));
        });
        while (!leftovers.empty()) {
            std::vector<int> caps;
            caps.reserve(leftovers.size());
            for (int member : leftovers)
                caps.push_back(profiler.maxLayers(cluster.node(member)));
            std::vector<int> counts =
                partitionLayers(caps, num_layers);
            if (counts.empty())
                break;
            int at = 0;
            std::vector<int> unused;
            for (size_t i = 0; i < leftovers.size(); ++i) {
                if (counts[i] > 0) {
                    placement[leftovers[i]] = {at, counts[i]};
                    at += counts[i];
                } else {
                    unused.push_back(leftovers[i]);
                }
            }
            leftovers = std::move(unused);
        }
    }
    return placement;
}

} // namespace placement
} // namespace helix
