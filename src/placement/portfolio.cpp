#include "placement/portfolio.h"

#include <algorithm>
#include <chrono>

#include "placement/placement_graph.h"
#include "util/logging.h"

namespace helix {
namespace placement {

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since).count();
}

} // namespace

double
flowThroughputBound(const cluster::ClusterSpec &cluster,
                    const cluster::Profiler &profiler,
                    const ModelPlacement &placement)
{
    if (static_cast<int>(placement.size()) != cluster.numNodes())
        return 0.0;
    PlacementGraph graph(cluster, profiler, placement);
    return graph.maxThroughput();
}

PortfolioPlanner::PortfolioPlanner(std::vector<PortfolioMember> members_,
                                   PortfolioConfig config,
                                   TaskExecutor executor)
    : members(std::move(members_)), cfg(config),
      exec(std::move(executor))
{
}

ModelPlacement
PortfolioPlanner::plan(const cluster::ClusterSpec &cluster,
                       const cluster::Profiler &profiler)
{
    const auto start = Clock::now();
    lastReport = PortfolioReport{};
    lastReport.budgetS = cfg.budgetS;
    lastReport.entries.resize(members.size());

    // One task per member; each task owns exactly its entry slot, so
    // the executor may run them in any order on any threads.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
        tasks.push_back([this, i, start, &cluster, &profiler]() {
            const auto member_start = Clock::now();
            PortfolioEntry &entry = lastReport.entries[i];
            entry.planner = members[i].name;
            double remaining =
                std::max(0.0, cfg.budgetS - seconds(start));
            double search_budget =
                remaining *
                std::clamp(1.0 - cfg.scoreReserveFraction, 0.0, 1.0);
            std::unique_ptr<Planner> planner =
                members[i].make(search_budget);
            if (!planner) {
                entry.wallSeconds = seconds(member_start);
                return;
            }
            entry.placement = planner->plan(cluster, profiler);
            entry.feasible =
                placementValid(entry.placement, cluster, profiler);
            entry.flowBound =
                flowThroughputBound(cluster, profiler, entry.placement);
            entry.wallSeconds = seconds(member_start);
        });
    }
    if (exec) {
        exec(tasks);
    } else {
        for (const auto &task : tasks)
            task();
    }

    // Deterministic argmax: feasible beats infeasible, then strictly
    // higher flow bound; ties go to the earliest member. Independent
    // of the order the tasks actually ran in.
    int best = -1;
    for (size_t i = 0; i < lastReport.entries.size(); ++i) {
        const PortfolioEntry &entry = lastReport.entries[i];
        if (best < 0) {
            best = static_cast<int>(i);
            continue;
        }
        const PortfolioEntry &incumbent = lastReport.entries[best];
        if ((entry.feasible && !incumbent.feasible) ||
            (entry.feasible == incumbent.feasible &&
             entry.flowBound > incumbent.flowBound)) {
            best = static_cast<int>(i);
        }
    }
    lastReport.bestIndex = best;
    lastReport.wallSeconds = seconds(start);
    if (best < 0)
        return ModelPlacement{};
    return lastReport.entries[best].placement;
}

} // namespace placement
} // namespace helix
