/**
 * @file
 * Helix's model-placement planner (Sec. 4.4-4.5).
 *
 * Two cooperating engines implement the paper's MILP-based search:
 *
 * 1. Exact MILP — the Tables 5/6 formulation solved with our
 *    branch-and-bound (src/milp). Exact but only tractable for small
 *    clusters; used for the planner-quality experiments (Fig. 12,
 *    Table 8) and correctness tests against brute force.
 *
 * 2. Flow-guided search — branch-and-bound / simulated annealing over
 *    the placement variables (s_i, count_i) directly, evaluating each
 *    candidate with an exact preflow-push max-flow on the placement
 *    graph. Mathematically this explores the same solution space (for
 *    fixed integer placement variables the remaining MILP reduces to
 *    the max-flow LP), but scales to the paper's 24-42-node clusters
 *    without a commercial solver.
 *
 * Both engines use the paper's speedups: heuristic warm starts
 * (Petals/Swarm/SP placements), optional cluster pruning, and early
 * stop at the compute-throughput upper bound.
 */

#ifndef HELIX_PLACEMENT_HELIX_PLANNER_H
#define HELIX_PLACEMENT_HELIX_PLANNER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "milp/branch_and_bound.h"
#include "placement/placement_graph.h"
#include "placement/planners.h"
#include "util/random.h"

namespace helix {
namespace placement {

/** Objective the flow-guided search maximizes. */
enum class PlannerObjective
{
    /** Pure max-flow (the paper's literal MILP objective). */
    MaxFlow,
    /**
     * Max-flow capped by the Little's-law serving estimate
     * (estimateServingThroughput): breaks ties between equal-flow
     * placements in favor of shallow, low-latency pipelines — the
     * behavior the paper reports for Helix's planner in
     * geo-distributed settings (Sec. 6.4).
     */
    ServingEstimate,
};

/** Configuration for the Helix planner. */
struct HelixPlannerConfig
{
    /** Search objective; see PlannerObjective. */
    PlannerObjective objective = PlannerObjective::ServingEstimate;
    /** Wall-clock budget for the optimization in seconds. */
    double timeBudgetSeconds = 10.0;
    /** Allow overlapping placements with partial inference. */
    bool allowPartialInference = true;
    /** Enable cluster pruning (Sec. 4.5 speedup 1). */
    bool usePruning = false;
    /** Per-node outgoing-connection budget when pruning. */
    int pruneDegree = 12;
    /** Seed heuristic placements as warm starts (speedup 2). */
    bool useWarmStarts = true;
    /** Stop when within this fraction of the compute bound
     *  (speedup 3). */
    double earlyStopFraction = 0.995;
    /**
     * Use the exact MILP when the cluster has at most this many
     * nodes; larger clusters use the flow-guided search.
     */
    int exactMilpNodeLimit = 6;
    /** RNG seed for the search engine. */
    uint64_t seed = 0x48454c4958ULL; // "HELIX"
};

/** Diagnostics from the most recent plan() call. */
struct HelixPlannerReport
{
    double bestThroughput = 0.0;
    double upperBound = 0.0;
    double wallSeconds = 0.0;
    long candidatesEvaluated = 0;
    bool usedExactMilp = false;
    bool earlyStopped = false;
    /** Incumbent throughput over time (for Fig. 12-style plots). */
    std::vector<milp::ProgressSample> progress;
};

/**
 * Simulated-annealing placement search with the max-flow objective.
 * Exposed separately so ablation benches can time it against the
 * exact MILP.
 */
class FlowSearch
{
  public:
    FlowSearch(const cluster::ClusterSpec &cluster,
               const cluster::Profiler &profiler,
               const HelixPlannerConfig &config);

    /**
     * Run the search. @p seeds are evaluated first and the best one
     * becomes the starting state.
     * @return the best placement found.
     */
    ModelPlacement run(const std::vector<ModelPlacement> &seeds,
                       HelixPlannerReport &report);

    /** Max-flow throughput of one placement under current options. */
    double evaluate(const ModelPlacement &placement) const;

  private:
    /** Random structural mutation of a placement. */
    void mutate(ModelPlacement &placement, Rng &rng) const;

    const cluster::ClusterSpec &clusterRef;
    const cluster::Profiler &profilerRef;
    HelixPlannerConfig cfg;
    std::optional<ConnectionFilter> filter;
};

/**
 * The Helix planner: heuristic warm starts, then exact MILP (small
 * clusters) or flow-guided search (large clusters), with early stop.
 */
class HelixPlanner : public Planner
{
  public:
    explicit HelixPlanner(HelixPlannerConfig config = {})
        : cfg(config)
    {
    }

    std::string name() const override { return "helix"; }

    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;

    /** Diagnostics for the last plan() call. */
    const HelixPlannerReport &report() const { return lastReport; }

  private:
    HelixPlannerConfig cfg;
    HelixPlannerReport lastReport;
};

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_HELIX_PLANNER_H
