/**
 * @file
 * Graph abstraction of a cluster under a model placement (Sec. 4.3,
 * Fig. 2): each compute node becomes an (in, out) vertex pair whose
 * connecting edge carries the node's inference throughput; valid
 * network connections become edges whose capacity is the link
 * bandwidth divided by the per-token payload. The max flow from
 * source (coordinator) to sink equals the placement's maximum serving
 * throughput, and the per-edge flows become the IWRR scheduling
 * weights (Sec. 5.1).
 */

#ifndef HELIX_PLACEMENT_PLACEMENT_GRAPH_H
#define HELIX_PLACEMENT_PLACEMENT_GRAPH_H

#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "core/annotations.h"
#include "flow/graph.h"
#include "placement/placement.h"

namespace helix {
namespace placement {

/**
 * Set of directed compute-node pairs allowed to communicate. Used by
 * the cluster-pruning MILP speedup (Sec. 4.5): when absent, every pair
 * may connect.
 */
class ConnectionFilter
{
  public:
    /** Build an all-pairs-allowed filter for @p num_nodes nodes. */
    [[nodiscard]] static ConnectionFilter allowAll(int num_nodes);

    /**
     * Prune slow links so each node keeps roughly @p target_degree
     * outgoing connections (the paper prunes to average degree 12).
     * Links are ranked by bandwidth, descending. Coordinator links are
     * never pruned.
     */
    [[nodiscard]] static ConnectionFilter pruneByBandwidth(
        const cluster::ClusterSpec &cluster, int target_degree);

    /** Whether compute pair (from, to) may communicate. */
    [[nodiscard]] bool allowed(int from, int to) const;

    /** Number of allowed directed compute-compute pairs. */
    [[nodiscard]] int numAllowed() const;

    [[nodiscard]] int numNodes() const { return side; }

  private:
    int side = 0;
    std::vector<bool> mask;
};

/**
 * Whether a request leaving node @p from (having completed layers up
 * to from's end) can continue on node @p to (Sec. 4.3's validity
 * criteria). With partial inference the condition is
 * s_to <= e_from < e_to; without it, e_from == s_to.
 */
[[nodiscard]] bool connectionValid(const NodePlacement &from,
                                   const NodePlacement &to,
                     bool allow_partial_inference);

/** Options controlling placement-graph construction. */
struct GraphBuildOptions
{
    /** Allow overlapping placements with partial inference. */
    bool allowPartialInference = true;
    /** Optional pruning filter; nullptr means all pairs allowed. */
    const ConnectionFilter *filter = nullptr;
    /**
     * Optional per-node compute-capacity overrides (tokens/s);
     * entries < 0 mean "use the profiled decode throughput". Used by
     * the live topology manager to shrink drifting nodes when it
     * rebuilds cold. nullptr means no overrides.
     */
    const std::vector<double> *computeCapOverride = nullptr;
};

/**
 * The flow network for one (cluster, placement) pair, with helpers to
 * run max-flow and read per-connection flow values.
 */
class PlacementGraph
{
  public:
    PlacementGraph(const cluster::ClusterSpec &cluster,
                   const cluster::Profiler &profiler,
                   const ModelPlacement &placement,
                   GraphBuildOptions options = {});

    /**
     * Max source→sink flow (tokens/second) via preflow-push. Runs at
     * most once; subsequent calls return the cached value.
     */
    [[nodiscard]] double maxThroughput();

    /**
     * Incrementally repair the flow after setComputeCapacity() calls
     * via PreflowPush::repair(): only flow through the changed arcs
     * is cancelled and re-augmented, instead of a cold re-solve. Also
     * valid on an unsolved graph (degenerates to a full solve).
     * @return the updated max-flow value, which becomes the cached
     *         maxThroughput() value.
     *
     * Live-serving call sites run against TopologyManager's
     * persistent graph, which is coordinator-confined state.
     */
    HELIX_COORDINATOR_ONLY
    [[nodiscard]] double repairFlow();

    /**
     * Update @p node's compute-edge capacity in place (tokens/s),
     * preserving the flow currently recorded on the graph. Zero
     * severs all flow through the node — equivalent to removing it
     * from the graph. Call repairFlow() (or re-solve) afterwards;
     * until then recorded flows may be infeasible.
     */
    HELIX_COORDINATOR_ONLY
    void setComputeCapacity(int node, double capacity);

    /** Forward edge carrying @p node's compute throughput, or
     *  flow::kInvalidEdge when the node holds no layers. */
    [[nodiscard]] flow::EdgeId computeEdge(int node) const;

    /** Flow currently routed through @p node's compute edge (0 for
     *  nodes holding no layers). Requires a solved/repaired flow. */
    [[nodiscard]] double nodeFlow(int node) const;

    /** Flow on the connection from @p from to @p to; endpoints may be
     *  cluster::kCoordinator. Requires maxThroughput() first. */
    [[nodiscard]] double connectionFlow(int from, int to) const;

    /** Whether a connection edge exists between the endpoints. */
    [[nodiscard]] bool hasConnection(int from, int to) const;

    /** All existing directed connections with their flows.
     *  Requires maxThroughput() first. */
    struct ConnectionInfo
    {
        int from = 0; // cluster::kCoordinator or node index
        int to = 0;
        double capacity = 0.0;
        double flow = 0.0;
    };
    [[nodiscard]] std::vector<ConnectionInfo> connections() const;

    /** The underlying flow network (for tests and diagnostics). */
    [[nodiscard]] const flow::FlowGraph &graph() const { return net; }

    [[nodiscard]] flow::NodeId source() const { return src; }
    [[nodiscard]] flow::NodeId sink() const { return dst; }

    /** in/out vertex of a compute node in the flow network. */
    [[nodiscard]] flow::NodeId inVertex(int node) const;
    [[nodiscard]] flow::NodeId outVertex(int node) const;

    /**
     * Map a flow-network vertex back to its cluster endpoint:
     * cluster::kCoordinator for source/sink, otherwise the compute
     * node index. In-vertices return the node; out-vertices too.
     */
    [[nodiscard]] int clusterEndpoint(flow::NodeId vertex) const;

    /** Whether @p vertex is a compute node's in-vertex. */
    [[nodiscard]] bool isInVertex(flow::NodeId vertex) const;

  private:
    const cluster::ClusterSpec &clusterRef;
    const ModelPlacement placementCopy;
    flow::FlowGraph net;
    flow::NodeId src = flow::kInvalidNode;
    flow::NodeId dst = flow::kInvalidNode;
    std::vector<flow::NodeId> inV;
    std::vector<flow::NodeId> outV;
    /** Compute edge (in -> out) per node; kInvalidEdge if no layers. */
    std::vector<flow::EdgeId> compEdge;
    /** Edge id per directed connection, keyed by (from+1)*side+(to+1). */
    std::vector<flow::EdgeId> connEdge;
    int side = 0;
    std::optional<double> cachedFlow;

    int key(int from, int to) const;
};

/**
 * Estimate the throughput a placement can actually serve, combining
 * the max-flow capacity with a Little's-law bound: the cluster's
 * aggregate KV capacity limits concurrently resident requests, and the
 * flow-weighted average pipeline round-trip time (per-stage iteration
 * plus queueing plus link latencies) limits how often each resident
 * request produces a token. Pure max-flow is indifferent between
 * shallow and deep (or cross-region) placements of equal capacity;
 * this estimate is how Helix's planner "balances network overhead with
 * single node's GPU utilization" (Sec. 6.4).
 *
 * @param graph a PlacementGraph for the placement; maxThroughput() is
 *              invoked if not already computed
 * @return estimated tokens/second
 */
[[nodiscard]] double estimateServingThroughput(
    const cluster::ClusterSpec &cluster,
                                 const cluster::Profiler &profiler,
                                 const ModelPlacement &placement,
                                 PlacementGraph &graph);

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_PLACEMENT_GRAPH_H
