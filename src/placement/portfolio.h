/**
 * @file
 * Time-budgeted planner portfolio.
 *
 * No single placement planner dominates across heterogeneity regimes:
 * the budgeted helix search wins on the paper's mixed clusters, but on
 * a homogeneous cluster uniform partitioning is already optimal, and
 * at high node counts the partitioned planner is the only search that
 * finishes. The portfolio runs every member planner concurrently under
 * one wall-clock budget, scores each candidate placement with the
 * max-flow throughput bound (the paper's own objective, Sec. 4.3 — no
 * simulation needed), and returns the argmax together with a
 * per-planner report (time, bound, feasibility).
 *
 * Budget semantics (normative; see docs/PLANNERS.md):
 *
 *  - `budgetS` is the wall-clock budget for the whole portfolio,
 *    search plus scoring, assuming members run concurrently (the
 *    executor runs one task per member; exp::plannerByName wires one
 *    worker thread per member via exp::ExperimentRunner).
 *  - Each member receives a *search* budget of
 *    (budgetS - elapsed-at-start) * (1 - scoreReserveFraction): the
 *    reserve keeps the final max-flow scoring of that member's
 *    placement inside the overall budget. Deterministic heuristics
 *    ignore the budget (they are effectively instantaneous); budgeted
 *    members (helix, helix-pruned, helix-partitioned) honor it as
 *    their internal time limit.
 *  - A member that still overruns is not cancelled (placements are
 *    not preemptible); its entry reports the real wallSeconds so
 *    overruns are visible.
 *
 * Selection is deterministic and independent of the executor's
 * thread count: entries are slotted by member index, feasible
 * placements (placementValid) beat infeasible ones, higher flow bound
 * beats lower, and ties go to the earliest member. With deterministic
 * members the chosen placement is therefore byte-identical across
 * thread counts (pinned in tests/test_portfolio.cpp).
 */

#ifndef HELIX_PLACEMENT_PORTFOLIO_H
#define HELIX_PLACEMENT_PORTFOLIO_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "placement/planners.h"

namespace helix {
namespace placement {

/**
 * Runs a batch of tasks, each exactly once, possibly concurrently.
 * exp::plannerByName injects exp::ExperimentRunner::runTasks here;
 * when absent the portfolio runs its members sequentially.
 */
using TaskExecutor =
    std::function<void(const std::vector<std::function<void()>> &)>;

/**
 * One portfolio member: a registry-style name plus a factory building
 * the planner with a given search budget. The factory runs on the
 * executor's worker threads and must be safe to call concurrently
 * with the other members' factories.
 */
struct PortfolioMember
{
    std::string name;
    std::function<std::unique_ptr<Planner>(double search_budget_s)>
        make;
};

/** Configuration of a planner portfolio. */
struct PortfolioConfig
{
    /** Wall-clock budget for the whole portfolio, in seconds. */
    double budgetS = 2.0;
    /** Fraction of each member's budget reserved for scoring. */
    double scoreReserveFraction = 0.1;
};

/** Outcome of one member (the "per-planner report" row). */
struct PortfolioEntry
{
    std::string planner;
    ModelPlacement placement;
    /** Max-flow throughput bound of the placement, tokens/s. */
    double flowBound = 0.0;
    /** Wall-clock seconds the member spent (search + scoring). */
    double wallSeconds = 0.0;
    /** Whether the placement passes placementValid. */
    bool feasible = false;
};

/** Diagnostics from the most recent PortfolioPlanner::plan() call. */
struct PortfolioReport
{
    /** One entry per member, in member order. */
    std::vector<PortfolioEntry> entries;
    /** Index of the chosen entry; -1 when there are no members. */
    int bestIndex = -1;
    double budgetS = 0.0;
    /** Wall-clock seconds for the whole portfolio. */
    double wallSeconds = 0.0;
};

/**
 * Max-flow throughput bound of @p placement: the max source→sink flow
 * of the placement graph with partial inference enabled and no
 * pruning filter (the paper's Sec. 4.3 objective). This is the
 * portfolio's common yardstick — every candidate is scored on the
 * same unpruned graph regardless of which restrictions its planner
 * searched under. An infeasible placement (some layer uncovered) has
 * no source→sink path and scores 0.
 */
double flowThroughputBound(const cluster::ClusterSpec &cluster,
                           const cluster::Profiler &profiler,
                           const ModelPlacement &placement);

/**
 * The portfolio planner. With no members, plan() returns an empty
 * placement and the report has bestIndex == -1.
 */
class PortfolioPlanner : public Planner
{
  public:
    explicit PortfolioPlanner(std::vector<PortfolioMember> members,
                              PortfolioConfig config = {},
                              TaskExecutor executor = {});

    std::string name() const override { return "portfolio"; }

    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;

    /** Diagnostics for the last plan() call. */
    const PortfolioReport &report() const { return lastReport; }

  private:
    std::vector<PortfolioMember> members;
    PortfolioConfig cfg;
    TaskExecutor exec;
    PortfolioReport lastReport;
};

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_PORTFOLIO_H
