/**
 * @file
 * Partitioned planning: the paper's suggested path to hundreds or
 * thousands of nodes (Sec. 4.5) — "first partition the nodes into
 * multiple smaller clusters using heuristics and then apply Helix
 * independently".
 *
 * The partitioner groups nodes (by region by default, splitting large
 * groups to respect a size cap while keeping each partition able to
 * hold the whole model), plans each partition with an inner planner,
 * and merges the per-partition placements into one placement for the
 * full cluster. Requests then flow through per-partition pipelines;
 * the merged placement is directly usable by the scheduler and
 * simulator.
 */

#ifndef HELIX_PLACEMENT_PARTITIONED_PLANNER_H
#define HELIX_PLACEMENT_PARTITIONED_PLANNER_H

#include <functional>
#include <vector>

#include "placement/helix_planner.h"
#include "placement/planners.h"

namespace helix {
namespace placement {

/** A partition: indices of the member nodes in the parent cluster. */
using Partition = std::vector<int>;

/**
 * Partition a cluster for independent planning. Nodes are grouped by
 * region; groups larger than @p max_partition_nodes are split. Groups
 * whose aggregate half-VRAM capacity cannot hold the model are merged
 * with the next group (a partition that cannot serve the model alone
 * is useless).
 *
 * @return partitions covering every node exactly once.
 */
std::vector<Partition> partitionByRegion(
    const cluster::ClusterSpec &cluster,
    const cluster::Profiler &profiler, int max_partition_nodes);

/**
 * Plans each partition independently with a Helix planner and merges
 * the results. Scales planning to clusters far beyond what a single
 * MILP / search instance handles, at the cost of forbidding
 * cross-partition pipelines.
 */
class PartitionedPlanner : public Planner
{
  public:
    /**
     * @param config inner Helix planner configuration (the time
     *               budget is split across partitions)
     * @param max_partition_nodes partition size cap
     */
    explicit PartitionedPlanner(HelixPlannerConfig config = {},
                                int max_partition_nodes = 16)
        : cfg(config), maxPartitionNodes(max_partition_nodes)
    {
    }

    std::string name() const override { return "helix-partitioned"; }

    ModelPlacement plan(const cluster::ClusterSpec &cluster,
                        const cluster::Profiler &profiler) override;

    /** Partitions used by the last plan() call. */
    const std::vector<Partition> &partitions() const
    {
        return lastPartitions;
    }

  private:
    HelixPlannerConfig cfg;
    int maxPartitionNodes;
    std::vector<Partition> lastPartitions;
};

} // namespace placement
} // namespace helix

#endif // HELIX_PLACEMENT_PARTITIONED_PLANNER_H
