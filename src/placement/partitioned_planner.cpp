#include "placement/partitioned_planner.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>

#include "util/logging.h"

namespace helix {
namespace placement {

namespace {

/** Sum of half-VRAM layer capacity over @p members. */
int
layerCapacity(const Partition &members,
              const cluster::ClusterSpec &cluster,
              const cluster::Profiler &profiler)
{
    int capacity = 0;
    for (int node : members)
        capacity += profiler.maxLayers(cluster.node(node));
    return capacity;
}

/**
 * Build a sub-cluster containing only @p members, preserving node
 * hardware and the links among them (and to the coordinator).
 */
cluster::ClusterSpec
subCluster(const cluster::ClusterSpec &cluster,
           const Partition &members)
{
    cluster::ClusterSpec sub;
    for (int node : members)
        sub.addNode(cluster.node(node));
    // Materialize the link matrix member-by-member.
    sub.setUniformLinks(0.0, 0.0);
    int m = static_cast<int>(members.size());
    for (int a = cluster::kCoordinator; a < m; ++a) {
        for (int b = cluster::kCoordinator; b < m; ++b) {
            if (a == b)
                continue;
            int from = a == cluster::kCoordinator
                           ? cluster::kCoordinator
                           : members[a];
            int to = b == cluster::kCoordinator ? cluster::kCoordinator
                                                : members[b];
            sub.setLink(a, b, cluster.link(from, to));
        }
    }
    return sub;
}

} // namespace

std::vector<Partition>
partitionByRegion(const cluster::ClusterSpec &cluster,
                  const cluster::Profiler &profiler,
                  int max_partition_nodes)
{
    HELIX_ASSERT(max_partition_nodes > 0);
    const int num_layers = profiler.modelSpec().numLayers;

    // Group by region first.
    std::map<int, Partition> by_region;
    for (int i = 0; i < cluster.numNodes(); ++i)
        by_region[cluster.node(i).region].push_back(i);

    // Split oversized groups; a split piece must still be able to
    // hold the model, otherwise keep growing it.
    std::vector<Partition> partitions;
    for (auto &[region, members] : by_region) {
        (void)region;
        Partition current;
        for (int node : members) {
            current.push_back(node);
            if (static_cast<int>(current.size()) >=
                    max_partition_nodes &&
                layerCapacity(current, cluster, profiler) >=
                    num_layers) {
                partitions.push_back(std::move(current));
                current.clear();
            }
        }
        if (!current.empty())
            partitions.push_back(std::move(current));
    }

    // Merge partitions that cannot hold the model alone into their
    // successor (wrapping to the previous one at the end).
    std::vector<Partition> merged;
    Partition pending;
    for (auto &partition : partitions) {
        pending.insert(pending.end(), partition.begin(),
                       partition.end());
        if (layerCapacity(pending, cluster, profiler) >= num_layers) {
            merged.push_back(std::move(pending));
            pending.clear();
        }
    }
    if (!pending.empty()) {
        if (merged.empty()) {
            merged.push_back(std::move(pending));
        } else {
            merged.back().insert(merged.back().end(), pending.begin(),
                                 pending.end());
        }
    }
    return merged;
}

ModelPlacement
PartitionedPlanner::plan(const cluster::ClusterSpec &cluster,
                         const cluster::Profiler &profiler)
{
    lastPartitions =
        partitionByRegion(cluster, profiler, maxPartitionNodes);
    HELIX_ASSERT(!lastPartitions.empty());

    ModelPlacement placement;
    placement.nodes.assign(cluster.numNodes(), {0, 0});

    // Deadline-driven budget split: each partition gets an equal
    // share of the budget *remaining* when it starts, so fixed
    // per-partition overheads (sub-cluster construction, warm-start
    // heuristics) eat into later shares instead of accumulating on
    // top of the total — with many partitions the static
    // budget/partitions split overran the budget by the summed
    // overheads.
    const auto start = std::chrono::steady_clock::now();
    for (size_t p = 0; p < lastPartitions.size(); ++p) {
        const Partition &members = lastPartitions[p];
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        HelixPlannerConfig inner_config = cfg;
        inner_config.timeBudgetSeconds =
            std::max(0.0, cfg.timeBudgetSeconds - elapsed) /
            static_cast<double>(lastPartitions.size() - p);
        cluster::ClusterSpec sub = subCluster(cluster, members);
        HelixPlanner inner(inner_config);
        ModelPlacement sub_placement = inner.plan(sub, profiler);
        for (size_t i = 0; i < members.size(); ++i)
            placement[members[i]] = sub_placement[i];
    }
    return placement;
}

} // namespace placement
} // namespace helix
