/**
 * @file
 * Reproduces Table 1 (minimum numbers of GPUs required to serve LLMs
 * when half of GPU memory holds parameters and half holds KV-cache)
 * and dumps the Table 3 GPU property sheet.
 */

#include <cmath>
#include <cstdio>

#include "cluster/gpu.h"
#include "model/transformer.h"

int
main()
{
    using namespace helix;

    std::printf("=== Table 3: GPU properties (datasheet) ===\n");
    std::printf("%-10s %12s %10s %14s %8s\n", "GPU", "FP16 TFLOPs",
                "Mem (GB)", "BW (GB/s)", "Power");
    for (const auto &gpu : cluster::gpus::all()) {
        std::printf("%-10s %12.0f %10.0f %14.0f %8.0f\n",
                    gpu.name.c_str(), gpu.tflopsFp16, gpu.memoryGiB,
                    gpu.memBandwidthGBs, gpu.powerW);
    }

    std::printf("\n=== Table 1: minimum GPUs to serve each LLM "
                "(half VRAM for weights) ===\n");
    std::printf("%-14s %10s %8s %8s %8s\n", "model", "params (B)",
                "L4", "A100", "H100");

    const model::TransformerSpec models[] = {
        model::catalog::llama70b(),
        model::catalog::gpt3_175b(),
        model::catalog::grok1_314b(),
        model::catalog::llama3_405b(),
    };
    const cluster::GpuSpec gpus[] = {
        cluster::gpus::l4(),
        cluster::gpus::a100_40(),
        cluster::gpus::h100(),
    };

    for (const auto &model_spec : models) {
        double weight_bytes =
            static_cast<double>(model_spec.totalParams()) *
            model_spec.dtypeBytes;
        std::printf("%-14s %10.0f", model_spec.name.c_str(),
                    static_cast<double>(model_spec.totalParams()) /
                        1e9);
        for (const auto &gpu : gpus) {
            // Half of each GPU's memory stores parameters.
            double budget_per_gpu =
                static_cast<double>(gpu.memoryBytes()) * 0.5;
            int needed = static_cast<int>(
                std::ceil(weight_bytes / budget_per_gpu));
            std::printf(" %8d", needed);
        }
        std::printf("\n");
    }
    std::printf("\npaper reference (Table 1): LLaMA-2 70B: 12/7/4, "
                "GPT-3: 30/18/9,\n  Grok-1: 53/32/16, "
                "LLaMA-3 405B: 68/41/21\n");
    return 0;
}
