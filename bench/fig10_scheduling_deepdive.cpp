/**
 * @file
 * Reproduces Fig. 10: the request-scheduling deep dive. Every method
 * runs on the model placement found by Helix (isolating scheduling
 * quality): Helix's IWRR per-request pipelines vs Swarm-style
 * throughput-proportional routing, random routing, and (geo only in
 * the paper; both here) shortest-queue-first. Per-link congestion
 * statistics reproduce the Fig. 10b case-study observation that bad
 * scheduling causes prompt-phase queueing on slow links.
 *
 * Paper reference points: Helix gains 30% / 29% over Swarm / random
 * scheduling on the single cluster, 22% / 15% / 19% over Swarm /
 * random / shortest-queue on the geo clusters, where baselines show
 * 5-16 s prompt queueing on congested links.
 */

#include <algorithm>
#include <vector>

#include "bench_common.h"

namespace {

using namespace helix;
using namespace helix::bench;

void
runSetting(const cluster::ClusterSpec &clus, const char *setting,
           const Scale &scale)
{
    model::TransformerSpec model_spec = model::catalog::llama70b();

    placement::HelixPlannerConfig planner_config;
    planner_config.timeBudgetSeconds = scale.plannerBudgetS;
    placement::HelixPlanner helix_planner(planner_config);
    Deployment dep(clus, model_spec, helix_planner);

    const SchedulerKind kinds[] = {
        SchedulerKind::Helix,
        SchedulerKind::Swarm,
        SchedulerKind::Random,
        SchedulerKind::ShortestQueue,
    };

    std::vector<SystemResult> rows;
    std::vector<sim::SimMetrics> all_metrics;
    for (SchedulerKind kind : kinds) {
        auto sched = makeScheduler(dep, kind);
        RunConfig run = offlineRun(scale);
        run.collectLinkStats = true;
        SystemResult row;
        row.system = toString(kind);
        row.plannedThroughput = dep.plannedThroughput();
        row.metrics = runExperiment(dep, *sched, run);
        all_metrics.push_back(row.metrics);
        rows.push_back(std::move(row));
    }

    std::string title =
        std::string("Fig. 10a - scheduling deep dive, ") + setting +
        " (Helix placement everywhere)";
    printHeader(title.c_str());
    for (const auto &row : rows)
        printRow(row);
    printRatios(rows);

    // Fig. 10b case study: worst link queueing delay per scheduler.
    std::printf("\nlink congestion (max transfer queueing delay, "
                "seconds):\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        double worst = 0.0;
        int from = 0;
        int to = 0;
        for (const auto &link : all_metrics[i].linkStats) {
            if (link.maxQueueDelayS > worst) {
                worst = link.maxQueueDelayS;
                from = link.from;
                to = link.to;
            }
        }
        auto name = [&](int endpoint) {
            return endpoint == cluster::kCoordinator
                       ? std::string("coord")
                       : clus.node(endpoint).name;
        };
        std::printf("  %-15s worst link %s -> %s: %.2f s\n",
                    rows[i].system.c_str(), name(from).c_str(),
                    name(to).c_str(), worst);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Scale scale = Scale::fromArgs(argc, argv);
    runSetting(cluster::setups::singleCluster24(), "single cluster",
               scale);
    runSetting(cluster::setups::geoDistributed24(), "geo-distributed",
               scale);
    std::printf("\npaper reference: helix +30%%/+29%% over "
                "swarm/random (single); +22%%/+15%%/+19%% over "
                "swarm/random/shortest-queue (geo)\n");
    return 0;
}
