/**
 * @file
 * Reproduces Fig. 6: single-cluster serving (4 A100 + 8 L4 + 12 T4,
 * 10 Gb/s) of LLaMA 30B and LLaMA 70B, offline and online, comparing
 * Helix against the Swarm and separate-pipelines (SP) baselines.
 *
 * Paper reference points: for 70B, Helix achieves 2.14x (offline) /
 * 2.07x (online) Swarm's decode throughput and 1.86x / 1.69x SP's;
 * for 30B (where per-type replicas are feasible) Helix and SP are
 * close while Swarm trails ~2x.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus = cluster::setups::singleCluster24();
    std::printf("cluster: %s\n", clus.summary().c_str());

    const model::TransformerSpec models[] = {
        model::catalog::llama30b(),
        model::catalog::llama70b(),
    };

    for (const auto &model_spec : models) {
        placement::HelixPlannerConfig planner_config;
        planner_config.timeBudgetSeconds = scale.plannerBudgetS;
        placement::HelixPlanner helix_planner(planner_config);
        placement::SwarmPlanner swarm_planner;
        placement::SeparatePipelinesPlanner sp_planner(false);

        // Declarative figure config over the shared experiment
        // engine: offline (Fig. 6a/c) then online (Fig. 6b/d, e-h).
        runFigureComparison(
            clus, model_spec,
            {{"helix", &helix_planner, SchedulerKind::Helix},
             {"swarm", &swarm_planner, SchedulerKind::Swarm},
             {"sp", &sp_planner, SchedulerKind::FixedRoundRobin}},
            scale, model_spec.name + " - offline (Fig. 6a/c)",
            model_spec.name + " - online (Fig. 6b/d, e-h)");
    }

    std::printf("\npaper reference (70B): helix/swarm 2.14x offline, "
                "2.07x online; helix/sp 1.86x / 1.69x\n");
    return 0;
}
