/**
 * @file
 * Reproduces Fig. 6: single-cluster serving (4 A100 + 8 L4 + 12 T4,
 * 10 Gb/s) of LLaMA 30B and LLaMA 70B, offline and online, comparing
 * Helix against the Swarm and separate-pipelines (SP) baselines.
 *
 * The comparison is a declarative spec over the shared experiment
 * engine — examples/fig6.exp is the same configuration as a text
 * file, so `helixctl run examples/fig6.exp` executes the identical
 * code path as this binary with `--smoke`.
 *
 * Paper reference points: for 70B, Helix achieves 2.14x (offline) /
 * 2.07x (online) Swarm's decode throughput and 1.86x / 1.69x SP's;
 * for 30B (where per-type replicas are feasible) Helix and SP are
 * close while Swarm trails ~2x.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus = *exp::clusterByName("single24");
    std::printf("cluster: %s\n", clus.summary().c_str());

    const std::vector<System> systems = {
        {"helix", "helix", "helix"},
        {"swarm", "swarm", "swarm"},
        {"sp", "sp", "fixed-rr"},
    };

    for (const char *model_name : {"llama30b", "llama70b"}) {
        std::string display = exp::modelByName(model_name)->name;
        runFigureComparison(
            "single24", model_name, systems, scale,
            display + " - offline (Fig. 6a/c)",
            display + " - online (Fig. 6b/d, e-h)");
    }

    std::printf("\npaper reference (70B): helix/swarm 2.14x offline, "
                "2.07x online; helix/sp 1.86x / 1.69x\n");
    return 0;
}
