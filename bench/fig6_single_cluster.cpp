/**
 * @file
 * Reproduces Fig. 6: single-cluster serving (4 A100 + 8 L4 + 12 T4,
 * 10 Gb/s) of LLaMA 30B and LLaMA 70B, offline and online, comparing
 * Helix against the Swarm and separate-pipelines (SP) baselines.
 *
 * Paper reference points: for 70B, Helix achieves 2.14x (offline) /
 * 2.07x (online) Swarm's decode throughput and 1.86x / 1.69x SP's;
 * for 30B (where per-type replicas are feasible) Helix and SP are
 * close while Swarm trails ~2x.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus = cluster::setups::singleCluster24();
    std::printf("cluster: %s\n", clus.summary().c_str());

    const model::TransformerSpec models[] = {
        model::catalog::llama30b(),
        model::catalog::llama70b(),
    };

    for (const auto &model_spec : models) {
        placement::HelixPlannerConfig planner_config;
        planner_config.timeBudgetSeconds = scale.plannerBudgetS;
        placement::HelixPlanner helix_planner(planner_config);
        placement::SwarmPlanner swarm_planner;
        placement::SeparatePipelinesPlanner sp_planner(false);

        struct System
        {
            const char *name;
            placement::Planner *planner;
            SchedulerKind scheduler;
        };
        System systems[] = {
            {"helix", &helix_planner, SchedulerKind::Helix},
            {"swarm", &swarm_planner, SchedulerKind::Swarm},
            {"sp", &sp_planner, SchedulerKind::FixedRoundRobin},
        };

        // --- Offline (Fig. 6a/c) ---
        std::vector<Deployment> deployments;
        std::vector<SystemResult> offline_rows;
        deployments.reserve(3);
        for (const System &sys : systems) {
            deployments.emplace_back(clus, model_spec, *sys.planner);
            Deployment &dep = deployments.back();
            auto sched = makeScheduler(dep, sys.scheduler);
            SystemResult row;
            row.system = sys.name;
            row.plannedThroughput = dep.plannedThroughput();
            row.metrics =
                runExperiment(dep, *sched, offlineRun(scale));
            offline_rows.push_back(std::move(row));
        }
        std::string title = model_spec.name + " - offline (Fig. 6a/c)";
        printHeader(title.c_str());
        for (const auto &row : offline_rows)
            printRow(row);
        printRatios(offline_rows);

        // --- Online (Fig. 6b/d + latency panels e-h) ---
        double peak = offline_rows.front().metrics.decodeThroughput;
        std::vector<SystemResult> online_rows;
        for (size_t i = 0; i < deployments.size(); ++i) {
            auto sched =
                makeScheduler(deployments[i], systems[i].scheduler);
            SystemResult row;
            row.system = systems[i].name;
            row.plannedThroughput =
                deployments[i].plannedThroughput();
            row.metrics = runExperiment(deployments[i], *sched,
                                        onlineRun(scale, peak));
            online_rows.push_back(std::move(row));
        }
        title = model_spec.name + " - online (Fig. 6b/d, e-h)";
        printHeader(title.c_str());
        for (const auto &row : online_rows)
            printRow(row);
        printRatios(online_rows);
    }

    std::printf("\npaper reference (70B): helix/swarm 2.14x offline, "
                "2.07x online; helix/sp 1.86x / 1.69x\n");
    return 0;
}
