/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses. Each harness
 * regenerates one table or figure of the paper's evaluation and prints
 * the corresponding rows; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef HELIX_BENCH_BENCH_COMMON_H
#define HELIX_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/helix.h"
#include "exp/experiment.h"

namespace helix {
namespace bench {

/**
 * Experiment scale knobs. Three tiers:
 *  - full (default): the paper's warmup/measure windows;
 *  - fast (HELIX_BENCH_FAST env): reduced windows for quick local runs;
 *  - smoke (`--smoke` flag): minimal windows so CTest can exercise
 *    every figure end-to-end in about a second per binary.
 */
struct Scale
{
    double plannerBudgetS = 6.0;
    double offlineWarmupS = 120.0;
    double offlineMeasureS = 180.0;
    double onlineWarmupS = 60.0;
    double onlineMeasureS = 180.0;

    static Scale
    fromEnv()
    {
        Scale scale;
        if (std::getenv("HELIX_BENCH_FAST")) {
            scale.plannerBudgetS = 2.0;
            scale.offlineWarmupS = 30.0;
            scale.offlineMeasureS = 60.0;
            scale.onlineWarmupS = 20.0;
            scale.onlineMeasureS = 60.0;
        }
        return scale;
    }

    /**
     * Parse command-line flags on top of the environment defaults.
     * `--smoke` overrides everything with the minimal tier.
     */
    static Scale
    fromArgs(int argc, char **argv)
    {
        Scale scale = fromEnv();
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--smoke") == 0) {
                scale.plannerBudgetS = 0.05;
                scale.offlineWarmupS = 1.0;
                scale.offlineMeasureS = 3.0;
                scale.onlineWarmupS = 1.0;
                scale.onlineMeasureS = 3.0;
            } else {
                std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
                std::exit(2);
            }
        }
        return scale;
    }
};

/** One measured row of a throughput/latency comparison. */
struct SystemResult
{
    std::string system;
    double plannedThroughput = 0.0;
    sim::SimMetrics metrics;
};

/** Print the standard comparison header. */
inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
    std::printf("%-10s %10s %12s %12s %12s %12s %12s\n", "system",
                "planned", "decode t/s", "p-lat mean", "p-lat p95",
                "d-lat mean", "d-lat p95");
}

/** Print one comparison row. */
inline void
printRow(const SystemResult &row)
{
    std::printf("%-10s %10.0f %12.1f %12.2f %12.2f %12.3f %12.3f\n",
                row.system.c_str(), row.plannedThroughput,
                row.metrics.decodeThroughput,
                row.metrics.promptLatency.mean(),
                row.metrics.promptLatency.percentile(95),
                row.metrics.decodeLatency.mean(),
                row.metrics.decodeLatency.percentile(95));
}

/** Print pairwise throughput ratios against the first (Helix) row. */
inline void
printRatios(const std::vector<SystemResult> &rows)
{
    if (rows.empty())
        return;
    double helix = rows.front().metrics.decodeThroughput;
    for (size_t i = 1; i < rows.size(); ++i) {
        double other = rows[i].metrics.decodeThroughput;
        std::printf("helix / %-8s throughput ratio: %.2fx\n",
                    rows[i].system.c_str(),
                    other > 0 ? helix / other : 0.0);
    }
}

/** One system under test in a figure comparison. */
struct System
{
    const char *name;
    placement::Planner *planner;
    SchedulerKind scheduler;
};

/** Offline run configuration at the given scale. */
inline RunConfig
offlineRun(const Scale &scale, uint64_t seed = 42)
{
    RunConfig run;
    run.online = false;
    run.warmupSeconds = scale.offlineWarmupS;
    run.measureSeconds = scale.offlineMeasureS;
    run.seed = seed;
    return run;
}

/**
 * Online run configuration: arrival rate fixed at 75% of the measured
 * offline peak (Sec. 6.2 scales the trace to 75% of the cluster's
 * peak throughput), shared by every system under test.
 */
inline RunConfig
onlineRun(const Scale &scale, double offline_decode_tokens_per_s,
          uint64_t seed = 43)
{
    RunConfig run;
    run.online = true;
    run.warmupSeconds = scale.onlineWarmupS;
    run.measureSeconds = scale.onlineMeasureS;
    run.seed = seed;
    trace::LengthModel lengths;
    run.requestRate = 0.75 * offline_decode_tokens_per_s /
                      lengths.targetMeanOutput;
    return run;
}

/**
 * Run one figure's offline + online comparison for @p model_spec over
 * @p systems through the shared experiment-runner engine, printing
 * the standard tables. Each system is planned once; the offline batch
 * and the online batch (whose arrival rate is 75% of the measured
 * offline Helix peak, Sec. 6.2) each execute on the runner's thread
 * pool. Results are byte-identical to invoking runExperiment()
 * per system directly.
 */
inline void
runFigureComparison(const cluster::ClusterSpec &clus,
                    const model::TransformerSpec &model_spec,
                    const std::vector<System> &systems,
                    const Scale &scale,
                    const std::string &offline_title,
                    const std::string &online_title)
{
    std::vector<Deployment> deployments;
    deployments.reserve(systems.size());
    for (const System &sys : systems)
        deployments.emplace_back(clus, model_spec, *sys.planner);

    exp::ExperimentRunner runner;
    auto make_jobs = [&](const RunConfig &run) {
        std::vector<exp::Job> jobs;
        jobs.reserve(systems.size());
        for (size_t i = 0; i < systems.size(); ++i) {
            exp::Job job;
            job.label = systems[i].name;
            job.deployment = &deployments[i];
            job.scheduler = systems[i].scheduler;
            job.run = run;
            jobs.push_back(std::move(job));
        }
        return jobs;
    };
    auto to_rows = [](const std::vector<exp::JobResult> &results) {
        std::vector<SystemResult> rows;
        rows.reserve(results.size());
        for (const exp::JobResult &result : results) {
            SystemResult row;
            row.system = result.label;
            row.plannedThroughput = result.plannedThroughput;
            row.metrics = result.metrics;
            rows.push_back(std::move(row));
        }
        return rows;
    };

    auto offline_rows =
        to_rows(runner.run(make_jobs(offlineRun(scale))));
    printHeader(offline_title.c_str());
    for (const auto &row : offline_rows)
        printRow(row);
    printRatios(offline_rows);

    double peak = offline_rows.front().metrics.decodeThroughput;
    auto online_rows =
        to_rows(runner.run(make_jobs(onlineRun(scale, peak))));
    printHeader(online_title.c_str());
    for (const auto &row : online_rows)
        printRow(row);
    printRatios(online_rows);
}

} // namespace bench
} // namespace helix

#endif // HELIX_BENCH_BENCH_COMMON_H
