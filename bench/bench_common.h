/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses. Each harness
 * regenerates one table or figure of the paper's evaluation and prints
 * the corresponding rows; EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef HELIX_BENCH_BENCH_COMMON_H
#define HELIX_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/helix.h"
#include "exp/experiment.h"
#include "exp/spec.h"

namespace helix {
namespace bench {

/**
 * Experiment scale knobs. Three tiers:
 *  - full (default): the paper's warmup/measure windows;
 *  - fast (HELIX_BENCH_FAST env): reduced windows for quick local runs;
 *  - smoke (`--smoke` flag): minimal windows so CTest can exercise
 *    every figure end-to-end in about a second per binary.
 */
struct Scale
{
    double plannerBudgetS = 6.0;
    double offlineWarmupS = 120.0;
    double offlineMeasureS = 180.0;
    double onlineWarmupS = 60.0;
    double onlineMeasureS = 180.0;

    static Scale
    fromEnv()
    {
        Scale scale;
        if (std::getenv("HELIX_BENCH_FAST")) {
            scale.plannerBudgetS = 2.0;
            scale.offlineWarmupS = 30.0;
            scale.offlineMeasureS = 60.0;
            scale.onlineWarmupS = 20.0;
            scale.onlineMeasureS = 60.0;
        }
        return scale;
    }

    /**
     * Parse command-line flags on top of the environment defaults.
     * `--smoke` overrides everything with the minimal tier.
     */
    static Scale
    fromArgs(int argc, char **argv)
    {
        Scale scale = fromEnv();
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--smoke") == 0) {
                scale.plannerBudgetS = 0.05;
                scale.offlineWarmupS = 1.0;
                scale.offlineMeasureS = 3.0;
                scale.onlineWarmupS = 1.0;
                scale.onlineMeasureS = 3.0;
            } else {
                std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
                std::exit(2);
            }
        }
        return scale;
    }
};

/** One measured row of a throughput/latency comparison. */
struct SystemResult
{
    std::string system;
    double plannedThroughput = 0.0;
    sim::SimMetrics metrics;
};

/** Print the standard comparison header. */
inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
    std::printf("%-10s %10s %12s %12s %12s %12s %12s\n", "system",
                "planned", "decode t/s", "p-lat mean", "p-lat p95",
                "d-lat mean", "d-lat p95");
}

/** Print one comparison row. */
inline void
printRow(const SystemResult &row)
{
    std::printf("%-10s %10.0f %12.1f %12.2f %12.2f %12.3f %12.3f\n",
                row.system.c_str(), row.plannedThroughput,
                row.metrics.decodeThroughput,
                row.metrics.promptLatency.mean(),
                row.metrics.promptLatency.percentile(95),
                row.metrics.decodeLatency.mean(),
                row.metrics.decodeLatency.percentile(95));
}

/** Print pairwise throughput ratios against the first (Helix) row. */
inline void
printRatios(const std::vector<SystemResult> &rows)
{
    if (rows.empty())
        return;
    double helix = rows.front().metrics.decodeThroughput;
    for (size_t i = 1; i < rows.size(); ++i) {
        double other = rows[i].metrics.decodeThroughput;
        std::printf("helix / %-8s throughput ratio: %.2fx\n",
                    rows[i].system.c_str(),
                    other > 0 ? helix / other : 0.0);
    }
}

/** Offline run configuration at the given scale (deep-dive benches;
 *  the figure comparisons get the equivalent from their spec). */
inline RunConfig
offlineRun(const Scale &scale, uint64_t seed = 42)
{
    RunConfig run;
    run.online = false;
    run.warmupSeconds = scale.offlineWarmupS;
    run.measureSeconds = scale.offlineMeasureS;
    run.seed = seed;
    return run;
}

/**
 * One system under test in a figure comparison, named via the
 * src/exp registries (see exp::plannerNames / exp::schedulerNames).
 */
struct System
{
    const char *name;
    const char *planner;
    const char *scheduler;
};

/**
 * The declarative spec for one figure's offline + online comparison:
 * offline (saturating Poisson, seed 42), then online at 75% of the
 * first system's measured offline peak (Sec. 6.2, seed 43). This is
 * the exact structure examples/fig6.exp (and friends) carry as text;
 * the figure binaries and `helixctl run` execute it through the same
 * exp::runSpec engine.
 */
inline io::ExperimentSpec
figureSpec(const std::string &figure_name, const char *cluster,
           const std::vector<const char *> &models,
           const std::vector<System> &systems, const Scale &scale)
{
    io::ExperimentSpec spec;
    spec.name = figure_name;
    spec.seed = 42;
    spec.warmupS = scale.offlineWarmupS;
    spec.measureS = scale.offlineMeasureS;
    spec.plannerBudgetS = scale.plannerBudgetS;
    spec.clusters.push_back({cluster, 0});
    for (const char *model : models)
        spec.models.push_back({model, 0});
    for (const System &sys : systems)
        spec.systems.push_back({sys.name, sys.planner, sys.scheduler, 0});
    io::ScenarioSpec offline;
    offline.kind = "offline";
    io::ScenarioSpec online;
    online.kind = "online-peak";
    online.options = {{"fraction", 0.75},
                      {"seed", 43.0},
                      {"warmup", scale.onlineWarmupS},
                      {"measure", scale.onlineMeasureS}};
    spec.scenarios = {offline, online};
    return spec;
}

/**
 * Run one figure's offline + online comparison for @p model (a model
 * registry name) over @p systems through the shared spec engine,
 * printing the standard tables. Each system is planned once; the
 * offline batch and the online batch (whose arrival rate is 75% of
 * the measured offline peak of the first — Helix — system, Sec. 6.2)
 * each execute on the runner's thread pool. This is exactly
 * `helixctl run` on the equivalent spec file.
 */
inline void
runFigureComparison(const char *cluster_name, const char *model_name,
                    const std::vector<System> &systems,
                    const Scale &scale,
                    const std::string &offline_title,
                    const std::string &online_title)
{
    io::ExperimentSpec spec = figureSpec(
        "figure", cluster_name, {model_name}, systems, scale);
    io::ParseError error;
    auto results = exp::runSpec(spec, &error);
    if (!results) {
        std::fprintf(stderr, "invalid figure spec: %s\n",
                     error.str().c_str());
        std::exit(1);
    }

    auto to_rows = [&](size_t first) {
        std::vector<SystemResult> rows;
        rows.reserve(systems.size());
        for (size_t i = 0; i < systems.size(); ++i) {
            const exp::JobResult &result = results->at(first + i);
            SystemResult row;
            row.system = systems[i].name;
            row.plannedThroughput = result.plannedThroughput;
            row.metrics = result.metrics;
            rows.push_back(std::move(row));
        }
        return rows;
    };

    auto offline_rows = to_rows(0);
    printHeader(offline_title.c_str());
    for (const auto &row : offline_rows)
        printRow(row);
    printRatios(offline_rows);

    auto online_rows = to_rows(systems.size());
    printHeader(online_title.c_str());
    for (const auto &row : online_rows)
        printRow(row);
    printRatios(online_rows);
}

} // namespace bench
} // namespace helix

#endif // HELIX_BENCH_BENCH_COMMON_H
