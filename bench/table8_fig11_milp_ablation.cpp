/**
 * @file
 * Reproduces Table 8 and Fig. 11: the MILP-optimization ablations.
 *
 *  - Table 8: MILP problem size (variables / constraints) with and
 *    without cluster pruning for the 24-node (geo) and 42-node
 *    (high-heterogeneity) settings.
 *  - Fig. 11a: serving throughput of the placement found with and
 *    without pruning under the same optimization budget.
 *  - Fig. 11b: wall-clock planning time to reach the final placement
 *    quality with and without heuristic warm starts.
 */

#include <cstdio>

#include "bench_common.h"
#include "placement/milp_formulation.h"

namespace {

using namespace helix;
using namespace helix::bench;

void
tableEight(const cluster::ClusterSpec &clus, const char *name,
           const cluster::Profiler &profiler)
{
    placement::MilpFormulation full(clus, profiler);
    auto filter =
        placement::ConnectionFilter::pruneByBandwidth(clus, 12);
    placement::MilpBuildOptions options;
    options.filter = &filter;
    placement::MilpFormulation pruned(clus, profiler, options);
    std::printf("%-10s %8d var %8d cstr   |   %8d var %8d cstr\n",
                name, pruned.numVariables(), pruned.numConstraints(),
                full.numVariables(), full.numConstraints());
}

double
planAndMeasure(const cluster::ClusterSpec &clus,
               const model::TransformerSpec &model_spec,
               bool use_pruning, bool use_warm_starts,
               const Scale &scale, double *time_to_best)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = scale.plannerBudgetS;
    config.usePruning = use_pruning;
    config.useWarmStarts = use_warm_starts;
    placement::HelixPlanner planner(config);
    Deployment dep(clus, model_spec, planner);
    if (time_to_best) {
        // Time at which the incumbent last improved: the paper's
        // Fig. 11b metric is time to reach the final quality.
        const auto &progress = planner.report().progress;
        *time_to_best =
            progress.empty() ? 0.0 : progress.back().seconds;
    }
    auto sched = makeScheduler(dep, SchedulerKind::Helix);
    auto metrics = runExperiment(dep, *sched, offlineRun(scale));
    return metrics.decodeThroughput;
}

} // namespace

int
main(int argc, char **argv)
{
    Scale scale = Scale::fromArgs(argc, argv);
    model::TransformerSpec model_spec = model::catalog::llama70b();
    cluster::Profiler profiler(model_spec);

    cluster::ClusterSpec geo = cluster::setups::geoDistributed24();
    cluster::ClusterSpec hetero =
        cluster::setups::highHeterogeneity42();

    std::printf("=== Table 8: MILP problem size, with pruning | "
                "without pruning ===\n");
    tableEight(geo, "24-node", profiler);
    tableEight(hetero, "42-node", profiler);
    std::printf("paper reference: 24-node 876/1122 vs 1376/1848; "
                "42-node 2144/2772 vs 4004/5502\n");

    std::printf("\n=== Fig. 11a: decode throughput with/without "
                "cluster pruning ===\n");
    std::printf("%-10s %14s %14s\n", "setting", "pruned t/s",
                "unpruned t/s");
    for (auto *entry : {&geo, &hetero}) {
        const char *name = entry == &geo ? "24-node" : "42-node";
        double pruned = planAndMeasure(*entry, model_spec, true, true,
                                       scale, nullptr);
        double unpruned = planAndMeasure(*entry, model_spec, false,
                                         true, scale, nullptr);
        std::printf("%-10s %14.1f %14.1f\n", name, pruned, unpruned);
    }
    std::printf("paper reference: pruning gives +16%% (24-node) and "
                "+2%% (42-node) under equal budget\n");

    std::printf("\n=== Fig. 11b: planning time with/without heuristic "
                "warm starts ===\n");
    std::printf("%-10s %16s %16s %16s %16s\n", "setting", "warm t/s",
                "warm best@ (s)", "cold t/s", "cold best@ (s)");
    for (auto *entry : {&geo, &hetero}) {
        const char *name = entry == &geo ? "24-node" : "42-node";
        double warm_seconds = 0.0;
        double cold_seconds = 0.0;
        double warm = planAndMeasure(*entry, model_spec, true, true,
                                     scale, &warm_seconds);
        double cold = planAndMeasure(*entry, model_spec, true, false,
                                     scale, &cold_seconds);
        std::printf("%-10s %16.1f %16.2f %16.1f %16.2f\n", name, warm,
                    warm_seconds, cold, cold_seconds);
    }
    std::printf("paper reference: warm starts cut planning time by "
                "43%% (24-node) and 8%% (42-node)\n");
    return 0;
}
