/**
 * @file
 * Google-benchmark microbenchmarks for the algorithmic substrates:
 * preflow-push vs Dinic max-flow, placement-graph construction and
 * evaluation, simplex LP solves, IWRR picks, and scheduler walks.
 * These quantify the per-candidate cost of the placement search and
 * the per-request cost of scheduling.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "cluster/cluster.h"
#include "cluster/generator.h"
#include "cluster/profiler.h"
#include "flow/max_flow.h"
#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "placement/planners.h"
#include "scheduler/scheduler.h"
#include "util/random.h"

namespace {

using namespace helix;

flow::FlowGraph
randomGraph(int n, int m, uint64_t seed)
{
    Rng rng(seed);
    flow::FlowGraph graph;
    for (int i = 0; i < n; ++i)
        graph.addNode();
    for (int e = 0; e < m; ++e) {
        auto u = static_cast<flow::NodeId>(rng.nextBounded(n));
        auto v = static_cast<flow::NodeId>(rng.nextBounded(n));
        if (u != v)
            graph.addEdge(u, v, rng.nextUniform(1.0, 100.0));
    }
    return graph;
}

/**
 * Manual timing: the per-iteration resetFlow() sweep (required so
 * every iteration solves the same pristine network rather than a
 * warmed one) must not count against the solver.
 */
void
BM_PreflowPush(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    flow::FlowGraph graph = randomGraph(n, 6 * n, 99);
    for (auto _ : state) {
        graph.resetFlow();
        flow::PreflowPush solver(graph);
        auto begin = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(solver.solve(0, 1));
        auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(
            std::chrono::duration<double>(end - begin).count());
    }
}
BENCHMARK(BM_PreflowPush)->Arg(16)->Arg(64)->Arg(256)->UseManualTime();

void
BM_Dinic(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    flow::FlowGraph graph = randomGraph(n, 6 * n, 99);
    for (auto _ : state) {
        graph.resetFlow();
        flow::Dinic solver(graph);
        auto begin = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(solver.solve(0, 1));
        auto end = std::chrono::steady_clock::now();
        state.SetIterationTime(
            std::chrono::duration<double>(end - begin).count());
    }
}
BENCHMARK(BM_Dinic)->Arg(16)->Arg(64)->Arg(256)->UseManualTime();

/**
 * Shared setup for the churn-event benchmarks: a placement graph over
 * a generated long-tail cluster plus the compute edge of one flapping
 * node. Measures the two ways TopologyManager can react to a churn
 * event at scale: incremental repair vs a from-scratch re-solve.
 */
struct FlapBench
{
    std::optional<cluster::ClusterSpec> clus;
    cluster::Profiler profiler{model::catalog::llama30b()};
    placement::ModelPlacement placement;
    int node = -1;
    double profiled = 0.0;

    explicit FlapBench(int n)
    {
        cluster::gen::GeneratorConfig config;
        config.preset = "long-tail-heterogeneous";
        config.numNodes = n;
        config.seed = 42;
        clus = cluster::gen::generate(config);
        placement::SwarmPlanner planner;
        placement = planner.plan(*clus, profiler);
    }

    /**
     * Flap the weakest layer-holding node: in the long-tail regime
     * that is the node that actually flaps and drifts, and its small
     * flow share keeps the repair delta local.
     */
    void
    pickNode(placement::PlacementGraph &graph)
    {
        for (int i = 0; i < clus->numNodes(); ++i) {
            flow::EdgeId comp = graph.computeEdge(i);
            if (comp == flow::kInvalidEdge)
                continue;
            double cap = graph.graph().edge(comp).originalCapacity;
            if (node < 0 || cap < profiled) {
                node = i;
                profiled = cap;
            }
        }
    }
};

/**
 * Single-event incremental repair: one node fails (even iterations)
 * or recovers (odd iterations) and repairFlow() restores a maximum
 * flow from the previous one.
 */
void
BM_FlowRepair(benchmark::State &state)
{
    FlapBench bench(static_cast<int>(state.range(0)));
    placement::PlacementGraph live(*bench.clus, bench.profiler,
                                   bench.placement);
    (void)live.maxThroughput();
    bench.pickNode(live);
    bool down = false;
    for (auto _ : state) {
        down = !down;
        live.setComputeCapacity(bench.node,
                                down ? 0.0 : bench.profiled);
        benchmark::DoNotOptimize(live.repairFlow());
    }
}
BENCHMARK(BM_FlowRepair)->Arg(256)->Arg(1000);

/**
 * Solver-only cold baseline: the same flapping schedule on the same
 * network, but every event discards the previous flow (resetFlow)
 * and re-solves from zero labels. Isolates the solver comparison
 * from the graph-rebuild cost.
 */
void
BM_FlowColdSolve(benchmark::State &state)
{
    FlapBench bench(static_cast<int>(state.range(0)));
    placement::PlacementGraph live(*bench.clus, bench.profiler,
                                   bench.placement);
    bench.pickNode(live);
    flow::EdgeId comp = live.computeEdge(bench.node);
    // Clone the placement network into a freely mutable FlowGraph
    // (edge ids match: same construction order).
    flow::FlowGraph net;
    const flow::FlowGraph &src_net = live.graph();
    for (size_t i = 0; i < src_net.numNodes(); ++i)
        net.addNode();
    for (size_t e = 0; e < src_net.numEdges() * 2; e += 2) {
        const flow::Edge &edge =
            src_net.edge(static_cast<flow::EdgeId>(e));
        net.addEdge(edge.from, edge.to, edge.originalCapacity);
    }
    bool down = false;
    for (auto _ : state) {
        down = !down;
        net.setEdgeCapacity(comp, down ? 0.0 : bench.profiled);
        net.resetFlow();
        flow::PreflowPush solver(net);
        benchmark::DoNotOptimize(
            solver.solve(live.source(), live.sink()));
    }
}
BENCHMARK(BM_FlowColdSolve)->Arg(256)->Arg(1000);

/**
 * The full cold event path BM_FlowRepair replaces: what
 * TopologyManager::resolve() in ResolveMode::Cold runs per churn
 * event — mask the flapped node out of the placement, rebuild the
 * placement graph from the profiler, and solve from scratch.
 */
void
BM_FlowColdResolve(benchmark::State &state)
{
    FlapBench bench(static_cast<int>(state.range(0)));
    {
        placement::PlacementGraph probe(*bench.clus, bench.profiler,
                                        bench.placement);
        bench.pickNode(probe);
    }
    bool down = false;
    for (auto _ : state) {
        down = !down;
        placement::ModelPlacement masked = bench.placement;
        if (down)
            masked[bench.node] = placement::NodePlacement{0, 0};
        placement::PlacementGraph graph(*bench.clus, bench.profiler,
                                        masked);
        benchmark::DoNotOptimize(graph.maxThroughput());
    }
}
BENCHMARK(BM_FlowColdResolve)->Arg(256)->Arg(1000);

void
BM_PlacementGraphEvaluate(benchmark::State &state)
{
    cluster::ClusterSpec clus = cluster::setups::singleCluster24();
    cluster::Profiler profiler(model::catalog::llama70b());
    placement::PetalsPlanner planner;
    placement::ModelPlacement placement = planner.plan(clus, profiler);
    for (auto _ : state) {
        placement::PlacementGraph graph(clus, profiler, placement);
        benchmark::DoNotOptimize(graph.maxThroughput());
    }
}
BENCHMARK(BM_PlacementGraphEvaluate);

void
BM_ServingEstimate(benchmark::State &state)
{
    cluster::ClusterSpec clus = cluster::setups::geoDistributed24();
    cluster::Profiler profiler(model::catalog::llama70b());
    placement::PetalsPlanner planner;
    placement::ModelPlacement placement = planner.plan(clus, profiler);
    for (auto _ : state) {
        placement::PlacementGraph graph(clus, profiler, placement);
        benchmark::DoNotOptimize(placement::estimateServingThroughput(
            clus, profiler, placement, graph));
    }
}
BENCHMARK(BM_ServingEstimate);

void
BM_SimplexLp(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Rng rng(7);
    lp::LpProblem problem;
    for (int v = 0; v < n; ++v)
        problem.addVariable(0.0, rng.nextUniform(1.0, 10.0),
                            rng.nextUniform(0.0, 2.0));
    for (int c = 0; c < n; ++c) {
        std::vector<std::pair<int, double>> terms;
        for (int v = 0; v < n; ++v)
            terms.push_back({v, rng.nextUniform(0.0, 1.0)});
        problem.addConstraint(terms, lp::Relation::LessEq,
                              rng.nextUniform(5.0, 50.0));
    }
    lp::SimplexSolver solver;
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve(problem).objective);
}
BENCHMARK(BM_SimplexLp)->Arg(10)->Arg(40)->Arg(100);

void
BM_BranchAndBound(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Rng rng(11);
    milp::MilpProblem problem;
    for (int v = 0; v < n; ++v)
        problem.addBinary(rng.nextUniform(1.0, 10.0));
    // Multi-dimensional knapsack: pick items under three budgets.
    for (int c = 0; c < 3; ++c) {
        std::vector<std::pair<int, double>> terms;
        for (int v = 0; v < n; ++v)
            terms.push_back({v, rng.nextUniform(0.0, 5.0)});
        problem.addConstraint(terms, lp::Relation::LessEq, 0.6 * n);
    }
    milp::BranchAndBound solver;
    milp::BnbConfig config;
    config.timeLimitSeconds = 30.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve(problem, config).objective);
}
BENCHMARK(BM_BranchAndBound)->Arg(10)->Arg(18);

/**
 * Same instances, but with the early-stop configuration the Helix
 * planner uses (Sec. 4.5): a known objective upper bound (here the
 * root LP relaxation) and a closeness threshold. Measures how quickly
 * the solver reaches a good-enough incumbent rather than a proof.
 */
void
BM_BranchAndBoundEarlyStop(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    Rng rng(11);
    milp::MilpProblem problem;
    for (int v = 0; v < n; ++v)
        problem.addBinary(rng.nextUniform(1.0, 10.0));
    for (int c = 0; c < 3; ++c) {
        std::vector<std::pair<int, double>> terms;
        for (int v = 0; v < n; ++v)
            terms.push_back({v, rng.nextUniform(0.0, 5.0)});
        problem.addConstraint(terms, lp::Relation::LessEq, 0.6 * n);
    }
    lp::SimplexSolver root;
    milp::BranchAndBound solver;
    milp::BnbConfig config;
    config.timeLimitSeconds = 30.0;
    config.objectiveUpperBound = root.solve(problem.lp()).objective;
    config.earlyStopFraction = 0.9;
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve(problem, config).objective);
}
BENCHMARK(BM_BranchAndBoundEarlyStop)->Arg(10)->Arg(18);

void
BM_IwrrPick(benchmark::State &state)
{
    std::vector<int> ids;
    std::vector<double> weights;
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
        ids.push_back(i);
        weights.push_back(rng.nextUniform(1.0, 100.0));
    }
    scheduler::IwrrScheduler iwrr(ids, weights);
    for (auto _ : state)
        benchmark::DoNotOptimize(iwrr.pick());
}
BENCHMARK(BM_IwrrPick);

class NullContext : public scheduler::SchedulerContext
{
  public:
    int queueLength(int) const override { return 0; }
    double recentThroughput(int) const override { return 1.0; }
    double kvUsedBytes(int) const override { return 0.0; }
};

void
BM_HelixSchedulerWalk(benchmark::State &state)
{
    cluster::ClusterSpec clus = cluster::setups::singleCluster24();
    cluster::Profiler profiler(model::catalog::llama70b());
    placement::PetalsPlanner planner;
    placement::ModelPlacement placement = planner.plan(clus, profiler);
    placement::PlacementGraph graph(clus, profiler, placement);
    scheduler::Topology topo(clus, profiler, placement, graph);
    scheduler::HelixScheduler sched(topo);
    NullContext ctx;
    trace::Request req{0, 0.0, 763, 232};
    for (auto _ : state) {
        auto pipeline = sched.schedule(req, ctx);
        benchmark::DoNotOptimize(pipeline);
    }
}
BENCHMARK(BM_HelixSchedulerWalk);

void
BM_PlannerHeuristics(benchmark::State &state)
{
    cluster::ClusterSpec clus =
        cluster::setups::highHeterogeneity42();
    cluster::Profiler profiler(model::catalog::llama70b());
    for (auto _ : state) {
        placement::PetalsPlanner petals;
        placement::SwarmPlanner swarm;
        benchmark::DoNotOptimize(petals.plan(clus, profiler));
        benchmark::DoNotOptimize(swarm.plan(clus, profiler));
    }
}
BENCHMARK(BM_PlannerHeuristics);

} // namespace

BENCHMARK_MAIN();
