/**
 * @file
 * Reproduces Fig. 2: the graph abstraction of a 3-node cluster with a
 * given model placement. Prints every vertex pair, edge capacity
 * (tokens/second from the bandwidth / payload arithmetic), and the
 * max flow, which equals the cluster's max serving throughput.
 */

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"

int
main()
{
    using namespace helix;
    using cluster::kCoordinator;

    // Fig. 2a: A100 holds layers 1-2, two T4s hold layer 3. Token
    // payload 4 B, activation payload 16 KB (LLaMA-70B hidden size).
    model::TransformerSpec toy = model::catalog::llama70b();
    toy.name = "toy-3-layer";
    toy.numLayers = 3;

    cluster::ClusterSpec clus;
    clus.addNode({"A100", cluster::gpus::a100_40(), 1, 0});
    clus.addNode({"T4-1", cluster::gpus::t4(), 1, 0});
    clus.addNode({"T4-2", cluster::gpus::t4(), 1, 0});
    clus.setUniformLinks(1e6, 1e-3);
    clus.setLink(kCoordinator, 0, {20e6, 1e-3}); // 20 Mb/s
    clus.setLink(1, kCoordinator, {90e6, 1e-3}); // 90 Mb/s
    clus.setLink(2, kCoordinator, {50e6, 1e-3}); // 50 Mb/s
    clus.setLink(0, 1, {80e6, 1e-3});            // 80 Mb/s
    clus.setLink(0, 2, {40e6, 1e-3});            // 40 Mb/s
    clus.setLink(1, 2, {60e6, 1e-3});            // 60 Mb/s

    cluster::Profiler profiler(toy);
    placement::ModelPlacement placement;
    placement.nodes = {{0, 2}, {2, 1}, {2, 1}};

    std::printf("=== Fig. 2: graph abstraction of a 3-node cluster "
                "===\n");
    std::printf("model: %d layers, activation %.0f B, token %.0f B\n",
                toy.numLayers, profiler.activationBytes(),
                profiler.tokenBytes());
    std::printf("placement: A100 [0,2), T4-1 [2,3), T4-2 [2,3)\n\n");

    placement::PlacementGraph graph(clus, profiler, placement);
    double flow = graph.maxThroughput();

    std::printf("%-22s %16s %16s\n", "edge", "capacity (tok/s)",
                "flow (tok/s)");
    auto name = [&](int endpoint) {
        return endpoint == kCoordinator
                   ? std::string("coord")
                   : clus.node(endpoint).name;
    };
    for (const auto &conn : graph.connections()) {
        std::string label = name(conn.from) + " -> " + name(conn.to);
        std::printf("%-22s %16.1f %16.1f\n", label.c_str(),
                    conn.capacity, conn.flow);
    }
    for (int i = 0; i < clus.numNodes(); ++i) {
        double throughput = profiler.decodeThroughput(
            clus.node(i), placement[i].count);
        std::printf("%-22s %16.1f\n",
                    (name(i) + ".in -> .out").c_str(), throughput);
    }

    std::printf("\nmax flow (= max serving throughput): %.1f "
                "tokens/s\n", flow);
    std::printf("paper reference: max flow between source and sink "
                "equals the max\n  serving throughput of the cluster "
                "under the given placement.\n");
    return 0;
}
