/**
 * @file
 * Planner scalability: the time-budgeted planner portfolio on
 * synthetic clusters far beyond the paper's 10-42-node setups.
 *
 * For each cluster size the harness generates a
 * long-tail-heterogeneous cluster (cluster::gen), runs the full
 * planner portfolio under the tier's wall-clock budget, and prints
 * the portfolio's per-planner report: each member's wall time, the
 * max-flow throughput bound of its placement, and feasibility. The
 * chosen row is the deterministic argmax the portfolio returns.
 *
 * Two properties are checked programmatically at the full/fast tiers
 * (sizes 100/300/1000; the --smoke tier only prints — its 50 ms
 * budget is smaller than fixed thread-spawn overheads):
 *
 *   1. budget: the whole portfolio finishes within the configured
 *      budget plus 5% slack, even at 1000 nodes;
 *   2. quality: the chosen placement's flow bound is >= every
 *      member's bound within the same budget (the argmax guarantee,
 *      re-verified against the report).
 *
 * Exit code 1 if either check fails.
 */

#include <cstring>

#include "bench_common.h"
#include "cluster/generator.h"
#include "placement/portfolio.h"
#include "util/logging.h"

namespace {

using namespace helix;

/** One portfolio race at @p num_nodes; returns false on a violation. */
bool
raceAtSize(int num_nodes, double budget_s, bool enforce)
{
    cluster::gen::GeneratorConfig config;
    config.preset = "long-tail-heterogeneous";
    config.numNodes = num_nodes;
    config.seed = 7;
    auto clus = cluster::gen::generate(config);
    HELIX_ASSERT(clus.has_value());
    auto model_spec = exp::modelByName("llama30b");
    HELIX_ASSERT(model_spec.has_value());
    cluster::Profiler profiler(*model_spec);

    auto planner = exp::plannerByName("portfolio", budget_s);
    auto *portfolio =
        dynamic_cast<placement::PortfolioPlanner *>(planner.get());
    HELIX_ASSERT(portfolio != nullptr);
    placement::ModelPlacement chosen =
        portfolio->plan(*clus, profiler);
    const placement::PortfolioReport &report = portfolio->report();

    std::printf("\n=== portfolio on %s (%d nodes, budget %.2f s) ===\n",
                config.preset.c_str(), num_nodes, budget_s);
    std::printf("%-18s %10s %14s %9s\n", "planner", "wall s",
                "flow bound", "feasible");
    for (const placement::PortfolioEntry &entry : report.entries) {
        std::printf("%-18s %10.3f %14.1f %9s\n",
                    entry.planner.c_str(), entry.wallSeconds,
                    entry.flowBound, entry.feasible ? "yes" : "no");
    }
    HELIX_ASSERT(report.bestIndex >= 0);
    const placement::PortfolioEntry &best =
        report.entries[report.bestIndex];
    std::printf("chosen: %s (bound %.1f tok/s) in %.3f s total\n",
                best.planner.c_str(), best.flowBound,
                report.wallSeconds);

    bool ok = true;
    double limit = budget_s * 1.05;
    if (enforce && report.wallSeconds > limit) {
        std::printf("FAIL: portfolio wall %.3f s exceeds budget "
                    "%.2f s + 5%% (%.3f s)\n",
                    report.wallSeconds, budget_s, limit);
        ok = false;
    }
    double chosen_bound = placement::flowThroughputBound(
        *clus, profiler, chosen);
    for (const placement::PortfolioEntry &entry : report.entries) {
        if (entry.feasible && chosen_bound < entry.flowBound) {
            std::printf("FAIL: chosen bound %.1f < %s's bound %.1f "
                        "within the same budget\n",
                        chosen_bound, entry.planner.c_str(),
                        entry.flowBound);
            ok = false;
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale = bench::Scale::fromArgs(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    std::vector<int> sizes =
        smoke ? std::vector<int>{40} : std::vector<int>{100, 300, 1000};
    bool ok = true;
    for (int size : sizes)
        ok = raceAtSize(size, scale.plannerBudgetS, !smoke) && ok;
    return ok ? 0 : 1;
}
