/**
 * @file
 * Reproduces Fig. 12: quality of the best model placement and the
 * best upper bound found by the MILP solver as a function of solving
 * time, for serving LLaMA 30B on a 4 L4 + 6 T4 cluster. The paper
 * observes that the optimal placement appears within minutes while
 * proving optimality takes much longer, motivating early stopping.
 *
 * Two progress traces are printed: the exact Tables-5/6 MILP solved
 * by our branch-and-bound on a reduced instance (exactness), and the
 * flow-guided search on the full 10-node cluster (scalability).
 */

#include <cstdio>

#include "bench_common.h"
#include "milp/branch_and_bound.h"
#include "placement/milp_formulation.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    model::TransformerSpec model_spec = model::catalog::llama30b();

    // --- Exact MILP on a reduced instance (2 L4 + 3 T4, 20 layers):
    // small enough for branch-and-bound to prove optimality. ---
    {
        cluster::ClusterSpec clus;
        for (int i = 0; i < 2; ++i)
            clus.addNode({"L4-" + std::to_string(i),
                          cluster::gpus::l4(), 1, 0});
        for (int i = 0; i < 3; ++i)
            clus.addNode({"T4-" + std::to_string(i),
                          cluster::gpus::t4(), 1, 0});
        clus.setUniformLinks(10e9, 1e-3);
        model::TransformerSpec reduced = model_spec;
        reduced.numLayers = 20;
        cluster::Profiler profiler(reduced);

        placement::MilpFormulation formulation(clus, profiler);
        std::printf("=== Fig. 12 (exact MILP, reduced 5-node "
                    "instance): %d vars, %d constraints ===\n",
                    formulation.numVariables(),
                    formulation.numConstraints());

        milp::BnbConfig config;
        config.timeLimitSeconds = 3.0 * scale.plannerBudgetS;
        config.recordProgress = true;
        // Heuristic warm starts, exactly as the planner uses them
        // (Sec. 4.5 speedup 2).
        placement::PetalsPlanner petals;
        placement::SwarmPlanner swarm;
        config.warmStarts.push_back(formulation.encodePlacement(
            petals.plan(clus, profiler)));
        config.warmStarts.push_back(formulation.encodePlacement(
            swarm.plan(clus, profiler)));
        config.objectiveUpperBound =
            profiler.throughputUpperBound(clus);
        milp::BranchAndBound solver;
        milp::MilpResult result =
            solver.solve(formulation.problem(), config);
        std::printf("status: %s, nodes explored: %ld\n",
                    milp::toString(result.status),
                    result.nodesExplored);
        std::printf("%-12s %16s %16s\n", "time (s)", "incumbent",
                    "upper bound");
        for (const auto &sample : result.progress) {
            if (sample.incumbent < 0.0)
                continue; // no incumbent yet
            std::printf("%-12.3f %16.1f %16.1f\n", sample.seconds,
                        sample.incumbent,
                        std::min(sample.bound, 1e12));
        }
        std::printf("final objective: %.1f tokens/s (bound %.1f)\n\n",
                    result.objective, std::min(result.bound, 1e12));
    }

    // --- Flow-guided search on the paper's 4 L4 + 6 T4 cluster. ---
    {
        cluster::ClusterSpec clus =
            cluster::setups::plannerCluster10();
        cluster::Profiler profiler(model_spec);
        placement::HelixPlannerConfig config;
        config.timeBudgetSeconds = 2.0 * scale.plannerBudgetS;
        config.objective = placement::PlannerObjective::MaxFlow;
        config.exactMilpNodeLimit = 0; // force the flow search
        placement::HelixPlanner planner(config);
        placement::ModelPlacement placement =
            planner.plan(clus, profiler);
        const auto &report = planner.report();

        std::printf("=== Fig. 12 (flow search, 4 L4 + 6 T4, LLaMA "
                    "30B) ===\n");
        std::printf("%-12s %16s %16s\n", "time (s)", "incumbent",
                    "upper bound");
        for (const auto &sample : report.progress) {
            std::printf("%-12.3f %16.1f %16.1f\n", sample.seconds,
                        sample.incumbent, sample.bound);
        }
        std::printf("best placement throughput: %.1f tokens/s "
                    "(bound %.1f, early stop: %s)\n",
                    report.bestThroughput, report.upperBound,
                    report.earlyStopped ? "yes" : "no");
        std::printf("\npaper reference: the optimal placement emerges "
                    "within minutes; proving optimality takes over an "
                    "hour, so early stopping is sound.\n");
    }
    return 0;
}
