/**
 * @file
 * Reproduces Fig. 9: the model-placement deep dive. All methods use
 * Helix's request scheduler so placement quality is isolated; Helix's
 * MILP placement is compared with the Swarm and Petals heuristics on
 * the single cluster and the geo-distributed clusters (offline, LLaMA
 * 70B), and the per-node layer counts of each placement are printed
 * as in the Fig. 9b case study.
 *
 * Paper reference points: Helix's placement achieves 1.23x (Petals)
 * and 2.10x (Swarm) on the single cluster; 1.49x and 2.38x on the
 * geo-distributed clusters.
 */

#include <map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace helix;
using namespace helix::bench;

void
printCaseStudy(const cluster::ClusterSpec &clus,
               const placement::ModelPlacement &placement,
               const char *name)
{
    std::printf("%s placement (layers per node, grouped by GPU "
                "type):\n", name);
    std::map<std::string, std::vector<int>> by_type;
    for (int i = 0; i < clus.numNodes(); ++i) {
        std::string key = clus.node(i).gpu.name;
        if (clus.node(i).numGpus > 1)
            key = std::to_string(clus.node(i).numGpus) + "x" + key;
        by_type[key].push_back(placement[i].count);
    }
    for (const auto &[type, counts] : by_type) {
        std::printf("  %-8s:", type.c_str());
        for (int count : counts)
            std::printf(" %d", count);
        std::printf("\n");
    }
}

void
runSetting(const cluster::ClusterSpec &clus, const char *setting,
           const Scale &scale)
{
    model::TransformerSpec model_spec = model::catalog::llama70b();

    placement::HelixPlannerConfig planner_config;
    planner_config.timeBudgetSeconds = scale.plannerBudgetS;
    placement::HelixPlanner helix_planner(planner_config);
    placement::SwarmPlanner swarm_planner;
    placement::PetalsPlanner petals_planner;

    struct Method
    {
        const char *name;
        placement::Planner *planner;
    };
    Method methods[] = {
        {"helix", &helix_planner},
        {"petals", &petals_planner},
        {"swarm", &swarm_planner},
    };

    std::vector<SystemResult> rows;
    std::string title = std::string("Fig. 9a - placement deep dive, ") +
                        setting + " (Helix scheduler everywhere)";
    for (const Method &method : methods) {
        Deployment dep(clus, model_spec, *method.planner);
        // Isolate placement quality: every method is served by the
        // Helix scheduler.
        auto sched = makeScheduler(dep, SchedulerKind::Helix);
        SystemResult row;
        row.system = method.name;
        row.plannedThroughput = dep.plannedThroughput();
        row.metrics = runExperiment(dep, *sched, offlineRun(scale));
        rows.push_back(std::move(row));
        printCaseStudy(clus, dep.placement(), method.name);
    }
    printHeader(title.c_str());
    for (const auto &row : rows)
        printRow(row);
    printRatios(rows);
}

} // namespace

int
main(int argc, char **argv)
{
    Scale scale = Scale::fromArgs(argc, argv);
    runSetting(cluster::setups::singleCluster24(), "single cluster",
               scale);
    runSetting(cluster::setups::geoDistributed24(), "geo-distributed",
               scale);
    std::printf("\npaper reference: helix/petals 1.23x single, 1.49x "
                "geo; helix/swarm 2.10x single, 2.38x geo\n");
    return 0;
}
