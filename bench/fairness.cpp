/**
 * @file
 * Admission-control overhead benchmark for multi-tenant fair-share
 * serving (scheduler/fair_share.h). Plans a 1000-node generated
 * geo-distributed cluster once, then drives the same trace through
 * the simulator twice: the pre-tenancy path (no tenants declared;
 * the fair-share layer is compiled in but never consulted) and a
 * three-tenant fair-share configuration with SLOs and preemption
 * armed. The delta is the full cost of admission control, usage
 * tracking, and preemption scanning on the event-loop hot path.
 *
 * Manual timing mirrors micro_sim.cpp: cluster generation, planning,
 * and trace generation happen outside the clock; only
 * ClusterSimulator::run() is measured, best-of-N. Numbers are
 * recorded in BENCH_fairness.json; `--smoke` shrinks the workload so
 * CTest can exercise the harness end to end.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bench_common.h"
#include "cluster/generator.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "placement/planners.h"
#include "scheduler/fair_share.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/random.h"

namespace {

using namespace helix;

constexpr int kNumNodes = 1000;
constexpr double kArrivalRate = 40.0;

struct Fixture
{
    cluster::ClusterSpec clus;
    cluster::Profiler profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<scheduler::Topology> topo;
    std::vector<trace::Request> requests;

    Fixture(const bench::Scale &scale,
            const std::vector<scheduler::Tenant> &tenants)
        : clus(buildCluster()), profiler(model::catalog::llama30b())
    {
        placement::SwarmPlanner planner;
        placement = planner.plan(clus, profiler);
        placement::PlacementGraph graph(clus, profiler, placement);
        topo = std::make_unique<scheduler::Topology>(
            clus, profiler, placement, graph);

        trace::LengthModel lengths;
        lengths.targetMeanPrompt = 120;
        lengths.maxPromptLen = 512;
        lengths.targetMeanOutput = 40;
        lengths.maxOutputLen = 128;
        trace::TraceGenerator gen(42, lengths);
        trace::PoissonArrivals arrivals(kArrivalRate);
        int num_requests = static_cast<int>(
            kArrivalRate *
            (scale.offlineWarmupS + scale.offlineMeasureS));
        requests = gen.generateCount(num_requests, arrivals);
        if (tenants.size() >= 2)
            labelRequests(tenants);
    }

    static cluster::ClusterSpec buildCluster()
    {
        cluster::gen::GeneratorConfig config;
        config.preset = "geo-distributed";
        config.numNodes = kNumNodes;
        config.seed = 42;
        auto generated = cluster::gen::generate(config);
        if (!generated.has_value())
            throw std::runtime_error("generator rejected preset");
        return *generated;
    }

    /** Weight-proportional tenant labels from a dedicated forked
     *  stream, mirroring helix::makeTrace. */
    void labelRequests(const std::vector<scheduler::Tenant> &tenants)
    {
        double total = 0.0;
        for (const scheduler::Tenant &tenant : tenants)
            total += tenant.weight;
        std::vector<double> cumulative;
        double acc = 0.0;
        for (const scheduler::Tenant &tenant : tenants) {
            acc += tenant.weight / total;
            cumulative.push_back(acc);
        }
        Rng rng = Rng(42).fork(0x74656e616e74ULL);
        for (trace::Request &request : requests) {
            double draw = rng.nextDouble();
            int t = 0;
            while (t + 1 < static_cast<int>(cumulative.size()) &&
                   draw >= cumulative[static_cast<size_t>(t)]) {
                ++t;
            }
            request.tenant = t;
        }
    }

    /** Best-of-@p reps timed run() (construction outside the clock). */
    double timedRun(const bench::Scale &scale,
                    const std::vector<scheduler::Tenant> &tenants,
                    int reps, sim::SimMetrics &metrics) const
    {
        sim::SimConfig config;
        config.warmupSeconds = scale.offlineWarmupS;
        config.measureSeconds = scale.offlineMeasureS;
        config.tenants = tenants;
        double best = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
            scheduler::HelixScheduler sched(*topo);
            sim::ClusterSimulator simulator(clus, profiler, placement,
                                            sched, config);
            auto begin = std::chrono::steady_clock::now();
            metrics = simulator.run(requests);
            auto end = std::chrono::steady_clock::now();
            double seconds =
                std::chrono::duration<double>(end - begin).count();
            if (rep == 0 || seconds < best)
                best = seconds;
        }
        return best;
    }
};

std::vector<scheduler::Tenant>
benchTenants()
{
    scheduler::Tenant batch;
    batch.name = "batch";
    batch.weight = 1.0;
    scheduler::Tenant standard;
    standard.name = "standard";
    standard.weight = 2.0;
    scheduler::Tenant interactive;
    interactive.name = "interactive";
    interactive.weight = 4.0;
    interactive.sloTtftS = 2.0;
    interactive.sloTpotS = 0.5;
    return {batch, standard, interactive};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace helix;
    bench::Scale scale = bench::Scale::fromArgs(argc, argv);
    const int reps = 3;
    const std::vector<scheduler::Tenant> tenants = benchTenants();

    Fixture baseline_fixture(scale, {});
    Fixture tenancy_fixture(scale, tenants);
    std::printf("fair-share admission overhead: %d-node "
                "geo-distributed cluster, %zu requests, best of %d\n",
                kNumNodes, baseline_fixture.requests.size(), reps);

    sim::SimMetrics baseline_metrics;
    double baseline_s = baseline_fixture.timedRun(
        scale, {}, reps, baseline_metrics);
    sim::SimMetrics tenancy_metrics;
    double tenancy_s = tenancy_fixture.timedRun(
        scale, tenants, reps, tenancy_metrics);

    std::printf("%-12s %12s %12s %12s %10s\n", "path", "run ms",
                "decode t/s", "completed", "preempted");
    std::printf("%-12s %12.2f %12.1f %12ld %10ld\n", "no-tenant",
                baseline_s * 1e3, baseline_metrics.decodeThroughput,
                baseline_metrics.requestsCompleted,
                baseline_metrics.requestsPreempted);
    std::printf("%-12s %12.2f %12.1f %12ld %10ld\n", "3-tenant",
                tenancy_s * 1e3, tenancy_metrics.decodeThroughput,
                tenancy_metrics.requestsCompleted,
                tenancy_metrics.requestsPreempted);
    double overhead = baseline_s > 0.0
                          ? (tenancy_s - baseline_s) / baseline_s
                          : 0.0;
    std::printf("admission overhead: %+.1f%%  jain=%.4f\n",
                overhead * 100.0, tenancy_metrics.jainIndex);
    for (const sim::SimMetrics::TenantStat &t :
         tenancy_metrics.tenantStats) {
        std::printf("  tenant %-12s w=%.0f tput=%8.1f done=%ld "
                    "pre=%ld\n",
                    t.name.c_str(), t.weight, t.decodeThroughput,
                    t.requestsCompleted, t.requestsPreempted);
    }

    // Sanity: the no-tenant run must not report tenant metrics, and
    // both runs consumed the same trace.
    if (!baseline_metrics.tenantStats.empty()) {
        std::fprintf(stderr,
                     "no-tenant path produced tenant stats\n");
        return 1;
    }
    if (baseline_metrics.requestsArrived !=
        tenancy_metrics.requestsArrived) {
        std::fprintf(stderr, "paths saw different traces\n");
        return 1;
    }
    return 0;
}
