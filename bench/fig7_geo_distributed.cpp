/**
 * @file
 * Reproduces Fig. 7: geo-distributed serving. Three sub-clusters
 * ((i) 4 A100, (ii) 2 L4 + 8 T4, (iii) 6 L4 + 4 T4) with 100 Mb/s /
 * 50 ms inter-cluster links; LLaMA 30B and 70B, offline and online.
 * Also prints the Table 7 style inter-region bandwidth matrix used to
 * choose the 100 Mb/s figure.
 *
 * Paper reference points (70B): Helix achieves 1.92x / 1.97x Swarm
 * and 1.61x / 1.79x SP decode throughput (offline / online), and
 * reduces prompt latency by up to 66%.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus = *exp::clusterByName("geo24");
    std::printf("cluster: %s (3 regions, inter 100 Mb/s / 50 ms)\n",
                clus.summary().c_str());

    // Table 7: measured inter-region bandwidth (Mb/s) from the paper,
    // motivating the 100 Mb/s inter-cluster configuration.
    std::printf("\n=== Table 7: inter-region bandwidth (Mb/s, "
                "paper's iperf3 measurements) ===\n");
    const char *regions[] = {"asia-east2", "us-central1", "eu-west3",
                             "au-se1"};
    const double matrix[4][4] = {{0, 123, 67, 175},
                                 {122, 0, 204, 123},
                                 {61, 196, 0, 54},
                                 {159, 118, 63, 0}};
    std::printf("%-14s", "recv \\ send");
    for (const char *region : regions)
        std::printf(" %12s", region);
    std::printf("\n");
    for (int r = 0; r < 4; ++r) {
        std::printf("%-14s", regions[r]);
        for (int s = 0; s < 4; ++s) {
            if (r == s)
                std::printf(" %12s", "/");
            else
                std::printf(" %12.0f", matrix[r][s]);
        }
        std::printf("\n");
    }

    const std::vector<System> systems = {
        {"helix", "helix-pruned", "helix"},
        {"swarm", "swarm", "swarm"},
        {"sp", "sp", "fixed-rr"},
    };

    for (const char *model_name : {"llama30b", "llama70b"}) {
        std::string display = exp::modelByName(model_name)->name;
        runFigureComparison(
            "geo24", model_name, systems, scale,
            display + " - geo offline (Fig. 7a/b)",
            display + " - geo online (Fig. 7c-f)");
    }

    std::printf("\npaper reference (70B geo): helix/swarm 1.92x "
                "offline, 1.97x online; helix/sp 1.61x / 1.79x\n");
    return 0;
}
