/**
 * @file
 * Google-benchmark microbenchmarks for the discrete-event simulator
 * and the trace generators. BM_Simulator measures the event-loop hot
 * path (event dispatch, batch assembly, link serialization) end to
 * end on a small fixed workload, so event-queue and batching changes
 * are directly comparable across commits.
 */

#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace {

using namespace helix;

/**
 * Small deterministic fixture shared by the simulator benchmarks:
 * four T4 nodes forming two parallel 2-stage pipelines over a
 * 12-layer model, fast uniform network, and a pregenerated trace.
 */
struct SimBenchFixture
{
    cluster::ClusterSpec clus;
    model::TransformerSpec toy;
    std::unique_ptr<cluster::Profiler> profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<placement::PlacementGraph> graph;
    std::unique_ptr<scheduler::Topology> topo;
    std::vector<trace::Request> requests;

    explicit SimBenchFixture(int num_requests, double rate)
    {
        for (int i = 0; i < 4; ++i) {
            cluster::NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clus.addNode(std::move(node));
        }
        clus.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<cluster::Profiler>(toy);
        placement.nodes = {{0, 6}, {6, 6}, {0, 6}, {6, 6}};
        graph = std::make_unique<placement::PlacementGraph>(
            clus, *profiler, placement);
        topo = std::make_unique<scheduler::Topology>(clus, *profiler,
                                                     placement, *graph);

        trace::LengthModel lengths;
        lengths.targetMeanPrompt = 120;
        lengths.maxPromptLen = 512;
        lengths.targetMeanOutput = 40;
        lengths.maxOutputLen = 128;
        trace::TraceGenerator gen(3, lengths);
        trace::PoissonArrivals arrivals(rate);
        requests = gen.generateCount(num_requests, arrivals);
    }
};

/**
 * End-to-end simulation of a fixed trace: dominated by event-queue
 * push/pop, batch assembly in startBatch, and per-item bookkeeping in
 * finishBatch.
 */
void
BM_Simulator(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    SimBenchFixture fx(n, 10.0);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 120.0;
    long decode_tokens = 0;
    for (auto _ : state) {
        scheduler::HelixScheduler sched(*fx.topo);
        sim::ClusterSimulator sim(fx.clus, *fx.profiler, fx.placement,
                                  sched, config);
        auto metrics = sim.run(fx.requests);
        decode_tokens += metrics.decodeTokensInWindow;
        benchmark::DoNotOptimize(metrics);
    }
    state.counters["decode_tokens"] = static_cast<double>(
        decode_tokens / std::max<long>(1, state.iterations()));
}
BENCHMARK(BM_Simulator)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

/**
 * The same workload under a fail -> recover churn schedule: adds two
 * preflow-push re-solves on the surviving subgraph plus the request
 * restarts, so the cost of dynamic topology adaptation is directly
 * comparable against the churn-free baseline above.
 */
void
BM_SimulatorChurn(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    SimBenchFixture fx(n, 10.0);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 120.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 5.0},
        {sim::ChurnEvent::Kind::Recover, 1, 15.0},
    };
    long restarts = 0;
    for (auto _ : state) {
        scheduler::HelixScheduler sched(*fx.topo);
        sim::ClusterSimulator sim(fx.clus, *fx.profiler, fx.placement,
                                  sched, config);
        auto metrics = sim.run(fx.requests);
        restarts += metrics.requestsRestarted;
        benchmark::DoNotOptimize(metrics);
    }
    state.counters["restarts"] = static_cast<double>(
        restarts / std::max<long>(1, state.iterations()));
}
BENCHMARK(BM_SimulatorChurn)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

/** Trace generation throughput (length sampling + arrival process). */
void
BM_TraceGenerate(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        trace::TraceGenerator gen(7);
        trace::PoissonArrivals arrivals(20.0);
        benchmark::DoNotOptimize(gen.generateCount(n, arrivals));
    }
}
BENCHMARK(BM_TraceGenerate)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
