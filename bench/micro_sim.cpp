/**
 * @file
 * Google-benchmark microbenchmarks for the discrete-event simulator
 * and the trace generators. BM_Simulator measures the event-loop hot
 * path (event dispatch, batch assembly, link serialization) end to
 * end on a small fixed workload, so event-queue and batching changes
 * are directly comparable across commits.
 *
 * Manual timing throughout: fixture construction and trace generation
 * happen once outside the loop, and the per-iteration scheduler +
 * simulator construction (required so every iteration simulates a
 * pristine deployment rather than a warmed one) is excluded from the
 * timed region -- only ClusterSimulator::run() is measured, mirroring
 * BM_PreflowPush in micro_solvers.cpp.
 *
 * Each simulator benchmark takes a second argument: the sim_threads
 * count handed to the sharded parallel executor (1 = reference serial
 * loop). BM_SimulatorScale runs generated geo-distributed clusters at
 * 1k/10k nodes for the serial-vs-parallel scaling numbers recorded in
 * BENCH_sim.json.
 */

#include <benchmark/benchmark.h>

#include <chrono>

#include "cluster/cluster.h"
#include "cluster/generator.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "placement/planners.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace {

using namespace helix;

/**
 * Small deterministic fixture shared by the simulator benchmarks:
 * four T4 nodes forming two parallel 2-stage pipelines over a
 * 12-layer model, fast uniform network, and a pregenerated trace.
 */
struct SimBenchFixture
{
    cluster::ClusterSpec clus;
    model::TransformerSpec toy;
    std::unique_ptr<cluster::Profiler> profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<placement::PlacementGraph> graph;
    std::unique_ptr<scheduler::Topology> topo;
    std::vector<trace::Request> requests;

    explicit SimBenchFixture(int num_requests, double rate)
    {
        for (int i = 0; i < 4; ++i) {
            cluster::NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clus.addNode(std::move(node));
        }
        clus.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<cluster::Profiler>(toy);
        placement.nodes = {{0, 6}, {6, 6}, {0, 6}, {6, 6}};
        graph = std::make_unique<placement::PlacementGraph>(
            clus, *profiler, placement);
        topo = std::make_unique<scheduler::Topology>(clus, *profiler,
                                                     placement, *graph);

        trace::LengthModel lengths;
        lengths.targetMeanPrompt = 120;
        lengths.maxPromptLen = 512;
        lengths.targetMeanOutput = 40;
        lengths.maxOutputLen = 128;
        trace::TraceGenerator gen(3, lengths);
        trace::PoissonArrivals arrivals(rate);
        requests = gen.generateCount(num_requests, arrivals);
    }
};

/** Time one simulator.run() with construction outside the clock. */
double
timedRun(const cluster::ClusterSpec &clus,
         const cluster::Profiler &profiler,
         const placement::ModelPlacement &placement,
         const scheduler::Topology &topo,
         const std::vector<trace::Request> &requests,
         const sim::SimConfig &config, sim::SimMetrics &metrics)
{
    scheduler::HelixScheduler sched(topo);
    sim::ClusterSimulator simulator(clus, profiler, placement, sched,
                                    config);
    auto begin = std::chrono::steady_clock::now();
    metrics = simulator.run(requests);
    auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(metrics);
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * End-to-end simulation of a fixed trace: dominated by event-queue
 * push/pop, batch assembly in startBatch, and per-item bookkeeping in
 * finishBatch. Args: {num_requests, sim_threads}.
 */
void
BM_Simulator(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    SimBenchFixture fx(n, 10.0);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 120.0;
    config.simThreads = static_cast<int>(state.range(1));
    long decode_tokens = 0;
    sim::SimMetrics metrics;
    for (auto _ : state) {
        state.SetIterationTime(timedRun(fx.clus, *fx.profiler,
                                        fx.placement, *fx.topo,
                                        fx.requests, config, metrics));
        decode_tokens += metrics.decodeTokensInWindow;
    }
    state.counters["decode_tokens"] = static_cast<double>(
        decode_tokens / std::max<long>(1, state.iterations()));
}
BENCHMARK(BM_Simulator)
    ->Args({100, 1})
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({400, 4})
    ->Args({400, 8})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/**
 * The same workload under a fail -> recover churn schedule: adds two
 * preflow-push re-solves on the surviving subgraph plus the request
 * restarts, so the cost of dynamic topology adaptation is directly
 * comparable against the churn-free baseline above. Args:
 * {num_requests, sim_threads}.
 */
void
BM_SimulatorChurn(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    SimBenchFixture fx(n, 10.0);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 120.0;
    config.simThreads = static_cast<int>(state.range(1));
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 5.0},
        {sim::ChurnEvent::Kind::Recover, 1, 15.0},
    };
    long restarts = 0;
    sim::SimMetrics metrics;
    for (auto _ : state) {
        state.SetIterationTime(timedRun(fx.clus, *fx.profiler,
                                        fx.placement, *fx.topo,
                                        fx.requests, config, metrics));
        restarts += metrics.requestsRestarted;
    }
    state.counters["restarts"] = static_cast<double>(
        restarts / std::max<long>(1, state.iterations()));
}
BENCHMARK(BM_SimulatorChurn)
    ->Args({100, 1})
    ->Args({400, 1})
    ->Args({400, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Serial-vs-parallel scaling on generated geo-distributed clusters:
 * the workload the sharded executor exists for. Args: {num_nodes,
 * sim_threads}. Planning (Swarm) and trace generation happen once per
 * benchmark; only the event loop is timed. Excluded from the CI smoke
 * filter -- run explicitly when refreshing BENCH_sim.json.
 */
void
BM_SimulatorScale(benchmark::State &state)
{
    int num_nodes = static_cast<int>(state.range(0));
    cluster::gen::GeneratorConfig gen_config;
    gen_config.preset = "geo-distributed";
    gen_config.numNodes = num_nodes;
    gen_config.seed = 42;
    auto clus = cluster::gen::generate(gen_config);
    if (!clus.has_value()) {
        state.SkipWithError("generator rejected geo-distributed");
        return;
    }
    auto model = model::catalog::llama30b();
    cluster::Profiler profiler(model);
    placement::SwarmPlanner planner;
    auto placement = planner.plan(*clus, profiler);
    placement::PlacementGraph graph(*clus, profiler, placement);
    scheduler::Topology topo(*clus, profiler, placement, graph);

    trace::LengthModel lengths;
    lengths.targetMeanPrompt = 120;
    lengths.maxPromptLen = 512;
    lengths.targetMeanOutput = 40;
    lengths.maxOutputLen = 128;
    trace::TraceGenerator gen(3, lengths);
    // Scale offered load with cluster size so every configuration
    // keeps the pipelines saturated; the 10k-node configuration
    // drives >= 1M requests through the event loop.
    double rate = 2.0 * static_cast<double>(num_nodes);
    trace::PoissonArrivals arrivals(rate);
    int num_requests = num_nodes >= 10000 ? 1000000 : 40 * num_nodes;
    auto requests = gen.generateCount(num_requests, arrivals);

    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.simThreads = static_cast<int>(state.range(1));
    long completed = 0;
    sim::SimMetrics metrics;
    for (auto _ : state) {
        state.SetIterationTime(timedRun(*clus, profiler, placement,
                                        topo, requests, config,
                                        metrics));
        completed += metrics.requestsCompleted;
    }
    state.counters["completed"] = static_cast<double>(
        completed / std::max<long>(1, state.iterations()));
}
BENCHMARK(BM_SimulatorScale)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({1000, 8})
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/** Trace generation throughput (length sampling + arrival process). */
void
BM_TraceGenerate(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        trace::TraceGenerator gen(7);
        trace::PoissonArrivals arrivals(20.0);
        benchmark::DoNotOptimize(gen.generateCount(n, arrivals));
    }
}
BENCHMARK(BM_TraceGenerate)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
