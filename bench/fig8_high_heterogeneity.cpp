/**
 * @file
 * Reproduces Fig. 8: the high GPU-heterogeneity cluster (42 nodes,
 * 7 GPU types including multi-GPU nodes) serving LLaMA 70B, offline
 * and online: Helix vs Swarm vs SP vs SP+ (SP with a mixed pipeline
 * built from nodes whose type cannot form a pipeline alone).
 *
 * Paper reference points: Helix achieves 1.37x / 2.91x / 2.24x the
 * offline decode throughput of Swarm / SP / SP+, and 1.48x / 3.29x /
 * 2.54x online.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus =
        cluster::setups::highHeterogeneity42();
    std::printf("cluster: %s\n", clus.summary().c_str());

    model::TransformerSpec model_spec = model::catalog::llama70b();

    placement::HelixPlannerConfig planner_config;
    planner_config.timeBudgetSeconds = scale.plannerBudgetS;
    planner_config.usePruning = true;
    placement::HelixPlanner helix_planner(planner_config);
    placement::SwarmPlanner swarm_planner;
    placement::SeparatePipelinesPlanner sp_planner(false);
    placement::SeparatePipelinesPlanner sp_plus_planner(true);

    struct System
    {
        const char *name;
        placement::Planner *planner;
        SchedulerKind scheduler;
    };
    System systems[] = {
        {"helix", &helix_planner, SchedulerKind::Helix},
        {"swarm", &swarm_planner, SchedulerKind::Swarm},
        {"sp", &sp_planner, SchedulerKind::FixedRoundRobin},
        {"sp+", &sp_plus_planner, SchedulerKind::FixedRoundRobin},
    };

    std::vector<Deployment> deployments;
    std::vector<SystemResult> offline_rows;
    for (const System &sys : systems) {
        deployments.emplace_back(clus, model_spec, *sys.planner);
        Deployment &dep = deployments.back();
        auto sched = makeScheduler(dep, sys.scheduler);
        SystemResult row;
        row.system = sys.name;
        row.plannedThroughput = dep.plannedThroughput();
        row.metrics = runExperiment(dep, *sched, offlineRun(scale));
        offline_rows.push_back(std::move(row));
    }
    printHeader("LLaMA-70B - 42-node high heterogeneity, offline "
                "(Fig. 8a)");
    for (const auto &row : offline_rows)
        printRow(row);
    printRatios(offline_rows);

    double peak = offline_rows.front().metrics.decodeThroughput;
    std::vector<SystemResult> online_rows;
    for (size_t i = 0; i < deployments.size(); ++i) {
        auto sched =
            makeScheduler(deployments[i], systems[i].scheduler);
        SystemResult row;
        row.system = systems[i].name;
        row.plannedThroughput = deployments[i].plannedThroughput();
        row.metrics = runExperiment(deployments[i], *sched,
                                    onlineRun(scale, peak));
        online_rows.push_back(std::move(row));
    }
    printHeader("LLaMA-70B - 42-node high heterogeneity, online "
                "(Fig. 8b/c)");
    for (const auto &row : online_rows)
        printRow(row);
    printRatios(online_rows);

    std::printf("\npaper reference: helix/swarm 1.37x offline 1.48x "
                "online; helix/sp 2.91x / 3.29x; helix/sp+ 2.24x / "
                "2.54x\n");
    return 0;
}
