/**
 * @file
 * Reproduces Fig. 8: the high GPU-heterogeneity cluster (42 nodes,
 * 7 GPU types including multi-GPU nodes) serving LLaMA 70B, offline
 * and online: Helix vs Swarm vs SP vs SP+ (SP with a mixed pipeline
 * built from nodes whose type cannot form a pipeline alone).
 *
 * Paper reference points: Helix achieves 1.37x / 2.91x / 2.24x the
 * offline decode throughput of Swarm / SP / SP+, and 1.48x / 3.29x /
 * 2.54x online.
 */

#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace helix;
    using namespace helix::bench;

    Scale scale = Scale::fromArgs(argc, argv);
    cluster::ClusterSpec clus = *exp::clusterByName("hetero42");
    std::printf("cluster: %s\n", clus.summary().c_str());

    const std::vector<System> systems = {
        {"helix", "helix-pruned", "helix"},
        {"swarm", "swarm", "swarm"},
        {"sp", "sp", "fixed-rr"},
        {"sp+", "sp+", "fixed-rr"},
    };

    runFigureComparison(
        "hetero42", "llama70b", systems, scale,
        "LLaMA-70B - 42-node high heterogeneity, offline (Fig. 8a)",
        "LLaMA-70B - 42-node high heterogeneity, online (Fig. 8b/c)");

    std::printf("\npaper reference: helix/swarm 1.37x offline 1.48x "
                "online; helix/sp 2.91x / 3.29x; helix/sp+ 2.24x / "
                "2.54x\n");
    return 0;
}
