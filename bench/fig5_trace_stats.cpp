/**
 * @file
 * Reproduces Fig. 5: statistics of the (synthetic) Azure Conversation
 * dataset — prompt/output length distributions and the diurnal
 * arrival-rate curve. The generator is calibrated to the published
 * marginals: 16657 requests, mean input 763 (max 2048), mean output
 * 232 (max 1024).
 */

#include <cstdio>

#include "trace/trace.h"
#include "util/stats.h"

int
main()
{
    using namespace helix;

    const int num_requests = 16657; // paper's pruned dataset size
    trace::TraceGenerator generator(2024);
    trace::PoissonArrivals arrivals(1.0);
    auto requests = generator.generateCount(num_requests, arrivals);

    StatAccumulator prompt_lengths;
    StatAccumulator output_lengths;
    Histogram prompt_hist(0, 2048, 16);
    Histogram output_hist(0, 1024, 16);
    for (const auto &req : requests) {
        prompt_lengths.add(req.promptLen);
        output_lengths.add(req.outputLen);
        prompt_hist.add(req.promptLen);
        output_hist.add(req.outputLen);
    }

    std::printf("=== Fig. 5a: request length distribution "
                "(%d requests) ===\n", num_requests);
    std::printf("prompt: mean %.0f median %.0f p95 %.0f max %.0f "
                "(paper: mean 763, max 2048)\n",
                prompt_lengths.mean(), prompt_lengths.median(),
                prompt_lengths.percentile(95), prompt_lengths.max());
    std::printf("output: mean %.0f median %.0f p95 %.0f max %.0f "
                "(paper: mean 232, max 1024)\n\n",
                output_lengths.mean(), output_lengths.median(),
                output_lengths.percentile(95), output_lengths.max());

    std::printf("prompt length histogram:\n%s\n",
                prompt_hist.render(40).c_str());
    std::printf("output length histogram:\n%s\n",
                output_hist.render(40).c_str());

    std::printf("=== Fig. 5b: diurnal arrival rate ===\n");
    trace::DiurnalArrivals diurnal(6.0, 0.25, 3600.0);
    std::printf("%-12s %12s\n", "time (min)", "rate (req/s)");
    for (int minute = 0; minute <= 60; minute += 5) {
        std::printf("%-12d %12.2f\n", minute,
                    diurnal.rateAt(minute * 60.0));
    }
    return 0;
}
