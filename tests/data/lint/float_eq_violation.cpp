// helix-lint: treat-as(src/flow/fixture.cpp)
// Seeded violations for the float-eq check: exact equality on
// floating-point values outside a tolerance helper.
bool sameFlow(double a, double b)
{
    return a == b;  // LINT-EXPECT: float-eq
}

bool notSaturated(double utilization)
{
    return utilization != 1.0;  // LINT-EXPECT: float-eq
}
