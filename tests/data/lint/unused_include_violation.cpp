// Seeded violation for the unused-include check: a project header is
// included but none of its declarations are ever referenced.
#include "util/stats.h"  // LINT-EXPECT: unused-include

int fixtureAnswer()
{
    return 42;
}
