// helix-lint: treat-as(src/sim/fixture.cpp)
// Seeded violations for the unordered-iter check: iterating an
// unordered container in determinism-critical code.
#include <unordered_map>

int totalTokens()
{
    std::unordered_map<int, int> tokensByNode;
    tokensByNode[3] = 7;
    tokensByNode[1] = 5;
    int total = 0;
    for (const auto &entry : tokensByNode)  // LINT-EXPECT: unordered-iter
        total += entry.second;
    for (auto it = tokensByNode.begin(); it != tokensByNode.end(); ++it)  // LINT-EXPECT: unordered-iter
        total += it->second;
    return total;
}
