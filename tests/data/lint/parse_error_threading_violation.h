// helix-lint: treat-as(src/io/fixture.h)
// Seeded violation for the parse-error-threading check: a FromString
// parser with no io::ParseError-threading overload, so callers can
// never report line-accurate errors.
#ifndef HELIX_TESTS_DATA_LINT_PARSE_ERROR_THREADING_VIOLATION_H
#define HELIX_TESTS_DATA_LINT_PARSE_ERROR_THREADING_VIOLATION_H

#include <optional>
#include <string>

struct FixtureWidget
{
    int size = 0;
};

std::optional<FixtureWidget> widgetFromString(const std::string &text);  // LINT-EXPECT: parse-error-threading

#endif
