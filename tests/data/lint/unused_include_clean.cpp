// Clean counterpart for the unused-include check: the included
// project header's declarations are actually used.
#include "util/stats.h"

double fixtureMedian()
{
    helix::Histogram hist(0.0, 1.0, 4);
    hist.add(0.25);
    hist.add(0.75);
    return hist.quantile(0.5);
}
