// helix-lint: treat-as(src/sim/fixture.h)
// Clean counterpart for the hot-path-std-function check: a
// trivially-copyable tagged union dispatched on `kind`, the shape
// src/sim/simulator.h uses for its Event type.
#ifndef HELIX_TESTS_DATA_LINT_HOT_PATH_STD_FUNCTION_CLEAN_H
#define HELIX_TESTS_DATA_LINT_HOT_PATH_STD_FUNCTION_CLEAN_H

struct FixtureEvent
{
    enum class Kind
    {
        Arrival,
        StageDone,
    };

    Kind kind = Kind::Arrival;
    double time = 0.0;
    int request = -1;
    int node = -1;
};

#endif
