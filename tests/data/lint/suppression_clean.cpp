// helix-lint: treat-as(src/flow/fixture.cpp)
// Clean fixture: a well-formed, justified allow() both parses without
// a suppression finding and suppresses the float-eq finding on the
// line below it.
bool capacityUnchanged(double previous, double next)
{
    // helix-lint: allow(float-eq) capacities are copied values, never computed, so equal means unchanged
    return previous == next;
}
