// helix-lint: treat-as(src/sim/fixture.cpp)
// Clean counterpart for the unordered-iter check: the map is used
// only for point lookups; emission order comes from a sorted key
// vector, so output cannot depend on hash-table layout.
#include <algorithm>
#include <unordered_map>
#include <vector>

int totalTokens()
{
    std::vector<int> nodes = {3, 1, 2};
    std::unordered_map<int, int> tokensByNode;
    for (int node : nodes)
        tokensByNode[node] = node * node;
    std::sort(nodes.begin(), nodes.end());
    int total = 0;
    for (int node : nodes)
        total += tokensByNode[node];
    return total;
}
