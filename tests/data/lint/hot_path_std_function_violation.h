// helix-lint: treat-as(src/sim/fixture.h)
// Seeded violation for the hot-path-std-function check: a callable
// member in a simulator event type (the PR 2 regression class).
#ifndef HELIX_TESTS_DATA_LINT_HOT_PATH_STD_FUNCTION_VIOLATION_H
#define HELIX_TESTS_DATA_LINT_HOT_PATH_STD_FUNCTION_VIOLATION_H

#include <functional>

struct FixtureEvent
{
    double time = 0.0;
    std::function<void()> onFire;  // LINT-EXPECT: hot-path-std-function
};

#endif
