// helix-lint: treat-as(src/io/spec_fixture.cpp)
// Clean counterpart for the param-registry check: every key/tag
// comparison names a declared knob, scenario-kind dispatch is out of
// scope, and resolved-param dispatch via opt->key() is fine.
#include <string>

struct Opt
{
    std::string keyName;
    const std::string &key() const { return keyName; }
};

bool parseDirective(const std::string &tag, const Opt *opt,
                    const std::string &kind)
{
    if (tag == "warmup" || tag == "starvation-tolerance")
        return true;
    if (tag == "simulation-threads")  // alias: declared too
        return true;
    if (opt->key() == "weight")
        return true;
    if (kind == "some-custom-kind")  // not a key/tag comparison
        return true;
    return false;
}
