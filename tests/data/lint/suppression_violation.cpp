// Seeded violations for the suppression check: an allow() with no
// justification and an allow() naming an unknown check. Both must be
// findings; neither may silently suppress anything.
// LINT-EXPECT-NEXT: suppression
// helix-lint: allow(float-eq)
// LINT-EXPECT-NEXT: suppression
// helix-lint: allow(no-such-check) the id above does not exist

int fixtureNoop()
{
    return 0;
}
