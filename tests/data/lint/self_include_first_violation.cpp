// helix-lint: treat-as(src/flow/graph.cpp)
// Seeded violation for the self-include-first check: a system header
// precedes the file's own header, so graph.h is never proven
// self-contained.
#include <vector>  // LINT-EXPECT: self-include-first

#include "flow/graph.h"
