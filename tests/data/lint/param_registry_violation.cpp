// helix-lint: treat-as(src/io/spec_fixture.cpp)
// Seeded violations for the param-registry check: directive/option
// token comparisons against keys never declared in
// core::specParams(), bypassing range checks and usage strings.
#include <string>

bool parseDirective(const std::string &tag, const std::string &key)
{
    if (tag == "warmup")  // declared: clean
        return true;
    if (tag == "frob-budget")  // LINT-EXPECT: param-registry
        return true;
    if (key == "shard-count")  // LINT-EXPECT: param-registry
        return true;
    // LINT-EXPECT-NEXT: param-registry
    if ("burst-shape" == key)
        return true;
    return false;
}
