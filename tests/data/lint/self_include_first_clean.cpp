// helix-lint: treat-as(src/flow/graph.cpp)
// Clean counterpart for the self-include-first check: the file's own
// header comes first, then system headers.
#include "flow/graph.h"

#include <vector>
