// helix-lint: treat-as(src/flow/fixture.cpp)
// Clean counterpart for the float-eq check: comparisons go through a
// tolerance, and integer comparisons are untouched by the check.
#include <cmath>

bool sameFlow(double a, double b)
{
    return std::abs(a - b) < 1e-9;
}

bool sameCount(int lhs_count, int rhs_count)
{
    return lhs_count == rhs_count;
}
