// helix-lint: treat-as(src/sim/fixture.cpp)
// Clean counterpart for the raw-random check: every draw flows
// through the seeded helix::Rng, and no wall clock is read.
#include "util/random.h"

double jitteredDelay(helix::Rng &rng, double base_s)
{
    return base_s * (1.0 + 0.1 * rng.nextDouble());
}
