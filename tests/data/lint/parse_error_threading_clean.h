// helix-lint: treat-as(src/io/fixture.h)
// Clean counterpart for the parse-error-threading check: the parser
// pairs its convenience overload with one threading io::ParseError.
#ifndef HELIX_TESTS_DATA_LINT_PARSE_ERROR_THREADING_CLEAN_H
#define HELIX_TESTS_DATA_LINT_PARSE_ERROR_THREADING_CLEAN_H

#include <optional>
#include <string>

#include "io/serialization.h"

struct FixtureWidget
{
    int size = 0;
};

std::optional<FixtureWidget> widgetFromString(
    const std::string &text, helix::io::ParseError &error);

std::optional<FixtureWidget> widgetFromString(const std::string &text);

#endif
