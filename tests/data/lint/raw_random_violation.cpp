// helix-lint: treat-as(src/sim/fixture.cpp)
// Seeded violations for the raw-random check. Never compiled; read
// only by tools/test_helix_lint.py. LINT-EXPECT markers name the
// finding the linter must report on that line.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned unseededDraw()
{
    std::random_device entropy;                  // LINT-EXPECT: raw-random
    std::mt19937 engine(12345);                  // LINT-EXPECT: raw-random
    unsigned raw = rand();                       // LINT-EXPECT: raw-random
    long stamp = time(nullptr);                  // LINT-EXPECT: raw-random
    auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: raw-random
    (void)entropy;
    (void)t0;
    return raw + static_cast<unsigned>(stamp) + engine();
}
