// helix-analyze: treat-as(src/exp/emitters_clean_fixture.cpp)
// Emitter fixture: both emitters render every schema column.

std::string
resultsToJson()
{
    return "{\"decode_throughput\": 1.0, \"requests_arrived\": 2}";
}

std::string
resultsToCsv()
{
    return "decode_throughput,requests_arrived\n1.0,2\n";
}
