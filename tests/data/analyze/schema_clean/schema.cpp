// helix-analyze: treat-as(src/exp/schema_clean_fixture.cpp)
// Clean fixture schema: one emitted column per struct field plus an
// internal-metric opt-out, all fingerprinted.

const MetricColumnSpec kMetricColumns[] = {
    {"decode_throughput", "metrics.decodeThroughput",
     "decodeThroughput=",
     [](const JobResult &r) { return r.metrics.decodeThroughput; }},
    {"requests_arrived", "metrics.requestsArrived", "arrived=",
     [](const JobResult &r) {
         return static_cast<double>(r.metrics.requestsArrived);
     }},
};

const InternalMetricSpec kInternalMetrics[] = {
    {"metrics.decodeTokensInWindow", "decodeTokens="},
};
