// helix-analyze: treat-as(src/sim/metrics_clean_fixture.h)
// Clean fixture for the metrics-schema check: every field covered by
// a schema row, every row emitted and fingerprinted.

struct SimMetrics
{
    double decodeThroughput = 0.0;
    long requestsArrived = 0;
    long decodeTokensInWindow = 0;
};
