// helix-analyze: treat-as(tests/fingerprint_clean_fixture.cpp)
// Fingerprint fixture: renders every schema fingerprint token.

void
fingerprint(std::ostream &out, const SimMetrics &m)
{
    out << " decodeThroughput=" << m.decodeThroughput
        << " arrived=" << m.requestsArrived
        << " decodeTokens=" << m.decodeTokensInWindow;
}
