// helix-analyze: treat-as(src/scheduler/coverage_clean_fixture.h)
// Clean fixture for the annotation-coverage check: every public
// entry point annotated; constructors, nested types, and private
// members are outside the contract.

class FairShareController
{
  public:
    struct Config
    {
        double weight = 1.0;
        void normalize();
    };

    explicit FairShareController(Config config);

    HELIX_COORDINATOR_ONLY
    bool active() const { return enabled; }

    HELIX_COORDINATOR_ONLY
    void enqueue(int tenant);

  private:
    bool enabled = false;
    void rebalance();
};
