// helix-analyze: treat-as(src/sim/suppression_clean_fixture.cpp)
// A justified allow() suppresses the thread-context finding it
// covers; the directive itself is well-formed.

class Coordinator
{
  public:
    HELIX_COORDINATOR_ONLY
    void mutateQueue();
};

class Lane
{
  public:
    HELIX_LANE_SAFE
    void onWork(Coordinator &coord);
};

void
Lane::onWork(Coordinator &coord)
{
    // helix-analyze: allow(thread-context) fixture: runs during single-threaded startup before any worker exists
    coord.mutateQueue();
}
