// LINT-EXPECT: bench-docs
// helix-analyze: treat-as(bench/orphan_fixture.cpp)
// Drift fixture for the bench-docs check: the companion README has
// no bench_orphan row.

int
main()
{
    return 0;
}
