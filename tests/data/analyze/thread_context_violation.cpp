// helix-analyze: treat-as(src/sim/thread_context_fixture.cpp)
// Violating fixture for the thread-context check: lane-context code
// reaching coordinator-only state directly, through an unannotated
// helper (call-graph propagation), and through an annotated field;
// plus a coordinator-rank function escalating to the churn barrier.

class Coordinator
{
  public:
    HELIX_COORDINATOR_ONLY
    void mutateQueue();

    HELIX_CHURN_BARRIER_ONLY
    void applyChurn();

    HELIX_COORDINATOR_ONLY
    int pendingCount = 0;
};

class Lane
{
  public:
    HELIX_LANE_SAFE
    void onWork(Coordinator &coord);

    HELIX_COORDINATOR_ONLY
    void coordinatorPhase(Coordinator &coord);

  private:
    void helper(Coordinator &coord);
};

void
Lane::onWork(Coordinator &coord)
{
    coord.mutateQueue(); // LINT-EXPECT: thread-context
    helper(coord);
}

void
Lane::coordinatorPhase(Coordinator &coord)
{
    coord.applyChurn(); // LINT-EXPECT: thread-context
}

void
Lane::helper(Coordinator &coord)
{
    coord.mutateQueue();    // LINT-EXPECT: thread-context
    coord.pendingCount = 3; // LINT-EXPECT: thread-context
}
