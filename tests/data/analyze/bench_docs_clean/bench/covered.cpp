// helix-analyze: treat-as(bench/covered_fixture.cpp)
// Clean fixture for the bench-docs check: the companion README
// carries a bench_covered row.

int
main()
{
    return 0;
}
