// helix-analyze: treat-as(src/sim/coverage_fixture.h)
// Violating fixture for the annotation-coverage check: a public
// entry point of a coverage class without a context annotation.

class ParallelExecutor
{
  public:
    ParallelExecutor() = default;
    ParallelExecutor(const ParallelExecutor &) = delete;

    HELIX_CONTEXT_DISPATCH
    void run();

    void route(); // LINT-EXPECT: annotation-coverage

  private:
    void runLane(); // private members are outside the contract
};
