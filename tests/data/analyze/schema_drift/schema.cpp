// helix-analyze: treat-as(src/exp/schema_fixture.cpp)
// Drift fixture schema: the second row names a field the struct does
// not have, a column neither emitter emits, and a fingerprint token
// the differential harness does not render.

const MetricColumnSpec kMetricColumns[] = {
    {"decode_throughput", "metrics.decodeThroughput",
     "decodeThroughput=",
     [](const JobResult &r) { return r.metrics.decodeThroughput; }},
    {"ghost_column", "metrics.ghostField", "ghost=", nullptr}, // LINT-EXPECT: metrics-schema
};
