// helix-analyze: treat-as(src/exp/emitters_fixture.cpp)
// Emitter fixture: both emitters render decode_throughput only.

std::string
resultsToJson()
{
    return "{\"decode_throughput\": 1.0}";
}

std::string
resultsToCsv()
{
    return "decode_throughput\n1.0\n";
}
