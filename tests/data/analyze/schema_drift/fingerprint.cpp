// helix-analyze: treat-as(tests/fingerprint_fixture.cpp)
// Fingerprint fixture: renders decodeThroughput only.

void
fingerprint(std::ostream &out, const SimMetrics &m)
{
    out << " decodeThroughput=" << m.decodeThroughput;
}
