// helix-analyze: treat-as(src/sim/metrics_fixture.h)
// Drift fixture for the metrics-schema check: requestsArrived has no
// schema row; the companion schema fixture carries a stale row.

struct SimMetrics
{
    double decodeThroughput = 0.0;
    long requestsArrived = 0; // LINT-EXPECT: metrics-schema
};
