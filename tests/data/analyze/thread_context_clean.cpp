// helix-analyze: treat-as(src/sim/thread_context_clean_fixture.cpp)
// Clean fixture for the thread-context check: dispatch boundaries
// stop propagation (their bodies are context-neutral and calling
// into them is always legal), and a higher rank may call any lower
// rank.

class Coordinator
{
  public:
    HELIX_COORDINATOR_ONLY
    void mutateQueue();

    HELIX_LANE_SAFE
    void recordToken();
};

class Engine
{
  public:
    HELIX_CONTEXT_DISPATCH
    void dispatch(Coordinator &coord);

    HELIX_CHURN_BARRIER_ONLY
    void barrier(Coordinator &coord);

    HELIX_LANE_SAFE
    void onWork(Coordinator &coord, Engine &engine);
};

void
Engine::dispatch(Coordinator &coord)
{
    coord.mutateQueue(); // dispatch bodies run in the caller context
}

void
Engine::barrier(Coordinator &coord)
{
    coord.mutateQueue(); // coordinator rank is below the barrier rank
}

void
Engine::onWork(Coordinator &coord, Engine &engine)
{
    coord.recordToken();    // lane-safe callee from lane context
    engine.dispatch(coord); // entering a dispatch boundary is legal
}
