// helix-analyze: treat-as(src/core/params_fixture.cpp)
// Drift fixture for the param-docs check: ghost-key is declared but
// never documented in the companion docs fixture.

void
registerParams(Registry &p)
{
    p.parameter("cluster");
    p.parameter("output");
    p.parameter("ghost-key"); // LINT-EXPECT: param-docs
}
