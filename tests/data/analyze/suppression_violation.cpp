// helix-analyze: treat-as(src/sim/suppression_fixture.cpp)
// Malformed directives are themselves findings.
// helix-analyze: allow(no-such-check) bogus check id // LINT-EXPECT: suppression
// LINT-EXPECT-NEXT: suppression
// helix-analyze: allow(thread-context)
