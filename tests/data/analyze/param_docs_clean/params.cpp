// helix-analyze: treat-as(src/core/params_clean_fixture.cpp)
// Clean fixture for the param-docs check.

void
registerParams(Registry &p)
{
    p.parameter("cluster").alias("cluster-spec");
    p.parameter("output");
}
