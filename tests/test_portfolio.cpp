/**
 * @file
 * Tests for the synthetic cluster generators (src/cluster/generator)
 * and the time-budgeted planner portfolio (src/placement/portfolio):
 * generation determinism and validity per preset, registry name
 * parsing, the portfolio's argmax selection and per-planner report,
 * and the determinism guarantee — the same members and seed choose a
 * byte-identical placement regardless of the executor's thread count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "exp/spec.h"
#include "io/serialization.h"
#include "placement/portfolio.h"

namespace helix {
namespace {

cluster::gen::GeneratorConfig
genConfig(const std::string &preset, int nodes, uint64_t seed = 42)
{
    cluster::gen::GeneratorConfig config;
    config.preset = preset;
    config.numNodes = nodes;
    config.seed = seed;
    return config;
}

// --- Generators ------------------------------------------------------

TEST(Generator, EveryPresetGeneratesAPlannableCluster)
{
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(model_spec.has_value());
    cluster::Profiler profiler(*model_spec);
    for (const std::string &preset : cluster::gen::presetNames()) {
        auto clus = cluster::gen::generate(genConfig(preset, 24));
        ASSERT_TRUE(clus.has_value()) << preset;
        EXPECT_EQ(clus->numNodes(), 24) << preset;
        // The link matrix is materialized (links are addressable).
        EXPECT_GE(clus->link(0, 1).bandwidthBps, 0.0) << preset;
        // A deterministic baseline planner covers the model.
        placement::SwarmPlanner swarm;
        auto placement = swarm.plan(*clus, profiler);
        EXPECT_TRUE(
            placement::placementValid(placement, *clus, profiler))
            << preset;
    }
    EXPECT_FALSE(
        cluster::gen::generate(genConfig("warehouse", 24)).has_value());
    EXPECT_FALSE(
        cluster::gen::generate(genConfig("homogeneous", 0)).has_value());
}

TEST(Generator, SameSeedIsByteIdenticalDifferentSeedIsNot)
{
    for (const std::string &preset : cluster::gen::presetNames()) {
        auto a = cluster::gen::generate(genConfig(preset, 32, 7));
        auto b = cluster::gen::generate(genConfig(preset, 32, 7));
        ASSERT_TRUE(a && b) << preset;
        EXPECT_EQ(io::clusterToString(*a), io::clusterToString(*b))
            << preset;
    }
    // The randomized presets actually use the seed.
    for (const char *preset :
         {"long-tail-heterogeneous", "geo-distributed"}) {
        auto a = cluster::gen::generate(genConfig(preset, 32, 7));
        auto b = cluster::gen::generate(genConfig(preset, 32, 8));
        ASSERT_TRUE(a && b) << preset;
        EXPECT_NE(io::clusterToString(*a), io::clusterToString(*b))
            << preset;
    }
}

TEST(Generator, PresetShapesMatchTheirDocumentation)
{
    // homogeneous: one GPU type.
    auto homo = cluster::gen::generate(genConfig("homogeneous", 16));
    ASSERT_TRUE(homo.has_value());
    for (int i = 0; i < homo->numNodes(); ++i)
        EXPECT_EQ(homo->node(i).gpu.name, "L4");

    // two-tier: max(1, N/4) A100 head nodes, T4 tail, in that order.
    auto tiered = cluster::gen::generate(genConfig("two-tier", 16));
    ASSERT_TRUE(tiered.has_value());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(tiered->node(i).gpu.name, "A100") << i;
    for (int i = 4; i < 16; ++i)
        EXPECT_EQ(tiered->node(i).gpu.name, "T4") << i;

    // long-tail: more than one GPU type at a reasonable size.
    auto tail = cluster::gen::generate(
        genConfig("long-tail-heterogeneous", 48, 7));
    ASSERT_TRUE(tail.has_value());
    std::set<std::string> types;
    for (int i = 0; i < tail->numNodes(); ++i)
        types.insert(tail->node(i).gpu.name);
    EXPECT_GT(types.size(), 1u);

    // geo-distributed: the documented region count, round-robin.
    auto geo = cluster::gen::generate(
        genConfig("geo-distributed", 64, 7));
    ASSERT_TRUE(geo.has_value());
    int regions = cluster::gen::geoRegionCount(64);
    EXPECT_EQ(regions, 4);
    std::set<int> seen;
    for (int i = 0; i < geo->numNodes(); ++i) {
        EXPECT_EQ(geo->node(i).region, i % regions) << i;
        seen.insert(geo->node(i).region);
    }
    EXPECT_EQ(static_cast<int>(seen.size()), regions);
    // Inter-region links are the slow WAN tier.
    EXPECT_LT(geo->link(0, 1).bandwidthBps,
              geo->link(0, regions).bandwidthBps);
    EXPECT_EQ(cluster::gen::geoRegionCount(16), 2);
    EXPECT_EQ(cluster::gen::geoRegionCount(1000), 8);
}

TEST(Generator, RegistryNameParsing)
{
    auto config = cluster::gen::parseGeneratorName("gen:two-tier:300:7");
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->preset, "two-tier");
    EXPECT_EQ(config->numNodes, 300);
    EXPECT_EQ(config->seed, 7u);

    config = cluster::gen::parseGeneratorName("gen:homogeneous:12");
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->seed, 42u); // default

    for (const char *bad :
         {"two-tier:300", "gen:two-tier", "gen:two-tier:0",
          "gen:two-tier:-3", "gen:two-tier:12:x", "gen::12",
          "gen:two-tier:12:7:9"}) {
        EXPECT_FALSE(cluster::gen::parseGeneratorName(bad).has_value())
            << bad;
    }

    // And the exp registry resolves the same names.
    auto clus = exp::clusterByName("gen:two-tier:12:7");
    ASSERT_TRUE(clus.has_value());
    EXPECT_EQ(clus->numNodes(), 12);
    auto direct = cluster::gen::generate(genConfig("two-tier", 12, 7));
    EXPECT_EQ(io::clusterToString(*clus),
              io::clusterToString(*direct));
    EXPECT_FALSE(exp::clusterByName("gen:warehouse:12").has_value());
    EXPECT_FALSE(exp::clusterByName("gen:two-tier:0").has_value());

    // The lightweight node-count lookup (used by spec validation to
    // avoid materializing O(n^2) link matrices) agrees with
    // clusterByName on both success and failure.
    EXPECT_EQ(exp::clusterNodeCountByName("gen:two-tier:1000:7"),
              std::optional<int>(1000));
    EXPECT_EQ(exp::clusterNodeCountByName("planner10"),
              std::optional<int>(10));
    EXPECT_FALSE(
        exp::clusterNodeCountByName("gen:warehouse:12").has_value());
    EXPECT_FALSE(
        exp::clusterNodeCountByName("gen:two-tier:0").has_value());
    EXPECT_FALSE(
        exp::clusterNodeCountByName("nimbus9000").has_value());
}

// --- Portfolio -------------------------------------------------------

/** Deterministic-member portfolio over the named registry planners. */
placement::PortfolioPlanner
makePortfolio(const std::vector<std::string> &names, double budget_s,
              placement::TaskExecutor executor = {})
{
    std::vector<placement::PortfolioMember> members;
    for (const std::string &name : names) {
        members.push_back({name, [name](double b) {
                               return exp::plannerByName(name, b);
                           }});
    }
    placement::PortfolioConfig config;
    config.budgetS = budget_s;
    return placement::PortfolioPlanner(std::move(members), config,
                                       std::move(executor));
}

TEST(Portfolio, ChoosesTheArgmaxAndReportsEveryMember)
{
    auto clus = exp::clusterByName("hetero42");
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(clus && model_spec);
    cluster::Profiler profiler(*model_spec);

    const std::vector<std::string> names = {"uniform", "swarm",
                                            "petals", "sp+"};
    placement::PortfolioPlanner portfolio =
        makePortfolio(names, 0.5);
    placement::ModelPlacement chosen =
        portfolio.plan(*clus, profiler);
    const placement::PortfolioReport &report = portfolio.report();

    ASSERT_EQ(report.entries.size(), names.size());
    ASSERT_GE(report.bestIndex, 0);
    const placement::PortfolioEntry &best =
        report.entries[report.bestIndex];
    EXPECT_EQ(chosen, best.placement);
    EXPECT_DOUBLE_EQ(
        best.flowBound,
        placement::flowThroughputBound(*clus, profiler, chosen));
    for (size_t i = 0; i < report.entries.size(); ++i) {
        const placement::PortfolioEntry &entry = report.entries[i];
        EXPECT_EQ(entry.planner, names[i]);
        EXPECT_GE(entry.wallSeconds, 0.0);
        EXPECT_EQ(entry.feasible,
                  placement::placementValid(entry.placement, *clus,
                                            profiler));
        // The argmax guarantee: no feasible member beats the choice.
        if (entry.feasible) {
            EXPECT_LE(entry.flowBound, best.flowBound) << names[i];
        }
    }
    // On this cluster the load-balancing heuristics beat uniform.
    EXPECT_GT(best.flowBound,
              report.entries[0].flowBound);
}

TEST(Portfolio, EmptyPortfolioReturnsEmptyPlacement)
{
    auto clus = exp::clusterByName("planner10");
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(clus && model_spec);
    cluster::Profiler profiler(*model_spec);
    placement::PortfolioPlanner portfolio = makePortfolio({}, 0.1);
    placement::ModelPlacement chosen =
        portfolio.plan(*clus, profiler);
    EXPECT_EQ(chosen.size(), 0u);
    EXPECT_EQ(portfolio.report().bestIndex, -1);
}

/** A member that never covers the model (all intervals empty). */
class EmptyPlanner : public placement::Planner
{
  public:
    std::string name() const override { return "empty"; }
    placement::ModelPlacement
    plan(const cluster::ClusterSpec &cluster,
         const cluster::Profiler &profiler) override
    {
        (void)profiler;
        placement::ModelPlacement placement;
        placement.nodes.resize(cluster.numNodes());
        return placement;
    }
};

TEST(Portfolio, InfeasibleMembersLoseToFeasibleOnes)
{
    auto clus = exp::clusterByName("planner10");
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(clus && model_spec);
    cluster::Profiler profiler(*model_spec);
    std::vector<placement::PortfolioMember> members;
    members.push_back({"empty", [](double) {
                           return std::make_unique<EmptyPlanner>();
                       }});
    members.push_back({"swarm", [](double b) {
                           return exp::plannerByName("swarm", b);
                       }});
    placement::PortfolioConfig config;
    config.budgetS = 0.1;
    placement::PortfolioPlanner portfolio(std::move(members), config);
    portfolio.plan(*clus, profiler);
    const placement::PortfolioReport &report = portfolio.report();
    ASSERT_EQ(report.entries.size(), 2u);
    EXPECT_FALSE(report.entries[0].feasible);
    EXPECT_EQ(report.entries[0].flowBound, 0.0);
    EXPECT_TRUE(report.entries[1].feasible);
    EXPECT_EQ(report.bestIndex, 1);
}

/**
 * The determinism guarantee (ISSUE satellite): with deterministic
 * members, the same cluster and seed choose a byte-identical
 * `placement v1` artifact whether the member race runs on 1, 4, or
 * 16 threads.
 */
TEST(Portfolio, ChoiceIsByteIdenticalAcrossThreadCounts)
{
    auto clus = exp::clusterByName("gen:two-tier:24:7");
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(clus && model_spec);
    cluster::Profiler profiler(*model_spec);

    const std::string name = "portfolio:swarm,petals,sp+,uniform";
    std::string reference;
    for (int threads : {1, 4, 16}) {
        auto planner = exp::plannerByName(name, 0.1, threads);
        ASSERT_NE(planner, nullptr);
        std::string artifact = io::placementToString(
            planner->plan(*clus, profiler));
        if (reference.empty())
            reference = artifact;
        EXPECT_EQ(artifact, reference) << threads << " threads";
    }
}

TEST(Portfolio, RegistryNamesResolveAndValidate)
{
    // Bare "portfolio" resolves, with every other planner a member.
    auto planner = exp::plannerByName("portfolio", 0.05);
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(planner->name(), "portfolio");
    auto *portfolio =
        dynamic_cast<placement::PortfolioPlanner *>(planner.get());
    ASSERT_NE(portfolio, nullptr);

    // Restricted member lists resolve; malformed ones do not.
    EXPECT_NE(exp::plannerByName("portfolio:swarm,sp+,uniform", 0.05),
              nullptr);
    EXPECT_EQ(exp::plannerByName("portfolio:", 0.05), nullptr);
    EXPECT_EQ(exp::plannerByName("portfolio:swarm,,sp", 0.05),
              nullptr);
    EXPECT_EQ(exp::plannerByName("portfolio:gurobi", 0.05), nullptr);
    EXPECT_EQ(exp::plannerByName("portfolio:portfolio", 0.05),
              nullptr);
    EXPECT_EQ(
        exp::plannerByName("portfolio:swarm,portfolio:sp", 0.05),
        nullptr);
}

TEST(Portfolio, RunsThroughTheSpecEngine)
{
    auto spec = io::experimentFromString(
        "experiment v1\n"
        "warmup 1\nmeasure 2\nplanner-budget 0.1\n"
        "cluster gen:two-tier:12:7\nmodel llama30b\n"
        "planner portfolio:swarm,sp+,uniform\n"
        "scheduler helix\n"
        "scenario offline\n");
    ASSERT_TRUE(spec.has_value());
    io::ParseError error;
    ASSERT_TRUE(exp::validateSpec(*spec, &error)) << error.str();

    exp::RunnerOptions serial;
    serial.numThreads = 1;
    exp::RunnerOptions wide;
    wide.numThreads = 4;
    auto a = exp::runSpec(*spec, nullptr, serial);
    auto b = exp::runSpec(*spec, nullptr, wide);
    ASSERT_TRUE(a && b);
    ASSERT_EQ(a->size(), 1u);
    ASSERT_EQ(b->size(), 1u);
    EXPECT_EQ(a->front().label,
              "gen:two-tier:12:7/llama30b/"
              "portfolio:swarm,sp+,uniform/helix/offline");
    EXPECT_GT(a->front().metrics.requestsArrived, 0);
    EXPECT_GT(a->front().metrics.decodeThroughput, 0.0);
    // Deterministic members: metrics identical across thread counts.
    EXPECT_EQ(a->front().metrics.decodeThroughput,
              b->front().metrics.decodeThroughput);
    EXPECT_EQ(a->front().plannedThroughput,
              b->front().plannedThroughput);
}

TEST(Portfolio, FlowBoundIsZeroForUncoveredPlacements)
{
    auto clus = exp::clusterByName("planner10");
    auto model_spec = exp::modelByName("llama30b");
    ASSERT_TRUE(clus && model_spec);
    cluster::Profiler profiler(*model_spec);
    placement::ModelPlacement empty;
    empty.nodes.resize(clus->numNodes()); // all counts 0
    EXPECT_EQ(placement::flowThroughputBound(*clus, profiler, empty),
              0.0);
    // Size-mismatched placements are rejected rather than evaluated.
    placement::ModelPlacement wrong_size;
    wrong_size.nodes.resize(3);
    EXPECT_EQ(
        placement::flowThroughputBound(*clus, profiler, wrong_size),
        0.0);
}

} // namespace
} // namespace helix
