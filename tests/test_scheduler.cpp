/**
 * @file
 * Tests for the scheduling module: IWRR proportional share and
 * interleaving, topology construction, KV estimation/masking, the
 * Helix per-request pipeline walk, baseline walk policies, and fixed
 * pipeline derivation.
 */

#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "scheduler/iwrr.h"
#include "scheduler/scheduler.h"

namespace helix {
namespace scheduler {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;

TEST(Iwrr, ProportionalShare)
{
    IwrrScheduler iwrr({10, 20, 30}, {1.0, 2.0, 3.0});
    std::map<int, int> counts;
    for (int i = 0; i < 6000; ++i)
        ++counts[iwrr.pick()];
    EXPECT_EQ(counts[10], 1000);
    EXPECT_EQ(counts[20], 2000);
    EXPECT_EQ(counts[30], 3000);
}

TEST(Iwrr, InterleavesRatherThanBursts)
{
    // With weights 1:1, picks must alternate.
    IwrrScheduler iwrr({0, 1}, {1.0, 1.0});
    int prev = iwrr.pick();
    for (int i = 0; i < 10; ++i) {
        int next = iwrr.pick();
        EXPECT_NE(next, prev);
        prev = next;
    }
}

TEST(Iwrr, HeavyCandidateNeverStarvesLight)
{
    IwrrScheduler iwrr({0, 1}, {99.0, 1.0});
    bool saw_light = false;
    for (int i = 0; i < 100; ++i)
        saw_light |= iwrr.pick() == 1;
    EXPECT_TRUE(saw_light);
}

TEST(Iwrr, MaskSkipsCandidates)
{
    IwrrScheduler iwrr({7, 8, 9}, {1.0, 1.0, 1.0});
    std::vector<bool> mask{true, false, true};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(iwrr.pick(&mask), 8);
}

TEST(Iwrr, AllMaskedReturnsMinusOne)
{
    IwrrScheduler iwrr({1, 2}, {1.0, 1.0});
    std::vector<bool> mask{true, true};
    EXPECT_EQ(iwrr.pick(&mask), -1);
}

TEST(Iwrr, EmptySetReturnsMinusOne)
{
    IwrrScheduler iwrr;
    EXPECT_EQ(iwrr.pick(), -1);
}

TEST(PipelineValidity, CoversLayersInOrder)
{
    Pipeline good{{0, 0, 4}, {1, 4, 8}};
    EXPECT_TRUE(pipelineValid(good, 8));
    Pipeline gap{{0, 0, 4}, {1, 5, 8}};
    EXPECT_FALSE(pipelineValid(gap, 8));
    Pipeline short_pipe{{0, 0, 4}};
    EXPECT_FALSE(pipelineValid(short_pipe, 8));
    EXPECT_FALSE(pipelineValid({}, 8));
    Pipeline empty_stage{{0, 0, 0}, {1, 0, 8}};
    EXPECT_FALSE(pipelineValid(empty_stage, 8));
}

/** Test fixture with a small two-tier topology. */
class SchedulerFixture : public ::testing::Test
{
  protected:
    SchedulerFixture()
    {
        for (int i = 0; i < 4; ++i) {
            NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clusterSpec.addNode(std::move(node));
        }
        clusterSpec.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<Profiler>(toy);
        // Two parallel 2-stage pipelines: (0,1) and (2,3).
        placement.nodes = {{0, 6}, {6, 6}, {0, 6}, {6, 6}};
        graph = std::make_unique<placement::PlacementGraph>(
            clusterSpec, *profiler, placement);
        topo = std::make_unique<Topology>(clusterSpec, *profiler,
                                          placement, *graph);
    }

    ClusterSpec clusterSpec;
    model::TransformerSpec toy;
    std::unique_ptr<Profiler> profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<placement::PlacementGraph> graph;
    std::unique_ptr<Topology> topo;
};

/** Minimal SchedulerContext stub. */
class StubContext : public SchedulerContext
{
  public:
    int queueLength(int node) const override
    {
        return queues.count(node) ? queues.at(node) : 0;
    }
    double recentThroughput(int node) const override
    {
        return rates.count(node) ? rates.at(node) : 0.0;
    }
    double kvUsedBytes(int) const override { return 0.0; }

    std::map<int, int> queues;
    std::map<int, double> rates;
};

TEST_F(SchedulerFixture, TopologyEdgesMatchValidConnections)
{
    // Coordinator reaches both entry nodes; entries reach both tails.
    auto &coord_out = topo->outEdges(cluster::kCoordinator);
    EXPECT_EQ(coord_out.size(), 2u);
    auto &n0_out = topo->outEdges(0);
    EXPECT_EQ(n0_out.size(), 2u); // nodes 1 and 3 hold [6,12)
    auto &n1_out = topo->outEdges(1);
    ASSERT_EQ(n1_out.size(), 1u);
    EXPECT_EQ(n1_out[0].to, Topology::kSink);
    EXPECT_GT(topo->maxFlow(), 0.0);
}

TEST_F(SchedulerFixture, HelixBuildsValidPipelines)
{
    HelixScheduler sched(*topo);
    StubContext ctx;
    trace::Request req{0, 0.0, 100, 50};
    for (int i = 0; i < 50; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        EXPECT_TRUE(pipelineValid(*pipeline, toy.numLayers));
        sched.onRequestAdmitted(req, *pipeline);
        sched.onRequestFinished(req, *pipeline);
    }
}

TEST_F(SchedulerFixture, HelixSpreadsLoadByFlow)
{
    HelixScheduler sched(*topo);
    StubContext ctx;
    trace::Request req{0, 0.0, 100, 50};
    std::map<int, int> entry_counts;
    for (int i = 0; i < 100; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        ++entry_counts[pipeline->front().node];
    }
    // Symmetric topology: both entries used roughly equally.
    EXPECT_GT(entry_counts[0], 30);
    EXPECT_GT(entry_counts[2], 30);
}

TEST_F(SchedulerFixture, HelixMasksFullNodes)
{
    SchedulerConfig config;
    config.avgOutputLen = 50;
    HelixScheduler sched(*topo, config);
    StubContext ctx;
    // Admit requests until the scheduler reports congestion.
    trace::Request big{0, 0.0, 2000, 50};
    std::vector<Pipeline> admitted;
    while (admitted.size() < 10000) {
        auto pipeline = sched.schedule(big, ctx);
        if (!pipeline)
            break;
        sched.onRequestAdmitted(big, *pipeline);
        admitted.push_back(std::move(*pipeline));
    }
    EXPECT_GT(admitted.size(), 0u);
    EXPECT_LT(admitted.size(), 10000u); // eventually masked
    // Finishing the admitted requests frees capacity again.
    for (const Pipeline &pipeline : admitted)
        sched.onRequestFinished(big, pipeline);
    EXPECT_TRUE(sched.schedule(big, ctx).has_value());
}

TEST_F(SchedulerFixture, KvEstimatorArithmetic)
{
    KvEstimator kv(*topo, 100.0, 1.0);
    trace::Request req{0, 0.0, 200, 0};
    PipelineStage stage{0, 0, 6};
    // (prompt + avgOut/2) tokens * kv bytes per token-layer * layers.
    double expected = (200.0 + 50.0) *
                      topo->kvBytesPerTokenPerLayer() * 6;
    EXPECT_DOUBLE_EQ(kv.requestBytes(req, stage), expected);
    EXPECT_TRUE(kv.admits(0, expected));
    kv.reserve(0, expected);
    EXPECT_DOUBLE_EQ(kv.estimatedUsage(0), expected);
    kv.release(0, expected);
    EXPECT_DOUBLE_EQ(kv.estimatedUsage(0), 0.0);
    // Release below zero clamps.
    kv.release(0, 100.0);
    EXPECT_DOUBLE_EQ(kv.estimatedUsage(0), 0.0);
}

TEST_F(SchedulerFixture, RandomWalkProducesValidPipelines)
{
    WalkScheduler sched(*topo, WalkPolicy::Random);
    StubContext ctx;
    trace::Request req{0, 0.0, 100, 50};
    for (int i = 0; i < 50; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        EXPECT_TRUE(pipelineValid(*pipeline, toy.numLayers));
    }
}

TEST_F(SchedulerFixture, ShortestQueuePrefersIdleNode)
{
    WalkScheduler sched(*topo, WalkPolicy::ShortestQueue);
    StubContext ctx;
    ctx.queues[0] = 50;
    ctx.queues[2] = 0;
    trace::Request req{0, 0.0, 100, 50};
    for (int i = 0; i < 10; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        EXPECT_EQ(pipeline->front().node, 2);
    }
}

TEST_F(SchedulerFixture, ThroughputProportionalFavorsFastNode)
{
    WalkScheduler sched(*topo, WalkPolicy::ThroughputProportional);
    StubContext ctx;
    ctx.rates[0] = 1000.0;
    ctx.rates[2] = 10.0;
    trace::Request req{0, 0.0, 100, 50};
    int fast = 0;
    for (int i = 0; i < 200; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        fast += pipeline->front().node == 0;
    }
    EXPECT_GT(fast, 150);
}

TEST_F(SchedulerFixture, SchedulerNames)
{
    EXPECT_EQ(HelixScheduler(*topo).name(), "helix");
    EXPECT_EQ(
        WalkScheduler(*topo, WalkPolicy::ThroughputProportional).name(),
        "swarm");
    EXPECT_EQ(WalkScheduler(*topo, WalkPolicy::Random).name(),
              "random");
    EXPECT_EQ(WalkScheduler(*topo, WalkPolicy::ShortestQueue).name(),
              "shortest-queue");
}

TEST_F(SchedulerFixture, DerivePipelinesFindsBothChains)
{
    auto pipelines = derivePipelines(placement, toy.numLayers);
    ASSERT_EQ(pipelines.size(), 2u);
    for (const auto &pipeline : pipelines)
        EXPECT_TRUE(pipelineValid(pipeline, toy.numLayers));
    // Chains are disjoint.
    std::set<int> used;
    for (const auto &pipeline : pipelines) {
        for (const auto &stage : pipeline) {
            EXPECT_FALSE(used.count(stage.node));
            used.insert(stage.node);
        }
    }
}

TEST_F(SchedulerFixture, DerivePipelinesIgnoresIncompleteChain)
{
    placement::ModelPlacement partial;
    partial.nodes = {{0, 6}, {0, 0}, {0, 6}, {6, 6}};
    auto pipelines = derivePipelines(partial, toy.numLayers);
    EXPECT_EQ(pipelines.size(), 1u);
}

TEST_F(SchedulerFixture, FixedPipelineRoundRobins)
{
    auto pipelines = derivePipelines(placement, toy.numLayers);
    FixedPipelineScheduler sched(*topo, pipelines);
    StubContext ctx;
    trace::Request req{0, 0.0, 100, 50};
    auto p1 = sched.schedule(req, ctx);
    auto p2 = sched.schedule(req, ctx);
    ASSERT_TRUE(p1 && p2);
    EXPECT_NE(p1->front().node, p2->front().node);
}

TEST_F(SchedulerFixture, FixedPipelineMasksFullPipeline)
{
    auto pipelines = derivePipelines(placement, toy.numLayers);
    FixedPipelineScheduler sched(*topo, pipelines);
    StubContext ctx;
    trace::Request big{0, 0.0, 2000, 50};
    int admitted = 0;
    while (admitted < 10000) {
        auto pipeline = sched.schedule(big, ctx);
        if (!pipeline)
            break;
        sched.onRequestAdmitted(big, *pipeline);
        ++admitted;
    }
    EXPECT_GT(admitted, 0);
    EXPECT_LT(admitted, 10000);
}

} // namespace
} // namespace scheduler
} // namespace helix
