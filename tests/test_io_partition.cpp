/**
 * @file
 * Tests for the io serialization module (round trips, malformed-input
 * rejection, file I/O) and the partitioned planner (the paper's
 * Sec. 4.5 scaling path).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "io/serialization.h"
#include "model/transformer.h"
#include "placement/partitioned_planner.h"
#include "placement/placement_graph.h"

namespace helix {
namespace {

TEST(IoCluster, RoundTripsNodesAndLinks)
{
    cluster::ClusterSpec original =
        cluster::setups::geoDistributed24();
    std::string text = io::clusterToString(original);
    auto parsed = io::clusterFromString(text);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->numNodes(), original.numNodes());
    for (int i = 0; i < original.numNodes(); ++i) {
        EXPECT_EQ(parsed->node(i).name, original.node(i).name);
        EXPECT_EQ(parsed->node(i).gpu.name, original.node(i).gpu.name);
        EXPECT_DOUBLE_EQ(parsed->node(i).gpu.tflopsFp16,
                         original.node(i).gpu.tflopsFp16);
        EXPECT_EQ(parsed->node(i).numGpus, original.node(i).numGpus);
        EXPECT_EQ(parsed->node(i).region, original.node(i).region);
    }
    // Spot-check links including coordinator links.
    for (int from : {cluster::kCoordinator, 0, 5, 23}) {
        for (int to : {cluster::kCoordinator, 0, 11, 23}) {
            if (from == to)
                continue;
            EXPECT_DOUBLE_EQ(parsed->link(from, to).bandwidthBps,
                             original.link(from, to).bandwidthBps);
            EXPECT_DOUBLE_EQ(parsed->link(from, to).latencyS,
                             original.link(from, to).latencyS);
        }
    }
}

TEST(IoCluster, RejectsMalformedInput)
{
    EXPECT_FALSE(io::clusterFromString("").has_value());
    EXPECT_FALSE(io::clusterFromString("cluster v2\n").has_value());
    EXPECT_FALSE(io::clusterFromString("cluster v1\nbogus\n")
                     .has_value());
    EXPECT_FALSE(
        io::clusterFromString("cluster v1\nnode incomplete\n")
            .has_value());
    // Link referencing an out-of-range node.
    EXPECT_FALSE(io::clusterFromString(
                     "cluster v1\n"
                     "node a T4 65 16 300 70 1 0\n"
                     "link 0 7 1e9 0.001\n")
                     .has_value());
}

TEST(IoCluster, NamesWithSpacesAndHashesEscaped)
{
    cluster::ClusterSpec clus;
    cluster::NodeSpec node;
    node.name = "my node";
    node.gpu = cluster::gpus::t4();
    node.gpu.name = "RTX#4090"; // '#' would start a comment
    clus.addNode(std::move(node));
    clus.setUniformLinks(1e9, 1e-3);
    auto parsed = io::clusterFromString(io::clusterToString(clus));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->node(0).name, "my_node");
    EXPECT_EQ(parsed->node(0).gpu.name, "RTX_4090");
}

TEST(IoPlacement, RoundTrips)
{
    placement::ModelPlacement placement;
    placement.nodes = {{0, 10}, {10, 5}, {0, 0}, {15, 45}};
    auto parsed =
        io::placementFromString(io::placementToString(placement));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, placement);
}

TEST(IoPlacement, RejectsMalformed)
{
    EXPECT_FALSE(io::placementFromString("").has_value());
    EXPECT_FALSE(
        io::placementFromString("placement v1 2\n0 4\n").has_value());
    EXPECT_FALSE(io::placementFromString("placement v1 1\n-2 4\n")
                     .has_value());
}

TEST(IoTrace, RoundTrips)
{
    std::vector<trace::Request> requests = {
        {0, 0.25, 763, 232},
        {1, 1.75, 2048, 1},
        {2, 3.125, 4, 1024},
    };
    auto parsed = io::traceFromString(io::traceToString(requests));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ((*parsed)[i].id, requests[i].id);
        EXPECT_DOUBLE_EQ((*parsed)[i].arrivalS, requests[i].arrivalS);
        EXPECT_EQ((*parsed)[i].promptLen, requests[i].promptLen);
        EXPECT_EQ((*parsed)[i].outputLen, requests[i].outputLen);
    }
}

TEST(IoTrace, RejectsMalformed)
{
    EXPECT_FALSE(io::traceFromString("trace v1 5\n0 0.0 10\n")
                     .has_value());
    EXPECT_FALSE(io::traceFromString("trace v1 1\n0 0.0 -5 10\n")
                     .has_value());
}

// --- Structured ParseError reporting --------------------------------

TEST(IoParseErrors, ClusterReportsExactLineAndMessage)
{
    io::ParseError error;
    EXPECT_FALSE(io::clusterFromString("", error).has_value());
    EXPECT_EQ(error.line, 0);
    EXPECT_EQ(error.message,
              "empty input; expected 'cluster v1' header");

    EXPECT_FALSE(io::clusterFromString("cluster v2\n", error));
    EXPECT_EQ(error.line, 1);
    EXPECT_EQ(error.message,
              "cluster version 'v2' not supported (expected v1)");

    EXPECT_FALSE(io::clusterFromString(
        "cluster v1\n"
        "node a T4 65 16 300 70 1 0\n"
        "bogus\n",
        error));
    EXPECT_EQ(error.line, 3);
    EXPECT_EQ(error.message,
              "unknown record 'bogus' (expected 'node' or 'link')");

    EXPECT_FALSE(io::clusterFromString("cluster v1\n"
                                       "node incomplete\n",
                                       error));
    EXPECT_EQ(error.line, 2);
    EXPECT_EQ(error.message,
              "node record needs 8 fields (name gpu tflops memGiB "
              "bwGBs powerW gpus region), got 1");

    EXPECT_FALSE(io::clusterFromString(
        "cluster v1\n"
        "node a T4 sixty-five 16 300 70 1 0\n",
        error));
    EXPECT_EQ(error.line, 2);
    EXPECT_EQ(error.message, "node record has a non-numeric field");

    // Comments and blank lines don't shift reported line numbers.
    EXPECT_FALSE(io::clusterFromString(
        "cluster v1\n"
        "# a comment\n"
        "node a T4 65 16 300 70 1 0\n"
        "\n"
        "link 0 7 1e9 0.001\n",
        error));
    EXPECT_EQ(error.line, 5);
    EXPECT_EQ(error.message,
              "link endpoints 0 -> 7 out of range for 1 nodes");
    EXPECT_EQ(error.str(),
              "line 5: link endpoints 0 -> 7 out of range for 1 "
              "nodes");
}

TEST(IoParseErrors, PlacementReportsExactLineAndMessage)
{
    io::ParseError error;
    EXPECT_FALSE(io::placementFromString("placement v1 2\n0 4\n",
                                         error));
    EXPECT_EQ(error.line, 1);
    EXPECT_EQ(error.message, "expected 2 node lines, got 1");

    EXPECT_FALSE(io::placementFromString("placement v1 1\n-2 4\n",
                                         error));
    EXPECT_EQ(error.line, 2);
    EXPECT_EQ(error.message,
              "placement start/count must be non-negative");

    EXPECT_FALSE(io::placementFromString("placement v1 1\n0 4\n5 5\n",
                                         error));
    EXPECT_EQ(error.line, 3);
    EXPECT_EQ(error.message, "trailing content after 1 node lines");

    EXPECT_FALSE(io::placementFromString("placement v1 many\n",
                                         error));
    EXPECT_EQ(error.line, 1);
    EXPECT_EQ(error.message, "invalid node count 'many'");
}

TEST(IoParseErrors, TraceReportsExactLineAndMessage)
{
    io::ParseError error;
    EXPECT_FALSE(io::traceFromString("trace v1 5\n0 0.0 10\n",
                                     error));
    EXPECT_EQ(error.line, 2);
    EXPECT_EQ(error.message,
              "request line needs '<id> <arrivalS> <promptLen> "
              "<outputLen>'");

    EXPECT_FALSE(io::traceFromString("trace v1 1\n0 0.0 -5 10\n",
                                     error));
    EXPECT_EQ(error.line, 2);
    EXPECT_EQ(error.message,
              "prompt/output lengths must be non-negative");

    EXPECT_FALSE(io::traceFromString("trace v1\n", error));
    EXPECT_EQ(error.line, 1);
    EXPECT_EQ(error.message,
              "malformed header: expected 'trace v1 <count>'");
}

TEST(IoParseErrors, CommentsAndBlankLinesAreAccepted)
{
    auto parsed = io::clusterFromString(
        "# generated artifact\n"
        "cluster v1\n"
        "\n"
        "node a T4 65 16 300 70 1 0   # the only node\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->numNodes(), 1);
    EXPECT_EQ(parsed->node(0).name, "a");

    auto trace_parsed = io::traceFromString("trace v1 1\n"
                                            "# id arrival p o\n"
                                            "0 0.5 10 20\n");
    ASSERT_TRUE(trace_parsed.has_value());
    EXPECT_EQ((*trace_parsed)[0].promptLen, 10);
}

TEST(IoFiles, WriteAndReadBack)
{
    std::string path = "/tmp/helix_io_test.txt";
    EXPECT_TRUE(io::writeFile(path, "hello helix\n"));
    auto text = io::readFile(path);
    ASSERT_TRUE(text.has_value());
    EXPECT_EQ(*text, "hello helix\n");
    std::remove(path.c_str());
    EXPECT_FALSE(io::readFile("/nonexistent/helix").has_value());
    EXPECT_FALSE(io::writeFile("/nonexistent/dir/file", "x"));
}

TEST(IoRoundTrip, ResaveIsByteIdentical)
{
    // save -> load -> re-save must reproduce the exact bytes, so
    // artifacts can be diffed and checksummed across runs.
    cluster::ClusterSpec clus = cluster::setups::geoDistributed24();
    std::string cluster_text = io::clusterToString(clus);
    auto cluster_parsed = io::clusterFromString(cluster_text);
    ASSERT_TRUE(cluster_parsed.has_value());
    EXPECT_EQ(io::clusterToString(*cluster_parsed), cluster_text);

    placement::ModelPlacement placement;
    placement.nodes = {{0, 10}, {10, 5}, {0, 0}, {15, 45}};
    std::string placement_text = io::placementToString(placement);
    auto placement_parsed = io::placementFromString(placement_text);
    ASSERT_TRUE(placement_parsed.has_value());
    EXPECT_EQ(io::placementToString(*placement_parsed),
              placement_text);

    // Arrival times that are not exactly representable in short
    // decimal form must still re-save identically.
    std::vector<trace::Request> requests = {
        {0, 1.0 / 3.0, 763, 232},
        {1, 2.0 / 7.0 + 1.0, 2048, 1},
        {2, 3.125, 4, 1024},
    };
    std::string trace_text = io::traceToString(requests);
    auto trace_parsed = io::traceFromString(trace_text);
    ASSERT_TRUE(trace_parsed.has_value());
    EXPECT_EQ(io::traceToString(*trace_parsed), trace_text);

    // Empty trace round-trips too.
    std::string empty_text = io::traceToString({});
    auto empty_parsed = io::traceFromString(empty_text);
    ASSERT_TRUE(empty_parsed.has_value());
    EXPECT_TRUE(empty_parsed->empty());
    EXPECT_EQ(io::traceToString(*empty_parsed), empty_text);
}

TEST(IoEndToEnd, ClusterPlacementTraceArtifacts)
{
    // Full artifact cycle: serialize cluster + planner output + trace,
    // reload, and verify the reloaded placement evaluates identically.
    cluster::ClusterSpec clus = cluster::setups::plannerCluster10();
    cluster::Profiler prof(model::catalog::llama30b());
    placement::PetalsPlanner planner;
    placement::ModelPlacement placement = planner.plan(clus, prof);

    auto clus2 = io::clusterFromString(io::clusterToString(clus));
    auto placement2 =
        io::placementFromString(io::placementToString(placement));
    ASSERT_TRUE(clus2 && placement2);

    placement::PlacementGraph g1(clus, prof, placement);
    placement::PlacementGraph g2(*clus2, prof, *placement2);
    EXPECT_DOUBLE_EQ(g1.maxThroughput(), g2.maxThroughput());
}

// --- Partitioned planner ---

TEST(PartitionByRegion, CoversAllNodesOnce)
{
    cluster::ClusterSpec clus = cluster::setups::geoDistributed24();
    cluster::Profiler prof(model::catalog::llama70b());
    auto partitions = placement::partitionByRegion(clus, prof, 16);
    std::vector<int> seen(clus.numNodes(), 0);
    for (const auto &partition : partitions) {
        for (int node : partition)
            ++seen[node];
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(PartitionByRegion, EveryPartitionCanHoldTheModel)
{
    cluster::ClusterSpec clus = cluster::setups::geoDistributed24();
    cluster::Profiler prof(model::catalog::llama70b());
    auto partitions = placement::partitionByRegion(clus, prof, 16);
    for (const auto &partition : partitions) {
        int capacity = 0;
        for (int node : partition)
            capacity += prof.maxLayers(clus.node(node));
        EXPECT_GE(capacity, prof.modelSpec().numLayers);
    }
}

TEST(PartitionByRegion, SplitsLargeHomogeneousGroups)
{
    cluster::ClusterSpec clus = cluster::setups::highHeterogeneity42();
    cluster::Profiler prof(model::catalog::llama70b());
    auto partitions = placement::partitionByRegion(clus, prof, 12);
    EXPECT_GT(partitions.size(), 1u);
    for (const auto &partition : partitions) {
        // Cap may be exceeded only by capacity-driven merging, which
        // keeps partitions near the cap, not unbounded.
        EXPECT_LE(partition.size(), 24u);
    }
}

TEST(PartitionedPlanner, ProducesValidPlacement)
{
    cluster::ClusterSpec clus = cluster::setups::highHeterogeneity42();
    cluster::Profiler prof(model::catalog::llama70b());
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 3.0;
    placement::PartitionedPlanner planner(config, 12);
    placement::ModelPlacement placement = planner.plan(clus, prof);
    EXPECT_TRUE(placement::placementValid(placement, clus, prof));
    EXPECT_GT(planner.partitions().size(), 1u);
    placement::PlacementGraph graph(clus, prof, placement);
    EXPECT_GT(graph.maxThroughput(), 0.0);
}

TEST(PartitionedPlanner, PartitionsServeIndependently)
{
    cluster::ClusterSpec clus = cluster::setups::geoDistributed24();
    cluster::Profiler prof(model::catalog::llama70b());
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::PartitionedPlanner planner(config, 16);
    placement::ModelPlacement placement = planner.plan(clus, prof);
    // Each partition's members tile the model among themselves: every
    // partition must contain at least one entry (layer 0) and one
    // exit (layer L) node.
    for (const auto &partition : planner.partitions()) {
        bool has_entry = false;
        bool has_exit = false;
        for (int node : partition) {
            has_entry |= placement[node].count > 0 &&
                         placement[node].start == 0;
            has_exit |= placement[node].count > 0 &&
                        placement[node].end() ==
                            prof.modelSpec().numLayers;
        }
        EXPECT_TRUE(has_entry);
        EXPECT_TRUE(has_exit);
    }
}

} // namespace
} // namespace helix
