/**
 * @file
 * Tests for dynamic topology adaptation under churn: TopologyManager
 * re-solves, scheduler weight swaps (the stale-IWRR regression), the
 * fail/recover event schedule in the simulator, flow-event logging,
 * determinism across thread counts, and the recentThroughput decay
 * fix.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "core/helix.h"
#include "exp/spec.h"
#include "io/spec.h"
#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"
#include "scheduler/topology_manager.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helix {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;

/**
 * The 4-node toy shared with the scheduler/simulator tests: two
 * parallel 2-stage pipelines (0,1) and (2,3) over a 12-layer model.
 * With partial inference the cross connections 0->3 and 2->1 also
 * exist, so failing node 1 halves the max flow (node 3's compute
 * becomes the bottleneck) instead of just killing one pipeline.
 */
class ChurnFixture : public ::testing::Test
{
  protected:
    ChurnFixture()
    {
        for (int i = 0; i < 4; ++i) {
            NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clusterSpec.addNode(std::move(node));
        }
        clusterSpec.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<Profiler>(toy);
        placement.nodes = {{0, 6}, {6, 6}, {0, 6}, {6, 6}};
        graph = std::make_unique<placement::PlacementGraph>(
            clusterSpec, *profiler, placement);
        topo = std::make_unique<scheduler::Topology>(
            clusterSpec, *profiler, placement, *graph);
    }

    std::vector<trace::Request>
    makeRequests(int count, double rate, uint64_t seed = 3)
    {
        trace::LengthModel lengths;
        lengths.targetMeanPrompt = 120;
        lengths.maxPromptLen = 512;
        lengths.targetMeanOutput = 40;
        lengths.maxOutputLen = 128;
        trace::TraceGenerator gen(seed, lengths);
        trace::PoissonArrivals arrivals(rate);
        return gen.generateCount(count, arrivals);
    }

    /** Placement with the given nodes masked out (count = 0). */
    placement::ModelPlacement
    maskedPlacement(const std::set<int> &dead) const
    {
        placement::ModelPlacement masked = placement;
        for (int node : dead)
            masked[node] = placement::NodePlacement{0, 0};
        return masked;
    }

    ClusterSpec clusterSpec;
    model::TransformerSpec toy;
    std::unique_ptr<Profiler> profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<placement::PlacementGraph> graph;
    std::unique_ptr<scheduler::Topology> topo;
};

/** SchedulerContext stub with an explicit dead-node set. */
class LivenessContext : public scheduler::SchedulerContext
{
  public:
    int queueLength(int) const override { return 0; }
    double recentThroughput(int) const override { return 0.0; }
    double kvUsedBytes(int) const override { return 0.0; }
    bool
    nodeAlive(int node) const override
    {
        return dead.find(node) == dead.end();
    }

    std::set<int> dead;
};

/** Every edge flow of @p t must equal the flow on @p fresh. */
void
expectFlowsMatch(const scheduler::Topology &t,
                 placement::PlacementGraph &fresh)
{
    EXPECT_DOUBLE_EQ(t.maxFlow(), fresh.maxThroughput());
    for (int from = cluster::kCoordinator; from < t.numNodes();
         ++from) {
        for (const auto &edge : t.outEdges(from)) {
            int to = edge.to == scheduler::Topology::kSink
                         ? cluster::kCoordinator
                         : edge.to;
            EXPECT_DOUBLE_EQ(edge.flow, fresh.connectionFlow(from, to))
                << "edge " << from << " -> " << to;
        }
    }
}

/** Flow on the coordinator -> @p node connection of @p t. */
double
coordFlow(const scheduler::Topology &t, int node)
{
    for (const auto &edge : t.outEdges(cluster::kCoordinator)) {
        if (edge.to == node)
            return edge.flow;
    }
    return 0.0;
}

// --- TopologyManager -------------------------------------------------

TEST_F(ChurnFixture, TopologyManagerResolvesSurvivingSubgraph)
{
    scheduler::TopologyManager manager(clusterSpec, *profiler,
                                       placement);
    EXPECT_EQ(manager.numSolves(), 1);
    EXPECT_DOUBLE_EQ(manager.currentFlow(), topo->maxFlow());

    double masked_flow = manager.setNodeAlive(1, false);
    EXPECT_EQ(manager.numSolves(), 2);
    EXPECT_FALSE(manager.nodeAlive(1));
    EXPECT_LT(masked_flow, topo->maxFlow());
    EXPECT_GT(masked_flow, 0.0);

    // The manager's topology equals a fresh solve on the surviving
    // subgraph, edge for edge.
    placement::PlacementGraph fresh(clusterSpec, *profiler,
                                    maskedPlacement({1}));
    (void)fresh.maxThroughput();
    expectFlowsMatch(manager.current(), fresh);
    // The dead node has no vertices in the surviving subgraph.
    EXPECT_TRUE(manager.current().outEdges(1).empty());
    EXPECT_DOUBLE_EQ(coordFlow(manager.current(), 1), 0.0);

    // Recovery restores the original solution exactly.
    double restored = manager.setNodeAlive(1, true);
    EXPECT_EQ(manager.numSolves(), 3);
    EXPECT_DOUBLE_EQ(restored, topo->maxFlow());
    placement::PlacementGraph full(clusterSpec, *profiler, placement);
    (void)full.maxThroughput();
    expectFlowsMatch(manager.current(), full);

    // Redundant liveness writes do not re-solve.
    manager.setNodeAlive(1, true);
    EXPECT_EQ(manager.numSolves(), 3);
}

// --- Stale-IWRR regression (the seed bug) ----------------------------

TEST_F(ChurnFixture, HelixWeightsMatchFreshSolveAfterFailure)
{
    scheduler::HelixScheduler sched(*topo);
    scheduler::TopologyManager manager(clusterSpec, *profiler,
                                       placement);
    LivenessContext ctx;
    ctx.dead.insert(1);

    // The regression: without a topology swap the scheduler still
    // carries the pre-failure flow solution, whose total and
    // proportions are stale for the surviving subgraph.
    manager.setNodeAlive(1, false);
    EXPECT_NE(sched.topology().maxFlow(), manager.currentFlow());

    // The fix: the swap rebinds the scheduler to the re-solved
    // topology, so its IWRR weights equal a fresh preflow-push max
    // flow on the surviving subgraph.
    sched.onTopologyChange(manager.current());
    EXPECT_DOUBLE_EQ(sched.topology().maxFlow(),
                     manager.currentFlow());
    placement::PlacementGraph fresh(clusterSpec, *profiler,
                                    maskedPlacement({1}));
    (void)fresh.maxThroughput();
    expectFlowsMatch(sched.topology(), fresh);

    // Post-failure routing proportions follow the fresh flows: the
    // IWRR entry split matches the coordinator edge flows of the
    // surviving subgraph.
    const int picks = 6000;
    std::map<int, int> entries;
    trace::Request req{0, 0.0, 100, 50};
    for (int i = 0; i < picks; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        for (const auto &stage : *pipeline)
            EXPECT_NE(stage.node, 1);
        ++entries[pipeline->front().node];
    }
    double f0 = coordFlow(sched.topology(), 0);
    double f2 = coordFlow(sched.topology(), 2);
    ASSERT_GT(f0 + f2, 0.0);
    EXPECT_NEAR(static_cast<double>(entries[0]) / picks,
                f0 / (f0 + f2), 0.02);
    EXPECT_NEAR(static_cast<double>(entries[2]) / picks,
                f2 / (f0 + f2), 0.02);
}

TEST_F(ChurnFixture, RecoveryRestoresRoutingThroughRejoinedNode)
{
    scheduler::HelixScheduler sched(*topo);
    scheduler::TopologyManager manager(clusterSpec, *profiler,
                                       placement);
    LivenessContext ctx;

    // Fail node 1, then bring it back.
    ctx.dead.insert(1);
    manager.setNodeAlive(1, false);
    sched.onTopologyChange(manager.current());
    ctx.dead.erase(1);
    manager.setNodeAlive(1, true);
    sched.onTopologyChange(manager.current());

    // Weights are the full-topology solution again...
    placement::PlacementGraph full(clusterSpec, *profiler, placement);
    (void)full.maxThroughput();
    expectFlowsMatch(sched.topology(), full);

    // ...and requests route through the rejoined node again.
    trace::Request req{0, 0.0, 100, 50};
    int through_node1 = 0;
    for (int i = 0; i < 100; ++i) {
        auto pipeline = sched.schedule(req, ctx);
        ASSERT_TRUE(pipeline.has_value());
        for (const auto &stage : *pipeline)
            through_node1 += stage.node == 1;
    }
    EXPECT_GT(through_node1, 0);
}

// --- Simulator: fail/recover schedules -------------------------------

TEST_F(ChurnFixture, SimulatorLogsResolvedFlowPerChurnEvent)
{
    scheduler::HelixScheduler sched(*topo);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 5.0},
        {sim::ChurnEvent::Kind::Recover, 1, 20.0},
    };
    sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                              sched, config);
    auto metrics = sim.run(makeRequests(300, 8.0));

    ASSERT_EQ(metrics.flowEvents.size(), 2u);
    EXPECT_EQ(metrics.flowEvents[0].kind, sim::ChurnEvent::Kind::Fail);
    EXPECT_EQ(metrics.flowEvents[0].node, 1);
    EXPECT_DOUBLE_EQ(metrics.flowEvents[0].time, 5.0);
    EXPECT_EQ(metrics.flowEvents[1].kind,
              sim::ChurnEvent::Kind::Recover);
    EXPECT_DOUBLE_EQ(metrics.flowEvents[1].time, 20.0);
    // The fail event's flow is the surviving subgraph's max flow; the
    // recover event restores the full topology's exactly.
    EXPECT_LT(metrics.flowEvents[0].flow, metrics.flowEvents[1].flow);
    EXPECT_DOUBLE_EQ(metrics.flowEvents[1].flow, topo->maxFlow());
    // The scheduler ends the run bound to the re-solved topology.
    EXPECT_DOUBLE_EQ(sched.topology().maxFlow(), topo->maxFlow());
    EXPECT_TRUE(sim.nodeAlive(1));
    // Node 1 executed batches after rejoining.
    EXPECT_GT(metrics.nodeStats[1].batches, 0);
}

TEST_F(ChurnFixture, LegacySingleFailureAlsoResolves)
{
    scheduler::HelixScheduler sched(*topo);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 40.0;
    config.failNodeIndex = 1;
    config.failAtSeconds = 10.0;
    sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                              sched, config);
    auto metrics = sim.run(makeRequests(200, 5.0));
    ASSERT_EQ(metrics.flowEvents.size(), 1u);
    EXPECT_EQ(metrics.flowEvents[0].kind, sim::ChurnEvent::Kind::Fail);
    EXPECT_LT(metrics.flowEvents[0].flow, topo->maxFlow());
    // The scheduler's live weights equal a fresh solve on the
    // surviving subgraph (the stale-weight regression).
    placement::PlacementGraph fresh(clusterSpec, *profiler,
                                    maskedPlacement({1}));
    (void)fresh.maxThroughput();
    expectFlowsMatch(sched.topology(), fresh);
}

TEST_F(ChurnFixture, FailThenRecoverCompletesMoreThanFailOnly)
{
    // Saturating load so completions are capacity-bound: the run
    // ends with a backlog either way, so with the node back the
    // cluster serves strictly more of it.
    auto requests = makeRequests(2500, 60.0, 11);

    scheduler::HelixScheduler fail_sched(*topo);
    sim::SimConfig fail_only;
    fail_only.warmupSeconds = 2.0;
    fail_only.measureSeconds = 30.0;
    fail_only.churnEvents = {{sim::ChurnEvent::Kind::Fail, 1, 5.0}};
    sim::ClusterSimulator fail_sim(clusterSpec, *profiler, placement,
                                   fail_sched, fail_only);
    auto fail_metrics = fail_sim.run(requests);

    scheduler::HelixScheduler recover_sched(*topo);
    sim::SimConfig fail_recover = fail_only;
    fail_recover.churnEvents.push_back(
        {sim::ChurnEvent::Kind::Recover, 1, 12.0});
    sim::ClusterSimulator recover_sim(clusterSpec, *profiler,
                                      placement, recover_sched,
                                      fail_recover);
    auto recover_metrics = recover_sim.run(requests);

    EXPECT_GT(fail_metrics.requestsCompleted, 0);
    EXPECT_GT(recover_metrics.requestsCompleted,
              fail_metrics.requestsCompleted);
    // Conservation holds in both runs.
    for (const auto *m : {&fail_metrics, &recover_metrics}) {
        EXPECT_LE(m->requestsCompleted, m->requestsAdmitted);
        EXPECT_LE(m->requestsAdmitted + m->requestsRejected,
                  m->requestsArrived);
    }
}

TEST_F(ChurnFixture, RecoveryRightAfterFailureIsEpochSafe)
{
    // Fail and recover within a batch's duration: the BatchDone of
    // the old life must be recognized as stale (node epoch), not
    // double-processed against the recovered node's state.
    scheduler::HelixScheduler sched(*topo);
    sim::SimConfig config;
    config.warmupSeconds = 1.0;
    config.measureSeconds = 40.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 0.5},
        {sim::ChurnEvent::Kind::Recover, 1, 0.55},
        {sim::ChurnEvent::Kind::Fail, 3, 5.0},
        {sim::ChurnEvent::Kind::Recover, 3, 5.01},
    };
    sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                              sched, config);
    auto metrics = sim.run(makeRequests(200, 8.0));
    EXPECT_EQ(metrics.flowEvents.size(), 4u);
    EXPECT_TRUE(sim.nodeAlive(1));
    EXPECT_TRUE(sim.nodeAlive(3));
    EXPECT_GT(metrics.requestsCompleted, 0);
    EXPECT_LE(metrics.requestsCompleted, metrics.requestsAdmitted);
    EXPECT_LE(metrics.requestsAdmitted + metrics.requestsRejected,
              metrics.requestsArrived);
}

TEST_F(ChurnFixture, TransientOutageHoldsBacklogInsteadOfRejecting)
{
    // A single non-replicated pipeline (nodes 2 and 3 unused): while
    // node 1 is down, no request is schedulable and the cluster goes
    // idle. The idle-cluster reject heuristic must not fire — a
    // scheduled recover event makes the backlog servable again, so
    // requests are delayed, not lost.
    placement::ModelPlacement chain;
    chain.nodes = {{0, 6}, {6, 6}, {0, 0}, {0, 0}};
    placement::PlacementGraph chain_graph(clusterSpec, *profiler,
                                          chain);
    scheduler::Topology chain_topo(clusterSpec, *profiler, chain,
                                   chain_graph);
    scheduler::HelixScheduler sched(chain_topo);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 5.0},
        {sim::ChurnEvent::Kind::Recover, 1, 20.0},
    };
    sim::ClusterSimulator sim(clusterSpec, *profiler, chain, sched,
                              config);
    auto metrics = sim.run(makeRequests(80, 4.0));
    EXPECT_EQ(metrics.requestsRejected, 0);
    // Requests arriving during the outage complete after recovery.
    EXPECT_GT(metrics.requestsCompleted, 0);
    EXPECT_GT(metrics.nodeStats[1].batches, 0);
}

TEST_F(ChurnFixture, SchedulerOutlivesSimulatorAfterChurn)
{
    // The scheduler copies the re-solved topology it is rebound to,
    // so using it after the simulator (and its TopologyManager) is
    // destroyed must be safe — ASan/TSan guard the regression.
    scheduler::HelixScheduler sched(*topo);
    {
        sim::SimConfig config;
        config.warmupSeconds = 2.0;
        config.measureSeconds = 30.0;
        config.churnEvents = {{sim::ChurnEvent::Kind::Fail, 1, 5.0}};
        sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                                  sched, config);
        sim.run(makeRequests(100, 5.0));
    }
    EXPECT_LT(sched.topology().maxFlow(), topo->maxFlow());
    LivenessContext ctx;
    ctx.dead.insert(1);
    trace::Request req{0, 0.0, 100, 50};
    auto pipeline = sched.schedule(req, ctx);
    ASSERT_TRUE(pipeline.has_value());
    for (const auto &stage : *pipeline)
        EXPECT_NE(stage.node, 1);
}

TEST_F(ChurnFixture, MultiEventChurnDeterministic)
{
    auto requests = makeRequests(250, 8.0, 17);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 40.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 0, 8.0},
        {sim::ChurnEvent::Kind::Recover, 0, 16.0},
        {sim::ChurnEvent::Kind::Fail, 2, 24.0},
    };

    auto run_once = [&]() {
        scheduler::HelixScheduler sched(*topo);
        sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                                  sched, config);
        return sim.run(requests);
    };
    auto m1 = run_once();
    auto m2 = run_once();
    EXPECT_EQ(m1.requestsCompleted, m2.requestsCompleted);
    EXPECT_EQ(m1.requestsRestarted, m2.requestsRestarted);
    EXPECT_EQ(m1.decodeThroughput, m2.decodeThroughput);
    ASSERT_EQ(m1.flowEvents.size(), m2.flowEvents.size());
    for (size_t i = 0; i < m1.flowEvents.size(); ++i) {
        EXPECT_EQ(m1.flowEvents[i].flow, m2.flowEvents[i].flow);
        EXPECT_EQ(m1.flowEvents[i].time, m2.flowEvents[i].time);
    }
}

// --- Incremental repair vs the cold path -----------------------------

void
expectMetricsIdentical(const sim::SimMetrics &a,
                       const sim::SimMetrics &b)
{
    EXPECT_EQ(a.decodeThroughput, b.decodeThroughput);
    EXPECT_EQ(a.promptThroughput, b.promptThroughput);
    EXPECT_EQ(a.requestsArrived, b.requestsArrived);
    EXPECT_EQ(a.requestsAdmitted, b.requestsAdmitted);
    EXPECT_EQ(a.requestsCompleted, b.requestsCompleted);
    EXPECT_EQ(a.requestsRejected, b.requestsRejected);
    EXPECT_EQ(a.requestsRestarted, b.requestsRestarted);
    EXPECT_EQ(a.decodeTokensInWindow, b.decodeTokensInWindow);
    EXPECT_EQ(a.promptTokensInWindow, b.promptTokensInWindow);
    EXPECT_EQ(a.promptLatency.count(), b.promptLatency.count());
    EXPECT_EQ(a.promptLatency.mean(), b.promptLatency.mean());
    EXPECT_EQ(a.decodeLatency.count(), b.decodeLatency.count());
    EXPECT_EQ(a.decodeLatency.mean(), b.decodeLatency.mean());
    ASSERT_EQ(a.flowEvents.size(), b.flowEvents.size());
    for (size_t i = 0; i < a.flowEvents.size(); ++i) {
        EXPECT_EQ(a.flowEvents[i].time, b.flowEvents[i].time);
        EXPECT_EQ(a.flowEvents[i].node, b.flowEvents[i].node);
        EXPECT_EQ(a.flowEvents[i].kind, b.flowEvents[i].kind);
        EXPECT_EQ(a.flowEvents[i].flow, b.flowEvents[i].flow);
    }
}

/** Replace every occurrence of @p from in @p text with @p to. */
std::string
replaceAll(std::string text, const std::string &from,
           const std::string &to)
{
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

/**
 * Repair-enabled churn must be observationally identical to the cold
 * path. On a two-node chain whose links are the bottleneck the max
 * flow is unique and every arc saturates exactly (capacity minus
 * capacity), so not just the flow values but the entire SimMetrics —
 * and the CSV/JSON emitter bytes, once the resolve-kind tag is
 * normalized — must match bit for bit.
 */
TEST(ChurnRepair, RepairRunMatchesColdRunByteForByte)
{
    ClusterSpec chain_cluster;
    for (int i = 0; i < 2; ++i) {
        NodeSpec node;
        node.name = "t4-" + std::to_string(i);
        node.gpu = cluster::gpus::t4();
        chain_cluster.addNode(std::move(node));
    }
    // 10 Mbps links: the network, not the GPUs, caps the flow, so
    // every link arc saturates and the assignment is unique.
    chain_cluster.setUniformLinks(10e6, 1e-3);
    model::TransformerSpec toy = model::catalog::llama30b();
    toy.numLayers = 12;
    Profiler profiler(toy);
    placement::ModelPlacement chain;
    chain.nodes = {{0, 6}, {6, 6}};
    placement::PlacementGraph graph(chain_cluster, profiler, chain);
    scheduler::Topology topo(chain_cluster, profiler, chain, graph);

    trace::LengthModel lengths;
    lengths.targetMeanPrompt = 120;
    lengths.maxPromptLen = 512;
    lengths.targetMeanOutput = 40;
    lengths.maxOutputLen = 128;
    trace::TraceGenerator gen(3, lengths);
    trace::PoissonArrivals arrivals(1.5);
    auto requests = gen.generateCount(150, arrivals);

    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.churnEvents = {
        {sim::ChurnEvent::Kind::Fail, 1, 5.0},
        {sim::ChurnEvent::Kind::Recover, 1, 20.0},
    };

    auto run_once = [&](bool repair_mode) {
        sim::SimConfig local = config;
        local.repairTopology = repair_mode;
        scheduler::HelixScheduler sched(topo);
        sim::ClusterSimulator sim(chain_cluster, profiler, chain,
                                  sched, local);
        return sim.run(requests);
    };
    auto cold = run_once(false);
    auto repaired = run_once(true);

    expectMetricsIdentical(cold, repaired);
    // Both runs applied the schedule; only the resolve kind differs.
    ASSERT_EQ(cold.flowEvents.size(), 2u);
    for (const auto &event : cold.flowEvents)
        EXPECT_EQ(event.resolveKind, sim::ResolveKind::Cold);
    for (const auto &event : repaired.flowEvents)
        EXPECT_EQ(event.resolveKind, sim::ResolveKind::Repair);

    // The emitted bytes agree exactly once the /repair tag is
    // normalized away (and only via that tag do they differ at all).
    auto to_result = [](const sim::SimMetrics &metrics) {
        exp::JobResult r;
        r.label = "chain";
        r.cluster = "c";
        r.model = "m";
        r.planner = "p";
        r.scheduler = "helix";
        r.arrivals = "poisson";
        r.metrics = metrics;
        return r;
    };
    std::string cold_csv = exp::resultsToCsv({to_result(cold)});
    std::string repair_csv =
        exp::resultsToCsv({to_result(repaired)});
    EXPECT_NE(cold_csv, repair_csv);
    EXPECT_NE(repair_csv.find("/repair"), std::string::npos);
    EXPECT_EQ(cold_csv, replaceAll(repair_csv, "/repair", "/cold"));
    std::string cold_json = exp::resultsToJson({to_result(cold)});
    std::string repair_json =
        exp::resultsToJson({to_result(repaired)});
    EXPECT_EQ(cold_json,
              replaceAll(repair_json, "\"resolve\": \"repair\"",
                         "\"resolve\": \"cold\""));
}

/**
 * Drift-triggered re-solve: a straggler running below its profiled
 * rate (thermal throttling modeled by nodeSlowdown) loses routing
 * weight. Pipeline (0,1) is slowed through node 0; after the drift
 * re-solve the coordinator flow toward node 0 shrinks and pipeline
 * (2,3) absorbs the displaced traffic.
 */
TEST_F(ChurnFixture, DriftReSolveShiftsRoutingAwayFromStraggler)
{
    auto requests = makeRequests(3000, 60.0, 23);

    auto run_once = [&](double drift_threshold) {
        sim::SimConfig config;
        config.warmupSeconds = 2.0;
        config.measureSeconds = 60.0;
        config.repairTopology = true;
        config.driftThreshold = drift_threshold;
        // Node 0 secretly runs 2.5x slower than profiled.
        config.nodeSlowdown = {2.5, 1.0, 1.0, 1.0};
        scheduler::HelixScheduler sched(*topo);
        sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                                  sched, config);
        auto metrics = sim.run(requests);
        return std::make_pair(metrics,
                              coordFlow(sched.topology(), 0));
    };

    auto [baseline, baseline_flow0] = run_once(0.0);
    auto [drifted, drifted_flow0] = run_once(0.25);

    // Without the trigger nothing is logged and the planned weights
    // stay stale.
    EXPECT_TRUE(baseline.flowEvents.empty());
    EXPECT_DOUBLE_EQ(baseline_flow0, coordFlow(*topo, 0));

    // The trigger fired on the straggler — and only the straggler.
    ASSERT_GE(drifted.flowEvents.size(), 1u);
    for (const auto &event : drifted.flowEvents) {
        EXPECT_EQ(event.kind, sim::ChurnEvent::Kind::Drift);
        EXPECT_EQ(event.resolveKind, sim::ResolveKind::Drift);
        EXPECT_EQ(event.node, 0);
        EXPECT_LT(event.flow, topo->maxFlow());
    }

    // Routing shifted away: node 0's coordinator flow shrank and the
    // healthy replica processed more work than under stale weights.
    EXPECT_LT(drifted_flow0, 0.8 * baseline_flow0);
    EXPECT_GT(drifted.nodeStats[2].tokensProcessed,
              baseline.nodeStats[2].tokensProcessed);
}

// --- recentThroughput decay (Swarm over-weighting fix) ---------------

TEST_F(ChurnFixture, RecentThroughputDecaysForQuietNodes)
{
    scheduler::HelixScheduler sched(*topo);
    sim::SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.churnEvents = {{sim::ChurnEvent::Kind::Fail, 1, 10.0}};
    sim::ClusterSimulator sim(clusterSpec, *profiler, placement,
                              sched, config);
    auto metrics = sim.run(makeRequests(500, 10.0));

    // Node 1 processed work before failing, then went silent for
    // ~50 simulated seconds. A never-decaying EWMA would still report
    // its busy-period rate; the decayed estimate must be a tiny
    // fraction of the surviving replica's.
    ASSERT_GT(metrics.nodeStats[1].tokensProcessed, 0);
    double dead_rate = sim.recentThroughput(1);
    double live_rate = sim.recentThroughput(3);
    ASSERT_GT(live_rate, 0.0);
    EXPECT_LT(dead_rate, 0.05 * live_rate);
}

// --- Spec engine: end-to-end schedule + thread invariance ------------

TEST(ChurnSpec, ScheduleRunsIdenticallyAcrossThreadCounts)
{
    auto spec = io::experimentFromString(
        "experiment v1\n"
        "warmup 1\nmeasure 4\nplanner-budget 0.05\n"
        "cluster planner10\nmodel llama30b\n"
        "system a swarm helix\n"
        "system b swarm swarm\n"
        "scenario offline\n"
        "scenario churn online=0 fail=0@0.3 recover=0@0.6\n");
    ASSERT_TRUE(spec.has_value());
    io::ParseError error;
    ASSERT_TRUE(exp::validateSpec(*spec, &error)) << error.str();

    std::optional<std::vector<exp::JobResult>> reference;
    for (int threads : {1, 4, 16}) {
        exp::RunnerOptions options;
        options.numThreads = threads;
        auto results = exp::runSpec(*spec, &error, options);
        ASSERT_TRUE(results.has_value()) << error.str();
        ASSERT_EQ(results->size(), 4u); // 2 systems x 2 scenarios
        if (!reference) {
            reference = std::move(results);
            // The churn rows actually applied the schedule.
            ASSERT_EQ(reference->at(2).metrics.flowEvents.size(), 2u);
            continue;
        }
        for (size_t i = 0; i < results->size(); ++i) {
            EXPECT_EQ(results->at(i).label, reference->at(i).label);
            expectMetricsIdentical(results->at(i).metrics,
                                   reference->at(i).metrics);
        }
    }
}

TEST(ChurnSpec, RepairScheduleRunsIdenticallyAcrossThreadCounts)
{
    auto spec = io::experimentFromString(
        "experiment v1\n"
        "warmup 1\nmeasure 4\nplanner-budget 0.05\n"
        "cluster planner10\nmodel llama30b\n"
        "system a swarm helix\n"
        "scenario churn online=0 repair=1 fail=0@0.3 recover=0@0.6\n");
    ASSERT_TRUE(spec.has_value());
    io::ParseError error;
    ASSERT_TRUE(exp::validateSpec(*spec, &error)) << error.str();

    std::optional<std::vector<exp::JobResult>> reference;
    for (int threads : {1, 4, 16}) {
        exp::RunnerOptions options;
        options.numThreads = threads;
        auto results = exp::runSpec(*spec, &error, options);
        ASSERT_TRUE(results.has_value()) << error.str();
        ASSERT_EQ(results->size(), 1u);
        // The schedule applied, by incremental repair.
        ASSERT_EQ(results->front().metrics.flowEvents.size(), 2u);
        for (const auto &event : results->front().metrics.flowEvents)
            EXPECT_EQ(event.resolveKind, sim::ResolveKind::Repair);
        EXPECT_NE(exp::resultsToCsv(*results).find("/repair"),
                  std::string::npos);
        if (!reference) {
            reference = std::move(results);
            continue;
        }
        expectMetricsIdentical(results->front().metrics,
                               reference->front().metrics);
    }
}

TEST(ChurnSpec, RejectsInvalidRepairAndDriftOptions)
{
    io::ParseError error;
    auto bad_repair = io::experimentFromString(
        "experiment v1\ncluster planner10\nmodel llama30b\n"
        "system a swarm helix\n"
        "scenario churn repair=2 fail=0@0.3\n");
    ASSERT_TRUE(bad_repair.has_value());
    EXPECT_FALSE(exp::validateSpec(*bad_repair, &error));
    EXPECT_NE(error.message.find("repair"), std::string::npos);

    auto bad_drift = io::experimentFromString(
        "experiment v1\ncluster planner10\nmodel llama30b\n"
        "system a swarm helix\n"
        "scenario churn drift=1.5 fail=0@0.3\n");
    ASSERT_TRUE(bad_drift.has_value());
    EXPECT_FALSE(exp::validateSpec(*bad_drift, &error));
    EXPECT_NE(error.message.find("drift"), std::string::npos);
}

TEST(ChurnSpec, ShippedChurnExampleMatchesDocAndRuns)
{
    auto text = io::readFile(std::string(HELIX_EXAMPLES_DIR) +
                             "/churn.exp");
    ASSERT_TRUE(text.has_value());
    io::ParseError error;
    auto spec = io::experimentFromString(*text, error);
    ASSERT_TRUE(spec.has_value()) << error.str();
    EXPECT_TRUE(exp::validateSpec(*spec, &error)) << error.str();
    EXPECT_EQ(spec->name, "churn");
    ASSERT_EQ(spec->scenarios.size(), 2u);
    EXPECT_EQ(spec->scenarios[1].kind, "churn");
    ASSERT_EQ(spec->scenarios[1].events.size(), 2u);
    EXPECT_TRUE(spec->scenarios[1].events[0].fail);
    EXPECT_EQ(spec->scenarios[1].events[0].node, 4);
    EXPECT_FALSE(spec->scenarios[1].events[1].fail);

    // A fail event and its recovery both applied, and the recovery
    // restored the planned flow exactly.
    auto results = exp::runSpec(*spec, &error);
    ASSERT_TRUE(results.has_value()) << error.str();
    ASSERT_EQ(results->size(), 4u); // 2 systems x 2 scenarios
    const auto &churn_row = results->at(2);
    ASSERT_EQ(churn_row.metrics.flowEvents.size(), 2u);
    EXPECT_EQ(churn_row.metrics.flowEvents[0].kind,
              sim::ChurnEvent::Kind::Fail);
    EXPECT_EQ(churn_row.metrics.flowEvents[1].kind,
              sim::ChurnEvent::Kind::Recover);
    EXPECT_LT(churn_row.metrics.flowEvents[0].flow,
              churn_row.metrics.flowEvents[1].flow);
    EXPECT_DOUBLE_EQ(churn_row.metrics.flowEvents[1].flow,
                     churn_row.plannedThroughput);
}

} // namespace
} // namespace helix
