/**
 * @file
 * Tests for the discrete-event serving simulator: request accounting
 * conservation, throughput/latency sanity, KV occupancy invariants,
 * chunked prefill, link congestion statistics, and backpressure.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "core/helix.h"
#include "model/transformer.h"
#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace helix {
namespace sim {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;

/** Small 4-node fixture: two parallel 2-stage pipelines on a tiny
 *  12-layer model, fast uniform network. */
class SimFixture : public ::testing::Test
{
  protected:
    SimFixture()
    {
        for (int i = 0; i < 4; ++i) {
            NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clusterSpec.addNode(std::move(node));
        }
        clusterSpec.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<Profiler>(toy);
        placement.nodes = {{0, 6}, {6, 6}, {0, 6}, {6, 6}};
        graph = std::make_unique<placement::PlacementGraph>(
            clusterSpec, *profiler, placement);
        topo = std::make_unique<scheduler::Topology>(
            clusterSpec, *profiler, placement, *graph);
    }

    std::vector<trace::Request>
    makeRequests(int count, double rate, uint64_t seed = 3)
    {
        trace::LengthModel lengths;
        lengths.targetMeanPrompt = 120;
        lengths.maxPromptLen = 512;
        lengths.targetMeanOutput = 40;
        lengths.maxOutputLen = 128;
        trace::TraceGenerator gen(seed, lengths);
        trace::PoissonArrivals arrivals(rate);
        return gen.generateCount(count, arrivals);
    }

    ClusterSpec clusterSpec;
    model::TransformerSpec toy;
    std::unique_ptr<Profiler> profiler;
    placement::ModelPlacement placement;
    std::unique_ptr<placement::PlacementGraph> graph;
    std::unique_ptr<scheduler::Topology> topo;
};

TEST_F(SimFixture, RequestAccountingConserved)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 5.0;
    config.measureSeconds = 60.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(200, 5.0));
    EXPECT_GT(metrics.requestsArrived, 0);
    EXPECT_GT(metrics.requestsCompleted, 0);
    EXPECT_LE(metrics.requestsCompleted, metrics.requestsAdmitted);
    EXPECT_LE(metrics.requestsAdmitted + metrics.requestsRejected,
              metrics.requestsArrived);
}

TEST_F(SimFixture, ThroughputPositiveUnderLoad)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 5.0;
    config.measureSeconds = 60.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(500, 10.0));
    EXPECT_GT(metrics.decodeThroughput, 0.0);
    EXPECT_GT(metrics.promptThroughput, 0.0);
    EXPECT_GT(metrics.promptLatency.count(), 0u);
    EXPECT_GT(metrics.decodeLatency.count(), 0u);
    EXPECT_GT(metrics.promptLatency.mean(), 0.0);
    EXPECT_GT(metrics.decodeLatency.mean(), 0.0);
}

TEST_F(SimFixture, LatencyRespectsPhysicalFloor)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(50, 0.5));
    // A decode token crosses at least 4 links (1 ms each) per
    // round trip plus two compute iterations.
    EXPECT_GE(metrics.decodeLatency.min(), 4e-3);
}

TEST_F(SimFixture, EmptyTraceYieldsZeroMetrics)
{
    scheduler::HelixScheduler sched(*topo);
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched);
    auto metrics = sim.run({});
    EXPECT_EQ(metrics.requestsArrived, 0);
    EXPECT_DOUBLE_EQ(metrics.decodeThroughput, 0.0);
}

TEST_F(SimFixture, NodeStatsPopulated)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 30.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(200, 8.0));
    ASSERT_EQ(metrics.nodeStats.size(), 4u);
    for (const auto &stat : metrics.nodeStats) {
        EXPECT_GT(stat.batches, 0);
        EXPECT_GT(stat.tokensProcessed, 0);
        EXPECT_GT(stat.busySeconds, 0.0);
    }
}

TEST_F(SimFixture, LinkStatsCollectCongestion)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 30.0;
    config.collectLinkStats = true;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(200, 8.0));
    EXPECT_FALSE(metrics.linkStats.empty());
    double bytes = 0.0;
    for (const auto &link : metrics.linkStats)
        bytes += link.totalBytes;
    EXPECT_GT(bytes, 0.0);
}

TEST_F(SimFixture, ActiveRequestCapEnforced)
{
    scheduler::WalkScheduler sched(*topo,
                                   scheduler::WalkPolicy::Random);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 30.0;
    config.maxActiveRequests = 5;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(300, 50.0));
    // Completions keep the window moving, but at no point can more
    // than 5 requests be admitted beyond completions; with 300
    // arrivals at a blast rate the backlog forces admissions to track
    // completions + 5.
    EXPECT_LE(metrics.requestsAdmitted,
              metrics.requestsCompleted + 5 +
                  metrics.requestsRejected);
}

TEST_F(SimFixture, OversizedRequestRejectedWhenIdle)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 1.0;
    config.measureSeconds = 30.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    // One request whose KV estimate exceeds every node's capacity.
    trace::Request monster{0, 0.0, 500000, 10};
    auto metrics = sim.run({monster});
    EXPECT_EQ(metrics.requestsRejected, 1);
    EXPECT_EQ(metrics.requestsAdmitted, 0);
}

TEST_F(SimFixture, ChunkedPrefillSplitsLongPrompts)
{
    // A single 500-token prompt with a 64-token budget must run as
    // ceil(500/64) = 8 chunks on its entry node; with a 4096 budget it
    // runs as one iteration. Decode iterations (outputLen = 4) add the
    // same batch count to both runs.
    trace::Request lone{0, 0.0, 500, 4};

    scheduler::HelixScheduler sched_small(*topo);
    SimConfig small_chunks;
    small_chunks.warmupSeconds = 0.0;
    small_chunks.measureSeconds = 30.0;
    small_chunks.maxBatchTokens = 64;
    ClusterSimulator sim_small(clusterSpec, *profiler, placement,
                               sched_small, small_chunks);
    auto m_small = sim_small.run({lone});

    scheduler::HelixScheduler sched_big(*topo);
    SimConfig big_chunks;
    big_chunks.warmupSeconds = 0.0;
    big_chunks.measureSeconds = 30.0;
    big_chunks.maxBatchTokens = 4096;
    ClusterSimulator sim_big(clusterSpec, *profiler, placement,
                             sched_big, big_chunks);
    auto m_big = sim_big.run({lone});

    ASSERT_EQ(m_small.requestsCompleted, 1);
    ASSERT_EQ(m_big.requestsCompleted, 1);
    long small_batches = 0;
    long big_batches = 0;
    for (const auto &stat : m_small.nodeStats)
        small_batches += stat.batches;
    for (const auto &stat : m_big.nodeStats)
        big_batches += stat.batches;
    // Two stages x 7 extra chunks each = 14 extra batches.
    EXPECT_EQ(small_batches - big_batches, 14);
}

TEST_F(SimFixture, DeterministicForSeedAndTrace)
{
    auto requests = makeRequests(150, 6.0, 11);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 30.0;

    scheduler::HelixScheduler sched1(*topo);
    ClusterSimulator sim1(clusterSpec, *profiler, placement, sched1,
                          config);
    auto m1 = sim1.run(requests);

    scheduler::HelixScheduler sched2(*topo);
    ClusterSimulator sim2(clusterSpec, *profiler, placement, sched2,
                          config);
    auto m2 = sim2.run(requests);

    EXPECT_EQ(m1.requestsCompleted, m2.requestsCompleted);
    EXPECT_DOUBLE_EQ(m1.decodeThroughput, m2.decodeThroughput);
    EXPECT_DOUBLE_EQ(m1.promptLatency.mean(), m2.promptLatency.mean());
}

TEST_F(SimFixture, WarmupStraddlingRequestsExcludedFromPromptLatency)
{
    // Requests that arrive during warmup but produce their first
    // token inside the window used to contribute their (arbitrarily
    // long) pre-window queueing to promptLatency. They must be
    // excluded: only requests measured entirely in-window count.
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 5.0;
    config.measureSeconds = 60.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    // All arrivals just before the warmup boundary; end-to-end first
    // token latency exceeds 10 ms (4 links x 1 ms plus two prompt
    // iterations), so every first token lands inside the window.
    std::vector<trace::Request> straddlers;
    for (int i = 0; i < 3; ++i)
        straddlers.push_back({i, 4.99, 100, 8});
    auto metrics = sim.run(straddlers);
    ASSERT_EQ(metrics.requestsCompleted, 3);
    EXPECT_GT(metrics.decodeTokensInWindow, 0);
    EXPECT_EQ(metrics.promptLatency.count(), 0u);
}

TEST_F(SimFixture, WarmupStraddlingRequestsExcludedFromDecodeLatency)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 5.0;
    config.measureSeconds = 120.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    // The straddler's first token arrives well before the window
    // (arrival at 0, light load) while its long decode finishes
    // inside it; the control runs entirely in-window.
    trace::Request straddler{0, 0.0, 100, 1500};
    trace::Request control{1, 20.0, 100, 16};
    auto metrics = sim.run({straddler, control});
    ASSERT_EQ(metrics.requestsCompleted, 2);
    // Only the control contributes to either latency metric.
    EXPECT_EQ(metrics.promptLatency.count(), 1u);
    EXPECT_EQ(metrics.decodeLatency.count(), 1u);
}

TEST_F(SimFixture, EwmaThroughputTracksBusyAverageRate)
{
    // The throughput EWMA is duration-weighted: after a long steady
    // run it must sit near each node's busy-time average rate rather
    // than being dominated by whichever small batches ran last.
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(400, 8.0));
    for (size_t i = 0; i < metrics.nodeStats.size(); ++i) {
        const auto &stat = metrics.nodeStats[i];
        ASSERT_GT(stat.busySeconds, 0.0);
        double avg_rate = static_cast<double>(stat.tokensProcessed) /
                          stat.busySeconds;
        double ewma = sim.recentThroughput(static_cast<int>(i));
        EXPECT_GT(ewma, 0.2 * avg_rate) << "node " << i;
        EXPECT_LT(ewma, 5.0 * avg_rate) << "node " << i;
    }
}

TEST_F(SimFixture, NodeFailureForcesRescheduling)
{
    scheduler::HelixScheduler sched(*topo);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 60.0;
    config.failNodeIndex = 1;
    config.failAtSeconds = 10.0;
    ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                         config);
    auto metrics = sim.run(makeRequests(200, 5.0));
    // Requests in flight through node 1 at the failure restart and
    // complete on the surviving pipeline.
    EXPECT_GT(metrics.requestsRestarted, 0);
    EXPECT_GT(metrics.requestsCompleted, 0);
    EXPECT_FALSE(sim.nodeAlive(1));
    EXPECT_TRUE(sim.nodeAlive(0));
    // Conservation still holds after restarts.
    EXPECT_LE(metrics.requestsCompleted, metrics.requestsAdmitted);
    EXPECT_LE(metrics.requestsAdmitted + metrics.requestsRejected,
              metrics.requestsArrived);
    // The dead node stops executing; the surviving same-layer replica
    // keeps going and ends up with strictly more batches.
    EXPECT_GT(metrics.nodeStats[3].batches,
              metrics.nodeStats[1].batches);
}

TEST_F(SimFixture, ChurnDoesNotDoubleCountWindowMetrics)
{
    // A restarted request regenerates its prompt and its already
    // delivered tokens; none of that recovery work may be recounted
    // as served tokens or resampled into the latency distributions.
    // The single request routes onto one of the two pipelines; fail
    // each candidate node in turn so at least one run restarts it.
    trace::Request lone{0, 0.0, 200, 40};
    long restarts = 0;
    for (int fail_node : {1, 3}) {
        scheduler::HelixScheduler sched(*topo);
        SimConfig config;
        config.warmupSeconds = 0.0;
        config.measureSeconds = 120.0;
        config.failNodeIndex = fail_node;
        config.failAtSeconds = 0.5;
        ClusterSimulator sim(clusterSpec, *profiler, placement, sched,
                             config);
        auto metrics = sim.run({lone});
        restarts += metrics.requestsRestarted;
        ASSERT_EQ(metrics.requestsCompleted, 1);
        // Each of the 40 output tokens counts at most once (the
        // first is prompt completion, not decode), the prompt counts
        // at most once, and at most one latency sample per metric.
        EXPECT_LE(metrics.decodeTokensInWindow, 39);
        EXPECT_LE(metrics.promptTokensInWindow, 200);
        EXPECT_LE(metrics.promptLatency.count(), 1u);
        EXPECT_LE(metrics.decodeLatency.count(), 1u);
    }
    EXPECT_GE(restarts, 1);
}

TEST_F(SimFixture, NodeFailureDeterministic)
{
    auto requests = makeRequests(150, 6.0, 17);
    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 40.0;
    config.failNodeIndex = 0;
    config.failAtSeconds = 8.0;

    scheduler::HelixScheduler sched1(*topo);
    ClusterSimulator sim1(clusterSpec, *profiler, placement, sched1,
                          config);
    auto m1 = sim1.run(requests);

    scheduler::HelixScheduler sched2(*topo);
    ClusterSimulator sim2(clusterSpec, *profiler, placement, sched2,
                          config);
    auto m2 = sim2.run(requests);

    EXPECT_EQ(m1.requestsCompleted, m2.requestsCompleted);
    EXPECT_EQ(m1.requestsRestarted, m2.requestsRestarted);
    EXPECT_DOUBLE_EQ(m1.decodeThroughput, m2.decodeThroughput);
    EXPECT_DOUBLE_EQ(m1.promptLatency.mean(),
                     m2.promptLatency.mean());
}

TEST_F(SimFixture, SlowNetworkRaisesLatency)
{
    // Same workload on a 100x slower, higher-latency network.
    ClusterSpec slow;
    for (int i = 0; i < 4; ++i)
        slow.addNode(clusterSpec.node(i));
    slow.setUniformLinks(100e6, 50e-3);
    placement::PlacementGraph slow_graph(slow, *profiler, placement);
    scheduler::Topology slow_topo(slow, *profiler, placement,
                                  slow_graph);

    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 40.0;

    scheduler::HelixScheduler fast_sched(*topo);
    ClusterSimulator fast_sim(clusterSpec, *profiler, placement,
                              fast_sched, config);
    auto fast = fast_sim.run(makeRequests(100, 2.0));

    scheduler::HelixScheduler slow_sched(slow_topo);
    ClusterSimulator slow_sim(slow, *profiler, placement, slow_sched,
                              config);
    auto slow_metrics = slow_sim.run(makeRequests(100, 2.0));

    EXPECT_GT(slow_metrics.decodeLatency.mean(),
              fast.decodeLatency.mean());
}

TEST_F(SimFixture, ParallelExecutorMatchesSerialExactly)
{
    // The sharded executor (SimConfig::simThreads > 1) must
    // reproduce the serial loop bit-for-bit on this fixture, churn
    // included (the 1 ms uniform link latency is the conservative
    // lookahead). EXPECT_EQ on doubles deliberately: identical bits,
    // not a tolerance.
    SimConfig base;
    base.warmupSeconds = 2.0;
    base.measureSeconds = 40.0;
    base.collectLinkStats = true;
    base.churnEvents = {{ChurnEvent::Kind::Fail, 1, 10.0},
                        {ChurnEvent::Kind::Recover, 1, 20.0}};
    auto requests = makeRequests(150, 4.0);

    SimConfig serial_cfg = base;
    serial_cfg.simThreads = 1;
    scheduler::HelixScheduler serial_sched(*topo);
    ClusterSimulator serial_sim(clusterSpec, *profiler, placement,
                                serial_sched, serial_cfg);
    auto serial = serial_sim.run(requests);

    for (int threads : {2, 4, 8}) {
        SimConfig parallel_cfg = base;
        parallel_cfg.simThreads = threads;
        scheduler::HelixScheduler parallel_sched(*topo);
        ClusterSimulator parallel_sim(clusterSpec, *profiler,
                                      placement, parallel_sched,
                                      parallel_cfg);
        auto parallel = parallel_sim.run(requests);

        EXPECT_EQ(parallel.decodeThroughput, serial.decodeThroughput)
            << "threads=" << threads;
        EXPECT_EQ(parallel.promptThroughput, serial.promptThroughput)
            << "threads=" << threads;
        EXPECT_EQ(parallel.requestsCompleted,
                  serial.requestsCompleted)
            << "threads=" << threads;
        EXPECT_EQ(parallel.requestsRestarted,
                  serial.requestsRestarted)
            << "threads=" << threads;
        EXPECT_EQ(parallel.avgKvUtilization, serial.avgKvUtilization)
            << "threads=" << threads;
        EXPECT_EQ(parallel.promptLatency.mean(),
                  serial.promptLatency.mean())
            << "threads=" << threads;
        EXPECT_EQ(parallel.decodeLatency.mean(),
                  serial.decodeLatency.mean())
            << "threads=" << threads;
        ASSERT_EQ(parallel.flowEvents.size(),
                  serial.flowEvents.size())
            << "threads=" << threads;
        for (size_t i = 0; i < serial.flowEvents.size(); ++i) {
            EXPECT_EQ(parallel.flowEvents[i].time,
                      serial.flowEvents[i].time);
            EXPECT_EQ(parallel.flowEvents[i].flow,
                      serial.flowEvents[i].flow);
        }
        ASSERT_EQ(parallel.nodeStats.size(), serial.nodeStats.size());
        for (size_t i = 0; i < serial.nodeStats.size(); ++i) {
            EXPECT_EQ(parallel.nodeStats[i].batches,
                      serial.nodeStats[i].batches)
                << "node " << i << " threads=" << threads;
            EXPECT_EQ(parallel.nodeStats[i].busySeconds,
                      serial.nodeStats[i].busySeconds)
                << "node " << i << " threads=" << threads;
        }
        ASSERT_EQ(parallel.linkStats.size(), serial.linkStats.size());
        for (size_t i = 0; i < serial.linkStats.size(); ++i) {
            EXPECT_EQ(parallel.linkStats[i].transfers,
                      serial.linkStats[i].transfers);
            EXPECT_EQ(parallel.linkStats[i].totalBytes,
                      serial.linkStats[i].totalBytes);
        }
    }
}

TEST_F(SimFixture, ZeroLatencyClusterFallsBackToSerial)
{
    // A cluster with zero propagation latency has no conservative
    // lookahead window; simThreads > 1 must silently use the serial
    // loop and still produce identical results to simThreads = 1.
    ClusterSpec flat;
    for (int i = 0; i < 4; ++i)
        flat.addNode(clusterSpec.node(i));
    flat.setUniformLinks(10e9, 0.0);
    placement::PlacementGraph flat_graph(flat, *profiler, placement);
    scheduler::Topology flat_topo(flat, *profiler, placement,
                                  flat_graph);
    auto requests = makeRequests(80, 3.0);

    SimConfig config;
    config.warmupSeconds = 2.0;
    config.measureSeconds = 20.0;
    scheduler::HelixScheduler serial_sched(flat_topo);
    ClusterSimulator serial_sim(flat, *profiler, placement,
                                serial_sched, config);
    auto serial = serial_sim.run(requests);

    config.simThreads = 4;
    scheduler::HelixScheduler parallel_sched(flat_topo);
    ClusterSimulator parallel_sim(flat, *profiler, placement,
                                  parallel_sched, config);
    auto parallel = parallel_sim.run(requests);

    EXPECT_EQ(parallel.decodeThroughput, serial.decodeThroughput);
    EXPECT_EQ(parallel.requestsCompleted, serial.requestsCompleted);
    EXPECT_EQ(parallel.promptLatency.mean(),
              serial.promptLatency.mean());
}

} // namespace
} // namespace sim
} // namespace helix
