/**
 * @file
 * Randomized differential-testing harness for incremental max-flow
 * repair (PreflowPush::repair). Placement graphs built over generated
 * clusters (gen:<preset>:<n>, n in {16, 64, 256}) are driven through
 * random fail / recover / capacity-drift schedules; after every event
 * the repaired flow must agree with a cold PreflowPush solve AND an
 * independent Dinic solve on a fresh copy of the same network, and the
 * repaired flow assignment itself must be conserved at every interior
 * vertex and feasible on every arc.
 *
 * Every checked event is one "instance"; the default schedule sizes
 * give >= 1000 instances. Set HELIX_FUZZ_ITERS to scale the total
 * instance budget up (soak runs) or down (quick smoke). On failure
 * each assertion carries a single replay line (preset, node count,
 * schedule seed, event index, event) that reproduces the instance.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/generator.h"
#include "cluster/profiler.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "placement/placement_graph.h"
#include "placement/planners.h"
#include "util/random.h"

namespace helix {
namespace {

using flow::Edge;
using flow::EdgeId;
using flow::FlowGraph;
using flow::NodeId;

/** Build a fresh copy of @p graph with original capacities. */
FlowGraph
cloneGraph(const FlowGraph &graph)
{
    FlowGraph copy;
    for (size_t i = 0; i < graph.numNodes(); ++i)
        copy.addNode(graph.nodeLabel(static_cast<NodeId>(i)));
    for (size_t e = 0; e < graph.numEdges() * 2; e += 2) {
        const Edge &edge = graph.edge(static_cast<EdgeId>(e));
        copy.addEdge(edge.from, edge.to, edge.originalCapacity);
    }
    return copy;
}

/** Net flow imbalance at @p node (inflow - outflow on forward edges). */
double
imbalance(const FlowGraph &graph, NodeId node)
{
    double net = 0.0;
    for (size_t e = 0; e < graph.numEdges() * 2; e += 2) {
        const Edge &edge = graph.edge(static_cast<EdgeId>(e));
        double f = graph.flowOn(static_cast<EdgeId>(e));
        if (edge.to == node)
            net += f;
        if (edge.from == node)
            net -= f;
    }
    return net;
}

/** Largest original capacity in @p graph (tolerance scale). */
double
capacityScale(const FlowGraph &graph)
{
    double scale = 1.0;
    for (size_t e = 0; e < graph.numEdges() * 2; e += 2) {
        const Edge &edge = graph.edge(static_cast<EdgeId>(e));
        if (edge.originalCapacity > scale)
            scale = edge.originalCapacity;
    }
    return scale;
}

/** One randomized mutation of a node's compute capacity. */
struct FuzzEvent
{
    enum class Op
    {
        Fail,    // capacity -> 0
        Recover, // capacity -> profiled
        Drift,   // capacity -> fraction * profiled
    };
    Op op = Op::Fail;
    int node = -1;
    double capacity = 0.0;
};

const char *
toString(FuzzEvent::Op op)
{
    switch (op) {
      case FuzzEvent::Op::Fail:    return "fail";
      case FuzzEvent::Op::Recover: return "recover";
      case FuzzEvent::Op::Drift:   return "drift";
    }
    return "?";
}

/** One generated cluster exercised by one schedule. */
struct FuzzConfig
{
    const char *preset;
    int numNodes;
    uint64_t scheduleSeed;
    int numEvents;
};

/**
 * Default schedule sizes: 1020 instances total. HELIX_FUZZ_ITERS
 * rescales every schedule proportionally.
 */
const FuzzConfig kConfigs[] = {
    {"homogeneous", 16, 11, 90},
    {"homogeneous", 16, 12, 90},
    {"two-tier", 16, 21, 90},
    {"two-tier", 16, 22, 90},
    {"long-tail-heterogeneous", 16, 31, 90},
    {"long-tail-heterogeneous", 16, 32, 90},
    {"two-tier", 64, 41, 120},
    {"geo-distributed", 64, 51, 120},
    {"long-tail-heterogeneous", 256, 61, 120},
    {"geo-distributed", 256, 71, 120},
};
constexpr int kDefaultInstances = 1020;

/** Total instance budget: HELIX_FUZZ_ITERS or the default 1020. */
int
instanceBudget()
{
    const char *env = std::getenv("HELIX_FUZZ_ITERS");
    if (!env || *env == '\0')
        return kDefaultInstances;
    int value = std::atoi(env);
    return value > 0 ? value : kDefaultInstances;
}

/**
 * Checks one repaired placement graph against both oracles and the
 * flow axioms. @p replay is appended to every assertion message.
 */
void
checkAgainstOracles(placement::PlacementGraph &live, double repaired,
                    const std::string &replay)
{
    const FlowGraph &net = live.graph();
    double scale = capacityScale(net);
    double tol = 1e-7 * scale;

    // Oracle 1: cold preflow-push on a fresh copy.
    FlowGraph cold_graph = cloneGraph(net);
    flow::PreflowPush cold(cold_graph);
    double cold_value = cold.solve(live.source(), live.sink());
    EXPECT_NEAR(repaired, cold_value, tol) << replay;

    // Oracle 2: independent Dinic solve.
    FlowGraph dinic_graph = cloneGraph(net);
    flow::Dinic dinic(dinic_graph);
    double dinic_value = dinic.solve(live.source(), live.sink());
    EXPECT_NEAR(repaired, dinic_value, tol) << replay;

    // Axiom: every arc's flow respects 0 <= flow <= capacity.
    for (size_t e = 0; e < net.numEdges() * 2; e += 2) {
        const Edge &edge = net.edge(static_cast<EdgeId>(e));
        double f = net.flowOn(static_cast<EdgeId>(e));
        ASSERT_GE(f, -tol) << "edge " << e << ": " << replay;
        ASSERT_LE(f, edge.originalCapacity + tol)
            << "edge " << e << ": " << replay;
    }

    // Axiom: conservation at every interior vertex.
    for (size_t v = 0; v < net.numNodes(); ++v) {
        auto vertex = static_cast<NodeId>(v);
        if (vertex == live.source() || vertex == live.sink())
            continue;
        ASSERT_LE(std::fabs(imbalance(net, vertex)), tol)
            << "vertex " << v << ": " << replay;
    }
}

/** Runs one config's schedule; returns the number of instances. */
int
runSchedule(const FuzzConfig &config, int num_events)
{
    cluster::gen::GeneratorConfig gen_config;
    gen_config.preset = config.preset;
    gen_config.numNodes = config.numNodes;
    gen_config.seed = 42;
    auto clus = cluster::gen::generate(gen_config);
    if (!clus.has_value()) {
        ADD_FAILURE() << "generator rejected preset "
                      << config.preset;
        return 0;
    }

    auto model = model::catalog::llama30b();
    cluster::Profiler profiler(model);
    placement::SwarmPlanner planner;
    auto placement = planner.plan(*clus, profiler);

    placement::PlacementGraph live(*clus, profiler, placement);

    // Profiled compute capacities (the recover targets), and which
    // nodes actually hold layers (the fuzzable population).
    std::vector<double> profiled(clus->numNodes(), -1.0);
    std::vector<int> fuzzable;
    for (int node = 0; node < clus->numNodes(); ++node) {
        EdgeId comp = live.computeEdge(node);
        if (comp == flow::kInvalidEdge)
            continue;
        profiled[node] = live.graph().edge(comp).originalCapacity;
        fuzzable.push_back(node);
    }
    if (fuzzable.empty())
        return 0;

    // Instance 0 of every schedule: the initial cold solve itself
    // must match the oracles.
    double value = live.maxThroughput();
    std::ostringstream base;
    base << "replay: preset=" << config.preset
         << " n=" << config.numNodes << " cluster_seed=42"
         << " schedule_seed=" << config.scheduleSeed;
    checkAgainstOracles(live, value, base.str() + " event=initial");
    int instances = 1;

    Rng rng(config.scheduleSeed);
    std::vector<bool> alive(clus->numNodes(), true);
    for (int i = 1; i < num_events; ++i) {
        // Draw the next event against the current alive/dead state:
        // fail a live node, recover a dead one, or drift-shrink a
        // live node to a random fraction of its profiled capacity.
        FuzzEvent event;
        event.node = fuzzable[rng.nextBounded(fuzzable.size())];
        if (!alive[event.node]) {
            event.op = FuzzEvent::Op::Recover;
            event.capacity = profiled[event.node];
            alive[event.node] = true;
        } else if (rng.nextBounded(3) == 0) {
            event.op = FuzzEvent::Op::Fail;
            event.capacity = 0.0;
            alive[event.node] = false;
        } else {
            event.op = FuzzEvent::Op::Drift;
            event.capacity =
                rng.nextUniform(0.05, 0.95) * profiled[event.node];
        }

        live.setComputeCapacity(event.node, event.capacity);
        double repaired = live.repairFlow();

        std::ostringstream replay;
        replay << base.str() << " event=" << i << " op="
               << toString(event.op) << " node=" << event.node
               << " capacity=" << event.capacity;
        checkAgainstOracles(live, repaired, replay.str());
        ++instances;
        if (::testing::Test::HasFatalFailure())
            break;
    }
    return instances;
}

TEST(FlowDifferential, RepairMatchesColdAndDinicUnderRandomChurn)
{
    int budget = instanceBudget();
    int instances = 0;
    for (const FuzzConfig &config : kConfigs) {
        // Rescale this schedule's share of the instance budget.
        int events = std::max(
            1, static_cast<int>(static_cast<long long>(
                                    config.numEvents) *
                                budget / kDefaultInstances));
        instances += runSchedule(config, events);
        if (::testing::Test::HasFatalFailure())
            break;
    }
    if (budget == kDefaultInstances) {
        EXPECT_GE(instances, 1000);
    }
}

/**
 * Degenerate residual shapes the cluster-backed fuzz above cannot
 * produce: raw random multigraphs (parallel edges, cycles, dead-end
 * branches) under random single-edge capacity updates.
 */
TEST(FlowDifferential, RepairMatchesOnRawRandomGraphs)
{
    Rng rng(4242);
    for (int trial = 0; trial < 60; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBounded(10));
        FlowGraph g;
        for (int i = 0; i < n; ++i)
            g.addNode();
        std::vector<EdgeId> forward;
        int m = 1 + static_cast<int>(rng.nextBounded(3 * n));
        for (int e = 0; e < m; ++e) {
            auto u = static_cast<NodeId>(rng.nextBounded(n));
            auto v = static_cast<NodeId>(rng.nextBounded(n));
            if (u == v)
                continue;
            forward.push_back(
                g.addEdge(u, v, rng.nextUniform(0.0, 20.0)));
        }
        if (forward.empty())
            continue;
        flow::PreflowPush solver(g);
        (void)solver.solve(0, 1);
        for (int step = 0; step < 10; ++step) {
            EdgeId target =
                forward[rng.nextBounded(forward.size())];
            double cap = rng.nextBounded(4) == 0
                             ? 0.0
                             : rng.nextUniform(0.0, 20.0);
            g.setEdgeCapacity(target, cap);
            double repaired = solver.repair(0, 1);

            FlowGraph cold_graph = cloneGraph(g);
            flow::PreflowPush cold(cold_graph);
            double cold_value = cold.solve(0, 1);
            FlowGraph dinic_graph = cloneGraph(g);
            flow::Dinic dinic(dinic_graph);
            double dinic_value = dinic.solve(0, 1);
            ASSERT_NEAR(repaired, cold_value, 1e-6)
                << "replay: trial=" << trial << " step=" << step
                << " edge=" << target << " capacity=" << cap;
            ASSERT_NEAR(repaired, dinic_value, 1e-6)
                << "replay: trial=" << trial << " step=" << step
                << " edge=" << target << " capacity=" << cap;
            for (NodeId v = 2; v < n; ++v) {
                ASSERT_LE(std::fabs(imbalance(g, v)), 1e-6)
                    << "node " << v << " trial " << trial << " step "
                    << step;
            }
        }
    }
}

} // namespace
} // namespace helix
