/**
 * @file
 * End-to-end integration tests through the public facade: deploy →
 * schedule → simulate on reduced-scale versions of the paper's
 * experiments, checking the qualitative relationships the paper
 * reports (Helix ≥ baselines, geo slower than single-cluster, online
 * latency sane).
 */

#include <gtest/gtest.h>

#include "core/helix.h"

namespace helix {
namespace {

/** A small but heterogeneous cluster for quick end-to-end runs. */
cluster::ClusterSpec
miniCluster()
{
    cluster::ClusterSpec c;
    auto add = [&](const cluster::GpuSpec &gpu, int count) {
        for (int i = 0; i < count; ++i) {
            cluster::NodeSpec node;
            node.name = gpu.name + "-" + std::to_string(i);
            node.gpu = gpu;
            c.addNode(std::move(node));
        }
    };
    add(cluster::gpus::a100_40(), 1);
    add(cluster::gpus::l4(), 2);
    add(cluster::gpus::t4(), 3);
    c.setUniformLinks(10e9, 1e-3);
    return c;
}

/** A 30-layer model so the mini cluster can replicate it. */
model::TransformerSpec
miniModel()
{
    model::TransformerSpec spec = model::catalog::llama30b();
    spec.name = "LLaMA-30B-half";
    spec.numLayers = 30;
    return spec;
}

RunConfig
quickRun(bool online = false)
{
    RunConfig run;
    run.online = online;
    run.warmupSeconds = 20.0;
    run.measureSeconds = 60.0;
    run.seed = 17;
    return run;
}

TEST(Integration, DeploymentPlansAndReports)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::HelixPlanner planner(config);
    Deployment deployment(miniCluster(), miniModel(), planner);
    EXPECT_GT(deployment.plannedThroughput(), 0.0);
    EXPECT_EQ(deployment.plannerName(), "helix");
    EXPECT_TRUE(placement::placementValid(deployment.placement(),
                                          deployment.clusterSpec(),
                                          deployment.profiler()));
}

TEST(Integration, ReplanSwitchesPlacement)
{
    placement::SwarmPlanner swarm;
    Deployment deployment(miniCluster(), miniModel(), swarm);
    double swarm_flow = deployment.plannedThroughput();
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::HelixPlanner helix_planner(config);
    deployment.replan(helix_planner);
    EXPECT_EQ(deployment.plannerName(), "helix");
    EXPECT_GE(deployment.plannedThroughput(), swarm_flow - 1e-6);
}

TEST(Integration, ExternalPlacementInstallable)
{
    placement::SwarmPlanner swarm;
    Deployment deployment(miniCluster(), miniModel(), swarm);
    placement::ModelPlacement manual = deployment.placement();
    deployment.usePlacement(manual);
    EXPECT_EQ(deployment.plannerName(), "external");
}

TEST(Integration, MakeTraceScalesWithThroughput)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 1.0;
    placement::HelixPlanner planner(config);
    Deployment deployment(miniCluster(), miniModel(), planner);
    RunConfig run = quickRun();
    auto offline_trace = makeTrace(deployment, run);
    EXPECT_FALSE(offline_trace.empty());
    run.requestRate = 0.5;
    auto fixed_trace = makeTrace(deployment, run);
    // Explicit 0.5 req/s over ~82s: about 41 requests.
    EXPECT_NEAR(static_cast<double>(fixed_trace.size()), 41.0, 20.0);
}

TEST(Integration, OfflineHelixServesRequests)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::HelixPlanner planner(config);
    Deployment deployment(miniCluster(), miniModel(), planner);
    auto sched = makeScheduler(deployment, SchedulerKind::Helix);
    auto metrics = runExperiment(deployment, *sched, quickRun());
    EXPECT_GT(metrics.decodeThroughput, 0.0);
    EXPECT_GT(metrics.requestsCompleted, 0);
}

TEST(Integration, HelixAtLeastMatchesRandomScheduling)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::HelixPlanner planner(config);
    Deployment deployment(miniCluster(), miniModel(), planner);
    auto helix_sched = makeScheduler(deployment, SchedulerKind::Helix);
    auto random_sched =
        makeScheduler(deployment, SchedulerKind::Random);
    auto helix_metrics =
        runExperiment(deployment, *helix_sched, quickRun());
    auto random_metrics =
        runExperiment(deployment, *random_sched, quickRun());
    // Same placement, Helix scheduling should not lose badly; at this
    // tiny scale the KV-masked admission can trail slightly, so allow
    // 15% noise.
    EXPECT_GE(helix_metrics.decodeThroughput,
              0.85 * random_metrics.decodeThroughput);
}

TEST(Integration, HelixPlacementBeatsSwarmPlacement)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 3.0;
    placement::HelixPlanner helix_planner(config);
    placement::SwarmPlanner swarm_planner;

    Deployment helix_dep(miniCluster(), miniModel(), helix_planner);
    Deployment swarm_dep(miniCluster(), miniModel(), swarm_planner);

    auto helix_sched = makeScheduler(helix_dep, SchedulerKind::Helix);
    auto swarm_sched = makeScheduler(swarm_dep, SchedulerKind::Swarm);

    auto helix_metrics =
        runExperiment(helix_dep, *helix_sched, quickRun());
    auto swarm_metrics =
        runExperiment(swarm_dep, *swarm_sched, quickRun());

    EXPECT_GT(helix_metrics.decodeThroughput,
              swarm_metrics.decodeThroughput);
}

TEST(Integration, OnlineModeUsesLighterLoad)
{
    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 2.0;
    placement::HelixPlanner planner(config);
    Deployment deployment(miniCluster(), miniModel(), planner);
    auto sched_online = makeScheduler(deployment, SchedulerKind::Helix);
    auto online = runExperiment(deployment, *sched_online,
                                quickRun(true));
    auto sched_offline =
        makeScheduler(deployment, SchedulerKind::Helix);
    auto offline = runExperiment(deployment, *sched_offline,
                                 quickRun(false));
    EXPECT_GT(online.requestsCompleted, 0);
    // Online runs at 75% of planned peak, offline oversubscribes:
    // online prompt latency must be no worse.
    EXPECT_LE(online.promptLatency.mean(),
              offline.promptLatency.mean() + 1e-9);
}

TEST(Integration, SchedulerKindNames)
{
    EXPECT_STREQ(toString(SchedulerKind::Helix), "helix");
    EXPECT_STREQ(toString(SchedulerKind::Swarm), "swarm");
    EXPECT_STREQ(toString(SchedulerKind::Random), "random");
    EXPECT_STREQ(toString(SchedulerKind::ShortestQueue),
                 "shortest-queue");
    EXPECT_STREQ(toString(SchedulerKind::FixedRoundRobin), "fixed-rr");
}

TEST(Integration, GeoNetworkDegradesLatency)
{
    // Two-region variant of the mini cluster.
    cluster::ClusterSpec geo;
    auto add = [&](const cluster::GpuSpec &gpu, int count, int region) {
        for (int i = 0; i < count; ++i) {
            cluster::NodeSpec node;
            node.name = gpu.name + "-r" + std::to_string(region) +
                        "-" + std::to_string(i);
            node.gpu = gpu;
            node.region = region;
            geo.addNode(std::move(node));
        }
    };
    add(cluster::gpus::a100_40(), 1, 0);
    add(cluster::gpus::l4(), 2, 1);
    add(cluster::gpus::t4(), 3, 1);
    geo.connectRegions({10e9, 1e-3}, {100e6, 50e-3}, 0);

    placement::HelixPlannerConfig config;
    config.timeBudgetSeconds = 3.0;
    placement::HelixPlanner planner_fast(config);
    placement::HelixPlanner planner_geo(config);

    Deployment fast_dep(miniCluster(), miniModel(), planner_fast);
    Deployment geo_dep(geo, miniModel(), planner_geo);

    auto fast_sched = makeScheduler(fast_dep, SchedulerKind::Helix);
    auto geo_sched = makeScheduler(geo_dep, SchedulerKind::Helix);

    auto fast_metrics =
        runExperiment(fast_dep, *fast_sched, quickRun());
    auto geo_metrics = runExperiment(geo_dep, *geo_sched, quickRun());

    EXPECT_GT(geo_metrics.decodeLatency.mean(),
              fast_metrics.decodeLatency.mean());
}

} // namespace
} // namespace helix
