/**
 * @file
 * Tests for the branch-and-bound MILP solver: knapsack instances with
 * known optima, integrality enforcement, warm starts, early stopping,
 * infeasibility, and randomized verification against brute force.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "util/random.h"

namespace helix {
namespace milp {
namespace {

TEST(MilpProblem, FeasibilityChecker)
{
    MilpProblem p;
    int x = p.addBinary(1.0);
    int y = p.addContinuous(0.0, 2.0, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, lp::Relation::LessEq, 2.5);
    EXPECT_TRUE(p.isFeasible({1.0, 1.5}));
    EXPECT_FALSE(p.isFeasible({0.5, 1.0})); // fractional binary
    EXPECT_FALSE(p.isFeasible({1.0, 2.0})); // violates constraint
    EXPECT_FALSE(p.isFeasible({1.0, 3.0})); // violates bound
    EXPECT_FALSE(p.isFeasible({1.0}));      // wrong arity
    EXPECT_DOUBLE_EQ(p.objectiveValue({1.0, 1.5}), 2.5);
}

TEST(BranchAndBound, PureLpPassesThrough)
{
    MilpProblem p;
    int x = p.addContinuous(0.0, 4.0, 3.0);
    int y = p.addContinuous(0.0, 6.0, 5.0);
    p.addConstraint({{x, 3.0}, {y, 2.0}}, lp::Relation::LessEq, 18.0);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.objective, 36.0, 1e-5);
}

TEST(BranchAndBound, SmallKnapsack)
{
    // Items (value, weight): (10,5) (40,4) (30,6) (50,3), cap 10.
    // Optimum: items 2 and 4 => value 90.
    MilpProblem p;
    std::vector<double> values{10, 40, 30, 50};
    std::vector<double> weights{5, 4, 6, 3};
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < 4; ++i) {
        int var = p.addBinary(values[i]);
        row.push_back({var, weights[i]});
    }
    p.addConstraint(row, lp::Relation::LessEq, 10.0);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.objective, 90.0, 1e-6);
    EXPECT_NEAR(r.values[1], 1.0, 1e-6);
    EXPECT_NEAR(r.values[3], 1.0, 1e-6);
}

TEST(BranchAndBound, IntegerRounding)
{
    // max x s.t. 2x <= 7, x integer  =>  x = 3 (LP gives 3.5).
    MilpProblem p;
    int x = p.addInteger(0.0, 10.0, 1.0);
    p.addConstraint({{x, 2.0}}, lp::Relation::LessEq, 7.0);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous)
{
    // max 2x + y, x integer <= 2.5 cap, y continuous <= 1.7,
    // x + y <= 3.2  =>  x = 2, y = 1.2, z = 5.2.
    MilpProblem p;
    int x = p.addInteger(0.0, 2.5, 2.0);
    int y = p.addContinuous(0.0, 1.7, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, lp::Relation::LessEq, 3.2);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.objective, 5.2, 1e-5);
    EXPECT_NEAR(r.values[x], 2.0, 1e-6);
    EXPECT_NEAR(r.values[y], 1.2, 1e-5);
}

TEST(BranchAndBound, InfeasibleIntegerProblem)
{
    // 0.4 <= x <= 0.6, x integer: no integer point.
    MilpProblem p;
    int x = p.addInteger(0.0, 1.0, 1.0);
    p.addConstraint({{x, 1.0}}, lp::Relation::GreaterEq, 0.4);
    p.addConstraint({{x, 1.0}}, lp::Relation::LessEq, 0.6);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    EXPECT_EQ(r.status, MilpStatus::Infeasible);
}

TEST(BranchAndBound, LpFeasibleButIntegerInfeasible)
{
    // x + y = 1.5 with binary x and y: the LP relaxation is feasible
    // (e.g. 0.5 + 1.0) but no integral point satisfies it, so the
    // search must branch and prove infeasibility.
    MilpProblem p;
    int x = p.addBinary(1.0);
    int y = p.addBinary(1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, lp::Relation::Equal, 1.5);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    EXPECT_EQ(r.status, MilpStatus::Infeasible);
}

TEST(BranchAndBound, WarmStartBecomesIncumbent)
{
    MilpProblem p;
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < 6; ++i)
        row.push_back({p.addBinary(1.0), 1.0});
    p.addConstraint(row, lp::Relation::LessEq, 3.0);
    BnbConfig config;
    config.warmStarts.push_back({1, 1, 1, 0, 0, 0});
    config.nodeLimit = 0; // no search at all: incumbent = warm start
    BranchAndBound solver;
    MilpResult r = solver.solve(p, config);
    EXPECT_EQ(r.status, MilpStatus::Feasible);
    EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(BranchAndBound, InfeasibleWarmStartIgnored)
{
    MilpProblem p;
    int x = p.addBinary(1.0);
    p.addConstraint({{x, 1.0}}, lp::Relation::LessEq, 0.0);
    BnbConfig config;
    config.warmStarts.push_back({1.0}); // violates the constraint
    BranchAndBound solver;
    MilpResult r = solver.solve(p, config);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(BranchAndBound, EarlyStopAtKnownBound)
{
    MilpProblem p;
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < 10; ++i)
        row.push_back({p.addBinary(1.0), 1.0});
    p.addConstraint(row, lp::Relation::LessEq, 5.0);
    BnbConfig config;
    config.objectiveUpperBound = 5.0;
    config.warmStarts.push_back(
        {1, 1, 1, 1, 1, 0, 0, 0, 0, 0}); // already optimal
    BranchAndBound solver;
    MilpResult r = solver.solve(p, config);
    EXPECT_NEAR(r.objective, 5.0, 1e-9);
    // Early stop leaves the tree unexplored.
    EXPECT_LE(r.nodesExplored, 1);
}

TEST(BranchAndBound, ProgressRecordingWhenEnabled)
{
    MilpProblem p;
    int x = p.addInteger(0.0, 5.0, 1.0);
    p.addConstraint({{x, 2.0}}, lp::Relation::LessEq, 9.0);
    BnbConfig config;
    config.recordProgress = true;
    BranchAndBound solver;
    MilpResult r = solver.solve(p, config);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_FALSE(r.progress.empty());
}

TEST(BranchAndBound, BoundMatchesObjectiveWhenProvedOptimal)
{
    MilpProblem p;
    int x = p.addInteger(0.0, 9.0, 1.0);
    p.addConstraint({{x, 3.0}}, lp::Relation::LessEq, 10.0);
    BranchAndBound solver;
    MilpResult r = solver.solve(p);
    ASSERT_EQ(r.status, MilpStatus::Optimal);
    EXPECT_NEAR(r.bound, r.objective, 1e-6);
}

/** Randomized knapsacks cross-checked against exhaustive search. */
class RandomKnapsack : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomKnapsack, MatchesBruteForce)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; ++trial) {
        int n = 3 + static_cast<int>(rng.nextBounded(8));
        std::vector<double> values(n);
        std::vector<double> weights(n);
        MilpProblem p;
        std::vector<std::pair<int, double>> row;
        for (int i = 0; i < n; ++i) {
            values[i] = rng.nextUniform(1.0, 20.0);
            weights[i] = rng.nextUniform(1.0, 10.0);
            row.push_back({p.addBinary(values[i]), weights[i]});
        }
        double cap = rng.nextUniform(5.0, 25.0);
        p.addConstraint(row, lp::Relation::LessEq, cap);

        // Brute force over all subsets.
        double best = 0.0;
        for (int mask = 0; mask < (1 << n); ++mask) {
            double v = 0.0;
            double w = 0.0;
            for (int i = 0; i < n; ++i) {
                if (mask & (1 << i)) {
                    v += values[i];
                    w += weights[i];
                }
            }
            if (w <= cap)
                best = std::max(best, v);
        }

        BranchAndBound solver;
        MilpResult r = solver.solve(p);
        ASSERT_EQ(r.status, MilpStatus::Optimal) << "trial " << trial;
        EXPECT_NEAR(r.objective, best, 1e-5) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnapsack,
                         ::testing::Values(51, 52, 53, 54));

} // namespace
} // namespace milp
} // namespace helix
