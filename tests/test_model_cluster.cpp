/**
 * @file
 * Tests for the model and cluster substrates: parameter counts against
 * published sizes, KV/activation arithmetic, GPU catalog values
 * (Table 3), cluster generators (Sec. 6.2 setups), link matrices, and
 * the analytic profiler's monotonicity and consistency properties.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "model/transformer.h"

namespace helix {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;
using model::TransformerSpec;

TEST(Transformer, Llama70bParameterCount)
{
    TransformerSpec spec = model::catalog::llama70b();
    double params = static_cast<double>(spec.totalParams());
    // Published size: ~70 billion parameters.
    EXPECT_NEAR(params / 1e9, 70.0, 2.0);
    EXPECT_EQ(spec.numLayers, 80);
}

TEST(Transformer, Llama30bParameterCount)
{
    TransformerSpec spec = model::catalog::llama30b();
    double params = static_cast<double>(spec.totalParams());
    // Published size: ~32.5 billion parameters.
    EXPECT_NEAR(params / 1e9, 32.5, 1.5);
}

TEST(Transformer, Gpt3ParameterCount)
{
    double params =
        static_cast<double>(model::catalog::gpt3_175b().totalParams());
    EXPECT_NEAR(params / 1e9, 175.0, 10.0);
}

TEST(Transformer, Llama405bParameterCount)
{
    double params =
        static_cast<double>(model::catalog::llama3_405b().totalParams());
    EXPECT_NEAR(params / 1e9, 405.0, 15.0);
}

TEST(Transformer, Grok314bParameterCount)
{
    double params =
        static_cast<double>(model::catalog::grok1_314b().totalParams());
    EXPECT_NEAR(params / 1e9, 314.0, 20.0);
}

TEST(Transformer, ActivationBytesMatchFig2)
{
    // Fig. 2 uses a 16 KB activation: hidden 8192 at FP16.
    TransformerSpec spec = model::catalog::llama70b();
    EXPECT_EQ(spec.activationBytesPerToken(), 16384);
}

TEST(Transformer, GqaShrinksKvCache)
{
    TransformerSpec dense = model::catalog::llama30b(); // MHA
    TransformerSpec gqa = model::catalog::llama70b();   // 8 KV heads
    // 70B GQA: 2 * 8 heads * 128 dim * 2 bytes = 4096 per token-layer.
    EXPECT_EQ(gqa.kvBytesPerTokenPerLayer(), 4096);
    // 30B MHA: 2 * hidden * 2 bytes.
    EXPECT_EQ(dense.kvBytesPerTokenPerLayer(),
              2LL * dense.hiddenSize * 2);
}

TEST(Transformer, FlopsScaleWithParams)
{
    TransformerSpec spec = model::catalog::llama70b();
    EXPECT_DOUBLE_EQ(spec.flopsPerTokenPerLayer(),
                     2.0 * spec.paramsPerLayer());
    EXPECT_GT(spec.attentionFlopsPerToken(1000),
              spec.attentionFlopsPerToken(10));
}

TEST(GpuCatalog, Table3Values)
{
    auto h100 = cluster::gpus::h100();
    EXPECT_DOUBLE_EQ(h100.tflopsFp16, 1979.0);
    EXPECT_DOUBLE_EQ(h100.memoryGiB, 80.0);
    auto a100 = cluster::gpus::a100_40();
    EXPECT_DOUBLE_EQ(a100.tflopsFp16, 312.0);
    EXPECT_DOUBLE_EQ(a100.memBandwidthGBs, 1555.0);
    auto l4 = cluster::gpus::l4();
    EXPECT_DOUBLE_EQ(l4.tflopsFp16, 242.0);
    EXPECT_DOUBLE_EQ(l4.memoryGiB, 24.0);
    auto t4 = cluster::gpus::t4();
    EXPECT_DOUBLE_EQ(t4.tflopsFp16, 65.0);
    EXPECT_DOUBLE_EQ(t4.memoryGiB, 16.0);
    EXPECT_EQ(cluster::gpus::all().size(), 6u);
}

TEST(GpuCatalog, EightL4sMatchOneH100)
{
    // The paper's Table 3 observation.
    EXPECT_GE(8 * cluster::gpus::l4().tflopsFp16,
              0.95 * cluster::gpus::h100().tflopsFp16);
}

TEST(ClusterSetups, SingleCluster24Composition)
{
    ClusterSpec c = cluster::setups::singleCluster24();
    EXPECT_EQ(c.numNodes(), 24);
    int a100 = 0;
    int l4 = 0;
    int t4 = 0;
    for (int i = 0; i < c.numNodes(); ++i) {
        const std::string &name = c.node(i).gpu.name;
        a100 += name == "A100";
        l4 += name == "L4";
        t4 += name == "T4";
    }
    EXPECT_EQ(a100, 4);
    EXPECT_EQ(l4, 8);
    EXPECT_EQ(t4, 12);
    // 10 Gb/s everywhere.
    EXPECT_DOUBLE_EQ(c.link(0, 1).bandwidthBps, 10e9);
    EXPECT_DOUBLE_EQ(c.link(cluster::kCoordinator, 0).bandwidthBps,
                     10e9);
}

TEST(ClusterSetups, GeoDistributedRegionsAndLinks)
{
    ClusterSpec c = cluster::setups::geoDistributed24();
    EXPECT_EQ(c.numNodes(), 24);
    // Find one intra-region and one cross-region pair.
    int r0 = -1;
    int r1 = -1;
    int r0b = -1;
    for (int i = 0; i < c.numNodes(); ++i) {
        if (c.node(i).region == 0) {
            if (r0 < 0)
                r0 = i;
            else if (r0b < 0)
                r0b = i;
        } else if (c.node(i).region == 1 && r1 < 0) {
            r1 = i;
        }
    }
    ASSERT_GE(r0, 0);
    ASSERT_GE(r0b, 0);
    ASSERT_GE(r1, 0);
    EXPECT_DOUBLE_EQ(c.link(r0, r0b).bandwidthBps, 10e9);
    EXPECT_DOUBLE_EQ(c.link(r0, r1).bandwidthBps, 100e6);
    EXPECT_DOUBLE_EQ(c.link(r0, r1).latencyS, 50e-3);
    EXPECT_EQ(c.coordinatorRegion(), 0);
}

TEST(ClusterSetups, HighHeterogeneity42Composition)
{
    ClusterSpec c = cluster::setups::highHeterogeneity42();
    EXPECT_EQ(c.numNodes(), 42);
    int multi_gpu = 0;
    for (int i = 0; i < c.numNodes(); ++i)
        multi_gpu += c.node(i).numGpus > 1;
    EXPECT_EQ(multi_gpu, 14); // 4 2xL4 + 6 2xT4 + 4 4xT4
}

TEST(ClusterSetups, SummaryString)
{
    ClusterSpec c = cluster::setups::plannerCluster10();
    EXPECT_EQ(c.summary(), "4xL4 + 6xT4 (10 nodes)");
}

TEST(NodeSpec, MultiGpuAggregation)
{
    NodeSpec node;
    node.gpu = cluster::gpus::t4();
    node.numGpus = 4;
    EXPECT_DOUBLE_EQ(node.totalTflops(), 4 * 65.0);
    EXPECT_EQ(node.totalMemoryBytes(), 4 * node.gpu.memoryBytes());
}

class ProfilerTest : public ::testing::Test
{
  protected:
    TransformerSpec model_spec = model::catalog::llama70b();
    Profiler profiler{model_spec};
    NodeSpec a100{"a100", cluster::gpus::a100_40(), 1, 0};
    NodeSpec t4{"t4", cluster::gpus::t4(), 1, 0};
    NodeSpec l4{"l4", cluster::gpus::l4(), 1, 0};
};

TEST_F(ProfilerTest, MaxLayersHonorsHalfVramRule)
{
    int layers = profiler.maxLayers(a100);
    // Weights for that many layers fit in half the usable VRAM.
    double usable = 0.9 * a100.totalMemoryBytes();
    EXPECT_LE(layers * model_spec.layerBytes(), usable * 0.5);
    EXPECT_GT((layers + 1) * model_spec.layerBytes(), usable * 0.5);
}

TEST_F(ProfilerTest, HardMaxExceedsSoftMax)
{
    EXPECT_GT(profiler.hardMaxLayers(a100), profiler.maxLayers(a100));
    EXPECT_LE(profiler.hardMaxLayers(a100), model_spec.numLayers);
}

TEST_F(ProfilerTest, KvCapacityDecreasesWithLayers)
{
    int64_t kv4 = profiler.kvCapacityBytes(a100, 4);
    int64_t kv8 = profiler.kvCapacityBytes(a100, 8);
    EXPECT_GT(kv4, kv8);
    EXPECT_GT(kv8, 0);
}

TEST_F(ProfilerTest, ThroughputOrderingMatchesHardware)
{
    // At the same layer count, A100 beats both commodity GPUs. L4 and
    // T4 share the same 300 GB/s memory bandwidth, so in the
    // memory-bound decode regime L4 is no worse but may tie.
    double ta = profiler.decodeThroughput(a100, 4);
    double tl = profiler.decodeThroughput(l4, 4);
    double tt = profiler.decodeThroughput(t4, 4);
    EXPECT_GT(ta, tl);
    EXPECT_GE(tl, tt);
}

TEST_F(ProfilerTest, ThroughputZeroBeyondHardLimit)
{
    int hard = profiler.hardMaxLayers(t4);
    EXPECT_GT(profiler.decodeThroughput(t4, hard), 0.0);
    EXPECT_DOUBLE_EQ(profiler.decodeThroughput(t4, hard + 1), 0.0);
    EXPECT_DOUBLE_EQ(profiler.decodeThroughput(t4, 0), 0.0);
}

TEST_F(ProfilerTest, DecodeIterationMonotoneInBatchAndLayers)
{
    double t1 = profiler.decodeIterationSeconds(a100, 4, 8, 800);
    double t2 = profiler.decodeIterationSeconds(a100, 4, 64, 800);
    double t3 = profiler.decodeIterationSeconds(a100, 8, 8, 800);
    EXPECT_LE(t1, t2);
    EXPECT_LT(t1, t3);
}

TEST_F(ProfilerTest, PromptSecondsScaleWithTokens)
{
    double short_prompt = profiler.promptSeconds(a100, 8, 128, 128);
    double long_prompt = profiler.promptSeconds(a100, 8, 1024, 1024);
    EXPECT_LT(short_prompt, long_prompt);
}

TEST_F(ProfilerTest, LinkTokenCapacityMatchesFig2Arithmetic)
{
    // Fig. 2: a link's capacity is bandwidth / per-token payload.
    cluster::LinkSpec link{10e9, 1e-3}; // 10 Gb/s
    double act = profiler.linkTokensPerSecond(
        link, profiler.activationBytes());
    EXPECT_NEAR(act, 10e9 / 8.0 / 16384.0, 1.0);
    double tok = profiler.linkTokensPerSecond(link,
                                              profiler.tokenBytes());
    EXPECT_NEAR(tok, 10e9 / 8.0 / 4.0, 1.0);
}

TEST_F(ProfilerTest, UpperBoundPositiveAndFinite)
{
    ClusterSpec c = cluster::setups::singleCluster24();
    double bound = profiler.throughputUpperBound(c);
    EXPECT_GT(bound, 0.0);
    EXPECT_LT(bound, 1e7);
}

TEST(Profiler, ThirtyBFitsMoreLayersThanSeventyB)
{
    NodeSpec t4{"t4", cluster::gpus::t4(), 1, 0};
    Profiler p30(model::catalog::llama30b());
    Profiler p70(model::catalog::llama70b());
    EXPECT_GT(p30.maxLayers(t4), p70.maxLayers(t4));
}

} // namespace
} // namespace helix
