/**
 * @file
 * End-to-end tests of partial inference (Sec. 4.4): overlapping
 * placements where a request entering node c_j from c_i computes only
 * layers [e_i, e_j). Covers graph construction, MILP option parity,
 * scheduler pipeline shapes, and simulation through overlapping
 * stages.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "core/helix.h"
#include "model/transformer.h"
#include "placement/milp_formulation.h"
#include "placement/placement_graph.h"
#include "scheduler/scheduler.h"
#include "sim/simulator.h"

namespace helix {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;

/** Three T4s with deliberately overlapping layer ranges. */
class PartialInferenceFixture : public ::testing::Test
{
  protected:
    PartialInferenceFixture()
    {
        for (int i = 0; i < 3; ++i) {
            NodeSpec node;
            node.name = "t4-" + std::to_string(i);
            node.gpu = cluster::gpus::t4();
            clusterSpec.addNode(std::move(node));
        }
        clusterSpec.setUniformLinks(10e9, 1e-3);
        toy = model::catalog::llama30b();
        toy.numLayers = 12;
        profiler = std::make_unique<Profiler>(toy);
        // Overlapping chain: [0,6), [4,10), [8,12). The only route is
        // 0 -> 1 (partial: [6,10)) -> 2 (partial: [10,12)).
        overlapping.nodes = {{0, 6}, {4, 6}, {8, 4}};
    }

    ClusterSpec clusterSpec;
    model::TransformerSpec toy;
    std::unique_ptr<Profiler> profiler;
    placement::ModelPlacement overlapping;
};

TEST_F(PartialInferenceFixture, GraphHasFlowOnlyWithPartialInference)
{
    placement::PlacementGraph with(clusterSpec, *profiler, overlapping,
                                   {true, nullptr});
    placement::PlacementGraph without(clusterSpec, *profiler,
                                      overlapping, {false, nullptr});
    EXPECT_GT(with.maxThroughput(), 0.0);
    EXPECT_DOUBLE_EQ(without.maxThroughput(), 0.0);
}

TEST_F(PartialInferenceFixture, SchedulerBuildsPartialStages)
{
    placement::PlacementGraph graph(clusterSpec, *profiler,
                                    overlapping);
    scheduler::Topology topo(clusterSpec, *profiler, overlapping,
                             graph);
    scheduler::HelixScheduler sched(topo);
    class Ctx : public scheduler::SchedulerContext
    {
      public:
        int queueLength(int) const override { return 0; }
        double recentThroughput(int) const override { return 0.0; }
        double kvUsedBytes(int) const override { return 0.0; }
    } ctx;
    trace::Request req{0, 0.0, 64, 8};
    auto pipeline = sched.schedule(req, ctx);
    ASSERT_TRUE(pipeline.has_value());
    ASSERT_EQ(pipeline->size(), 3u);
    // Stage 2 computes only [6,10): partial inference on node 1.
    EXPECT_EQ((*pipeline)[1].node, 1);
    EXPECT_EQ((*pipeline)[1].startLayer, 6);
    EXPECT_EQ((*pipeline)[1].endLayer, 10);
    // Stage 3 computes only [10,12) although node 2 holds [8,12).
    EXPECT_EQ((*pipeline)[2].startLayer, 10);
    EXPECT_EQ((*pipeline)[2].endLayer, 12);
    EXPECT_TRUE(scheduler::pipelineValid(*pipeline, toy.numLayers));
}

TEST_F(PartialInferenceFixture, SimulationCompletesRequests)
{
    placement::PlacementGraph graph(clusterSpec, *profiler,
                                    overlapping);
    scheduler::Topology topo(clusterSpec, *profiler, overlapping,
                             graph);
    scheduler::HelixScheduler sched(topo);
    sim::SimConfig config;
    config.warmupSeconds = 0.0;
    config.measureSeconds = 60.0;
    sim::ClusterSimulator sim(clusterSpec, *profiler, overlapping,
                              sched, config);
    trace::LengthModel lengths;
    lengths.targetMeanPrompt = 64;
    lengths.maxPromptLen = 128;
    lengths.targetMeanOutput = 16;
    lengths.maxOutputLen = 32;
    trace::TraceGenerator gen(21, lengths);
    trace::PoissonArrivals arrivals(2.0);
    auto metrics = sim.run(gen.generateCount(40, arrivals));
    EXPECT_GT(metrics.requestsCompleted, 0);
    EXPECT_GT(metrics.decodeThroughput, 0.0);
}

TEST_F(PartialInferenceFixture, MilpOptionControlsConnections)
{
    placement::MilpBuildOptions with;
    with.allowPartialInference = true;
    placement::MilpBuildOptions without;
    without.allowPartialInference = false;
    placement::MilpFormulation f_with(clusterSpec, *profiler, with);
    placement::MilpFormulation f_without(clusterSpec, *profiler,
                                         without);
    // Partial inference adds the cond1/cond2 auxiliaries.
    EXPECT_GT(f_with.numVariables(), f_without.numVariables());
    // Encoding the overlapping placement is feasible only when the
    // formulation allows partial inference to carry flow.
    auto values = f_with.encodePlacement(overlapping);
    EXPECT_TRUE(f_with.problem().isFeasible(values, 1e-4));
    double objective = f_with.problem().objectiveValue(values);
    EXPECT_GT(objective, 0.0);
}

TEST_F(PartialInferenceFixture, ExactTilingWorksWithBothSettings)
{
    placement::ModelPlacement exact;
    exact.nodes = {{0, 4}, {4, 4}, {8, 4}};
    placement::PlacementGraph with(clusterSpec, *profiler, exact,
                                   {true, nullptr});
    placement::PlacementGraph without(clusterSpec, *profiler, exact,
                                      {false, nullptr});
    EXPECT_GT(without.maxThroughput(), 0.0);
    EXPECT_NEAR(with.maxThroughput(), without.maxThroughput(), 1e-6);
}

TEST(PartialInferenceSearch, PlannerCanExploitOverlap)
{
    // A cluster whose VRAM forces overlap: two big nodes and one
    // small helper. The planner must produce a valid covering
    // placement either way; with partial inference the search space
    // is a superset, so the objective can only improve.
    ClusterSpec clus;
    clus.addNode({"l4-0", cluster::gpus::l4(), 1, 0});
    clus.addNode({"l4-1", cluster::gpus::l4(), 1, 0});
    clus.addNode({"t4-0", cluster::gpus::t4(), 1, 0});
    clus.setUniformLinks(10e9, 1e-3);
    model::TransformerSpec toy = model::catalog::llama30b();
    toy.numLayers = 24;
    Profiler prof(toy);

    placement::HelixPlannerConfig base;
    base.timeBudgetSeconds = 2.0;
    base.objective = placement::PlannerObjective::MaxFlow;
    base.exactMilpNodeLimit = 0;
    base.seed = 7;

    placement::HelixPlannerConfig no_partial = base;
    no_partial.allowPartialInference = false;

    placement::HelixPlanner with(base);
    placement::HelixPlanner without(no_partial);
    placement::ModelPlacement p_with = with.plan(clus, prof);
    placement::ModelPlacement p_without = without.plan(clus, prof);
    EXPECT_TRUE(placement::placementValid(p_with, clus, prof));
    EXPECT_TRUE(placement::placementValid(p_without, clus, prof));
    EXPECT_GE(with.report().bestThroughput,
              0.9 * without.report().bestThroughput);
}

} // namespace
} // namespace helix
