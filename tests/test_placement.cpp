/**
 * @file
 * Tests for placement types and the cluster→flow-graph construction
 * (Sec. 4.3), including the paper's Fig. 2 worked example, connection
 * validity rules, partial inference, pruning filters, and the serving
 * throughput estimate.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/profiler.h"
#include "model/transformer.h"
#include "placement/placement.h"
#include "placement/placement_graph.h"

namespace helix {
namespace placement {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Profiler;

ClusterSpec
tinyCluster(int n)
{
    ClusterSpec c;
    for (int i = 0; i < n; ++i) {
        NodeSpec node;
        node.name = "t4-" + std::to_string(i);
        node.gpu = cluster::gpus::t4();
        c.addNode(std::move(node));
    }
    c.setUniformLinks(10e9, 1e-3);
    return c;
}

TEST(NodePlacementType, EndArithmetic)
{
    NodePlacement p{5, 3};
    EXPECT_EQ(p.end(), 8);
    EXPECT_EQ(p, (NodePlacement{5, 3}));
}

TEST(ConnectionValidity, PartialInferenceRule)
{
    // Valid iff s_to <= e_from < e_to.
    EXPECT_TRUE(connectionValid({0, 4}, {4, 4}, true));  // e=s exact
    EXPECT_TRUE(connectionValid({0, 4}, {2, 4}, true));  // overlap
    EXPECT_FALSE(connectionValid({0, 4}, {5, 3}, true)); // gap
    EXPECT_FALSE(connectionValid({0, 8}, {2, 4}, true)); // e >= e_to
    EXPECT_FALSE(connectionValid({0, 0}, {0, 4}, true)); // unused from
    EXPECT_FALSE(connectionValid({0, 4}, {4, 0}, true)); // unused to
}

TEST(ConnectionValidity, ExactRuleWithoutPartialInference)
{
    EXPECT_TRUE(connectionValid({0, 4}, {4, 4}, false));
    EXPECT_FALSE(connectionValid({0, 4}, {2, 4}, false));
    EXPECT_FALSE(connectionValid({0, 4}, {3, 6}, false));
}

TEST(PlacementValidity, FullCoverageRequired)
{
    ClusterSpec c = tinyCluster(3);
    Profiler prof(model::catalog::llama30b());
    ModelPlacement p;
    p.nodes = {{0, 7}, {7, 7}, {14, 7}};
    // 21 < 60 layers: invalid.
    EXPECT_FALSE(placementValid(p, c, prof));
}

TEST(PlacementValidity, VramLimitEnforced)
{
    ClusterSpec c = tinyCluster(1);
    Profiler prof(model::catalog::llama30b());
    int hard = prof.hardMaxLayers(c.node(0));
    ModelPlacement p;
    p.nodes = {{0, hard + 1}};
    EXPECT_FALSE(placementValid(p, c, prof));
}

TEST(PlacementValidity, OutOfRangeRejected)
{
    ClusterSpec c = tinyCluster(1);
    Profiler prof(model::catalog::llama30b());
    ModelPlacement p;
    p.nodes = {{58, 5}}; // extends past layer 60
    EXPECT_FALSE(placementValid(p, c, prof));
}

TEST(BottleneckMetric, MinOverLayers)
{
    ClusterSpec c = tinyCluster(2);
    Profiler prof(model::catalog::llama30b());
    ModelPlacement p;
    p.nodes = {{0, 5}, {0, 5}}; // layers 5.. uncovered
    EXPECT_DOUBLE_EQ(bottleneckLayerThroughput(p, c, prof), 0.0);
}

TEST(ConnectionFilter, AllowAllAllows)
{
    auto filter = ConnectionFilter::allowAll(4);
    EXPECT_TRUE(filter.allowed(0, 3));
    EXPECT_EQ(filter.numAllowed(), 16);
}

TEST(ConnectionFilter, PruningBoundsDegree)
{
    ClusterSpec c = cluster::setups::geoDistributed24();
    auto filter = ConnectionFilter::pruneByBandwidth(c, 12);
    for (int from = 0; from < c.numNodes(); ++from) {
        int degree = 0;
        for (int to = 0; to < c.numNodes(); ++to) {
            if (to != from && filter.allowed(from, to))
                ++degree;
        }
        EXPECT_LE(degree, 12);
    }
}

TEST(ConnectionFilter, PruningKeepsFastLinksFirst)
{
    ClusterSpec c = cluster::setups::geoDistributed24();
    auto filter = ConnectionFilter::pruneByBandwidth(c, 12);
    // A region-1 node (10 intra peers - itself = 9 intra) keeps all
    // intra links; only 3 cross links survive.
    int region1_node = -1;
    for (int i = 0; i < c.numNodes(); ++i) {
        if (c.node(i).region == 1) {
            region1_node = i;
            break;
        }
    }
    ASSERT_GE(region1_node, 0);
    for (int to = 0; to < c.numNodes(); ++to) {
        if (to == region1_node)
            continue;
        if (c.node(to).region == 1) {
            EXPECT_TRUE(filter.allowed(region1_node, to));
        }
    }
}

/**
 * The paper's Fig. 2 worked example: 3 nodes, given model placement;
 * edge capacities follow the bandwidth/payload arithmetic and the max
 * flow gives the serving throughput.
 */
TEST(PlacementGraphFig2, ReproducesConstruction)
{
    // Three-layer toy model with a 16 KB activation (hidden 4096 at
    // FP32 equivalent; we simply need activation bytes = 16384).
    model::TransformerSpec toy;
    toy.name = "toy3";
    toy.numLayers = 3;
    toy.hiddenSize = 8192;
    toy.numHeads = 64;
    toy.numKvHeads = 8;
    toy.intermediateSize = 28672;
    toy.vocabSize = 32000;

    ClusterSpec c;
    NodeSpec a100{"A100", cluster::gpus::a100_40(), 1, 0};
    NodeSpec t4_1{"T4-1", cluster::gpus::t4(), 1, 0};
    NodeSpec t4_2{"T4-2", cluster::gpus::t4(), 1, 0};
    c.addNode(a100);
    c.addNode(t4_1);
    c.addNode(t4_2);
    // Fig. 2 bandwidths (Mb/s): coord->A100 20, coord<-T4-2 50,
    // A100->T4-1 80, A100->T4-2 40, T4-1->T4-2 60, plus unused others.
    c.setUniformLinks(1e6, 1e-3);
    c.setLink(cluster::kCoordinator, 0, {20e6, 1e-3});
    c.setLink(2, cluster::kCoordinator, {50e6, 1e-3});
    c.setLink(0, 1, {80e6, 1e-3});
    c.setLink(0, 2, {40e6, 1e-3});
    c.setLink(1, 2, {60e6, 1e-3});

    Profiler prof(toy);
    ModelPlacement placement;
    placement.nodes = {{0, 2}, {1, 1}, {2, 1}}; // A100: 1&2, T4s: ...
    // A100 holds layers [0,2), T4-1 holds [1,2)?? Fig 2: A100 holds
    // layers 1-2, T4-1 holds layer 3... our indices: A100 [0,2),
    // T4-1 [2,3)? T4-1 holds layer 3 and T4-2 holds layer 3 as well.
    placement.nodes = {{0, 2}, {2, 1}, {2, 1}};

    PlacementGraph graph(c, prof, placement);
    // Valid connections: coord->A100 (s=0), A100->T4-1, A100->T4-2,
    // T4-1->coord, T4-2->coord (both end at layer 3 = L).
    EXPECT_TRUE(graph.hasConnection(cluster::kCoordinator, 0));
    EXPECT_TRUE(graph.hasConnection(0, 1));
    EXPECT_TRUE(graph.hasConnection(0, 2));
    EXPECT_TRUE(graph.hasConnection(1, cluster::kCoordinator));
    EXPECT_TRUE(graph.hasConnection(2, cluster::kCoordinator));
    EXPECT_FALSE(graph.hasConnection(1, 2)); // same layers: invalid
    EXPECT_FALSE(graph.hasConnection(cluster::kCoordinator, 1));

    // Capacity arithmetic: coordinator link carries 4-byte tokens,
    // A100->T4-1 carries 16 KB activations (Fig. 2b: 625K and 610).
    auto conns = graph.connections();
    for (const auto &conn : conns) {
        if (conn.from == cluster::kCoordinator && conn.to == 0) {
            EXPECT_NEAR(conn.capacity, 20e6 / 8.0 / 4.0, 1.0);
        }
        if (conn.from == 0 && conn.to == 1) {
            EXPECT_NEAR(conn.capacity, 80e6 / 8.0 / 16384.0, 1.0);
        }
    }

    // Max flow is limited by network and node capacities and must be
    // positive and no larger than the coordinator ingress capacity.
    double flow = graph.maxThroughput();
    EXPECT_GT(flow, 0.0);
    EXPECT_LE(flow, 20e6 / 8.0 / 4.0 + 1.0);
}

TEST(PlacementGraph, UnusedNodesExcluded)
{
    ClusterSpec c = tinyCluster(3);
    Profiler prof(model::catalog::llama30b());
    int k = prof.maxLayers(c.node(0));
    ModelPlacement p;
    p.nodes = {{0, k}, {0, 0}, {0, k}};
    PlacementGraph graph(c, prof, p);
    EXPECT_FALSE(graph.hasConnection(0, 1));
    EXPECT_FALSE(graph.hasConnection(cluster::kCoordinator, 1));
}

TEST(PlacementGraph, FlowZeroWithoutCoverage)
{
    ClusterSpec c = tinyCluster(2);
    Profiler prof(model::catalog::llama30b());
    ModelPlacement p;
    p.nodes = {{0, 5}, {5, 5}}; // covers only [0, 10) of 60
    PlacementGraph graph(c, prof, p);
    EXPECT_DOUBLE_EQ(graph.maxThroughput(), 0.0);
}

TEST(PlacementGraph, FlowConservationAtConnections)
{
    ClusterSpec c = cluster::setups::plannerCluster10();
    // Two replica chains of five nodes, each tiling a 30-layer model
    // in 6-layer stages (6 <= every node's VRAM limit).
    ModelPlacement p;
    p.nodes.resize(10);
    model::TransformerSpec toy = model::catalog::llama30b();
    toy.numLayers = 30;
    Profiler prof30(toy);
    for (int chain = 0; chain < 2; ++chain) {
        int at = 0;
        for (int j = 0; j < 5; ++j) {
            int node = chain * 5 + j;
            p[node] = {at, 6};
            at += 6;
        }
    }
    PlacementGraph graph(c, prof30, p);
    double flow = graph.maxThroughput();
    EXPECT_GT(flow, 0.0);
    // Flow into each node equals flow out of it.
    for (int node = 0; node < 10; ++node) {
        double in = 0.0;
        double out = 0.0;
        for (const auto &conn : graph.connections()) {
            if (conn.to == node)
                in += conn.flow;
            if (conn.from == node)
                out += conn.flow;
        }
        EXPECT_NEAR(in, out, 1e-4 * std::max(1.0, flow));
    }
}

TEST(PlacementGraph, PartialInferenceAddsConnections)
{
    ClusterSpec c = tinyCluster(2);
    Profiler prof(model::catalog::llama30b());
    ModelPlacement p;
    p.nodes = {{0, 6}, {4, 7}}; // overlap: partial inference needed
    PlacementGraph with_partial(c, prof, p, {true, nullptr});
    PlacementGraph without_partial(c, prof, p, {false, nullptr});
    EXPECT_TRUE(with_partial.hasConnection(0, 1));
    EXPECT_FALSE(without_partial.hasConnection(0, 1));
}

TEST(ServingEstimate, BoundedByMaxFlow)
{
    ClusterSpec c = cluster::setups::singleCluster24();
    Profiler prof(model::catalog::llama70b());
    // Use a straightforward round-robin fill for a valid placement.
    ModelPlacement p;
    p.nodes.resize(c.numNodes());
    int at = 0;
    for (int i = 0; i < c.numNodes(); ++i) {
        int k = prof.maxLayers(c.node(i));
        int count = std::min(k, 80 - at);
        if (count <= 0) {
            at = 0;
            count = std::min(k, 80);
        }
        p[i] = {at, count};
        at += count;
    }
    PlacementGraph graph(c, prof, p);
    double flow = graph.maxThroughput();
    double estimate = estimateServingThroughput(c, prof, p, graph);
    EXPECT_LE(estimate, flow + 1e-6);
    EXPECT_GE(estimate, 0.0);
}

TEST(ServingEstimate, PenalizesHighLatencyLinks)
{
    // Same placement, slower+higher-latency network: lower estimate.
    Profiler prof(model::catalog::llama30b());
    auto build = [&](double latency) {
        ClusterSpec c;
        for (int i = 0; i < 4; ++i) {
            NodeSpec node;
            node.name = "a100-" + std::to_string(i);
            node.gpu = cluster::gpus::a100_40();
            c.addNode(std::move(node));
        }
        c.setUniformLinks(10e9, latency);
        return c;
    };
    ClusterSpec probe = build(1e-3);
    int k = prof.maxLayers(probe.node(0));
    // 4 A100s x k layers must cover 60.
    ASSERT_GE(4 * k, 60);
    ModelPlacement p;
    p.nodes.resize(4);
    int at = 0;
    for (int i = 0; i < 4; ++i) {
        int count = std::min(k, 60 - at);
        p[i] = {at, count};
        at += count;
    }
    ClusterSpec fast = build(1e-3);
    ClusterSpec slow = build(200e-3);
    PlacementGraph gf(fast, prof, p);
    PlacementGraph gs(slow, prof, p);
    double est_fast = estimateServingThroughput(fast, prof, p, gf);
    double est_slow = estimateServingThroughput(slow, prof, p, gs);
    EXPECT_GT(est_fast, est_slow);
}

} // namespace
} // namespace placement
} // namespace helix
