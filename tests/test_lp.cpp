/**
 * @file
 * Tests for the simplex LP solver: hand-solved instances, degenerate
 * cases (infeasible, unbounded), bound handling, and randomized
 * verification against feasibility and optimality conditions.
 */

#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "util/random.h"

namespace helix {
namespace lp {
namespace {

TEST(Simplex, TrivialSingleVariable)
{
    LpProblem p;
    int x = p.addVariable(0.0, 10.0, 1.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, 10.0, 1e-6);
    EXPECT_NEAR(r.values[x], 10.0, 1e-6);
}

TEST(Simplex, TextbookTwoVariable)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  z = 36.
    LpProblem p;
    int x = p.addVariable(0.0, LpProblem::kInfinity, 3.0);
    int y = p.addVariable(0.0, LpProblem::kInfinity, 5.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 4.0);
    p.addConstraint({{y, 2.0}}, Relation::LessEq, 12.0);
    p.addConstraint({{x, 3.0}, {y, 2.0}}, Relation::LessEq, 18.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, 36.0, 1e-6);
    EXPECT_NEAR(r.values[x], 2.0, 1e-6);
    EXPECT_NEAR(r.values[y], 6.0, 1e-6);
}

TEST(Simplex, EqualityConstraint)
{
    // max x + y s.t. x + y = 5, x <= 3  =>  z = 5.
    LpProblem p;
    int x = p.addVariable(0.0, 3.0, 1.0);
    int y = p.addVariable(0.0, LpProblem::kInfinity, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 5.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(Simplex, GreaterEqualConstraint)
{
    // max -x s.t. x >= 2  =>  x = 2 (minimize x).
    LpProblem p;
    int x = p.addVariable(0.0, LpProblem::kInfinity, -1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.values[x], 2.0, 1e-6);
    EXPECT_NEAR(r.objective, -2.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected)
{
    LpProblem p;
    int x = p.addVariable(0.0, LpProblem::kInfinity, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::LessEq, 1.0);
    p.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    SimplexSolver solver;
    EXPECT_EQ(solver.solve(p).status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected)
{
    LpProblem p;
    p.addVariable(0.0, LpProblem::kInfinity, 1.0);
    SimplexSolver solver;
    EXPECT_EQ(solver.solve(p).status, LpStatus::Unbounded);
}

TEST(Simplex, NonzeroLowerBoundsShifted)
{
    // max -x - y s.t. x >= 2, y in [3, 10], x + y >= 7  =>  z = -7.
    LpProblem p;
    int x = p.addVariable(2.0, LpProblem::kInfinity, -1.0);
    int y = p.addVariable(3.0, 10.0, -1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq, 7.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, -7.0, 1e-6);
    EXPECT_GE(r.values[x], 2.0 - 1e-9);
    EXPECT_GE(r.values[y], 3.0 - 1e-9);
}

TEST(Simplex, NegativeRhsNormalized)
{
    // max -x s.t. -x <= -3 (i.e. x >= 3).
    LpProblem p;
    int x = p.addVariable(0.0, LpProblem::kInfinity, -1.0);
    p.addConstraint({{x, -1.0}}, Relation::LessEq, -3.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.values[x], 3.0, 1e-6);
}

TEST(Simplex, RedundantEqualityRows)
{
    // Duplicate equality rows must not break phase 1 cleanup.
    LpProblem p;
    int x = p.addVariable(0.0, 10.0, 1.0);
    int y = p.addVariable(0.0, 10.0, 1.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 6.0);
    p.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 6.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, 6.0, 1e-6);
}

TEST(Simplex, MaxFlowAsLpMatchesCombinatorial)
{
    // Max flow on the diamond graph expressed as an LP: value 6.
    LpProblem p;
    int sa = p.addVariable(0.0, 2.0, 1.0);
    int sb = p.addVariable(0.0, 5.0, 1.0);
    int at = p.addVariable(0.0, 2.0, 0.0);
    int bt = p.addVariable(0.0, 4.0, 0.0);
    p.addConstraint({{sa, 1.0}, {at, -1.0}}, Relation::Equal, 0.0);
    p.addConstraint({{sb, 1.0}, {bt, -1.0}}, Relation::Equal, 0.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.objective, 6.0, 1e-6);
}

/** Random LPs: solutions must be feasible and at least as good as a
 *  sampled feasible point. */
class RandomLpProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomLpProperty, OptimalIsFeasibleAndDominant)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 30; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBounded(5));
        LpProblem p;
        for (int v = 0; v < n; ++v)
            p.addVariable(0.0, rng.nextUniform(1.0, 10.0),
                          rng.nextUniform(-2.0, 2.0));
        int m = 1 + static_cast<int>(rng.nextBounded(5));
        for (int c = 0; c < m; ++c) {
            std::vector<std::pair<int, double>> terms;
            for (int v = 0; v < n; ++v) {
                // Non-negative coefficients with a generous rhs keep
                // the instance feasible (origin is interior).
                terms.push_back({v, rng.nextUniform(0.0, 1.0)});
            }
            p.addConstraint(terms, Relation::LessEq,
                            rng.nextUniform(1.0, 20.0));
        }
        SimplexSolver solver;
        LpResult r = solver.solve(p);
        ASSERT_EQ(r.status, LpStatus::Optimal) << "trial " << trial;
        // Check feasibility.
        for (int v = 0; v < n; ++v) {
            EXPECT_GE(r.values[v], -1e-6);
            EXPECT_LE(r.values[v], p.upperBound(v) + 1e-6);
        }
        for (int c = 0; c < p.numConstraints(); ++c) {
            double lhs = 0.0;
            for (auto &[var, coef] : p.constraint(c).terms)
                lhs += coef * r.values[var];
            EXPECT_LE(lhs, p.constraint(c).rhs + 1e-6);
        }
        // The origin is feasible with objective 0; positive-coef
        // objectives must do at least as well as 0.
        double zero_obj = 0.0;
        EXPECT_GE(r.objective, zero_obj - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty,
                         ::testing::Values(31, 37, 41, 43));

TEST(LpProblem, SetBoundsUpdates)
{
    LpProblem p;
    int x = p.addVariable(0.0, 5.0, 1.0);
    p.setBounds(x, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(p.lowerBound(x), 1.0);
    EXPECT_DOUBLE_EQ(p.upperBound(x), 2.0);
    SimplexSolver solver;
    LpResult r = solver.solve(p);
    ASSERT_EQ(r.status, LpStatus::Optimal);
    EXPECT_NEAR(r.values[x], 2.0, 1e-6);
}

TEST(LpProblem, VariableNamesDefaultAndCustom)
{
    LpProblem p;
    int a = p.addVariable(0, 1, 0.0);
    int b = p.addVariable(0, 1, 0.0, "flow");
    EXPECT_EQ(p.variableName(a), "x0");
    EXPECT_EQ(p.variableName(b), "flow");
}

} // namespace
} // namespace lp
} // namespace helix
